#!/usr/bin/env bash
# Tier-1 gate: build, test, and lint the whole workspace.
#
# Run from the repo root. Fails on the first error; clippy warnings are
# promoted to errors so lint drift cannot accumulate. The `vendor/`
# directory holds offline dependency stubs and is excluded from the
# workspace, so it is not linted here.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --workspace --release
cargo test --workspace -q
cargo clippy --workspace -- -D warnings

# Observability smoke: a demo run must produce a valid metrics dump
# (schema, per-phase timings, grounding cardinalities, convergence
# series) and a JSON-lines trace. `metrics_smoke` validates the keys.
./target/release/sya run demo/gwdb.ddlog \
    --table Well=demo/wells.csv --evidence demo/evidence.csv \
    --epochs 200 \
    --metrics-out /tmp/sya_ci_metrics.json \
    --trace-out /tmp/sya_ci_trace.jsonl > /dev/null
./target/release/metrics_smoke /tmp/sya_ci_metrics.json
test -s /tmp/sya_ci_trace.jsonl
