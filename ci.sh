#!/usr/bin/env bash
# Tier-1 gate: build, test, and lint the whole workspace.
#
# Run from the repo root. Fails on the first error; clippy warnings are
# promoted to errors so lint drift cannot accumulate. The `vendor/`
# directory holds offline dependency stubs and is excluded from the
# workspace, so it is not linted here.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --workspace --release
cargo test --workspace -q
cargo clippy --workspace -- -D warnings

# The demo dataset is generated, not committed (`demo/` is gitignored);
# materialise it on a fresh checkout so the smokes below can run.
if [ ! -f demo/gwdb.ddlog ]; then
    ./target/release/experiments export-demo > /dev/null
fi

# Observability smoke: a demo run must produce a valid metrics dump
# (schema, per-phase timings, grounding cardinalities, convergence
# series) and a JSON-lines trace. `metrics_smoke` validates the keys.
./target/release/sya run demo/gwdb.ddlog \
    --table Well=demo/wells.csv --evidence demo/evidence.csv \
    --epochs 200 \
    --metrics-out /tmp/sya_ci_metrics.json \
    --trace-out /tmp/sya_ci_trace.jsonl > /dev/null
./target/release/metrics_smoke /tmp/sya_ci_metrics.json
test -s /tmp/sya_ci_trace.jsonl

# Crash-recovery smoke: SIGKILL a checkpointed demo run mid-inference,
# resume it from the surviving checkpoint, and require the final scores
# to match an uninterrupted reference run byte for byte. Deepdive mode
# (sequential Gibbs) is deterministic for a fixed seed regardless of
# thread count, so any divergence means the resume path replayed the
# chain incorrectly.
ckpt_dir=/tmp/sya_ci_ckpt
rm -rf "$ckpt_dir" /tmp/sya_ci_ref.csv /tmp/sya_ci_resumed.csv
demo_run=(./target/release/sya run demo/gwdb.ddlog
    --table Well=demo/wells.csv --evidence demo/evidence.csv
    --engine deepdive --epochs 4000 --seed 7)
"${demo_run[@]}" --output /tmp/sya_ci_ref.csv > /dev/null
"${demo_run[@]}" --checkpoint-dir "$ckpt_dir" --checkpoint-every 1 \
    --output /tmp/sya_ci_resumed.csv > /dev/null &
victim=$!
for _ in $(seq 1 3000); do
    if ls "$ckpt_dir"/ckpt-*.syackpt > /dev/null 2>&1; then break; fi
    if ! kill -0 "$victim" 2> /dev/null; then break; fi
    sleep 0.01
done
kill -9 "$victim" 2> /dev/null || {
    echo "crash smoke: run finished before it could be killed" >&2
    exit 1
}
wait "$victim" 2> /dev/null || true
ls "$ckpt_dir"/ckpt-*.syackpt > /dev/null
"${demo_run[@]}" --checkpoint-dir "$ckpt_dir" --checkpoint-every 1 --resume \
    --output /tmp/sya_ci_resumed.csv > /dev/null
diff /tmp/sya_ci_ref.csv /tmp/sya_ci_resumed.csv
echo "crash-recovery smoke: resumed scores match the reference"

# Serving smoke: boot `sya serve` on the demo KB (ephemeral port), drive
# it with the bench HTTP client — health, a marginal read, a batch
# query, an evidence POST that must re-sample something and bump the KB
# epoch, and a /metrics scrape that must parse as Prometheus text —
# then check SIGTERM produces a clean (exit 0) shutdown.
serve_log=/tmp/sya_ci_serve.log
rm -f "$serve_log"
./target/release/sya serve demo/gwdb.ddlog \
    --table Well=demo/wells.csv --evidence demo/evidence.csv \
    --epochs 200 --listen 127.0.0.1:0 --serve-workers 2 > "$serve_log" &
server=$!
addr=""
for _ in $(seq 1 3000); do
    addr=$(sed -n 's|^serving on http://||p' "$serve_log")
    if [ -n "$addr" ]; then break; fi
    if ! kill -0 "$server" 2> /dev/null; then break; fi
    sleep 0.01
done
if [ -z "$addr" ]; then
    echo "serve smoke: server never reported its address" >&2
    cat "$serve_log" >&2
    exit 1
fi
./target/release/serve_smoke "$addr" IsSafe 0
kill -TERM "$server"
if ! wait "$server"; then
    echo "serve smoke: server did not shut down cleanly on SIGTERM" >&2
    exit 1
fi
echo "serve smoke: queries, evidence, metrics, and shutdown all clean"

# Shard smoke: the demo KB constructed at --shards 2 must reproduce the
# 1-shard scores byte for byte (the sharded executor's halo exchange is
# exact, not approximate), and the run must leave per-shard checkpoint
# stores tied together by a shard manifest.
shard_dir=/tmp/sya_ci_shard_ckpt
rm -rf "$shard_dir" /tmp/sya_ci_shard1.csv /tmp/sya_ci_shard2.csv
shard_run=(./target/release/sya run demo/gwdb.ddlog
    --table Well=demo/wells.csv --evidence demo/evidence.csv
    --epochs 300 --seed 7)
"${shard_run[@]}" --shards 1 --output /tmp/sya_ci_shard1.csv > /dev/null
"${shard_run[@]}" --shards 2 --checkpoint-dir "$shard_dir" --checkpoint-every 50 \
    --output /tmp/sya_ci_shard2.csv > /dev/null
diff /tmp/sya_ci_shard1.csv /tmp/sya_ci_shard2.csv
test -f "$shard_dir/shard-manifest.json"
ls "$shard_dir"/shard-00/ckpt-*.syackpt > /dev/null
ls "$shard_dir"/shard-01/ckpt-*.syackpt > /dev/null
echo "shard smoke: 2-shard scores match 1-shard; per-shard checkpoints + manifest present"

# One-line HTTP GET over bash's /dev/tcp (no curl in the image): used to
# read the cluster status board below. The body runs in an explicit
# subshell: a refused connect or a SIGPIPE'd write then kills only that
# fork and surfaces as a non-zero status the caller can retry on,
# instead of terminating the whole script under `set -e`.
http_get() {
    local host=${1%:*} port=${1##*:} path=$2 hostport=$1
    (
        exec 3<> "/dev/tcp/$host/$port"
        printf 'GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n' \
            "$path" "$hostport" >&3
        cat <&3
    ) 2> /dev/null
}

# Cluster chaos smoke (DESIGN.md §13): a 2-worker multi-process cluster
# on ephemeral ports. SIGKILL one worker mid-run; the coordinator must
# restart it from its newest checkpoint and the final merged scores must
# byte-match an uninterrupted in-process reference — recovery is replay,
# not approximation.
cluster_dir=/tmp/sya_ci_cluster_ckpt
rm -rf "$cluster_dir" /tmp/sya_ci_cluster_ref.csv /tmp/sya_ci_cluster.csv
cluster_common=(demo/gwdb.ddlog
    --table Well=demo/wells.csv --evidence demo/evidence.csv
    --epochs 600 --seed 7 --shards 2)
./target/release/sya run "${cluster_common[@]}" \
    --output /tmp/sya_ci_cluster_ref.csv > /dev/null
./target/release/sya shard-coordinator "${cluster_common[@]}" \
    --heartbeat-ms 10000 --backoff-ms 50 \
    --checkpoint-dir "$cluster_dir" --checkpoint-every 5 \
    --output /tmp/sya_ci_cluster.csv > /dev/null &
coord=$!
for _ in $(seq 1 3000); do
    if ls "$cluster_dir"/shard-01/ckpt-*.syackpt > /dev/null 2>&1; then break; fi
    if ! kill -0 "$coord" 2> /dev/null; then break; fi
    sleep 0.01
done
pkill -9 -f 'shard-worker.*--shard 1 --connect' || {
    echo "cluster chaos smoke: run finished before a worker could be killed" >&2
    exit 1
}
if ! wait "$coord"; then
    echo "cluster chaos smoke: coordinator failed after the worker kill" >&2
    exit 1
fi
diff /tmp/sya_ci_cluster_ref.csv /tmp/sya_ci_cluster.csv
echo "cluster chaos smoke: killed worker restarted from checkpoint; scores match the reference"

# Degraded-not-failed: with a zero restart budget the killed shard is
# lost, but the coordinator must still exit 0, emit scores for every
# atom (the lost shard's marginals recovered from its checkpoint), and
# the lingering status board must name the lost shard.
degraded_dir=/tmp/sya_ci_cluster_degraded_ckpt
degraded_log=/tmp/sya_ci_cluster_degraded.log
rm -rf "$degraded_dir" /tmp/sya_ci_cluster_degraded.csv "$degraded_log"
./target/release/sya shard-coordinator "${cluster_common[@]}" \
    --heartbeat-ms 10000 --backoff-ms 50 --restart-budget 0 \
    --checkpoint-dir "$degraded_dir" --checkpoint-every 5 \
    --status-listen 127.0.0.1:0 --status-linger \
    --output /tmp/sya_ci_cluster_degraded.csv > "$degraded_log" &
coord=$!
status_addr=""
for _ in $(seq 1 3000); do
    status_addr=$(sed -n 's|^status on http://||p' "$degraded_log")
    if [ -n "$status_addr" ]; then break; fi
    if ! kill -0 "$coord" 2> /dev/null; then break; fi
    sleep 0.01
done
test -n "$status_addr"
for _ in $(seq 1 3000); do
    if ls "$degraded_dir"/shard-01/ckpt-*.syackpt > /dev/null 2>&1; then break; fi
    if ! kill -0 "$coord" 2> /dev/null; then break; fi
    sleep 0.01
done
pkill -9 -f 'shard-worker.*--shard 1 --connect' || {
    echo "cluster degraded smoke: run finished before a worker could be killed" >&2
    exit 1
}
board=""
for _ in $(seq 1 6000); do
    board=$(http_get "$status_addr" / 2> /dev/null || true)
    case "$board" in *'"done":true'*) break ;; esac
    sleep 0.01
done
case "$board" in
*'"status":"degraded"'*) : ;;
*)  echo "cluster degraded smoke: status board never reported degradation: $board" >&2
    exit 1 ;;
esac
case "$board" in
*'"health":"lost"'*) : ;;
*)  echo "cluster degraded smoke: status board does not name the lost shard: $board" >&2
    exit 1 ;;
esac
kill -TERM "$coord"
if ! wait "$coord"; then
    echo "cluster degraded smoke: coordinator did not exit cleanly" >&2
    exit 1
fi
test -s /tmp/sya_ci_cluster_degraded.csv
echo "cluster degraded smoke: lost shard reported, run degraded instead of failing"

# Fleet-metrics smoke (DESIGN.md §14): a clean 2-worker cluster with a
# lingering status board must serve fleet-aggregated Prometheus metrics
# — a positive fleet samples rollup, per-shard labelled series, and the
# per-shard max_delta / staleness gauges the telemetry plane exists for.
fleet_log=/tmp/sya_ci_fleet.log
rm -f "$fleet_log" /tmp/sya_ci_fleet.csv
./target/release/sya shard-coordinator "${cluster_common[@]}" \
    --heartbeat-ms 10000 \
    --status-listen 127.0.0.1:0 --status-linger \
    --output /tmp/sya_ci_fleet.csv > "$fleet_log" &
coord=$!
fleet_addr=""
for _ in $(seq 1 3000); do
    fleet_addr=$(sed -n 's|^status on http://||p' "$fleet_log")
    if [ -n "$fleet_addr" ]; then break; fi
    if ! kill -0 "$coord" 2> /dev/null; then break; fi
    sleep 0.01
done
test -n "$fleet_addr"
board=""
for _ in $(seq 1 6000); do
    board=$(http_get "$fleet_addr" / 2> /dev/null || true)
    case "$board" in *'"done":true'*) break ;; esac
    sleep 0.01
done
metrics=$(http_get "$fleet_addr" /metrics 2> /dev/null || true)
fleet_samples=$(printf '%s\n' "$metrics" \
    | sed -n 's/^sya_fleet_infer_shard_samples_total \([0-9]*\).*/\1/p')
if [ -z "$fleet_samples" ] || [ "$fleet_samples" -le 0 ]; then
    echo "fleet metrics smoke: fleet samples_total missing or zero" >&2
    printf '%s\n' "$metrics" >&2
    exit 1
fi
for needle in \
    'sya_infer_shard_samples_total{shard="0"}' \
    'sya_infer_shard_samples_total{shard="1"}' \
    'sya_shard_max_delta{shard="0"}' \
    'sya_fleet_shard_staleness_epochs{shard="1"}'; do
    case "$metrics" in
    *"$needle"*) : ;;
    *)  echo "fleet metrics smoke: /metrics is missing $needle" >&2
        printf '%s\n' "$metrics" >&2
        exit 1 ;;
    esac
done
case "$(http_get "$fleet_addr" /fleet 2> /dev/null || true)" in
*'"schema": "sya.fleet.v1"'*) : ;;
*)  echo "fleet metrics smoke: /fleet is not a sya.fleet.v1 document" >&2
    exit 1 ;;
esac
kill -TERM "$coord"
if ! wait "$coord"; then
    echo "fleet metrics smoke: coordinator did not exit cleanly" >&2
    exit 1
fi
echo "fleet metrics smoke: $fleet_samples fleet samples, per-shard labels and drift gauges served"

# Sampler hot-path baseline: the bench bin must produce a valid
# BENCH_sampler.json (three samplers x three graph sizes, positive
# throughput) — the floor the ROADMAP 10x sampler item measures against.
./target/release/sampler_hotpath /tmp/sya_ci_bench_sampler.json 60 2> /dev/null
./target/release/sampler_bench_smoke /tmp/sya_ci_bench_sampler.json
echo "sampler hot-path smoke: BENCH_sampler.json schema valid"

# Query latency baseline (DESIGN.md §16): a reduced sweep of the
# demand-driven grounding bench must produce a valid sya.bench.query.v1
# document, and the committed BENCH_query.json must keep the ≥10×
# lazy-vs-full claim at its largest benchmarked scale.
./target/release/query_latency /tmp/sya_ci_bench_query.json 200 8 2> /dev/null
./target/release/query_bench_smoke /tmp/sya_ci_bench_query.json
./target/release/query_bench_smoke BENCH_query.json --min-speedup 10
echo "query bench smoke: fresh sweep valid; committed baseline holds the 10x floor"

# Overload smoke (DESIGN.md §15): a deliberately tiny serve envelope —
# one worker, queue depth 4 — driven well past capacity by the
# open-loop load generator in evidence mode (each accepted request is a
# real incremental re-inference). The health plane must answer 200
# through the whole storm (the shed lane), every 503 must carry
# Retry-After, the BENCH_serve.json the generator writes must validate,
# and the admission ledger must land on /metrics.
overload_log=/tmp/sya_ci_overload.log
rm -f "$overload_log" /tmp/sya_ci_bench_serve.json
./target/release/sya serve demo/gwdb.ddlog \
    --table Well=demo/wells.csv --evidence demo/evidence.csv \
    --epochs 200 --listen 127.0.0.1:0 --serve-workers 1 \
    --max-queue 4 --request-timeout-ms 5000 > "$overload_log" &
server=$!
addr=""
for _ in $(seq 1 3000); do
    addr=$(sed -n 's|^serving on http://||p' "$overload_log")
    if [ -n "$addr" ]; then break; fi
    if ! kill -0 "$server" 2> /dev/null; then break; fi
    sleep 0.01
done
if [ -z "$addr" ]; then
    echo "overload smoke: server never reported its address" >&2
    cat "$overload_log" >&2
    exit 1
fi
./target/release/serve_load "$addr" --mode evidence --rates 400 \
    --duration-secs 3 --connections 16 \
    --out /tmp/sya_ci_bench_serve.json 2> /dev/null &
load=$!
# Poll the health plane mid-storm: every probe must come back 200 even
# while the main queue is rejecting work.
for _ in $(seq 1 20); do
    health=$(http_get "$addr" /healthz || true)
    case "$health" in
    *'HTTP/1.1 200'*) : ;;
    *)  echo "overload smoke: /healthz did not answer 200 under load" >&2
        printf '%s\n' "$health" >&2
        kill "$load" "$server" 2> /dev/null || true
        exit 1 ;;
    esac
    sleep 0.1
done
if ! wait "$load"; then
    echo "overload smoke: serve_load failed" >&2
    kill "$server" 2> /dev/null || true
    exit 1
fi
# The sweep must have shed (every shed with Retry-After) and the
# accepted requests must have kept the request-timeout budget.
./target/release/serve_bench_smoke /tmp/sya_ci_bench_serve.json \
    --expect-shed --max-p99-ms 6000
metrics=$(http_get "$addr" /metrics 2> /dev/null || true)
case "$metrics" in
*sya_serve_admission_shed_queue_full_total*) : ;;
*)  echo "overload smoke: /metrics is missing the admission shed counters" >&2
    printf '%s\n' "$metrics" >&2
    exit 1 ;;
esac
case "$metrics" in
*'sya_serve_admission_queued 0'*) : ;;
*)  echo "overload smoke: admission queue did not drain to zero" >&2
    printf '%s\n' "$metrics" >&2
    exit 1 ;;
esac
kill -TERM "$server"
if ! wait "$server"; then
    echo "overload smoke: server did not shut down cleanly after the storm" >&2
    exit 1
fi
echo "overload smoke: healthz stayed 200, sheds carried Retry-After, BENCH_serve.json valid"

# Lazy-serve smoke (DESIGN.md §16): boot `sya serve --lazy` on the demo
# KB — which is never fully grounded — and require the health plane to
# announce lazy mode, a bound marginal to answer 200 twice (second time
# from the epoch-keyed cache), the cache ledger to land on /metrics,
# and SIGTERM to produce a clean exit.
lazy_log=/tmp/sya_ci_lazy_serve.log
rm -f "$lazy_log"
./target/release/sya serve demo/gwdb.ddlog \
    --table Well=demo/wells.csv --evidence demo/evidence.csv \
    --lazy --listen 127.0.0.1:0 --serve-workers 2 > "$lazy_log" &
server=$!
addr=""
for _ in $(seq 1 3000); do
    addr=$(sed -n 's|^serving on http://||p' "$lazy_log")
    if [ -n "$addr" ]; then break; fi
    if ! kill -0 "$server" 2> /dev/null; then break; fi
    sleep 0.01
done
if [ -z "$addr" ]; then
    echo "lazy serve smoke: server never reported its address" >&2
    cat "$lazy_log" >&2
    exit 1
fi
health=$(http_get "$addr" /healthz || true)
case "$health" in
*'"mode":"lazy"'*) : ;;
*)  echo "lazy serve smoke: /healthz does not report lazy mode" >&2
    printf '%s\n' "$health" >&2
    exit 1 ;;
esac
# Well 0 is a query atom in the demo evidence split; ask twice so the
# second answer must come from the cache.
for _ in 1 2; do
    reply=$(http_get "$addr" '/v1/marginal/IsSafe?args=0' || true)
    case "$reply" in
    *'HTTP/1.1 200'*'"score":'*) : ;;
    *)  echo "lazy serve smoke: marginal read failed" >&2
        printf '%s\n' "$reply" >&2
        exit 1 ;;
    esac
done
metrics=$(http_get "$addr" /metrics 2> /dev/null || true)
for needle in \
    'sya_serve_query_cache_miss_total 1' \
    'sya_serve_query_cache_hit_total 1'; do
    case "$metrics" in
    *"$needle"*) : ;;
    *)  echo "lazy serve smoke: /metrics is missing $needle" >&2
        printf '%s\n' "$metrics" >&2
        exit 1 ;;
    esac
done
kill -TERM "$server"
if ! wait "$server"; then
    echo "lazy serve smoke: server did not shut down cleanly on SIGTERM" >&2
    exit 1
fi
echo "lazy serve smoke: lazy mode served, cache hit recorded, shutdown clean"

# Delta rows smoke (DESIGN.md §17): boot `sya serve` on the demo KB and
# drive POST /v1/rows end to end — insert a synthetic well next to the
# demo's well 0 (new ground atom born, epoch bumped, conclique
# re-sampled, delta.* counters on /metrics), then retract it (atom
# buried, neighbor's marginal back to baseline within sampler
# tolerance) — live maintenance, never a full re-ground.
rows_log=/tmp/sya_ci_rows_serve.log
rm -f "$rows_log"
./target/release/sya serve demo/gwdb.ddlog \
    --table Well=demo/wells.csv --evidence demo/evidence.csv \
    --epochs 200 --listen 127.0.0.1:0 --serve-workers 2 > "$rows_log" &
server=$!
addr=""
for _ in $(seq 1 3000); do
    addr=$(sed -n 's|^serving on http://||p' "$rows_log")
    if [ -n "$addr" ]; then break; fi
    if ! kill -0 "$server" 2> /dev/null; then break; fi
    sleep 0.01
done
if [ -z "$addr" ]; then
    echo "delta rows smoke: server never reported its address" >&2
    cat "$rows_log" >&2
    exit 1
fi
./target/release/serve_rows_smoke "$addr" IsSafe 0
kill -TERM "$server"
if ! wait "$server"; then
    echo "delta rows smoke: server did not shut down cleanly on SIGTERM" >&2
    exit 1
fi
echo "delta rows smoke: insert/retract round trip restored baseline marginals"

# Delta throughput baseline (DESIGN.md §17): a reduced sweep of the
# differential-maintenance bench must produce a valid sya.bench.delta.v1
# document, and the committed BENCH_delta.json must keep the ≥10×
# delta-vs-full-reground claim on the 960-well workload.
./target/release/delta_throughput /tmp/sya_ci_bench_delta.json 200 4 2> /dev/null
./target/release/delta_bench_smoke /tmp/sya_ci_bench_delta.json
./target/release/delta_bench_smoke BENCH_delta.json --min-speedup 10 --max-parity 0.35
echo "delta bench smoke: fresh sweep valid; committed baseline holds the 10x floor"
