#!/usr/bin/env bash
# Tier-1 gate: build, test, and lint the whole workspace.
#
# Run from the repo root. Fails on the first error; clippy warnings are
# promoted to errors so lint drift cannot accumulate. The `vendor/`
# directory holds offline dependency stubs and is excluded from the
# workspace, so it is not linted here.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --workspace --release
cargo test --workspace -q
cargo clippy --workspace -- -D warnings

# Observability smoke: a demo run must produce a valid metrics dump
# (schema, per-phase timings, grounding cardinalities, convergence
# series) and a JSON-lines trace. `metrics_smoke` validates the keys.
./target/release/sya run demo/gwdb.ddlog \
    --table Well=demo/wells.csv --evidence demo/evidence.csv \
    --epochs 200 \
    --metrics-out /tmp/sya_ci_metrics.json \
    --trace-out /tmp/sya_ci_trace.jsonl > /dev/null
./target/release/metrics_smoke /tmp/sya_ci_metrics.json
test -s /tmp/sya_ci_trace.jsonl

# Crash-recovery smoke: SIGKILL a checkpointed demo run mid-inference,
# resume it from the surviving checkpoint, and require the final scores
# to match an uninterrupted reference run byte for byte. Deepdive mode
# (sequential Gibbs) is deterministic for a fixed seed regardless of
# thread count, so any divergence means the resume path replayed the
# chain incorrectly.
ckpt_dir=/tmp/sya_ci_ckpt
rm -rf "$ckpt_dir" /tmp/sya_ci_ref.csv /tmp/sya_ci_resumed.csv
demo_run=(./target/release/sya run demo/gwdb.ddlog
    --table Well=demo/wells.csv --evidence demo/evidence.csv
    --engine deepdive --epochs 4000 --seed 7)
"${demo_run[@]}" --output /tmp/sya_ci_ref.csv > /dev/null
"${demo_run[@]}" --checkpoint-dir "$ckpt_dir" --checkpoint-every 1 \
    --output /tmp/sya_ci_resumed.csv > /dev/null &
victim=$!
for _ in $(seq 1 3000); do
    if ls "$ckpt_dir"/ckpt-*.syackpt > /dev/null 2>&1; then break; fi
    if ! kill -0 "$victim" 2> /dev/null; then break; fi
    sleep 0.01
done
kill -9 "$victim" 2> /dev/null || {
    echo "crash smoke: run finished before it could be killed" >&2
    exit 1
}
wait "$victim" 2> /dev/null || true
ls "$ckpt_dir"/ckpt-*.syackpt > /dev/null
"${demo_run[@]}" --checkpoint-dir "$ckpt_dir" --checkpoint-every 1 --resume \
    --output /tmp/sya_ci_resumed.csv > /dev/null
diff /tmp/sya_ci_ref.csv /tmp/sya_ci_resumed.csv
echo "crash-recovery smoke: resumed scores match the reference"

# Serving smoke: boot `sya serve` on the demo KB (ephemeral port), drive
# it with the bench HTTP client — health, a marginal read, a batch
# query, an evidence POST that must re-sample something and bump the KB
# epoch, and a /metrics scrape that must parse as Prometheus text —
# then check SIGTERM produces a clean (exit 0) shutdown.
serve_log=/tmp/sya_ci_serve.log
rm -f "$serve_log"
./target/release/sya serve demo/gwdb.ddlog \
    --table Well=demo/wells.csv --evidence demo/evidence.csv \
    --epochs 200 --listen 127.0.0.1:0 --serve-workers 2 > "$serve_log" &
server=$!
addr=""
for _ in $(seq 1 3000); do
    addr=$(sed -n 's|^serving on http://||p' "$serve_log")
    if [ -n "$addr" ]; then break; fi
    if ! kill -0 "$server" 2> /dev/null; then break; fi
    sleep 0.01
done
if [ -z "$addr" ]; then
    echo "serve smoke: server never reported its address" >&2
    cat "$serve_log" >&2
    exit 1
fi
./target/release/serve_smoke "$addr" IsSafe 0
kill -TERM "$server"
if ! wait "$server"; then
    echo "serve smoke: server did not shut down cleanly on SIGTERM" >&2
    exit 1
fi
echo "serve smoke: queries, evidence, metrics, and shutdown all clean"

# Shard smoke: the demo KB constructed at --shards 2 must reproduce the
# 1-shard scores byte for byte (the sharded executor's halo exchange is
# exact, not approximate), and the run must leave per-shard checkpoint
# stores tied together by a shard manifest.
shard_dir=/tmp/sya_ci_shard_ckpt
rm -rf "$shard_dir" /tmp/sya_ci_shard1.csv /tmp/sya_ci_shard2.csv
shard_run=(./target/release/sya run demo/gwdb.ddlog
    --table Well=demo/wells.csv --evidence demo/evidence.csv
    --epochs 300 --seed 7)
"${shard_run[@]}" --shards 1 --output /tmp/sya_ci_shard1.csv > /dev/null
"${shard_run[@]}" --shards 2 --checkpoint-dir "$shard_dir" --checkpoint-every 50 \
    --output /tmp/sya_ci_shard2.csv > /dev/null
diff /tmp/sya_ci_shard1.csv /tmp/sya_ci_shard2.csv
test -f "$shard_dir/shard-manifest.json"
ls "$shard_dir"/shard-00/ckpt-*.syackpt > /dev/null
ls "$shard_dir"/shard-01/ckpt-*.syackpt > /dev/null
echo "shard smoke: 2-shard scores match 1-shard; per-shard checkpoints + manifest present"
