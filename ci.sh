#!/usr/bin/env bash
# Tier-1 gate: build, test, and lint the whole workspace.
#
# Run from the repo root. Fails on the first error; clippy warnings are
# promoted to errors so lint drift cannot accumulate. The `vendor/`
# directory holds offline dependency stubs and is excluded from the
# workspace, so it is not linted here.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --workspace --release
cargo test --workspace -q
cargo clippy --workspace -- -D warnings
