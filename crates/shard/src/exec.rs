//! The sharded executor: one sampler thread per shard over a shared
//! assignment board, synchronized at epoch/phase barriers.
//!
//! ## Halo exchange at epoch barriers
//!
//! Every epoch follows the global phase schedule
//! ([`ShardSchedule`](sya_infer::ShardSchedule)). Within a phase each
//! shard samples only variables it owns, reading neighbour states —
//! owned and halo alike — from the board as frozen at the phase start,
//! and buffering its writes. A barrier ends the sampling half; then
//! every shard publishes its buffered writes (the halo exchange: the
//! publish is what makes a shard's new states visible as its
//! neighbours' halos) and a second barrier opens the next phase. Because
//! draws use per-`(seed, epoch, variable)` derived RNG streams and all
//! conditionals see the same frozen board, the merged marginals are
//! bit-identical for every shard count.
//!
//! ## Retirement (convergence-based early stop)
//!
//! With a [`RetirePolicy`], a shard whose per-epoch running-marginal
//! delta over owned variables stays under `tol` for `window`
//! consecutive recorded epochs *retires*: it stops sampling (freezing
//! its variables for the neighbours, bounded staleness) but keeps
//! crossing barriers. When every shard has retired the run ends early.
//! Retirement is off for `sya run` — it trades exact parity for
//! wall-time — and on for the scaling bench.
//!
//! ## Checkpoints
//!
//! Shards run in lockstep, so the per-shard checkpoint stores
//! (`<dir>/shard-NN/`) all save at the same epochs; a
//! `shard-manifest.json` beside them ties the set together. Resume
//! loads the newest epoch present and valid in *every* store.

use crate::plan::ShardPlan;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Barrier;
use sya_ckpt::CheckpointStore;
use sya_fg::FactorGraph;
use sya_infer::{
    init_board, pseudo_log_likelihood, ChainState, CheckpointState, InferConfig, InferError,
    MarginalCounts, PyramidIndex, ShardChain, ShardSchedule,
};
use sya_obs::{pll_stride, ConvergenceSeries, Obs};
use sya_runtime::{ExecContext, Phase, RunOutcome};

/// Convergence-based early-stop policy for sharded runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetirePolicy {
    /// A shard may retire once its epoch delta (`max |p_t − p_{t−1}|`
    /// over owned variables) stays under this.
    pub tol: f64,
    /// … for this many consecutive recorded epochs.
    pub window: usize,
    /// Absolute epoch floor before retirement is considered (burn-in is
    /// always respected on top of this).
    pub min_epoch: usize,
    /// Refuse to retire while the shard's boundary-exposed marginals
    /// have drifted more than `tol` since the quiet streak began (the
    /// staleness the neighbours would inherit). Off by default: a
    /// refused retirement resets the streak, trading wall-time for a
    /// bounded halo error.
    pub strict: bool,
}

impl Default for RetirePolicy {
    fn default() -> Self {
        RetirePolicy { tol: 2e-3, window: 8, min_epoch: 0, strict: false }
    }
}

/// Checkpoint wiring of a sharded run.
#[derive(Debug, Clone, Default)]
pub struct ShardCkptOptions {
    /// Root checkpoint directory; per-shard stores go to
    /// `<dir>/shard-NN/`. `None` disables checkpointing.
    pub dir: Option<PathBuf>,
    /// Save every `every` epochs; `0` saves only the final barrier.
    pub every: usize,
    /// Attempt to resume from existing per-shard checkpoints.
    pub resume: bool,
}

/// The manifest tying a set of per-shard checkpoint stores together.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct ShardManifest {
    pub schema: String,
    pub shards: usize,
    pub partition_level: u8,
    pub fingerprint: u64,
    /// Store subdirectory names, in shard order.
    pub stores: Vec<String>,
}

/// File name of the manifest inside the checkpoint root.
pub const MANIFEST_FILE: &str = "shard-manifest.json";

pub const MANIFEST_SCHEMA: &str = "sya.shard.manifest.v1";

impl ShardManifest {
    pub fn new(plan: &ShardPlan, fingerprint: u64) -> Self {
        ShardManifest {
            schema: MANIFEST_SCHEMA.to_owned(),
            shards: plan.shards,
            partition_level: plan.partition_level,
            fingerprint,
            stores: (0..plan.shards).map(store_name).collect(),
        }
    }

    pub fn write(&self, dir: &Path) -> Result<(), String> {
        let text = serde_json::to_string_pretty(self).map_err(|e| e.to_string())?;
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        std::fs::write(dir.join(MANIFEST_FILE), text).map_err(|e| e.to_string())
    }

    pub fn read(dir: &Path) -> Result<ShardManifest, String> {
        let text = std::fs::read_to_string(dir.join(MANIFEST_FILE)).map_err(|e| e.to_string())?;
        serde_json::from_str(&text).map_err(|e| e.to_string())
    }
}

/// Name of shard `shard`'s checkpoint store subdirectory.
pub fn store_name(shard: usize) -> String {
    format!("shard-{shard:02}")
}

/// Per-shard outcome of a sharded run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardStats {
    pub shard: usize,
    pub owned_vars: usize,
    pub halo_vars: usize,
    pub boundary_factors: usize,
    pub halo_bytes: usize,
    /// Epochs this shard actively sampled (excludes retired epochs).
    pub epochs_sampled: usize,
    /// Epoch the shard retired at, if it did.
    pub retired_at: Option<usize>,
    /// Drift of the boundary-exposed running marginals over the quiet
    /// window at retirement — the staleness bound the neighbours'
    /// frozen halos inherit. `None` when the shard never retired.
    #[serde(default)]
    pub retire_halo_delta: Option<f64>,
    /// The shard retired with `retire_halo_delta` above the tolerance
    /// (possible only when [`RetirePolicy::strict`] is off).
    #[serde(default)]
    pub retired_above_tol: bool,
    pub flips_total: u64,
    pub samples_total: u64,
}

/// Supervision health of one shard at the end of a run.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct ShardHealth {
    pub shard: usize,
    /// Worker restarts consumed (always 0 for in-process runs).
    pub restarts: usize,
    /// The shard exhausted its restart budget; its last published halo
    /// state was frozen for the remainder of the run.
    pub lost: bool,
}

impl ShardHealth {
    pub fn healthy(shard: usize) -> Self {
        ShardHealth { shard, restarts: 0, lost: false }
    }

    /// Short human label used by healthz and run summaries.
    pub fn label(&self) -> &'static str {
        if self.lost {
            "lost"
        } else if self.restarts > 0 {
            "restarted"
        } else {
            "healthy"
        }
    }
}

/// Result of a sharded inference run: merged marginals plus the
/// per-shard breakdown the bench and the router report on.
#[derive(Debug)]
pub struct ShardRunReport {
    /// Marginal counts merged over all shards — shaped exactly like a
    /// single-sampler result.
    pub counts: MarginalCounts,
    pub outcome: RunOutcome,
    pub warnings: Vec<String>,
    /// Mean-merged convergence trajectory across shards.
    pub telemetry: ConvergenceSeries,
    pub per_shard: Vec<ShardStats>,
    /// Per-shard supervision health — all-healthy for in-process runs;
    /// cluster runs record restarts and lost shards here.
    pub health: Vec<ShardHealth>,
    /// Each shard's own counts (zero rows outside its ownership class)
    /// — what the ownership tests assert on.
    pub per_shard_counts: Vec<MarginalCounts>,
    /// Epochs actually executed before the run ended (equals
    /// `cfg.epochs` unless every shard retired or the run was
    /// interrupted).
    pub epochs_run: usize,
}

/// Encodes an interruption outcome into the shared stop flag (0 = keep
/// running) so one shard's decision reaches all shards at a barrier.
fn encode_stop(o: RunOutcome) -> u32 {
    match o {
        RunOutcome::Completed => 0,
        RunOutcome::Degraded => 1,
        RunOutcome::TimedOut => 2,
        RunOutcome::Cancelled => 3,
    }
}

fn decode_stop(code: u32) -> Option<RunOutcome> {
    match code {
        1 => Some(RunOutcome::Degraded),
        2 => Some(RunOutcome::TimedOut),
        3 => Some(RunOutcome::Cancelled),
        _ => None,
    }
}

struct ShardLocal {
    stats: ShardStats,
    counts: MarginalCounts,
    series: ConvergenceSeries,
    warnings: Vec<String>,
    outcome: RunOutcome,
}

/// Opens the per-shard checkpoint stores and, when resuming, finds the
/// newest epoch valid in every store. Returns the stores, the common
/// resume state (board + per-shard chains), and any warnings.
#[allow(clippy::type_complexity)]
fn prepare_shard_ckpt(
    graph: &FactorGraph,
    plan: &ShardPlan,
    ckpt: &ShardCkptOptions,
    warnings: &mut Vec<String>,
) -> Result<(Vec<Option<CheckpointStore>>, Option<(usize, Vec<ChainState>)>), InferError> {
    let Some(dir) = ckpt.dir.as_ref() else {
        return Ok(((0..plan.shards).map(|_| None).collect(), None));
    };
    let fingerprint = graph.fingerprint();
    let mut stores = Vec::with_capacity(plan.shards);
    for s in 0..plan.shards {
        let store = CheckpointStore::create(dir.join(store_name(s)), fingerprint)
            .map_err(|e| InferError::BadResume { detail: e.to_string() })?;
        stores.push(Some(store));
    }
    if ckpt.resume {
        match ShardManifest::read(dir) {
            Ok(m) if m.shards != plan.shards => {
                warnings.push(format!(
                    "shard manifest describes {} shards, run configures {}; starting fresh",
                    m.shards, plan.shards
                ));
                let manifest = ShardManifest::new(plan, fingerprint);
                manifest.write(dir).map_err(|e| InferError::BadResume { detail: e })?;
                return Ok((stores, None));
            }
            Ok(_) => {}
            Err(e) => {
                warnings.push(format!("no usable shard manifest ({e}); starting fresh"));
            }
        }
    }
    let manifest = ShardManifest::new(plan, fingerprint);
    manifest.write(dir).map_err(|e| InferError::BadResume { detail: e })?;
    if !ckpt.resume {
        return Ok((stores, None));
    }

    // Collect every valid state per shard, keyed by epoch, then take the
    // newest epoch present everywhere — a crash mid-save-wave leaves the
    // newest wave incomplete, in which case the previous wave wins.
    let mut per_shard: Vec<std::collections::BTreeMap<u64, ChainState>> = Vec::new();
    for (s, store) in stores.iter().enumerate() {
        let store = store.as_ref().unwrap();
        let mut valid = std::collections::BTreeMap::new();
        let files = store.list().map_err(|e| InferError::BadResume { detail: e.to_string() })?;
        for path in files {
            match store.load_file(&path) {
                Ok(CheckpointState::Shard { shard, of, chain })
                    if shard as usize == s && of as usize == plan.shards =>
                {
                    if chain.clone().restore(graph).is_ok() {
                        valid.insert(chain.epoch, chain);
                    } else {
                        warnings.push(format!(
                            "shard {s}: skipping checkpoint {} (graph mismatch)",
                            path.display()
                        ));
                    }
                }
                Ok(other) => warnings.push(format!(
                    "shard {s}: skipping {} ({} state does not fit shard {s}/{})",
                    path.display(),
                    other.kind(),
                    plan.shards
                )),
                Err(e) => warnings.push(format!("shard {s}: skipping checkpoint: {e}")),
            }
        }
        per_shard.push(valid);
    }
    let common = per_shard
        .iter()
        .map(|m| m.keys().copied().collect::<std::collections::BTreeSet<u64>>())
        .reduce(|a, b| a.intersection(&b).copied().collect())
        .unwrap_or_default();
    match common.last() {
        Some(&epoch) => {
            let chains: Vec<ChainState> = per_shard
                .iter_mut()
                .map(|m| m.remove(&epoch).unwrap())
                .collect();
            Ok((stores, Some((epoch as usize, chains))))
        }
        None => {
            if per_shard.iter().any(|m| !m.is_empty()) {
                warnings.push(
                    "no checkpoint epoch is present in every shard store; starting fresh"
                        .to_owned(),
                );
            }
            Ok((stores, None))
        }
    }
}

pub(crate) fn publish_static_gauges(obs: &Obs, plan: &ShardPlan) {
    obs.gauge_set("shard.count", plan.shards as f64);
    for s in plan.summaries() {
        obs.gauge_set(&format!("shard.{}.vars", s.shard), s.owned_vars as f64);
        obs.gauge_set(
            &format!("shard.{}.boundary_factors", s.shard),
            s.boundary_factors as f64,
        );
        obs.gauge_set(&format!("shard.{}.halo_bytes", s.shard), s.halo_bytes as f64);
    }
}

/// Runs sharded Spatial Gibbs: one thread per shard of `plan`, halo
/// exchange at phase barriers, optional retirement and per-shard
/// checkpoints. With `retire: None` the merged counts are bit-identical
/// for every shard count (including 1).
pub fn run_sharded(
    graph: &FactorGraph,
    pyramid: &PyramidIndex,
    plan: &ShardPlan,
    cfg: &InferConfig,
    retire: Option<RetirePolicy>,
    ckpt: &ShardCkptOptions,
    ctx: &ExecContext,
) -> Result<ShardRunReport, InferError> {
    let n = plan.shards;
    let epochs = cfg.epochs.max(1);
    let burn = cfg.burn_in.min(epochs.saturating_sub(1));
    let obs = ctx.obs();
    publish_static_gauges(obs, plan);

    let mut warnings = Vec::new();
    let (stores, resume) = prepare_shard_ckpt(graph, plan, ckpt, &mut warnings)?;

    let schedule = ShardSchedule::new(graph, pyramid, cfg);
    obs.gauge_set("shard.phases", schedule.len() as f64);

    let (start_epoch, board, resumed_chains) = match resume {
        Some((epoch, chains)) => {
            let mut restored = Vec::with_capacity(n);
            let mut board = None;
            for c in chains {
                let (_, assignment, _, counts, recorded) = c
                    .restore(graph)
                    .map_err(|detail| InferError::BadResume { detail })?;
                if board.is_none() {
                    board = Some(
                        assignment.iter().map(|&x| AtomicU32::new(x)).collect::<Vec<_>>(),
                    );
                }
                restored.push(Some((counts, recorded)));
            }
            warnings.push(format!("resumed all {n} shards from epoch {epoch}"));
            (epoch, board.unwrap(), restored)
        }
        None => (0, init_board(graph, cfg.seed), (0..n).map(|_| None).collect()),
    };

    let mut chains: Vec<ShardChain> = plan
        .owned
        .iter()
        .map(|o| ShardChain::new(graph, &schedule, cfg, o.clone()))
        .collect();
    for (chain, restored) in chains.iter_mut().zip(resumed_chains) {
        if let Some((counts, recorded)) = restored {
            chain.resume_counts(counts, recorded);
        }
    }
    if retire.is_some() {
        // Boundary-exposed set of shard i: its owned variables that some
        // other shard reads as halo (set_boundary drops foreign vars).
        for (i, chain) in chains.iter_mut().enumerate() {
            let exposed: Vec<_> = (0..n)
                .filter(|&s| s != i)
                .flat_map(|s| plan.interface.halo[s].iter().copied())
                .collect();
            chain.set_boundary(&exposed);
        }
    }

    let barrier = Barrier::new(n);
    let stop = AtomicU32::new(0);
    let retired = AtomicUsize::new(0);
    let retire_floor = retire.map(|p| p.min_epoch.max(burn));
    let stride = pll_stride(epochs);

    let locals: Vec<ShardLocal> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (i, (mut chain, store)) in chains.into_iter().zip(&stores).enumerate() {
            let barrier = &barrier;
            let stop = &stop;
            let retired = &retired;
            let schedule = &schedule;
            let board = &board;
            let store = store.as_ref();
            handles.push(scope.spawn(move || {
                let mut outcome = RunOutcome::Completed;
                let mut shard_warnings = Vec::new();
                let mut retired_at: Option<usize> = None;
                let mut retire_halo_delta: Option<f64> = None;
                let mut retired_above_tol = false;
                let mut strict_refusals = 0usize;
                let mut streak = 0usize;
                let mut epochs_sampled = 0usize;
                let mut epoch = start_epoch;
                let save = |chain: &ShardChain,
                            next_epoch: usize,
                            warnings: &mut Vec<String>,
                            outcome: &mut RunOutcome| {
                    let Some(store) = store else { return };
                    let state = CheckpointState::Shard {
                        shard: i as u64,
                        of: n as u64,
                        chain: chain.chain_state(next_epoch, board),
                    };
                    let result = if ctx.take_checkpoint_save_failure() {
                        Err("injected checkpoint save failure".to_owned())
                    } else {
                        store.save_state(&state).map(|_| ()).map_err(|e| e.to_string())
                    };
                    if let Err(e) = result {
                        warnings.push(format!("shard {i}: checkpoint save failed: {e}"));
                        *outcome = outcome.combine(RunOutcome::Degraded);
                    }
                };
                while epoch < epochs {
                    if i == 0 && epoch > start_epoch {
                        if let Some(o) = ctx.interrupted() {
                            stop.store(encode_stop(o), Ordering::Relaxed);
                        }
                    }
                    barrier.wait();
                    if let Some(o) = decode_stop(stop.load(Ordering::Relaxed)) {
                        outcome = outcome.combine(o);
                        break;
                    }
                    if i == 0 {
                        ctx.maybe_slow(Phase::Inference);
                    }
                    let record = epoch >= burn;
                    let active = retired_at.is_none();
                    for phase in 0..schedule.len() {
                        if active {
                            chain.sample_phase(board, schedule, phase, epoch, record);
                        }
                        barrier.wait();
                        if active {
                            chain.publish(board);
                        }
                        barrier.wait();
                    }
                    if active {
                        epochs_sampled += 1;
                        let delta = chain.end_epoch(board, record);
                        if let (Some(policy), Some(floor)) = (retire, retire_floor) {
                            if record && epoch >= floor && delta < policy.tol {
                                if streak == 0 {
                                    chain.snapshot_boundary();
                                }
                                streak += 1;
                                if streak >= policy.window {
                                    let halo_delta = chain.boundary_delta();
                                    if policy.strict && halo_delta > policy.tol {
                                        // Refused: the values neighbours
                                        // read have drifted too far over
                                        // the quiet window.
                                        strict_refusals += 1;
                                        streak = 0;
                                    } else {
                                        if halo_delta > policy.tol {
                                            retired_above_tol = true;
                                            let msg = format!(
                                                "shard {i}: retired at epoch {epoch} with \
                                                 boundary drift {halo_delta:.3e} above tol \
                                                 {:.3e}; neighbour halos inherit this staleness",
                                                policy.tol
                                            );
                                            ctx.obs().warn(msg.clone());
                                            shard_warnings.push(msg);
                                        }
                                        retire_halo_delta = Some(halo_delta);
                                        retired_at = Some(epoch);
                                        retired.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            } else {
                                streak = 0;
                            }
                        }
                        if i == 0 && ctx.obs().is_enabled() && epoch.is_multiple_of(stride) {
                            let snapshot: Vec<u32> =
                                board.iter().map(|a| a.load(Ordering::Relaxed)).collect();
                            chain.record_pll(epoch, pseudo_log_likelihood(graph, &snapshot));
                        }
                    }
                    barrier.wait();
                    epoch += 1;
                    if retired.load(Ordering::Relaxed) == n {
                        break;
                    }
                    if store.is_some()
                        && ckpt.every > 0
                        && epoch < epochs
                        && epoch.is_multiple_of(ckpt.every)
                    {
                        save(&chain, epoch, &mut shard_warnings, &mut outcome);
                    }
                }
                save(&chain, epoch, &mut shard_warnings, &mut outcome);
                if !chain.has_recorded() {
                    chain.record_board_snapshot(board);
                    shard_warnings.push(format!(
                        "shard {i}: run ended before burn-in; marginals from a single snapshot"
                    ));
                    outcome = outcome.combine(RunOutcome::Degraded);
                }
                if strict_refusals > 0 {
                    shard_warnings.push(format!(
                        "shard {i}: strict retirement gating refused {strict_refusals} \
                         retirement attempt(s) on boundary drift"
                    ));
                }
                let owned_vars = chain.owned_vars();
                let (counts, series) = chain.finish();
                ShardLocal {
                    stats: ShardStats {
                        shard: i,
                        owned_vars,
                        halo_vars: plan.interface.halo[i].len(),
                        boundary_factors: plan.interface.boundary_per_shard[i],
                        halo_bytes: plan.interface.halo_bytes(i),
                        epochs_sampled,
                        retired_at,
                        retire_halo_delta,
                        retired_above_tol,
                        flips_total: series.flips_total,
                        samples_total: series.samples_total,
                    },
                    counts,
                    series,
                    warnings: shard_warnings,
                    outcome,
                }
            }));
        }
        handles.into_iter().map(|h| h.join().expect("shard thread panicked")).collect()
    });

    let mut total = MarginalCounts::new(graph);
    let mut outcome = RunOutcome::Completed;
    let mut per_shard = Vec::with_capacity(n);
    let mut per_shard_counts = Vec::with_capacity(n);
    let mut all_series = Vec::with_capacity(n);
    let mut epochs_run = 0usize;
    let mut max_halo_delta: Option<f64> = None;
    for local in locals {
        total.merge(&local.counts);
        outcome = outcome.combine(local.outcome);
        warnings.extend(local.warnings);
        epochs_run = epochs_run.max(start_epoch + local.series.epochs);
        local.series.publish(obs, &format!("shard.{}", local.stats.shard));
        obs.gauge_set(
            &format!("shard.{}.retired_at", local.stats.shard),
            local.stats.retired_at.map_or(-1.0, |e| e as f64),
        );
        if let Some(b) = local.stats.retire_halo_delta {
            obs.gauge_set(&format!("shard.{}.retire.halo_delta", local.stats.shard), b);
            max_halo_delta = Some(max_halo_delta.map_or(b, |m: f64| m.max(b)));
        }
        all_series.push(local.series.clone());
        per_shard_counts.push(local.counts);
        per_shard.push(local.stats);
    }
    if let Some(b) = max_halo_delta {
        obs.gauge_set("shard.retire.halo_delta", b);
    }
    let telemetry = ConvergenceSeries::merge_mean(&all_series);
    telemetry.publish(obs, "infer.shard");
    obs.gauge_set("shard.epochs_run", epochs_run as f64);

    Ok(ShardRunReport {
        counts: total,
        outcome,
        warnings,
        telemetry,
        per_shard,
        health: (0..n).map(ShardHealth::healthy).collect(),
        per_shard_counts,
        epochs_run,
    })
}
