//! The halo-exchange wire protocol (DESIGN.md §13).
//!
//! A cluster run replaces the shared in-memory assignment board with
//! framed messages over TCP sockets between one coordinator and `N`
//! shard workers. Every frame is:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"SYW1"
//! 4       4     payload length in bytes (u32 LE)
//! 8       4     CRC-32/IEEE of the payload (u32 LE)
//! 12      …     payload: tag byte + hand-rolled LE body
//! ```
//!
//! The CRC (shared with the checkpoint format, [`sya_ckpt::crc32`])
//! means a torn write, truncation, or bit flip anywhere in a frame
//! surfaces as a typed [`WireError::Corrupt`] — never a panic, never a
//! silently-accepted wrong value. The length field is bounded by
//! [`MAX_FRAME_BYTES`] before any allocation, so a corrupted header
//! cannot become an allocation bomb.
//!
//! Read deadlines are the supervisor's heartbeat: a socket read that
//! trips its timeout maps to [`WireError::Timeout`], a cleanly closed
//! peer to [`WireError::Closed`]; the coordinator treats both as a
//! worker failure and the worker treats both as coordinator loss.

use std::io::{Read, Write};
use sya_ckpt::crc32;

/// Frame magic: identifies the Sya wire protocol, version 1.
pub const WIRE_MAGIC: [u8; 4] = *b"SYW1";

/// Upper bound on a frame payload. A grounded KB shard's full write set
/// is ~8 bytes per variable; 64 MiB covers millions of variables per
/// phase with room to spare, while keeping a corrupted length field
/// from driving a huge allocation.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Header size: magic + length + CRC.
pub const FRAME_HEADER_LEN: usize = 12;

/// Typed failures of the wire layer.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// A read deadline fired — the peer is stalled or partitioned.
    Timeout,
    /// The bytes on the wire are not a valid frame: bad magic, oversized
    /// or truncated payload, CRC mismatch, unknown tag, malformed body.
    Corrupt(String),
    /// Socket-level failure other than a timeout.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => f.write_str("connection closed by peer"),
            WireError::Timeout => f.write_str("read deadline exceeded"),
            WireError::Corrupt(detail) => write!(f, "corrupt frame: {detail}"),
            WireError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => WireError::Timeout,
            _ => WireError::Io(e),
        }
    }
}

/// The protocol messages. Coordinator → worker: `Welcome`, `Halo`,
/// `Proceed`, `Rollback`, `ShardLost`, `Stop`, `Ping`. Worker →
/// coordinator: `Hello`, `Publish`, `EpochEnd`, `Telemetry`, `Done`,
/// `Pong`.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker introduction (also the re-rendezvous after a rollback):
    /// identity, the graph fingerprint it grounded, and the epochs of
    /// every locally valid checkpoint it could resume from.
    Hello { shard: u32, of: u32, fingerprint: u64, epochs: Vec<u64> },
    /// Coordinator's rendezvous decision: the epoch every worker starts
    /// (or resumes) from, the total epoch budget, and the run ID every
    /// worker stamps into its traces so cross-process timelines stitch.
    Welcome { start_epoch: u64, epochs_total: u64, run_id: u64 },
    /// A worker's buffered writes for one phase of one epoch.
    Publish { epoch: u64, phase: u32, writes: Vec<(u32, u32)> },
    /// The merged write set of a phase, broadcast to every worker.
    Halo { epoch: u64, phase: u32, writes: Vec<(u32, u32)> },
    /// A worker finished an epoch (and whether it has retired).
    EpochEnd { epoch: u64, retired: bool },
    /// Coordinator's end-of-epoch verdict: keep going (`stop == None`)
    /// or wrap up with the encoded [`RunOutcome`](sya_runtime::RunOutcome).
    Proceed { stop: Option<u8> },
    /// Abandon the current epoch and return to the rendezvous: re-send
    /// `Hello` with a fresh checkpoint-epoch list.
    Rollback,
    /// Informational: a shard exhausted its restart budget; its last
    /// published halo values are frozen from here on.
    ShardLost { shard: u32 },
    /// A worker's final report (JSON payload: stats, counts, series).
    Done { report: Vec<u8> },
    /// A worker's per-epoch observability shipment (JSON payload: a
    /// metrics snapshot plus the convergence series so far). Purely
    /// informational: the coordinator aggregates it into the fleet view
    /// but never gates lockstep progress on it.
    Telemetry { shard: u32, epoch: u64, payload: Vec<u8> },
    /// Terminate immediately; no `Done` expected.
    Stop { outcome: u8 },
    Ping { nonce: u64 },
    Pong { nonce: u64 },
}

impl Frame {
    /// Short name for logs and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "Hello",
            Frame::Welcome { .. } => "Welcome",
            Frame::Publish { .. } => "Publish",
            Frame::Halo { .. } => "Halo",
            Frame::EpochEnd { .. } => "EpochEnd",
            Frame::Proceed { .. } => "Proceed",
            Frame::Rollback => "Rollback",
            Frame::ShardLost { .. } => "ShardLost",
            Frame::Done { .. } => "Done",
            Frame::Telemetry { .. } => "Telemetry",
            Frame::Stop { .. } => "Stop",
            Frame::Ping { .. } => "Ping",
            Frame::Pong { .. } => "Pong",
        }
    }
}

// Tag bytes. Gaps are corrupt, not reserved: decode rejects anything
// this build does not know.
const TAG_HELLO: u8 = 1;
const TAG_WELCOME: u8 = 2;
const TAG_PUBLISH: u8 = 3;
const TAG_HALO: u8 = 4;
const TAG_EPOCH_END: u8 = 5;
const TAG_PROCEED: u8 = 6;
const TAG_ROLLBACK: u8 = 7;
const TAG_SHARD_LOST: u8 = 8;
const TAG_DONE: u8 = 9;
const TAG_STOP: u8 = 10;
const TAG_PING: u8 = 11;
const TAG_PONG: u8 = 12;
const TAG_TELEMETRY: u8 = 13;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounded little-endian reader over a frame payload.
struct Rd<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Rd<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Rd { bytes, at: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Corrupt(format!(
                "body truncated: wanted {n} bytes at offset {}, have {}",
                self.at,
                self.remaining()
            )));
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// `count` entries of `entry_bytes` each must still fit in the
    /// payload — the pre-allocation guard against a corrupt count.
    fn check_count(&self, count: usize, entry_bytes: usize) -> Result<(), WireError> {
        if count.saturating_mul(entry_bytes) > self.remaining() {
            return Err(WireError::Corrupt(format!(
                "count {count} × {entry_bytes}B exceeds the {} bytes left in the frame",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Corrupt(format!(
                "{} trailing bytes after the body",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Encodes a frame's payload (tag + body), without the header.
pub fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match frame {
        Frame::Hello { shard, of, fingerprint, epochs } => {
            out.push(TAG_HELLO);
            put_u32(&mut out, *shard);
            put_u32(&mut out, *of);
            put_u64(&mut out, *fingerprint);
            put_u32(&mut out, epochs.len() as u32);
            for &e in epochs {
                put_u64(&mut out, e);
            }
        }
        Frame::Welcome { start_epoch, epochs_total, run_id } => {
            out.push(TAG_WELCOME);
            put_u64(&mut out, *start_epoch);
            put_u64(&mut out, *epochs_total);
            put_u64(&mut out, *run_id);
        }
        Frame::Publish { epoch, phase, writes } | Frame::Halo { epoch, phase, writes } => {
            out.push(if matches!(frame, Frame::Publish { .. }) { TAG_PUBLISH } else { TAG_HALO });
            put_u64(&mut out, *epoch);
            put_u32(&mut out, *phase);
            put_u32(&mut out, writes.len() as u32);
            for &(v, x) in writes {
                put_u32(&mut out, v);
                put_u32(&mut out, x);
            }
        }
        Frame::EpochEnd { epoch, retired } => {
            out.push(TAG_EPOCH_END);
            put_u64(&mut out, *epoch);
            out.push(u8::from(*retired));
        }
        Frame::Proceed { stop } => {
            out.push(TAG_PROCEED);
            match stop {
                None => out.push(0),
                Some(code) => {
                    out.push(1);
                    out.push(*code);
                }
            }
        }
        Frame::Rollback => out.push(TAG_ROLLBACK),
        Frame::ShardLost { shard } => {
            out.push(TAG_SHARD_LOST);
            put_u32(&mut out, *shard);
        }
        Frame::Done { report } => {
            out.push(TAG_DONE);
            put_u32(&mut out, report.len() as u32);
            out.extend_from_slice(report);
        }
        Frame::Telemetry { shard, epoch, payload } => {
            out.push(TAG_TELEMETRY);
            put_u32(&mut out, *shard);
            put_u64(&mut out, *epoch);
            put_u32(&mut out, payload.len() as u32);
            out.extend_from_slice(payload);
        }
        Frame::Stop { outcome } => {
            out.push(TAG_STOP);
            out.push(*outcome);
        }
        Frame::Ping { nonce } => {
            out.push(TAG_PING);
            put_u64(&mut out, *nonce);
        }
        Frame::Pong { nonce } => {
            out.push(TAG_PONG);
            put_u64(&mut out, *nonce);
        }
    }
    out
}

/// Decodes a frame payload (tag + body). Every malformation — unknown
/// tag, truncated body, oversized count, trailing bytes — is a typed
/// [`WireError::Corrupt`].
pub fn decode_payload(payload: &[u8]) -> Result<Frame, WireError> {
    let mut rd = Rd::new(payload);
    let tag = rd.u8().map_err(|_| WireError::Corrupt("empty payload".into()))?;
    let frame = match tag {
        TAG_HELLO => {
            let shard = rd.u32()?;
            let of = rd.u32()?;
            let fingerprint = rd.u64()?;
            let n = rd.u32()? as usize;
            rd.check_count(n, 8)?;
            let mut epochs = Vec::with_capacity(n);
            for _ in 0..n {
                epochs.push(rd.u64()?);
            }
            Frame::Hello { shard, of, fingerprint, epochs }
        }
        TAG_WELCOME => Frame::Welcome {
            start_epoch: rd.u64()?,
            epochs_total: rd.u64()?,
            run_id: rd.u64()?,
        },
        TAG_PUBLISH | TAG_HALO => {
            let epoch = rd.u64()?;
            let phase = rd.u32()?;
            let n = rd.u32()? as usize;
            rd.check_count(n, 8)?;
            let mut writes = Vec::with_capacity(n);
            for _ in 0..n {
                writes.push((rd.u32()?, rd.u32()?));
            }
            if tag == TAG_PUBLISH {
                Frame::Publish { epoch, phase, writes }
            } else {
                Frame::Halo { epoch, phase, writes }
            }
        }
        TAG_EPOCH_END => {
            let epoch = rd.u64()?;
            let retired = match rd.u8()? {
                0 => false,
                1 => true,
                b => return Err(WireError::Corrupt(format!("bad retired flag {b}"))),
            };
            Frame::EpochEnd { epoch, retired }
        }
        TAG_PROCEED => {
            let stop = match rd.u8()? {
                0 => None,
                1 => Some(rd.u8()?),
                b => return Err(WireError::Corrupt(format!("bad proceed flag {b}"))),
            };
            Frame::Proceed { stop }
        }
        TAG_ROLLBACK => Frame::Rollback,
        TAG_SHARD_LOST => Frame::ShardLost { shard: rd.u32()? },
        TAG_DONE => {
            let n = rd.u32()? as usize;
            rd.check_count(n, 1)?;
            Frame::Done { report: rd.take(n)?.to_vec() }
        }
        TAG_TELEMETRY => {
            let shard = rd.u32()?;
            let epoch = rd.u64()?;
            let n = rd.u32()? as usize;
            rd.check_count(n, 1)?;
            Frame::Telemetry { shard, epoch, payload: rd.take(n)?.to_vec() }
        }
        TAG_STOP => Frame::Stop { outcome: rd.u8()? },
        TAG_PING => Frame::Ping { nonce: rd.u64()? },
        TAG_PONG => Frame::Pong { nonce: rd.u64()? },
        other => return Err(WireError::Corrupt(format!("unknown frame tag {other}"))),
    };
    rd.finish()?;
    Ok(frame)
}

/// Encodes a complete frame: header + payload.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let payload = encode_payload(frame);
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Writes one frame to the stream and flushes it.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), WireError> {
    w.write_all(&encode_frame(frame))?;
    w.flush()?;
    Ok(())
}

/// Reads exactly `buf.len()` bytes. A clean EOF before the first byte
/// is [`WireError::Closed`] when `at_boundary`, otherwise — and for any
/// mid-buffer EOF — a truncated frame ([`WireError::Corrupt`]).
fn read_exact_or(r: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<(), WireError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && at_boundary {
                    Err(WireError::Closed)
                } else {
                    Err(WireError::Corrupt(format!(
                        "stream ended after {filled} of {} bytes",
                        buf.len()
                    )))
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::from(e)),
        }
    }
    Ok(())
}

/// Reads one complete frame: header, bounded payload, CRC check,
/// decode. Never panics on hostile input; never accepts a frame whose
/// CRC does not match.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, WireError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    read_exact_or(r, &mut header, true)?;
    if header[..4] != WIRE_MAGIC {
        return Err(WireError::Corrupt("bad frame magic".into()));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Corrupt(format!(
            "frame payload of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )));
    }
    let crc_want = u32::from_le_bytes(header[8..12].try_into().unwrap());
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload, false)?;
    let crc_got = crc32(&payload);
    if crc_got != crc_want {
        return Err(WireError::Corrupt(format!(
            "payload CRC {crc_got:#010x} does not match header {crc_want:#010x}"
        )));
    }
    decode_payload(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Frame> {
        vec![
            Frame::Hello { shard: 1, of: 4, fingerprint: 0xFEED_BEEF, epochs: vec![10, 20, 30] },
            Frame::Hello { shard: 0, of: 1, fingerprint: 0, epochs: vec![] },
            Frame::Welcome { start_epoch: 20, epochs_total: 500, run_id: 0xDEAD_BEEF },
            Frame::Publish { epoch: 7, phase: 2, writes: vec![(0, 1), (5, 0), (9, 1)] },
            Frame::Publish { epoch: 0, phase: 0, writes: vec![] },
            Frame::Halo { epoch: 7, phase: 2, writes: vec![(3, 1)] },
            Frame::EpochEnd { epoch: 7, retired: true },
            Frame::EpochEnd { epoch: 8, retired: false },
            Frame::Proceed { stop: None },
            Frame::Proceed { stop: Some(2) },
            Frame::Rollback,
            Frame::ShardLost { shard: 3 },
            Frame::Done { report: b"{\"ok\":true}".to_vec() },
            Frame::Telemetry { shard: 1, epoch: 12, payload: b"{\"counters\":{}}".to_vec() },
            Frame::Telemetry { shard: 0, epoch: 0, payload: vec![] },
            Frame::Stop { outcome: 3 },
            Frame::Ping { nonce: 42 },
            Frame::Pong { nonce: 42 },
        ]
    }

    #[test]
    fn every_frame_round_trips_through_a_stream() {
        for frame in samples() {
            let bytes = encode_frame(&frame);
            let got = read_frame(&mut &bytes[..]).unwrap();
            assert_eq!(got, frame, "round trip of {}", frame.name());
        }
    }

    #[test]
    fn frames_concatenate_on_one_stream() {
        let frames = samples();
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut r = &wire[..];
        for f in &frames {
            assert_eq!(&read_frame(&mut r).unwrap(), f);
        }
        assert!(matches!(read_frame(&mut r), Err(WireError::Closed)));
    }

    #[test]
    fn clean_eof_at_boundary_is_closed_not_corrupt() {
        let empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut &empty[..]), Err(WireError::Closed)));
    }

    #[test]
    fn truncation_anywhere_is_corrupt_never_panic() {
        let full = encode_frame(&Frame::Publish {
            epoch: 3,
            phase: 1,
            writes: vec![(1, 1), (2, 0)],
        });
        for cut in 1..full.len() {
            match read_frame(&mut &full[..cut]) {
                Err(WireError::Corrupt(_)) => {}
                other => panic!("cut at {cut}: expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn any_single_bit_flip_is_rejected() {
        let full = encode_frame(&Frame::Halo { epoch: 9, phase: 0, writes: vec![(7, 1)] });
        for byte in 0..full.len() {
            for bit in 0..8 {
                let mut bad = full.clone();
                bad[byte] ^= 1 << bit;
                match read_frame(&mut &bad[..]) {
                    Err(_) => {}
                    Ok(frame) => panic!(
                        "flip at byte {byte} bit {bit} was silently accepted as {frame:?}"
                    ),
                }
            }
        }
    }

    #[test]
    fn oversized_length_header_is_bounded_before_allocation() {
        let mut bytes = encode_frame(&Frame::Rollback);
        bytes[4..8].copy_from_slice(&(u32::MAX).to_le_bytes());
        match read_frame(&mut &bytes[..]) {
            Err(WireError::Corrupt(msg)) => assert!(msg.contains("exceeds"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_are_corrupt() {
        match decode_payload(&[200]) {
            Err(WireError::Corrupt(msg)) => assert!(msg.contains("unknown"), "{msg}"),
            other => panic!("{other:?}"),
        }
        let mut payload = encode_payload(&Frame::Rollback);
        payload.push(0);
        match decode_payload(&payload) {
            Err(WireError::Corrupt(msg)) => assert!(msg.contains("trailing"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn corrupt_count_is_rejected_before_allocation() {
        // A Publish claiming u32::MAX writes in a tiny payload.
        let mut payload = Vec::new();
        payload.push(3); // TAG_PUBLISH
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        match decode_payload(&payload) {
            Err(WireError::Corrupt(msg)) => assert!(msg.contains("exceeds"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn timeout_kind_maps_to_wire_timeout() {
        let e = std::io::Error::new(std::io::ErrorKind::WouldBlock, "t");
        assert!(matches!(WireError::from(e), WireError::Timeout));
        let e = std::io::Error::new(std::io::ErrorKind::TimedOut, "t");
        assert!(matches!(WireError::from(e), WireError::Timeout));
        let e = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "t");
        assert!(matches!(WireError::from(e), WireError::Io(_)));
    }
}
