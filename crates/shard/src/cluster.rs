//! The multi-process shard cluster (DESIGN.md §13): a coordinator that
//! supervises `N` shard worker processes and relays halo exchange over
//! the [`wire`](crate::wire) protocol.
//!
//! ## Topology and lockstep
//!
//! The cluster is a star: workers never talk to each other. Each epoch
//! phase, every worker samples its owned variables against its local
//! board, sends the buffered writes as a `Publish` frame, applies them
//! locally, and blocks on the merged `Halo` broadcast, from which it
//! applies only *foreign* writes. The coordinator is the phase
//! sequencer: it collects one `Publish` per live worker, concatenates
//! the write sets, and broadcasts the `Halo`. Because ownership is
//! total and draws use per-`(seed, epoch, variable)` RNG streams, the
//! merged marginals are bit-identical to the in-process executor
//! ([`run_sharded`](crate::exec::run_sharded)) and to a single-shard
//! run.
//!
//! ## Supervision
//!
//! Every coordinator read carries the heartbeat deadline; a timeout,
//! closed socket, or corrupt frame is a worker failure. Within the
//! restart budget the coordinator broadcasts `Rollback`, relaunches the
//! worker after an exponential backoff, and re-runs the rendezvous:
//! every worker re-`Hello`s with the epochs of its locally valid
//! `sya-ckpt` checkpoints, the coordinator intersects the sets and
//! `Welcome`s the fleet at the newest epoch present everywhere (or 0 —
//! replay is deterministic either way). Past the budget the shard is
//! **lost, not fatal**: its last published halo values stay frozen on
//! the survivors' boards, its marginal counts are recovered from its
//! newest valid checkpoint, and the run completes with
//! [`RunOutcome::Degraded`] and per-shard health in the report.

use crate::exec::{
    store_name, RetirePolicy, ShardCkptOptions, ShardHealth, ShardManifest, ShardRunReport,
    ShardStats,
};
use crate::plan::ShardPlan;
use crate::wire::{read_frame, write_frame, Frame, WireError, FRAME_HEADER_LEN, WIRE_MAGIC};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use sya_ckpt::CheckpointStore;
use sya_fg::FactorGraph;
use sya_infer::{
    init_board, CheckpointState, InferConfig, InferError, MarginalCounts, PyramidIndex,
    ShardChain, ShardSchedule,
};
use sya_obs::{cluster as met, ConvergenceSeries, FleetView, MetricsSnapshot, NUM_CONCLIQUES};
use sya_runtime::{Backoff, ExecContext, RunOutcome};

// ------------------------------------------------------------- config

/// Supervision parameters of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Coordinator listen address (`host:port`; port 0 picks one).
    pub listen: String,
    /// Read deadline per worker socket — the heartbeat. A worker that
    /// cannot produce its next frame within this is treated as failed,
    /// so it must comfortably exceed one phase's sampling time.
    pub heartbeat: Duration,
    /// Exponential backoff between relaunches of the same shard.
    pub backoff: Backoff,
    /// Restarts allowed per shard before it is declared lost. 0 loses a
    /// shard on its first failure.
    pub restart_budget: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            listen: "127.0.0.1:0".to_owned(),
            heartbeat: Duration::from_secs(2),
            backoff: Backoff::default(),
            restart_budget: 2,
        }
    }
}

/// What a worker needs beyond the graph, plan, and sampler config.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// This worker's shard index.
    pub shard: usize,
    /// Coordinator address to connect to.
    pub connect: String,
    /// Checkpoint wiring; `dir` is the cluster root (the worker stores
    /// under `<dir>/shard-NN/`).
    pub ckpt: ShardCkptOptions,
    pub retire: Option<RetirePolicy>,
    /// Advertise existing checkpoints in the first `Hello` (after a
    /// rollback the worker always advertises).
    pub resume: bool,
    /// Read deadline against the coordinator. Must cover a full
    /// rollback (backoff + relaunch); it is also how long an orphaned
    /// worker lingers after its coordinator dies.
    pub read_timeout: Duration,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            shard: 0,
            connect: String::new(),
            ckpt: ShardCkptOptions::default(),
            retire: None,
            resume: false,
            read_timeout: Duration::from_secs(30),
        }
    }
}

// ---------------------------------------------------------- launchers

/// One (re)launch request: which shard, which attempt (0 = first
/// launch), and where the worker must connect.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    pub shard: usize,
    pub attempt: usize,
    pub connect: String,
}

/// A handle to a launched worker. Dropping it must not kill the worker
/// (the coordinator decides); `kill` must be idempotent.
pub trait WorkerHandle: Send {
    fn kill(&mut self);
}

/// Launches shard workers. The CLI implements this by spawning
/// `sya shard-worker` processes; tests use [`ThreadLauncher`].
pub trait WorkerLauncher {
    fn launch(&self, spec: &WorkerSpec) -> Result<Box<dyn WorkerHandle>, String>;
}

/// In-process launcher: each worker is a thread speaking real TCP to
/// the coordinator — the full protocol without process management.
/// Fault plans are installed only on attempt 0, so a relaunched worker
/// never re-fires the fault that killed its predecessor (mirroring the
/// CLI, which passes fault flags only to first launches).
pub struct ThreadLauncher {
    pub graph: FactorGraph,
    pub plan: ShardPlan,
    pub cfg: InferConfig,
    pub ckpt: ShardCkptOptions,
    pub retire: Option<RetirePolicy>,
    pub faults: sya_runtime::FaultPlan,
    pub read_timeout: Duration,
}

struct ThreadHandle;

impl WorkerHandle for ThreadHandle {
    /// Threads cannot be killed; the coordinator dropping its end of
    /// the socket makes the worker's next read/write fail, which ends
    /// the thread.
    fn kill(&mut self) {}
}

impl WorkerLauncher for ThreadLauncher {
    fn launch(&self, spec: &WorkerSpec) -> Result<Box<dyn WorkerHandle>, String> {
        let graph = self.graph.clone();
        let plan = self.plan.clone();
        let cfg = self.cfg.clone();
        let opts = WorkerOptions {
            shard: spec.shard,
            connect: spec.connect.clone(),
            ckpt: self.ckpt.clone(),
            retire: self.retire,
            resume: spec.attempt > 0 || self.ckpt.resume,
            read_timeout: self.read_timeout,
        };
        let faults = if spec.attempt == 0 {
            self.faults.clone()
        } else {
            sya_runtime::FaultPlan::none()
        };
        std::thread::spawn(move || {
            let ctx = ExecContext::unbounded().with_faults(faults);
            // A worker error is a crash as far as the coordinator is
            // concerned; the supervisor observes it via the socket.
            let _ = run_worker(&graph, &plan, &cfg, &opts, &ctx);
        });
        Ok(Box::new(ThreadHandle))
    }
}

// ------------------------------------------------------ status server

/// Live cluster state published to the status endpoint.
#[derive(Debug, Clone, Default)]
pub struct ClusterStatus {
    pub done: bool,
    pub degraded: bool,
    pub epoch: u64,
    pub shards: Vec<ShardHealth>,
}

/// Renders the healthz JSON body.
pub fn render_status(s: &ClusterStatus) -> String {
    let shards: Vec<String> = s
        .shards
        .iter()
        .map(|h| {
            format!(
                "{{\"shard\":{},\"health\":\"{}\",\"restarts\":{}}}",
                h.shard,
                h.label(),
                h.restarts
            )
        })
        .collect();
    format!(
        "{{\"status\":\"{}\",\"done\":{},\"epoch\":{},\"shards\":[{}]}}",
        if s.degraded { "degraded" } else { "ok" },
        s.done,
        s.epoch,
        shards.join(",")
    )
}

/// Path of an HTTP request head (`"/"` when unparsable).
fn request_path(head: &[u8]) -> String {
    let text = String::from_utf8_lossy(head);
    text.lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/")
        .to_string()
}

/// A minimal HTTP endpoint serving the cluster's live state. `/` is the
/// healthz JSON ([`render_status`]); `/metrics` renders the aggregated
/// [`FleetView`] in Prometheus exposition format and `/fleet` the same
/// view as JSON. Lives in `sya-shard` (not `sya-serve`) so the
/// coordinator has no dependency on the serving stack; the thread is
/// detached and dies with the process.
pub struct StatusServer {
    addr: SocketAddr,
    board: Arc<Mutex<ClusterStatus>>,
    fleet: Arc<Mutex<FleetView>>,
}

impl StatusServer {
    pub fn start(listen: &str) -> Result<StatusServer, String> {
        let listener =
            TcpListener::bind(listen).map_err(|e| format!("status listen {listen}: {e}"))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let board = Arc::new(Mutex::new(ClusterStatus::default()));
        let fleet = Arc::new(Mutex::new(FleetView::new(0)));
        let shared = Arc::clone(&board);
        let fleet_shared = Arc::clone(&fleet);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut c) = conn else { continue };
                let _ = c.set_read_timeout(Some(Duration::from_secs(2)));
                // Read until the request head is complete (a client may
                // deliver it across several small writes).
                let mut head = [0u8; 1024];
                let mut n = 0usize;
                while n < head.len() && !head[..n].windows(4).any(|w| w == b"\r\n\r\n") {
                    match std::io::Read::read(&mut c, &mut head[n..]) {
                        Ok(0) | Err(_) => break,
                        Ok(m) => n += m,
                    }
                }
                let path = request_path(&head[..n]);
                let (content_type, body) = if path.starts_with("/metrics") {
                    (
                        "text/plain; version=0.0.4",
                        fleet_shared.lock().expect("fleet lock").render_prometheus(),
                    )
                } else if path.starts_with("/fleet") {
                    ("application/json", fleet_shared.lock().expect("fleet lock").render_json())
                } else {
                    ("application/json", render_status(&shared.lock().expect("status lock")))
                };
                let _ = write!(
                    c,
                    "HTTP/1.1 200 OK\r\nContent-Type: {}\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n{}",
                    content_type,
                    body.len(),
                    body
                );
            }
        });
        Ok(StatusServer { addr, board, fleet })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared fleet view rendered on `/metrics` and `/fleet`; the
    /// coordinator records shipped worker telemetry into it.
    pub fn fleet(&self) -> Arc<Mutex<FleetView>> {
        Arc::clone(&self.fleet)
    }

    fn set(&self, f: impl FnOnce(&mut ClusterStatus)) {
        f(&mut self.board.lock().expect("status lock"));
    }
}

// --------------------------------------------------------- wire plumb

fn outcome_code(o: RunOutcome) -> u8 {
    match o {
        RunOutcome::Completed => 0,
        RunOutcome::Degraded => 1,
        RunOutcome::TimedOut => 2,
        RunOutcome::Cancelled => 3,
    }
}

fn outcome_from_code(code: u8) -> RunOutcome {
    match code {
        1 => RunOutcome::Degraded,
        2 => RunOutcome::TimedOut,
        3 => RunOutcome::Cancelled,
        _ => RunOutcome::Completed,
    }
}

/// [`ConvergenceSeries`] is deliberately not `Serialize`; this is its
/// wire twin for the `Done` report.
#[derive(Debug, Default, Serialize, Deserialize)]
struct SeriesWire {
    flip_rate: Vec<f64>,
    marginal_delta: Vec<f64>,
    pll: Vec<(f64, f64)>,
    conclique_samples: Vec<u64>,
    samples_total: u64,
    flips_total: u64,
    epochs: usize,
}

impl SeriesWire {
    fn from_series(s: &ConvergenceSeries) -> Self {
        SeriesWire {
            flip_rate: s.flip_rate.clone(),
            marginal_delta: s.marginal_delta.clone(),
            pll: s.pll.clone(),
            conclique_samples: s.conclique_samples.to_vec(),
            samples_total: s.samples_total,
            flips_total: s.flips_total,
            epochs: s.epochs,
        }
    }

    fn into_series(self) -> ConvergenceSeries {
        let mut conclique_samples = [0u64; NUM_CONCLIQUES];
        for (slot, v) in conclique_samples.iter_mut().zip(self.conclique_samples) {
            *slot = v;
        }
        ConvergenceSeries {
            flip_rate: self.flip_rate,
            marginal_delta: self.marginal_delta,
            pll: self.pll,
            conclique_samples,
            samples_total: self.samples_total,
            flips_total: self.flips_total,
            epochs: self.epochs,
        }
    }
}

/// JSON payload of the per-epoch `Telemetry` frame: the flat counter
/// and gauge maps of a worker's metrics snapshot. Purely informational —
/// an undecodable payload is dropped with a warning, never a protocol
/// error, and telemetry never gates lockstep progress.
#[derive(Debug, Default, Serialize, Deserialize)]
struct TelemetryWire {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
}

impl TelemetryWire {
    fn into_snapshot(self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters,
            gauges: self.gauges,
            histograms: BTreeMap::new(),
            series: BTreeMap::new(),
        }
    }
}

/// Builds the per-epoch telemetry payload: the worker's own metrics
/// snapshot overlaid with chain progress (shipped even when the worker
/// runs with observability disabled) and, when profiling is on, the
/// hot-path profiler totals.
fn telemetry_payload(
    obs: &sya_obs::Obs,
    chain: &ShardChain,
    epoch: usize,
    last_delta: f64,
    retired: bool,
) -> Vec<u8> {
    let snap = obs.metrics_snapshot();
    let mut wire = TelemetryWire { counters: snap.counters, gauges: snap.gauges };
    let (samples, flips) = chain.progress();
    wire.counters.insert("infer.shard.samples_total".to_owned(), samples);
    wire.counters.insert("infer.shard.flips_total".to_owned(), flips);
    wire.gauges.insert("shard.epoch".to_owned(), epoch as f64);
    wire.gauges.insert("shard.max_delta".to_owned(), last_delta);
    wire.gauges.insert("shard.retired".to_owned(), f64::from(u8::from(retired)));
    if sya_obs::profile::enabled() {
        for s in sya_obs::profile::snapshot() {
            wire.counters.insert(format!("{}.ops_total", s.site.name()), s.ops);
            wire.counters.insert(format!("{}.ns_total", s.site.name()), s.ns_total);
        }
    }
    serde_json::to_vec(&wire).unwrap_or_default()
}

/// JSON payload of the `Done` frame.
#[derive(Debug, Serialize, Deserialize)]
struct DoneReport {
    stats: ShardStats,
    /// Raw marginal count rows (`rows[v][x]`).
    counts: Vec<Vec<u64>>,
    warnings: Vec<String>,
    outcome: u8,
    /// Final epoch this worker reached.
    epochs_run: u64,
    series: SeriesWire,
}

// --------------------------------------------------------- the worker

enum Flow {
    Done(Box<DoneReport>),
    Rollback,
    Stopped,
}

fn connect_with_retry(addr: &str, budget: Duration) -> Result<TcpStream, String> {
    let deadline = Instant::now() + budget;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(format!("cannot connect to coordinator {addr}: {e}"));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// The epochs of every locally valid checkpoint this worker could
/// resume from, for the `Hello` rendezvous.
fn valid_shard_epochs(
    store: &CheckpointStore,
    graph: &FactorGraph,
    me: usize,
    of: usize,
) -> Vec<u64> {
    store
        .valid_epochs(|state| match state {
            CheckpointState::Shard { shard, of: n, chain }
                if *shard as usize == me && *n as usize == of =>
            {
                chain.clone().restore(graph).map(|_| ())
            }
            other => Err(format!("{} state does not fit shard {me}/{of}", other.kind())),
        })
        .unwrap_or_default()
}

/// Runs one shard worker: connect, rendezvous, sample with socket halo
/// exchange, checkpoint locally, and report. Returns `Ok` on a clean
/// protocol end (`Done` sent or `Stop` received); any `Err` is a crash
/// as far as the supervisor is concerned.
pub fn run_worker(
    graph: &FactorGraph,
    plan: &ShardPlan,
    cfg: &InferConfig,
    opts: &WorkerOptions,
    ctx: &ExecContext,
) -> Result<(), String> {
    let me = opts.shard;
    let n = plan.shards;
    if me >= n {
        return Err(format!("shard index {me} out of range for {n} shards"));
    }
    let fingerprint = graph.fingerprint();
    let store = match opts.ckpt.dir.as_ref() {
        Some(dir) => Some(
            CheckpointStore::create(dir.join(store_name(me)), fingerprint)
                .map_err(|e| format!("shard {me}: checkpoint store: {e}"))?,
        ),
        None => None,
    };
    let mut stream = connect_with_retry(&opts.connect, Duration::from_secs(15))?;
    stream
        .set_read_timeout(Some(opts.read_timeout))
        .map_err(|e| format!("shard {me}: set read timeout: {e}"))?;
    let _ = stream.set_nodelay(true);

    let pyramid = PyramidIndex::build(graph, cfg.levels, cfg.cell_capacity);
    let schedule = ShardSchedule::new(graph, &pyramid, cfg);

    let mut advertise = opts.resume;
    loop {
        let epochs = match (&store, advertise) {
            (Some(store), true) => valid_shard_epochs(store, graph, me, n),
            _ => Vec::new(),
        };
        write_frame(
            &mut stream,
            &Frame::Hello { shard: me as u32, of: n as u32, fingerprint, epochs },
        )
        .map_err(|e| format!("shard {me}: hello: {e}"))?;
        match read_frame(&mut stream).map_err(|e| format!("shard {me}: awaiting welcome: {e}"))? {
            Frame::Welcome { start_epoch, epochs_total, run_id } => {
                // Stamp the coordinator-issued run ID so this process's
                // trace exports stitch into the fleet-wide timeline.
                ctx.obs().set_run_id(run_id);
                let flow = run_epochs(
                    graph,
                    plan,
                    cfg,
                    &schedule,
                    opts,
                    store.as_ref(),
                    &mut stream,
                    start_epoch as usize,
                    epochs_total as usize,
                    ctx,
                )?;
                match flow {
                    Flow::Done(report) => {
                        let bytes = serde_json::to_vec(&*report)
                            .map_err(|e| format!("shard {me}: encode done report: {e}"))?;
                        write_frame(&mut stream, &Frame::Done { report: bytes })
                            .map_err(|e| format!("shard {me}: done: {e}"))?;
                        return Ok(());
                    }
                    Flow::Rollback => advertise = true,
                    Flow::Stopped => return Ok(()),
                }
            }
            Frame::Rollback => advertise = true,
            Frame::Stop { .. } => return Ok(()),
            other => return Err(format!("shard {me}: unexpected {} at rendezvous", other.name())),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn save_worker_ckpt(
    store: Option<&CheckpointStore>,
    ctx: &ExecContext,
    me: usize,
    n: usize,
    chain: &ShardChain,
    board: &[AtomicU32],
    next_epoch: usize,
    warnings: &mut Vec<String>,
    outcome: &mut RunOutcome,
) {
    let Some(store) = store else { return };
    let state = CheckpointState::Shard {
        shard: me as u64,
        of: n as u64,
        chain: chain.chain_state(next_epoch, board),
    };
    let result = if ctx.take_checkpoint_save_failure() {
        Err("injected checkpoint save failure".to_owned())
    } else {
        store.save_state(&state).map(|_| ()).map_err(|e| e.to_string())
    };
    if let Err(e) = result {
        warnings.push(format!("shard {me}: checkpoint save failed: {e}"));
        *outcome = outcome.combine(RunOutcome::Degraded);
    }
}

/// Writes a frame with a deliberately wrong CRC (fault injection): the
/// header is well-formed, the payload real, the checksum inverted.
fn write_corrupt_frame(stream: &mut TcpStream) -> Result<(), String> {
    let mut bytes = crate::wire::encode_frame(&Frame::Ping { nonce: 0 });
    // Flip the CRC field; everything else stays plausible.
    bytes[FRAME_HEADER_LEN - 1] ^= 0xFF;
    debug_assert_eq!(&bytes[..4], &WIRE_MAGIC);
    stream.write_all(&bytes).map_err(|e| e.to_string())?;
    stream.flush().map_err(|e| e.to_string())
}

#[allow(clippy::too_many_arguments)]
fn run_epochs(
    graph: &FactorGraph,
    plan: &ShardPlan,
    cfg: &InferConfig,
    schedule: &ShardSchedule,
    opts: &WorkerOptions,
    store: Option<&CheckpointStore>,
    stream: &mut TcpStream,
    start_epoch: usize,
    epochs_total: usize,
    ctx: &ExecContext,
) -> Result<Flow, String> {
    let me = opts.shard;
    let n = plan.shards;
    let burn = cfg.burn_in.min(epochs_total.saturating_sub(1));
    let mut warnings = Vec::new();
    let mut outcome = RunOutcome::Completed;

    let mut chain = ShardChain::new(graph, schedule, cfg, plan.owned[me].clone());
    let board: Vec<AtomicU32> = if start_epoch > 0 {
        let store = store.ok_or_else(|| {
            format!("shard {me}: welcomed at epoch {start_epoch} without a checkpoint store")
        })?;
        let state = store
            .load_epoch(start_epoch as u64)
            .map_err(|e| format!("shard {me}: load epoch {start_epoch}: {e}"))?;
        let CheckpointState::Shard { shard, of, chain: saved } = state else {
            return Err(format!("shard {me}: checkpoint at {start_epoch} is not a shard state"));
        };
        if shard as usize != me || of as usize != n {
            return Err(format!(
                "shard {me}: checkpoint at {start_epoch} belongs to shard {shard}/{of}"
            ));
        }
        let (_, assignment, _, counts, recorded) =
            saved.restore(graph).map_err(|e| format!("shard {me}: restore: {e}"))?;
        chain.resume_counts(counts, recorded);
        assignment.into_iter().map(AtomicU32::new).collect()
    } else {
        init_board(graph, cfg.seed)
    };
    if opts.retire.is_some() {
        let exposed: Vec<u32> = (0..n)
            .filter(|&s| s != me)
            .flat_map(|s| plan.interface.halo[s].iter().copied())
            .collect();
        chain.set_boundary(&exposed);
    }
    let retire_floor = opts.retire.map(|p| p.min_epoch.max(burn));

    let mut retired_at: Option<usize> = None;
    let mut retire_halo_delta: Option<f64> = None;
    let mut retired_above_tol = false;
    let mut strict_refusals = 0usize;
    let mut streak = 0usize;
    let mut epochs_sampled = 0usize;
    let mut epoch = start_epoch;
    let mut stopped: Option<RunOutcome> = None;
    let mut last_delta = 0.0f64;

    while epoch < epochs_total {
        if ctx.take_worker_kill(me, epoch) {
            return Err(format!("shard {me}: injected worker kill at epoch {epoch}"));
        }
        let record = epoch >= burn;
        let active = retired_at.is_none();
        for phase in 0..schedule.len() {
            if active {
                chain.sample_phase(&board, schedule, phase, epoch, record);
            }
            if phase == 0 {
                if let Some(pause) = ctx.take_worker_stall(me, epoch) {
                    std::thread::sleep(pause);
                }
                if ctx.take_corrupt_frame(me, epoch) {
                    write_corrupt_frame(stream)?;
                    return Err(format!("shard {me}: injected corrupt frame at epoch {epoch}"));
                }
            }
            let writes: Vec<(u32, u32)> = chain.pending_writes().to_vec();
            write_frame(stream, &Frame::Publish { epoch: epoch as u64, phase: phase as u32, writes })
                .map_err(|e| format!("shard {me}: publish e{epoch} p{phase}: {e}"))?;
            if active {
                chain.publish(&board);
            }
            loop {
                match read_frame(stream)
                    .map_err(|e| format!("shard {me}: awaiting halo e{epoch} p{phase}: {e}"))?
                {
                    Frame::Halo { writes, .. } => {
                        let prof = sya_obs::profile::start();
                        for (v, x) in writes {
                            if plan.owner[v as usize] as usize != me {
                                board[v as usize].store(x, Ordering::Relaxed);
                            }
                        }
                        sya_obs::profile::stop(sya_obs::profile::Site::HaloApply, prof);
                        break;
                    }
                    Frame::ShardLost { shard } => warnings.push(format!(
                        "shard {shard} was lost; its halo values are frozen from here on"
                    )),
                    Frame::Rollback => return Ok(Flow::Rollback),
                    Frame::Stop { .. } => return Ok(Flow::Stopped),
                    other => {
                        return Err(format!(
                            "shard {me}: expected Halo, got {} (e{epoch} p{phase})",
                            other.name()
                        ))
                    }
                }
            }
        }
        if active {
            epochs_sampled += 1;
            let delta = chain.end_epoch(&board, record);
            last_delta = delta;
            if let (Some(policy), Some(floor)) = (opts.retire, retire_floor) {
                if record && epoch >= floor && delta < policy.tol {
                    if streak == 0 {
                        chain.snapshot_boundary();
                    }
                    streak += 1;
                    if streak >= policy.window {
                        let halo_delta = chain.boundary_delta();
                        if policy.strict && halo_delta > policy.tol {
                            strict_refusals += 1;
                            streak = 0;
                        } else {
                            if halo_delta > policy.tol {
                                retired_above_tol = true;
                                warnings.push(format!(
                                    "shard {me}: retired at epoch {epoch} with boundary drift \
                                     {halo_delta:.3e} above tol {:.3e}; neighbour halos inherit \
                                     this staleness",
                                    policy.tol
                                ));
                            }
                            retire_halo_delta = Some(halo_delta);
                            retired_at = Some(epoch);
                        }
                    }
                } else {
                    streak = 0;
                }
            }
        }
        let payload = telemetry_payload(ctx.obs(), &chain, epoch, last_delta, retired_at.is_some());
        write_frame(stream, &Frame::Telemetry { shard: me as u32, epoch: epoch as u64, payload })
            .map_err(|e| format!("shard {me}: telemetry e{epoch}: {e}"))?;
        write_frame(stream, &Frame::EpochEnd { epoch: epoch as u64, retired: retired_at.is_some() })
            .map_err(|e| format!("shard {me}: epoch end {epoch}: {e}"))?;
        loop {
            match read_frame(stream)
                .map_err(|e| format!("shard {me}: awaiting proceed e{epoch}: {e}"))?
            {
                Frame::Proceed { stop } => {
                    if let Some(code) = stop {
                        stopped = Some(outcome_from_code(code));
                    }
                    break;
                }
                Frame::ShardLost { shard } => warnings.push(format!(
                    "shard {shard} was lost; its halo values are frozen from here on"
                )),
                Frame::Rollback => return Ok(Flow::Rollback),
                Frame::Stop { .. } => return Ok(Flow::Stopped),
                other => {
                    return Err(format!(
                        "shard {me}: expected Proceed, got {} (e{epoch})",
                        other.name()
                    ))
                }
            }
        }
        epoch += 1;
        if let Some(o) = stopped {
            outcome = outcome.combine(o);
            break;
        }
        if store.is_some()
            && opts.ckpt.every > 0
            && epoch < epochs_total
            && epoch.is_multiple_of(opts.ckpt.every)
        {
            save_worker_ckpt(
                store, ctx, me, n, &chain, &board, epoch, &mut warnings, &mut outcome,
            );
        }
    }
    save_worker_ckpt(store, ctx, me, n, &chain, &board, epoch, &mut warnings, &mut outcome);
    if strict_refusals > 0 {
        warnings.push(format!(
            "shard {me}: strict retirement gating refused {strict_refusals} retirement \
             attempt(s) on boundary drift"
        ));
    }
    if !chain.has_recorded() {
        chain.record_board_snapshot(&board);
        warnings.push(format!(
            "shard {me}: run ended before burn-in; marginals from a single snapshot"
        ));
        outcome = outcome.combine(RunOutcome::Degraded);
    }
    let owned_vars = chain.owned_vars();
    let (counts, series) = chain.finish();
    let report = DoneReport {
        stats: ShardStats {
            shard: me,
            owned_vars,
            halo_vars: plan.interface.halo[me].len(),
            boundary_factors: plan.interface.boundary_per_shard[me],
            halo_bytes: plan.interface.halo_bytes(me),
            epochs_sampled,
            retired_at,
            retire_halo_delta,
            retired_above_tol,
            flips_total: series.flips_total,
            samples_total: series.samples_total,
        },
        counts: counts.to_rows(),
        warnings,
        outcome: outcome_code(outcome),
        epochs_run: epoch as u64,
        series: SeriesWire::from_series(&series),
    };
    Ok(Flow::Done(Box::new(report)))
}

fn placeholder_stats(shard: usize) -> ShardStats {
    ShardStats {
        shard,
        owned_vars: 0,
        halo_vars: 0,
        boundary_factors: 0,
        halo_bytes: 0,
        epochs_sampled: 0,
        retired_at: None,
        retire_halo_delta: None,
        retired_above_tol: false,
        flips_total: 0,
        samples_total: 0,
    }
}

// ---------------------------------------------------- the coordinator

struct Slot {
    conn: Option<TcpStream>,
    handle: Option<Box<dyn WorkerHandle>>,
    restarts: usize,
    lost: bool,
    /// Checkpoint epochs advertised at the last `Hello`.
    epochs: Vec<u64>,
    /// A `Rollback` was sent (or the worker was just launched); a fresh
    /// `Hello` is owed before the next `Welcome`.
    needs_hello: bool,
    report: Option<DoneReport>,
}

enum Drive {
    Finished,
    Rendezvous,
}

struct Supervisor<'a> {
    graph: &'a FactorGraph,
    plan: &'a ShardPlan,
    ckpt: &'a ShardCkptOptions,
    cluster: &'a ClusterConfig,
    launcher: &'a dyn WorkerLauncher,
    status: Option<&'a StatusServer>,
    ctx: &'a ExecContext,
    listener: TcpListener,
    addr: SocketAddr,
    fingerprint: u64,
    epochs_total: usize,
    workers: Vec<Slot>,
    warnings: Vec<String>,
    outcome: RunOutcome,
    rendezvous_done: usize,
    epoch_now: u64,
    /// Coordinator-issued run ID, carried to workers in `Welcome`.
    run_id: u64,
    /// Fleet-wide metric aggregate fed from shipped `Telemetry` frames;
    /// shared with the status server when one is attached.
    fleet: Arc<Mutex<FleetView>>,
}

/// Runs sharded inference as a supervised multi-process cluster. The
/// coordinator owns no board: it relays write sets, sequences phases,
/// supervises the fleet, and merges the final reports. Worker failures
/// are restarted from checkpoints within `cluster.restart_budget`;
/// beyond it the run degrades rather than fails.
#[allow(clippy::too_many_arguments)]
pub fn run_cluster(
    graph: &FactorGraph,
    plan: &ShardPlan,
    cfg: &InferConfig,
    ckpt: &ShardCkptOptions,
    cluster: &ClusterConfig,
    launcher: &dyn WorkerLauncher,
    status: Option<&StatusServer>,
    ctx: &ExecContext,
) -> Result<ShardRunReport, InferError> {
    let cluster_err = |detail: String| InferError::Cluster { detail };
    let fingerprint = graph.fingerprint();
    if let Some(dir) = ckpt.dir.as_ref() {
        ShardManifest::new(plan, fingerprint)
            .write(dir)
            .map_err(|e| cluster_err(format!("cannot write shard manifest: {e}")))?;
    }
    let listener = TcpListener::bind(&cluster.listen)
        .map_err(|e| cluster_err(format!("cannot bind {}: {e}", cluster.listen)))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| cluster_err(format!("set nonblocking: {e}")))?;
    let addr = listener.local_addr().map_err(|e| cluster_err(e.to_string()))?;
    ctx.obs().info(format!("cluster coordinator listening on {addr}"));
    crate::exec::publish_static_gauges(ctx.obs(), plan);
    // One run ID per cluster run (never 0): wall-clock entropy mixed
    // with the graph fingerprint, stamped on the coordinator's own
    // traces and carried to every worker in `Welcome`.
    let run_id = {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        (nanos ^ fingerprint.rotate_left(32)) | 1
    };
    ctx.obs().set_run_id(run_id);
    ctx.obs().info(format!("cluster run id {run_id:#018x}"));
    let fleet = match status {
        Some(s) => s.fleet(),
        None => Arc::new(Mutex::new(FleetView::new(0))),
    };
    fleet.lock().expect("fleet lock").set_run_id(run_id);

    let workers = (0..plan.shards)
        .map(|_| Slot {
            conn: None,
            handle: None,
            restarts: 0,
            lost: false,
            epochs: Vec::new(),
            needs_hello: true,
            report: None,
        })
        .collect();
    let supervisor = Supervisor {
        graph,
        plan,
        ckpt,
        cluster,
        launcher,
        status,
        ctx,
        listener,
        addr,
        fingerprint,
        epochs_total: cfg.epochs.max(1),
        workers,
        warnings: Vec::new(),
        outcome: RunOutcome::Completed,
        rendezvous_done: 0,
        epoch_now: 0,
        run_id,
        fleet,
    };
    supervisor.run()
}

impl<'a> Supervisor<'a> {
    fn obs(&self) -> &sya_obs::Obs {
        self.ctx.obs()
    }

    fn live_indices(&self) -> Vec<usize> {
        (0..self.workers.len()).filter(|&w| !self.workers[w].lost).collect()
    }

    fn update_status(&self, done: bool) {
        {
            let mut fleet = self.fleet.lock().expect("fleet lock");
            fleet.observe_epoch(self.epoch_now);
            fleet.set_coordinator(self.obs().metrics_snapshot());
        }
        let Some(status) = self.status else { return };
        let shards = self.health();
        let degraded = self.outcome >= RunOutcome::Degraded
            || self.workers.iter().any(|s| s.lost);
        let epoch = self.epoch_now;
        status.set(move |s| {
            s.done = done;
            s.degraded = degraded;
            s.epoch = epoch;
            s.shards = shards;
        });
    }

    fn health(&self) -> Vec<ShardHealth> {
        self.workers
            .iter()
            .enumerate()
            .map(|(shard, s)| ShardHealth { shard, restarts: s.restarts, lost: s.lost })
            .collect()
    }

    fn workers_up_gauge(&self) {
        let up = self.workers.iter().filter(|s| !s.lost && s.conn.is_some()).count();
        self.obs().gauge_set(met::WORKERS_UP, up as f64);
    }

    fn launch(&mut self, shard: usize, attempt: usize) -> Result<(), String> {
        let spec = WorkerSpec { shard, attempt, connect: self.addr.to_string() };
        let handle = self.launcher.launch(&spec)?;
        self.workers[shard].handle = Some(handle);
        self.workers[shard].conn = None;
        self.workers[shard].needs_hello = true;
        Ok(())
    }

    /// Declares shard `w` lost: budget exhausted (or relaunch
    /// impossible). Its halo values stay frozen on the survivors'
    /// boards; the run continues degraded.
    fn lose(&mut self, w: usize, why: &str) {
        let slot = &mut self.workers[w];
        slot.lost = true;
        slot.conn = None;
        if let Some(h) = slot.handle.as_mut() {
            h.kill();
        }
        self.outcome = self.outcome.combine(RunOutcome::Degraded);
        self.warnings.push(format!(
            "shard {w} lost after {} restart(s) ({why}); continuing degraded with its last \
             published halo frozen",
            self.workers[w].restarts
        ));
        self.obs().counter_add(met::SHARDS_LOST, 1);
        self.obs().warn(format!("shard {w} lost; continuing degraded"));
        self.workers_up_gauge();
        // Informational; write failures here are themselves handled on
        // the next round's reads.
        let lost = Frame::ShardLost { shard: w as u32 };
        for v in self.live_indices() {
            if let Some(conn) = self.workers[v].conn.as_mut() {
                let _ = write_frame(conn, &lost);
            }
        }
        self.update_status(false);
    }

    /// Handles worker `w` failing with `why`. Returns `true` when the
    /// fleet must re-rendezvous (the worker was relaunched), `false`
    /// when the shard was lost and the current round may continue
    /// without it.
    fn worker_failed(&mut self, w: usize, why: &str, kind: Option<&WireError>) -> bool {
        match kind {
            Some(WireError::Timeout) => self.obs().counter_add(met::HEARTBEAT_TIMEOUTS, 1),
            Some(WireError::Corrupt(_)) => self.obs().counter_add(met::CORRUPT_FRAMES, 1),
            _ => {}
        }
        self.obs().warn(format!("worker {w} failed: {why}"));
        self.workers[w].conn = None;
        if let Some(h) = self.workers[w].handle.as_mut() {
            h.kill();
        }
        if self.workers[w].restarts >= self.cluster.restart_budget {
            self.lose(w, why);
            return false;
        }
        self.workers[w].restarts += 1;
        let attempt = self.workers[w].restarts;
        self.obs().counter_add(met::RESTARTS, 1);
        // Tell the survivors to fall back to the rendezvous first, so
        // they wait in Hello rather than mid-epoch while we back off.
        self.obs().counter_add(met::ROLLBACKS, 1);
        for v in self.live_indices() {
            if v == w {
                continue;
            }
            let slot = &mut self.workers[v];
            if let Some(conn) = slot.conn.as_mut() {
                if write_frame(conn, &Frame::Rollback).is_err() {
                    // Handled at the rendezvous: its Hello never comes.
                    slot.conn = None;
                }
                slot.needs_hello = true;
            }
        }
        // Seed jitter with the worker index: workers felled by a common
        // cause (shared host dying, coordinator OOM) restart spread out
        // instead of stampeding the coordinator in lockstep.
        let delay =
            self.cluster.backoff.delay_jittered(attempt.saturating_sub(1) as u32, w as u64);
        self.obs().gauge_set(met::BACKOFF_SECONDS, delay.as_secs_f64());
        std::thread::sleep(delay);
        match self.launch(w, attempt) {
            Ok(()) => {
                self.obs().info(format!(
                    "relaunched worker {w} (attempt {attempt} of {})",
                    self.cluster.restart_budget
                ));
                self.update_status(false);
                true
            }
            Err(e) => {
                self.lose(w, &format!("relaunch failed: {e}"));
                false
            }
        }
    }

    /// Accepts sockets and collects a fresh `Hello` from every live
    /// worker, then broadcasts `Welcome` at the newest checkpoint epoch
    /// common to all of them. `Ok(false)` means a failure was handled
    /// (restart or loss) and the rendezvous must rerun.
    fn rendezvous(&mut self) -> Result<bool, InferError> {
        let hello_deadline = Instant::now()
            + self.cluster.heartbeat.max(Duration::from_millis(200)) * 10
            + self.cluster.backoff.max;
        // Drain a fresh Hello from live workers that kept their socket
        // (they may still be flushing frames from the abandoned epoch).
        for w in self.live_indices() {
            if self.workers[w].conn.is_none() || !self.workers[w].needs_hello {
                continue;
            }
            match self.read_hello_from(w) {
                Ok(()) => {}
                Err(e) => {
                    self.worker_failed(w, &format!("rendezvous: {e}"), Some(&e));
                    return Ok(false);
                }
            }
        }
        // Accept connections for workers without one, routed by the
        // Hello's shard id.
        while self.live_indices().iter().any(|&w| self.workers[w].conn.is_none()) {
            if Instant::now() >= hello_deadline {
                let missing: Vec<usize> = self
                    .live_indices()
                    .into_iter()
                    .filter(|&w| self.workers[w].conn.is_none())
                    .collect();
                for w in missing {
                    self.worker_failed(w, "never connected for rendezvous", None);
                }
                return Ok(false);
            }
            match self.listener.accept() {
                Ok((mut conn, _)) => {
                    if self.adopt_connection(&mut conn).is_ok() {
                        // adopted into a slot inside
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    return Err(InferError::Cluster { detail: format!("accept: {e}") });
                }
            }
        }
        // Newest checkpoint epoch present in every live worker's list.
        let mut common: Option<BTreeSet<u64>> = None;
        for w in self.live_indices() {
            let set: BTreeSet<u64> = self.workers[w].epochs.iter().copied().collect();
            common = Some(match common {
                None => set,
                Some(c) => c.intersection(&set).copied().collect(),
            });
        }
        let start_epoch = common.and_then(|c| c.last().copied()).unwrap_or(0);
        if self.rendezvous_done > 0 {
            self.warnings.push(format!(
                "rendezvous {}: fleet resumes from epoch {start_epoch}",
                self.rendezvous_done
            ));
        }
        self.rendezvous_done += 1;
        self.epoch_now = start_epoch;
        let welcome = Frame::Welcome {
            start_epoch,
            epochs_total: self.epochs_total as u64,
            run_id: self.run_id,
        };
        for w in self.live_indices() {
            self.workers[w].needs_hello = false;
            let Some(conn) = self.workers[w].conn.as_mut() else { continue };
            if let Err(e) = write_frame(conn, &welcome) {
                self.worker_failed(w, &format!("welcome: {e}"), Some(&e));
                return Ok(false);
            }
        }
        self.workers_up_gauge();
        self.update_status(false);
        Ok(true)
    }

    /// Reads frames from worker `w`'s existing socket until a `Hello`,
    /// discarding stale epoch traffic from before the rollback.
    fn read_hello_from(&mut self, w: usize) -> Result<(), WireError> {
        let timeout = self.cluster.heartbeat.max(Duration::from_millis(200)) * 4;
        let conn = self.workers[w].conn.as_mut().expect("caller checked conn");
        conn.set_read_timeout(Some(timeout)).map_err(WireError::Io)?;
        loop {
            match read_frame(conn)? {
                Frame::Hello { shard, of, fingerprint, epochs } => {
                    if shard as usize != w || of as usize != self.workers.len() {
                        return Err(WireError::Corrupt(format!(
                            "hello claims shard {shard}/{of}, expected {w}/{}",
                            self.workers.len()
                        )));
                    }
                    if fingerprint != self.fingerprint {
                        return Err(WireError::Corrupt(format!(
                            "hello fingerprint {fingerprint:#x} does not match the graph"
                        )));
                    }
                    self.workers[w].epochs = epochs;
                    self.workers[w].needs_hello = false;
                    return Ok(());
                }
                _stale => {} // a Publish/EpochEnd from the abandoned epoch
            }
        }
    }

    /// Adopts an incoming connection: reads its `Hello` and routes it
    /// to the slot it names. Invalid or duplicate hellos drop the
    /// connection (the legitimate worker keeps its own socket).
    fn adopt_connection(&mut self, conn: &mut TcpStream) -> Result<(), String> {
        let timeout = self.cluster.heartbeat.max(Duration::from_millis(200)) * 4;
        conn.set_read_timeout(Some(timeout)).map_err(|e| e.to_string())?;
        let _ = conn.set_nodelay(true);
        match read_frame(conn) {
            Ok(Frame::Hello { shard, of, fingerprint, epochs }) => {
                let w = shard as usize;
                if w >= self.workers.len()
                    || of as usize != self.workers.len()
                    || fingerprint != self.fingerprint
                    || self.workers[w].lost
                    || self.workers[w].conn.is_some()
                {
                    return Err(format!("rejected hello from shard {shard}/{of}"));
                }
                self.workers[w].epochs = epochs;
                self.workers[w].needs_hello = false;
                self.workers[w].conn = Some(conn.try_clone().map_err(|e| e.to_string())?);
                Ok(())
            }
            Ok(other) => Err(format!("expected Hello, got {}", other.name())),
            Err(e) => Err(format!("bad hello: {e}")),
        }
    }

    /// Drives epochs after a successful rendezvous until the run ends,
    /// a relaunch forces a new rendezvous, or every shard is lost.
    fn drive(&mut self) -> Result<Drive, InferError> {
        loop {
            let live = self.live_indices();
            if live.is_empty() {
                return Ok(Drive::Finished);
            }
            // One round: a frame from every live worker (all Publish,
            // or all EpochEnd — the fleet is in lockstep).
            let mut frames: Vec<(usize, Frame)> = Vec::with_capacity(live.len());
            let mut shipped: Vec<(u32, u64, Vec<u8>)> = Vec::new();
            for w in live {
                // Telemetry frames precede the lockstep frame; drain
                // them aside (they never gate progress).
                let result = loop {
                    let read = {
                        let conn = self.workers[w].conn.as_mut().expect("live worker has conn");
                        conn.set_read_timeout(Some(self.cluster.heartbeat))
                            .map_err(WireError::Io)
                            .and_then(|()| read_frame(conn))
                    };
                    match read {
                        Ok(Frame::Telemetry { shard, epoch, payload }) => {
                            shipped.push((shard, epoch, payload));
                        }
                        other => break other,
                    }
                };
                match result {
                    Ok(frame) => frames.push((w, frame)),
                    Err(e) => {
                        if self.worker_failed(w, &e.to_string(), Some(&e)) {
                            return Ok(Drive::Rendezvous);
                        }
                    }
                }
            }
            for (shard, epoch, payload) in shipped {
                self.ingest_telemetry(shard, epoch, &payload);
            }
            frames.retain(|(w, _)| !self.workers[*w].lost);
            if frames.is_empty() {
                return Ok(Drive::Finished);
            }
            match &frames[0].1 {
                Frame::Publish { epoch, phase, .. } => {
                    let (epoch, phase) = (*epoch, *phase);
                    let mut merged: Vec<(u32, u32)> = Vec::new();
                    for (w, frame) in &frames {
                        match frame {
                            Frame::Publish { epoch: e, phase: p, writes }
                                if *e == epoch && *p == phase =>
                            {
                                merged.extend_from_slice(writes);
                            }
                            other => {
                                return Err(InferError::Cluster {
                                    detail: format!(
                                        "worker {w} broke lockstep: expected Publish \
                                         e{epoch} p{phase}, got {}",
                                        other.name()
                                    ),
                                })
                            }
                        }
                    }
                    let halo = Frame::Halo { epoch, phase, writes: merged };
                    if self.broadcast(&halo) {
                        return Ok(Drive::Rendezvous);
                    }
                }
                Frame::EpochEnd { epoch, .. } => {
                    let epoch = *epoch;
                    let mut all_retired = true;
                    for (w, frame) in &frames {
                        match frame {
                            Frame::EpochEnd { epoch: e, retired } if *e == epoch => {
                                all_retired &= *retired;
                            }
                            other => {
                                return Err(InferError::Cluster {
                                    detail: format!(
                                        "worker {w} broke lockstep: expected EpochEnd \
                                         e{epoch}, got {}",
                                        other.name()
                                    ),
                                })
                            }
                        }
                    }
                    self.obs().counter_add(met::HEARTBEATS, frames.len() as u64);
                    self.epoch_now = epoch + 1;
                    self.update_status(false);
                    let stop: Option<u8> = self
                        .ctx
                        .interrupted()
                        .map(outcome_code)
                        .or_else(|| all_retired.then_some(outcome_code(RunOutcome::Completed)));
                    if self.broadcast(&Frame::Proceed { stop }) {
                        return Ok(Drive::Rendezvous);
                    }
                    if let Some(code) = stop {
                        self.outcome = self.outcome.combine(outcome_from_code(code));
                        return Ok(Drive::Finished);
                    }
                    if epoch + 1 >= self.epochs_total as u64 {
                        return Ok(Drive::Finished);
                    }
                }
                other => {
                    return Err(InferError::Cluster {
                        detail: format!("unexpected {} frame mid-run", other.name()),
                    })
                }
            }
        }
    }

    /// Folds a worker's shipped metrics snapshot into the fleet view.
    /// Telemetry never gates lockstep: a payload that fails to decode
    /// is dropped with a warning, not a protocol error.
    fn ingest_telemetry(&mut self, shard: u32, epoch: u64, payload: &[u8]) {
        self.obs().counter_add(met::TELEMETRY_FRAMES, 1);
        match serde_json::from_slice::<TelemetryWire>(payload) {
            Ok(wire) => {
                self.fleet.lock().expect("fleet lock").record(shard, epoch, wire.into_snapshot());
            }
            Err(e) => self
                .obs()
                .warn(format!("shard {shard}: undecodable telemetry at epoch {epoch}: {e}")),
        }
    }

    /// Broadcasts to every live worker. Returns `true` when a write
    /// failure led to a relaunch (fleet must re-rendezvous).
    fn broadcast(&mut self, frame: &Frame) -> bool {
        for w in self.live_indices() {
            let Some(conn) = self.workers[w].conn.as_mut() else { continue };
            if let Err(e) = write_frame(conn, frame) {
                if self.worker_failed(w, &format!("broadcast {}: {e}", frame.name()), Some(&e)) {
                    return true;
                }
            }
        }
        false
    }

    fn run(mut self) -> Result<ShardRunReport, InferError> {
        for shard in 0..self.workers.len() {
            if let Err(e) = self.launch(shard, 0) {
                self.lose(shard, &format!("initial launch failed: {e}"));
            }
        }
        loop {
            if self.live_indices().is_empty() {
                break;
            }
            match self.rendezvous()? {
                true => {}
                false => continue,
            }
            match self.drive()? {
                Drive::Finished => break,
                Drive::Rendezvous => continue,
            }
        }
        self.collect_reports();
        self.finish()
    }

    /// Reads the `Done` report from every surviving worker. A failure
    /// here no longer restarts anyone — the counts are recovered from
    /// the shard's newest checkpoint instead, degraded.
    fn collect_reports(&mut self) {
        let timeout = self.cluster.heartbeat.max(Duration::from_secs(1)) * 10;
        for w in self.live_indices() {
            let result = {
                let Some(conn) = self.workers[w].conn.as_mut() else { continue };
                conn.set_read_timeout(Some(timeout)).map_err(WireError::Io).and_then(|()| {
                    loop {
                        match read_frame(conn)? {
                            Frame::Done { report } => break Ok(report),
                            // Stale frames from an abandoned broadcast.
                            Frame::Publish { .. }
                            | Frame::EpochEnd { .. }
                            | Frame::Telemetry { .. } => {}
                            other => {
                                break Err(WireError::Corrupt(format!(
                                    "expected Done, got {}",
                                    other.name()
                                )))
                            }
                        }
                    }
                })
            };
            match result.map_err(|e| e.to_string()).and_then(|bytes| {
                serde_json::from_slice::<DoneReport>(&bytes).map_err(|e| e.to_string())
            }) {
                Ok(report) => self.workers[w].report = Some(report),
                Err(e) => {
                    self.warnings.push(format!(
                        "shard {w}: no final report ({e}); recovering counts from its \
                         newest checkpoint"
                    ));
                    self.outcome = self.outcome.combine(RunOutcome::Degraded);
                }
            }
        }
    }

    /// The newest valid checkpointed counts of a shard that produced no
    /// report, plus the epoch they cover.
    fn recover_from_ckpt(&self, shard: usize) -> Option<(MarginalCounts, u64)> {
        let dir = self.ckpt.dir.as_ref()?;
        let store = CheckpointStore::create(dir.join(store_name(shard)), self.fingerprint).ok()?;
        let epochs = valid_shard_epochs(&store, self.graph, shard, self.workers.len());
        let newest = *epochs.last()?;
        let state = store.load_epoch(newest).ok()?;
        let CheckpointState::Shard { chain, .. } = state else { return None };
        let (_, _, _, counts, _) = chain.restore(self.graph).ok()?;
        Some((counts, newest))
    }

    fn finish(mut self) -> Result<ShardRunReport, InferError> {
        let n = self.workers.len();
        let obs = self.obs().clone();
        let mut total = MarginalCounts::new(self.graph);
        let mut per_shard = Vec::with_capacity(n);
        let mut per_shard_counts = Vec::with_capacity(n);
        let mut all_series = Vec::new();
        let mut epochs_run = 0usize;
        let mut max_halo_delta: Option<f64> = None;
        let mut any_counts = false;
        for w in 0..n {
            let report = self.workers[w].report.take();
            match report {
                Some(report) => {
                    self.outcome = self.outcome.combine(outcome_from_code(report.outcome));
                    self.warnings.extend(report.warnings);
                    epochs_run = epochs_run.max(report.epochs_run as usize);
                    let counts = MarginalCounts::from_rows(self.graph, report.counts)
                        .map_err(|e| InferError::Cluster {
                            detail: format!("shard {w} returned malformed counts: {e}"),
                        })?;
                    let series = report.series.into_series();
                    series.publish(&obs, &format!("shard.{w}"));
                    obs.gauge_set(
                        &format!("shard.{w}.retired_at"),
                        report.stats.retired_at.map_or(-1.0, |e| e as f64),
                    );
                    if let Some(b) = report.stats.retire_halo_delta {
                        obs.gauge_set(&format!("shard.{w}.retire.halo_delta"), b);
                        max_halo_delta = Some(max_halo_delta.map_or(b, |m: f64| m.max(b)));
                    }
                    total.merge(&counts);
                    any_counts = true;
                    all_series.push(series);
                    per_shard_counts.push(counts);
                    per_shard.push(report.stats);
                }
                None => {
                    let mut stats = placeholder_stats(w);
                    stats.owned_vars = self.plan.owned[w].len();
                    stats.halo_vars = self.plan.interface.halo[w].len();
                    stats.boundary_factors = self.plan.interface.boundary_per_shard[w];
                    stats.halo_bytes = self.plan.interface.halo_bytes(w);
                    match self.recover_from_ckpt(w) {
                        Some((counts, epoch)) => {
                            self.warnings.push(format!(
                                "shard {w}: merged counts recovered from its checkpoint at \
                                 epoch {epoch}"
                            ));
                            stats.epochs_sampled = epoch as usize;
                            total.merge(&counts);
                            any_counts = true;
                            per_shard_counts.push(counts);
                        }
                        None => {
                            self.warnings.push(format!(
                                "shard {w}: no report and no usable checkpoint; its \
                                 marginal rows are zero"
                            ));
                            per_shard_counts.push(MarginalCounts::new(self.graph));
                        }
                    }
                    per_shard.push(stats);
                }
            }
        }
        if !any_counts {
            return Err(InferError::Cluster {
                detail: "every shard was lost with no report and no usable checkpoint"
                    .to_owned(),
            });
        }
        if let Some(b) = max_halo_delta {
            obs.gauge_set("shard.retire.halo_delta", b);
        }
        let telemetry = ConvergenceSeries::merge_mean(&all_series);
        telemetry.publish(&obs, "infer.shard");
        obs.gauge_set("shard.epochs_run", epochs_run as f64);
        self.epoch_now = epochs_run as u64;
        self.update_status(true);
        self.workers_up_gauge();
        let health = self.health();
        Ok(ShardRunReport {
            counts: total,
            outcome: self.outcome,
            warnings: self.warnings,
            telemetry,
            per_shard,
            health,
            per_shard_counts,
            epochs_run,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_codes_round_trip() {
        for o in [
            RunOutcome::Completed,
            RunOutcome::Degraded,
            RunOutcome::TimedOut,
            RunOutcome::Cancelled,
        ] {
            assert_eq!(outcome_from_code(outcome_code(o)), o);
        }
    }

    #[test]
    fn status_json_reports_degradation_and_health_labels() {
        let status = ClusterStatus {
            done: true,
            degraded: true,
            epoch: 42,
            shards: vec![
                ShardHealth { shard: 0, restarts: 0, lost: false },
                ShardHealth { shard: 1, restarts: 2, lost: false },
                ShardHealth { shard: 2, restarts: 3, lost: true },
            ],
        };
        let json = render_status(&status);
        assert!(json.contains("\"status\":\"degraded\""), "{json}");
        assert!(json.contains("\"done\":true"), "{json}");
        assert!(json.contains("\"epoch\":42"), "{json}");
        assert!(json.contains("{\"shard\":0,\"health\":\"healthy\",\"restarts\":0}"), "{json}");
        assert!(json.contains("{\"shard\":1,\"health\":\"restarted\",\"restarts\":2}"), "{json}");
        assert!(json.contains("{\"shard\":2,\"health\":\"lost\",\"restarts\":3}"), "{json}");

        let ok = ClusterStatus { done: false, degraded: false, epoch: 0, shards: vec![] };
        assert_eq!(render_status(&ok), "{\"status\":\"ok\",\"done\":false,\"epoch\":0,\"shards\":[]}");
    }

    #[test]
    fn series_wire_round_trips_the_convergence_series() {
        let mut s = ConvergenceSeries::default();
        s.flip_rate = vec![0.5, 0.25];
        s.marginal_delta = vec![0.1, 0.05];
        s.pll = vec![(0.0, -12.5)];
        s.conclique_samples[0] = 7;
        s.samples_total = 100;
        s.flips_total = 40;
        s.epochs = 2;
        let wire = SeriesWire::from_series(&s);
        let text = serde_json::to_string(&wire).unwrap();
        let back: SeriesWire = serde_json::from_str(&text).unwrap();
        assert_eq!(back.into_series(), s);
    }
}
