//! The partitioner: cut a grounded knowledge base along pyramid cells
//! into `N` ownership classes.
//!
//! The rule (DESIGN.md §12): sort the non-empty cells of the partition
//! level spatially (column-major over `(col, row)`), then split the
//! sorted run into `N` contiguous groups balanced by variable count.
//! Contiguity keeps each shard's footprint compact, which is what keeps
//! the boundary-factor count — and therefore the halo — small.
//! Unlocated variables carry no spatial signal, so they are dealt
//! round-robin.

use serde::Serialize;
use sya_fg::{FactorGraph, ShardInterface, VarId};
use sya_ground::CellVariableMap;

/// A complete partitioning decision: the owner map, each shard's
/// ownership class, and the halo/boundary interface metadata.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    pub shards: usize,
    /// Pyramid level the cut was made at (`2^l × 2^l` cells).
    pub partition_level: u8,
    /// `owner[v]` = shard that owns variable `v`. Total: every variable
    /// has exactly one owner.
    pub owner: Vec<u32>,
    /// Per shard: the variables it owns (sorted). Evidence variables
    /// included — the owner records their marginal rows.
    pub owned: Vec<Vec<VarId>>,
    /// Interior/boundary factor classification and per-shard halo sets.
    pub interface: ShardInterface,
}

impl ShardPlan {
    /// Partitions `graph` into `shards` ownership classes using the
    /// cell map emitted by the grounder at the partition level.
    ///
    /// # Panics
    /// Panics when `shards == 0` or the cell map names a variable the
    /// graph does not have.
    pub fn build(
        graph: &FactorGraph,
        cells: &CellVariableMap,
        shards: usize,
        partition_level: u8,
    ) -> ShardPlan {
        assert!(shards >= 1, "a sharded run needs at least one shard");
        let n_vars = graph.num_variables();
        let mut owner = vec![u32::MAX; n_vars];

        // Contiguous balanced split of the spatially sorted cells: when
        // a group reaches the fair share of what is left, move on.
        let mut remaining: usize = cells.values().map(Vec::len).sum();
        let mut shard = 0usize;
        let mut groups_left = shards;
        let mut target = remaining.div_ceil(groups_left.max(1));
        let mut acc = 0usize;
        for vars in cells.values() {
            if acc >= target && shard + 1 < shards {
                shard += 1;
                groups_left -= 1;
                target = remaining.div_ceil(groups_left);
                acc = 0;
            }
            for &v in vars {
                owner[v as usize] = shard as u32;
            }
            acc += vars.len();
            remaining -= vars.len();
        }

        // Unlocated variables (absent from the cell map): round-robin.
        let mut rr = 0usize;
        for o in owner.iter_mut() {
            if *o == u32::MAX {
                *o = (rr % shards) as u32;
                rr += 1;
            }
        }

        let mut owned: Vec<Vec<VarId>> = vec![Vec::new(); shards];
        for (v, &o) in owner.iter().enumerate() {
            owned[o as usize].push(v as VarId);
        }
        let interface = graph.shard_interface(&owner, shards);
        ShardPlan { shards, partition_level, owner, owned, interface }
    }

    /// The shard owning variable `v` — what the serving router uses to
    /// map a marginal query or an evidence POST to a shard.
    pub fn owner_of(&self, v: VarId) -> usize {
        self.owner[v as usize] as usize
    }

    /// Per-shard summary rows (for gauges, manifests, bench output).
    pub fn summaries(&self) -> Vec<ShardSummary> {
        (0..self.shards)
            .map(|s| ShardSummary {
                shard: s,
                owned_vars: self.owned[s].len(),
                halo_vars: self.interface.halo[s].len(),
                boundary_factors: self.interface.boundary_per_shard[s],
                halo_bytes: self.interface.halo_bytes(s),
            })
            .collect()
    }
}

/// Static per-shard sizing, known before any sampling runs.
#[derive(Debug, Clone, Serialize, PartialEq, Eq)]
pub struct ShardSummary {
    pub shard: usize,
    pub owned_vars: usize,
    pub halo_vars: usize,
    pub boundary_factors: usize,
    pub halo_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sya_fg::Variable;
    use sya_geom::Point;
    use sya_ground::pyramid_cell_map;

    /// An n×n unit grid with 4-neighbour spatial factors.
    fn grid(n: usize) -> FactorGraph {
        let mut g = FactorGraph::new();
        for r in 0..n {
            for c in 0..n {
                g.add_variable(
                    Variable::binary(0, format!("v{r}_{c}"))
                        .at(Point::new(c as f64 + 0.5, r as f64 + 0.5)),
                );
            }
        }
        for r in 0..n {
            for c in 0..n {
                let i = (r * n + c) as VarId;
                if c + 1 < n {
                    g.add_spatial_factor(sya_fg::SpatialFactor::binary(i, i + 1, 0.5));
                }
                if r + 1 < n {
                    g.add_spatial_factor(sya_fg::SpatialFactor::binary(i, i + n as VarId, 0.5));
                }
            }
        }
        g
    }

    #[test]
    fn every_variable_gets_exactly_one_owner() {
        let mut g = grid(4);
        g.add_variable(Variable::binary(0, "floating-a"));
        g.add_variable(Variable::binary(0, "floating-b"));
        let cells = pyramid_cell_map(&g, 2);
        for shards in [1, 2, 3, 4, 7] {
            let plan = ShardPlan::build(&g, &cells, shards, 2);
            assert!(plan.owner.iter().all(|&o| (o as usize) < shards));
            let total: usize = plan.owned.iter().map(Vec::len).sum();
            assert_eq!(total, g.num_variables(), "shards={shards}");
            // Ownership classes are disjoint by construction of `owner`.
        }
    }

    #[test]
    fn split_is_balanced_by_variable_count() {
        let g = grid(8); // 64 located vars
        let cells = pyramid_cell_map(&g, 3);
        let plan = ShardPlan::build(&g, &cells, 4, 3);
        for s in 0..4 {
            let n = plan.owned[s].len();
            assert!((10..=22).contains(&n), "shard {s} owns {n} of 64");
        }
    }

    #[test]
    fn single_shard_owns_everything_with_empty_interface() {
        let g = grid(3);
        let cells = pyramid_cell_map(&g, 2);
        let plan = ShardPlan::build(&g, &cells, 1, 2);
        assert_eq!(plan.owned[0].len(), 9);
        assert_eq!(plan.interface.boundary_factors, 0);
        assert!(plan.interface.halo[0].is_empty());
        assert_eq!(plan.summaries()[0].halo_bytes, 0);
    }

    #[test]
    fn more_shards_than_cells_leaves_late_shards_empty_but_valid() {
        let g = grid(2); // level 1 → at most 4 cells
        let cells = pyramid_cell_map(&g, 1);
        let plan = ShardPlan::build(&g, &cells, 8, 1);
        let total: usize = plan.owned.iter().map(Vec::len).sum();
        assert_eq!(total, 4);
        assert_eq!(plan.summaries().len(), 8);
    }

    #[test]
    fn contiguous_cut_keeps_boundary_small_on_a_grid() {
        let g = grid(8);
        let cells = pyramid_cell_map(&g, 3);
        let plan = ShardPlan::build(&g, &cells, 2, 3);
        // 2·8·7 = 112 factors; a compact 2-way cut of an 8×8 grid must
        // leave far fewer than half of them on the boundary.
        assert!(
            plan.interface.boundary_factors < 30,
            "boundary factors: {}",
            plan.interface.boundary_factors
        );
        assert_eq!(
            plan.interface.interior_factors + plan.interface.boundary_factors,
            112
        );
    }
}
