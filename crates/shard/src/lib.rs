//! # sya-shard — the spatial sharding layer
//!
//! Scales Sya's inference out by cutting the knowledge base along
//! pyramid cells (DESIGN.md §12):
//!
//! * [`plan`] — the partitioner: the `2^l × 2^l` cells of the partition
//!   level, sorted spatially and split into `N` contiguous groups
//!   balanced by variable count; every factor is classified interior or
//!   *boundary* and every variable is, per shard, owned or a *halo*
//!   (read-only replica of a neighbour's variable);
//! * [`exec`] — per-shard `SpatialGibbs` chains on their own threads
//!   over a shared assignment board, synchronizing halo state at
//!   phase/epoch barriers (block-Gibbs halo exchange), with per-shard
//!   `sya-ckpt` checkpoint stores tied together by a manifest, per-shard
//!   `sya-obs` gauges (`shard.N.vars`, `shard.N.boundary_factors`,
//!   `shard.N.halo_bytes`) and flip-rate series, and an optional
//!   convergence-based retirement policy that lets quiet shards stop
//!   sampling early.
//!
//! The executor's draws use RNG streams derived from `(seed, epoch,
//! variable)` and Jacobi-style frozen-board phases, so without
//! retirement the merged marginals are **bit-identical for every shard
//! count** — `sya run --shards 4` equals `--shards 1` exactly.
//! The serving router that maps queries and evidence to owning shards
//! lives in `sya-serve`.

pub mod cluster;
pub mod exec;
pub mod plan;
pub mod wire;

pub use cluster::{
    render_status, run_cluster, run_worker, ClusterConfig, ClusterStatus, StatusServer,
    ThreadLauncher, WorkerHandle, WorkerLauncher, WorkerOptions, WorkerSpec,
};
pub use exec::{
    run_sharded, RetirePolicy, ShardCkptOptions, ShardHealth, ShardManifest, ShardRunReport,
    ShardStats, MANIFEST_FILE, MANIFEST_SCHEMA,
};
pub use plan::{ShardPlan, ShardSummary};
pub use wire::{Frame, WireError};

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use sya_fg::{FactorGraph, SpatialFactor, VarId, Variable};
    use sya_geom::Point;
    use sya_ground::pyramid_cell_map;
    use sya_infer::{InferConfig, PyramidIndex};
    use sya_runtime::ExecContext;

    fn grid(n: usize, evidence_at_origin: bool) -> FactorGraph {
        let mut g = FactorGraph::new();
        for r in 0..n {
            for c in 0..n {
                let mut v = Variable::binary(0, format!("v{r}_{c}"))
                    .at(Point::new(c as f64 + 0.5, r as f64 + 0.5));
                if evidence_at_origin && r == 0 && c == 0 {
                    v.evidence = Some(1);
                }
                g.add_variable(v);
            }
        }
        for r in 0..n {
            for c in 0..n {
                let i = (r * n + c) as VarId;
                if c + 1 < n {
                    g.add_spatial_factor(SpatialFactor::binary(i, i + 1, 0.8));
                }
                if r + 1 < n {
                    g.add_spatial_factor(SpatialFactor::binary(i, i + n as VarId, 0.8));
                }
            }
        }
        g
    }

    fn cfg(epochs: usize) -> InferConfig {
        InferConfig {
            epochs,
            burn_in: (epochs / 10).max(1),
            levels: 2,
            locality_level: 2,
            seed: 42,
            ..Default::default()
        }
    }

    fn run(graph: &FactorGraph, cfg: &InferConfig, shards: usize) -> ShardRunReport {
        let pyramid = PyramidIndex::build(graph, cfg.levels, cfg.cell_capacity);
        let cells = pyramid_cell_map(graph, 1);
        let plan = ShardPlan::build(graph, &cells, shards, 1);
        run_sharded(
            graph,
            &pyramid,
            &plan,
            cfg,
            None,
            &ShardCkptOptions::default(),
            &ExecContext::unbounded(),
        )
        .unwrap()
    }

    #[test]
    fn merged_marginals_are_bit_identical_across_shard_counts() {
        let g = grid(4, true);
        let cfg = cfg(200);
        let reference = run(&g, &cfg, 1);
        for shards in [2, 3, 4] {
            let sharded = run(&g, &cfg, shards);
            assert_eq!(
                reference.counts, sharded.counts,
                "shards={shards} must reproduce the single-shard counts exactly"
            );
        }
    }

    /// A variable whose factors all sit inside one shard is never
    /// resampled by any other shard: every foreign shard's counts have
    /// an all-zero row for it.
    #[test]
    fn interior_variable_is_never_resampled_by_a_foreign_shard() {
        let g = grid(4, false);
        let cells = pyramid_cell_map(&g, 1);
        let plan = ShardPlan::build(&g, &cells, 4, 1);
        // Pick an interior variable: all its neighbours share its owner.
        let interior = (0..g.num_variables() as VarId)
            .find(|&v| {
                g.neighbours(v)
                    .iter()
                    .all(|&u| plan.owner[u as usize] == plan.owner[v as usize])
            })
            .expect("a 4×4 grid cut into quadrants has interior variables");
        let home = plan.owner_of(interior);

        let cfg = cfg(100);
        let report = run(&g, &cfg, 4);
        for (s, counts) in report.per_shard_counts.iter().enumerate() {
            let row_total = counts.total_samples(interior);
            if s == home {
                assert!(row_total > 0, "owner must sample its interior variable");
            } else {
                assert_eq!(
                    row_total, 0,
                    "shard {s} recorded samples for variable {interior} owned by {home}"
                );
            }
        }
    }

    #[test]
    fn report_carries_per_shard_interface_stats() {
        let g = grid(4, true);
        let report = run(&g, &cfg(60), 2);
        assert_eq!(report.per_shard.len(), 2);
        let halo_total: usize = report.per_shard.iter().map(|s| s.halo_vars).sum();
        assert!(halo_total > 0, "a cut 4×4 grid has halo variables");
        for s in &report.per_shard {
            assert_eq!(s.halo_bytes, s.halo_vars * 4);
            assert!(s.owned_vars > 0);
            assert!(s.samples_total > 0);
        }
        assert_eq!(report.epochs_run, 60);
        assert!(report.outcome.is_completed());
    }

    #[test]
    fn retirement_ends_the_run_early_and_reports_it() {
        // Strong evidence coupling + generous tolerance: every shard
        // retires long before the epoch budget.
        let g = grid(4, true);
        let cfg = cfg(4000);
        let pyramid = PyramidIndex::build(&g, cfg.levels, cfg.cell_capacity);
        let cells = pyramid_cell_map(&g, 1);
        let plan = ShardPlan::build(&g, &cells, 2, 1);
        let policy = RetirePolicy { tol: 0.05, window: 4, min_epoch: 0, strict: false };
        let report = run_sharded(
            &g,
            &pyramid,
            &plan,
            &cfg,
            Some(policy),
            &ShardCkptOptions::default(),
            &ExecContext::unbounded(),
        )
        .unwrap();
        assert!(
            report.epochs_run < 4000,
            "all shards should retire early, ran {}",
            report.epochs_run
        );
        for s in &report.per_shard {
            assert!(s.retired_at.is_some(), "shard {} never retired", s.shard);
            assert!(s.epochs_sampled < 4000);
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sya_shard_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpoints_write_per_shard_stores_and_manifest_and_resume_matches() {
        let g = grid(4, true);
        let cfg = cfg(120);
        let pyramid = PyramidIndex::build(&g, cfg.levels, cfg.cell_capacity);
        let cells = pyramid_cell_map(&g, 1);
        let plan = ShardPlan::build(&g, &cells, 2, 1);
        let dir = tmp_dir("resume");

        // Uninterrupted reference.
        let reference = run_sharded(
            &g,
            &pyramid,
            &plan,
            &cfg,
            None,
            &ShardCkptOptions::default(),
            &ExecContext::unbounded(),
        )
        .unwrap();

        // First leg: stop early via a tiny epoch budget, checkpointing.
        let mut first_cfg = cfg.clone();
        first_cfg.epochs = 60;
        first_cfg.burn_in = cfg.burn_in;
        let opts = ShardCkptOptions { dir: Some(dir.clone()), every: 10, resume: false };
        run_sharded(&g, &pyramid, &plan, &first_cfg, None, &opts, &ExecContext::unbounded())
            .unwrap();

        let manifest = ShardManifest::read(&dir).unwrap();
        assert_eq!(manifest.schema, MANIFEST_SCHEMA);
        assert_eq!(manifest.shards, 2);
        for name in &manifest.stores {
            let files: Vec<_> = std::fs::read_dir(dir.join(name))
                .unwrap()
                .map(|e| e.unwrap().path())
                .filter(|p| p.extension().is_some_and(|e| e == "syackpt"))
                .collect();
            assert!(!files.is_empty(), "store {name} has checkpoint files");
        }

        // Second leg: resume and run to the full budget.
        let opts = ShardCkptOptions { dir: Some(dir.clone()), every: 10, resume: true };
        let resumed =
            run_sharded(&g, &pyramid, &plan, &cfg, None, &opts, &ExecContext::unbounded())
                .unwrap();
        assert!(
            resumed.warnings.iter().any(|w| w.contains("resumed all 2 shards from epoch 60")),
            "warnings: {:?}",
            resumed.warnings
        );
        assert_eq!(
            resumed.counts, reference.counts,
            "interrupted+resumed must equal the uninterrupted run exactly"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_shard_count_mismatch_starts_fresh() {
        let g = grid(4, true);
        let cfg = cfg(40);
        let pyramid = PyramidIndex::build(&g, cfg.levels, cfg.cell_capacity);
        let cells = pyramid_cell_map(&g, 1);
        let dir = tmp_dir("mismatch");

        let plan2 = ShardPlan::build(&g, &cells, 2, 1);
        let opts = ShardCkptOptions { dir: Some(dir.clone()), every: 5, resume: false };
        run_sharded(&g, &pyramid, &plan2, &cfg, None, &opts, &ExecContext::unbounded()).unwrap();

        let plan3 = ShardPlan::build(&g, &cells, 3, 1);
        let opts = ShardCkptOptions { dir: Some(dir.clone()), every: 5, resume: true };
        let report =
            run_sharded(&g, &pyramid, &plan3, &cfg, None, &opts, &ExecContext::unbounded())
                .unwrap();
        assert!(
            report.warnings.iter().any(|w| w.contains("starting fresh")),
            "warnings: {:?}",
            report.warnings
        );
        assert_eq!(ShardManifest::read(&dir).unwrap().shards, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Exact marginals by enumeration over free binary variables.
    fn exact_marginals(g: &FactorGraph) -> Vec<f64> {
        let free: Vec<VarId> = g.query_variables();
        let mut base: Vec<u32> = g
            .variables()
            .iter()
            .map(|v| v.evidence.unwrap_or(0))
            .collect();
        let mut mass = vec![0.0; g.num_variables()];
        let mut z = 0.0;
        for bits in 0..(1u32 << free.len()) {
            for (i, &v) in free.iter().enumerate() {
                base[v as usize] = (bits >> i) & 1;
            }
            let w = sya_fg::log_prob_unnormalized(g, &base).exp();
            z += w;
            for &v in &free {
                if base[v as usize] == 1 {
                    mass[v as usize] += w;
                }
            }
        }
        mass.iter().map(|m| m / z).collect()
    }

    #[test]
    fn sharded_marginals_converge_to_the_exact_distribution() {
        // The bitwise tests pin shard counts to each other; this pins
        // the whole construction to the model it is supposed to sample.
        let g = grid(3, true);
        let exact = exact_marginals(&g);
        let mut cfg = cfg(8000);
        cfg.seed = 5;
        let report = run(&g, &cfg, 2);
        let max_delta = g
            .query_variables()
            .into_iter()
            .map(|v| (report.counts.factual_score(v) - exact[v as usize]).abs())
            .fold(0.0, f64::max);
        assert!(max_delta < 0.05, "sharded vs exact marginal delta {max_delta}");
    }
}
