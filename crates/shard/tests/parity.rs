//! Property tests for the sharding layer (vendored `proptest`).
//!
//! Two layers of guarantee over randomized small knowledge bases,
//! across shard counts and partition levels:
//!
//! 1. **Bitwise**: `run_sharded` at any shard count reproduces the
//!    1-shard counts exactly — the determinism the `--shards` flag
//!    advertises.
//! 2. **Statistical**: sharded marginals land within tolerance of the
//!    classic single-instance `spatial_gibbs` sampler — the sharded
//!    construction estimates the same distribution, not just a
//!    self-consistent one.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sya_fg::{Factor, FactorGraph, FactorKind, SpatialFactor, VarId, Variable};
use sya_geom::Point;
use sya_ground::pyramid_cell_map;
use sya_infer::{spatial_gibbs, InferConfig, PyramidIndex};
use sya_runtime::ExecContext;
use sya_shard::{run_sharded, ShardCkptOptions, ShardPlan, ShardRunReport};

/// A small random KB: mostly-located binary atoms on a chain of spatial
/// factors plus a few random logical couplings; sometimes evidence.
fn random_kb(seed: u64, n: usize) -> FactorGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = FactorGraph::new();
    for i in 0..n {
        let mut v = Variable::binary(0, format!("a{i}"));
        if rng.gen_bool(0.85) {
            v = v.at(Point::new(rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0)));
        }
        if i == 0 && rng.gen_bool(0.5) {
            v = v.with_evidence(1);
        }
        g.add_variable(v);
    }
    for i in 0..n - 1 {
        g.add_spatial_factor(SpatialFactor::binary(
            i as VarId,
            (i + 1) as VarId,
            rng.gen_range(0.1..1.0),
        ));
    }
    for _ in 0..n / 2 {
        let a = rng.gen_range(0..n as VarId);
        let b = rng.gen_range(0..n as VarId);
        if a != b {
            g.add_factor(Factor::new(
                FactorKind::Imply,
                vec![a.min(b), a.max(b)],
                rng.gen_range(0.1..0.8),
            ));
        }
    }
    g
}

fn infer_cfg(epochs: usize, seed: u64) -> InferConfig {
    InferConfig {
        epochs,
        burn_in: (epochs / 10).max(1),
        instances: 1,
        levels: 3,
        locality_level: 3,
        seed,
        ..Default::default()
    }
}

fn run(g: &FactorGraph, cfg: &InferConfig, shards: usize, level: u8) -> ShardRunReport {
    let pyramid = PyramidIndex::build(g, cfg.levels, cfg.cell_capacity);
    let cells = pyramid_cell_map(g, level);
    let plan = ShardPlan::build(g, &cells, shards, level);
    run_sharded(
        g,
        &pyramid,
        &plan,
        cfg,
        None,
        &ShardCkptOptions::default(),
        &ExecContext::unbounded(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_counts_match_single_shard_bitwise(
        seed in 0u64..10_000,
        n in 4usize..11,
        shards in prop::sample::select(vec![2usize, 3, 4, 5]),
        level in prop::sample::select(vec![1u8, 2, 3]),
    ) {
        let g = random_kb(seed, n);
        let cfg = infer_cfg(300, seed ^ 0xABCD);
        let reference = run(&g, &cfg, 1, level);
        let sharded = run(&g, &cfg, shards, level);
        prop_assert_eq!(
            &reference.counts,
            &sharded.counts,
            "shards={} level={} seed={} diverged from the 1-shard run",
            shards, level, seed
        );
        // Ownership classes partition the samples: per-shard counts
        // merge back to the total.
        let mut merged = reference.per_shard_counts[0].clone();
        let mut empty = true;
        for (i, c) in sharded.per_shard_counts.iter().enumerate() {
            if i == 0 { merged = c.clone(); } else { merged.merge(c); }
            empty = false;
        }
        prop_assert!(!empty);
        prop_assert_eq!(&merged, &sharded.counts);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn sharded_marginals_within_tolerance_of_classic_spatial_gibbs(
        seed in 0u64..10_000,
        n in 4usize..10,
        shards in prop::sample::select(vec![2usize, 3, 4]),
        level in prop::sample::select(vec![1u8, 2]),
    ) {
        let g = random_kb(seed, n);
        let cfg = infer_cfg(6000, seed ^ 0x5EED);
        let sharded = run(&g, &cfg, shards, level);
        let pyramid = PyramidIndex::build(&g, cfg.levels, cfg.cell_capacity);
        let classic = spatial_gibbs(&g, &pyramid, &cfg);
        let max_delta = g
            .query_variables()
            .into_iter()
            .map(|v| (sharded.counts.factual_score(v) - classic.factual_score(v)).abs())
            .fold(0.0, f64::max);
        prop_assert!(
            max_delta < 0.15,
            "shards={} level={} seed={}: max marginal delta {} vs classic sampler",
            shards, level, seed, max_delta
        );
    }
}
