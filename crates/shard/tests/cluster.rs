//! Integration tests for the supervised shard cluster.
//!
//! Workers run as threads ([`ThreadLauncher`]) but speak the real TCP
//! wire protocol to a real coordinator — the full supervision machinery
//! (heartbeats, rollback, restart-from-checkpoint, degraded loss) minus
//! process management, which `ci.sh`'s chaos smoke covers end to end.

use std::path::PathBuf;
use std::time::Duration;

use sya_fg::{FactorGraph, SpatialFactor, VarId, Variable};
use sya_geom::Point;
use sya_ground::pyramid_cell_map;
use sya_infer::{InferConfig, PyramidIndex};
use sya_runtime::{Backoff, ExecContext, FaultPlan, RunOutcome};
use sya_shard::{
    run_cluster, run_sharded, ClusterConfig, ShardCkptOptions, ShardPlan, ShardRunReport,
    ThreadLauncher,
};

fn grid(n: usize) -> FactorGraph {
    let mut g = FactorGraph::new();
    for r in 0..n {
        for c in 0..n {
            let mut v = Variable::binary(0, format!("v{r}_{c}"))
                .at(Point::new(c as f64 + 0.5, r as f64 + 0.5));
            if r == 0 && c == 0 {
                v.evidence = Some(1);
            }
            g.add_variable(v);
        }
    }
    for r in 0..n {
        for c in 0..n {
            let i = (r * n + c) as VarId;
            if c + 1 < n {
                g.add_spatial_factor(SpatialFactor::binary(i, i + 1, 0.8));
            }
            if r + 1 < n {
                g.add_spatial_factor(SpatialFactor::binary(i, i + n as VarId, 0.8));
            }
        }
    }
    g
}

fn cfg(epochs: usize) -> InferConfig {
    InferConfig {
        epochs,
        burn_in: (epochs / 10).max(1),
        levels: 2,
        locality_level: 2,
        seed: 42,
        ..Default::default()
    }
}

fn plan_for(graph: &FactorGraph, shards: usize) -> ShardPlan {
    let cells = pyramid_cell_map(graph, 1);
    ShardPlan::build(graph, &cells, shards, 1)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sya_cluster_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A quick supervision config: short heartbeat and backoff so failure
/// paths resolve in milliseconds, not the production defaults.
fn quick_cluster() -> ClusterConfig {
    ClusterConfig {
        listen: "127.0.0.1:0".to_owned(),
        heartbeat: Duration::from_millis(500),
        backoff: Backoff::new(Duration::from_millis(50), Duration::from_millis(200)),
        restart_budget: 2,
    }
}

fn run_cluster_with(
    graph: &FactorGraph,
    plan: &ShardPlan,
    cfg: &InferConfig,
    ckpt: &ShardCkptOptions,
    cluster: &ClusterConfig,
    faults: FaultPlan,
) -> ShardRunReport {
    let launcher = ThreadLauncher {
        graph: graph.clone(),
        plan: plan.clone(),
        cfg: cfg.clone(),
        ckpt: ckpt.clone(),
        retire: None,
        faults,
        read_timeout: Duration::from_secs(10),
    };
    run_cluster(graph, plan, cfg, ckpt, cluster, &launcher, None, &ExecContext::unbounded())
        .expect("cluster run")
}

fn reference_counts(graph: &FactorGraph, plan: &ShardPlan, cfg: &InferConfig) -> ShardRunReport {
    let pyramid = PyramidIndex::build(graph, cfg.levels, cfg.cell_capacity);
    run_sharded(
        graph,
        &pyramid,
        plan,
        cfg,
        None,
        &ShardCkptOptions::default(),
        &ExecContext::unbounded(),
    )
    .expect("in-process reference run")
}

#[test]
fn cluster_counts_match_the_in_process_executor_bitwise() {
    let g = grid(4);
    let cfg = cfg(120);
    let plan = plan_for(&g, 2);
    let reference = reference_counts(&g, &plan, &cfg);

    let report = run_cluster_with(
        &g,
        &plan,
        &cfg,
        &ShardCkptOptions::default(),
        &quick_cluster(),
        FaultPlan::none(),
    );
    assert_eq!(report.outcome, RunOutcome::Completed);
    assert_eq!(
        report.counts, reference.counts,
        "socket halo exchange must reproduce the in-process merged counts exactly"
    );
    assert!(report.health.iter().all(|h| !h.lost && h.restarts == 0), "{:?}", report.health);
    assert_eq!(report.epochs_run, 120);
}

#[test]
fn killed_worker_is_restarted_from_checkpoint_and_counts_stay_bit_identical() {
    let g = grid(4);
    let cfg = cfg(60);
    let plan = plan_for(&g, 2);
    let reference = reference_counts(&g, &plan, &cfg);

    let dir = temp_dir("kill");
    let ckpt = ShardCkptOptions { dir: Some(dir.clone()), every: 5, resume: false };
    let faults = FaultPlan { kill_worker: Some((1, 30)), ..FaultPlan::none() };
    let report = run_cluster_with(&g, &plan, &cfg, &ckpt, &quick_cluster(), faults);

    assert_eq!(report.outcome, RunOutcome::Completed, "warnings: {:?}", report.warnings);
    assert!(
        report.health[1].restarts >= 1,
        "shard 1 must have been restarted: {:?}",
        report.health
    );
    assert!(!report.health.iter().any(|h| h.lost), "{:?}", report.health);
    assert_eq!(
        report.counts, reference.counts,
        "replay from the rendezvous checkpoint must be bit-identical to an \
         uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_worker_without_checkpoints_replays_from_scratch_bit_identically() {
    let g = grid(3);
    let cfg = cfg(40);
    let plan = plan_for(&g, 2);
    let reference = reference_counts(&g, &plan, &cfg);

    // No checkpoint store: the rendezvous finds no common epoch and the
    // fleet replays from 0 — slower, still deterministic.
    let faults = FaultPlan { kill_worker: Some((0, 20)), ..FaultPlan::none() };
    let report = run_cluster_with(
        &g,
        &plan,
        &cfg,
        &ShardCkptOptions::default(),
        &quick_cluster(),
        faults,
    );
    assert_eq!(report.outcome, RunOutcome::Completed, "warnings: {:?}", report.warnings);
    assert!(report.health[0].restarts >= 1, "{:?}", report.health);
    assert_eq!(report.counts, reference.counts);
}

#[test]
fn exhausted_restart_budget_degrades_instead_of_failing() {
    let g = grid(4);
    let cfg = cfg(60);
    let plan = plan_for(&g, 2);

    let dir = temp_dir("budget");
    let ckpt = ShardCkptOptions { dir: Some(dir.clone()), every: 5, resume: false };
    let cluster = ClusterConfig { restart_budget: 0, ..quick_cluster() };
    let faults = FaultPlan { kill_worker: Some((1, 30)), ..FaultPlan::none() };
    let report = run_cluster_with(&g, &plan, &cfg, &ckpt, &cluster, faults);

    assert_eq!(report.outcome, RunOutcome::Degraded, "warnings: {:?}", report.warnings);
    assert!(report.health[1].lost, "shard 1 must be reported lost: {:?}", report.health);
    assert_eq!(report.health[1].label(), "lost");
    assert!(!report.health[0].lost);
    assert!(
        report.warnings.iter().any(|w| w.contains("lost")),
        "warnings must name the lost shard: {:?}",
        report.warnings
    );
    // The lost shard's counts were recovered from its newest checkpoint,
    // so the merged marginals still cover the whole graph.
    assert!((0..g.num_variables() as u32).all(|v| report.counts.total_samples(v) > 0));
    assert!(
        report.warnings.iter().any(|w| w.contains("recovered from its checkpoint")),
        "recovery from the dead shard's checkpoint must be reported: {:?}",
        report.warnings
    );
    // The healthy shard ran to the end.
    assert_eq!(report.epochs_run, 60);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stalled_worker_trips_the_heartbeat_and_the_run_terminates() {
    let g = grid(3);
    let cfg = cfg(40);
    let plan = plan_for(&g, 2);

    let dir = temp_dir("stall");
    let ckpt = ShardCkptOptions { dir: Some(dir.clone()), every: 5, resume: false };
    // Stall for 4× the heartbeat: the coordinator must declare the
    // worker failed and restart it rather than wait forever.
    let faults = FaultPlan {
        stall_worker: Some((1, 10, Duration::from_secs(2))),
        ..FaultPlan::none()
    };
    let report = run_cluster_with(&g, &plan, &cfg, &ckpt, &quick_cluster(), faults);

    assert!(
        matches!(report.outcome, RunOutcome::Completed | RunOutcome::Degraded),
        "a stall must end in Completed or Degraded, got {:?} ({:?})",
        report.outcome,
        report.warnings
    );
    assert!(report.health[1].restarts >= 1, "{:?}", report.health);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_frame_is_rejected_and_the_worker_restarted() {
    let g = grid(3);
    let cfg = cfg(40);
    let plan = plan_for(&g, 2);
    let reference = reference_counts(&g, &plan, &cfg);

    let dir = temp_dir("corrupt");
    let ckpt = ShardCkptOptions { dir: Some(dir.clone()), every: 5, resume: false };
    let faults = FaultPlan { corrupt_frame: Some((1, 10)), ..FaultPlan::none() };
    let report = run_cluster_with(&g, &plan, &cfg, &ckpt, &quick_cluster(), faults);

    assert_eq!(report.outcome, RunOutcome::Completed, "warnings: {:?}", report.warnings);
    assert!(report.health[1].restarts >= 1, "{:?}", report.health);
    assert_eq!(
        report.counts, reference.counts,
        "recovery from a corrupt frame must not change the marginals"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Raw HTTP GET against the status board (tests avoid an HTTP client
/// dependency just like `ci.sh` does with /dev/tcp).
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut c = std::net::TcpStream::connect(addr).expect("connect status board");
    c.write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes())
        .expect("send request");
    let mut raw = String::new();
    c.read_to_string(&mut raw).expect("read response");
    raw.split_once("\r\n\r\n").map(|(_, body)| body.to_owned()).unwrap_or(raw)
}

#[test]
fn status_board_fleet_metrics_match_the_per_shard_reports() {
    let g = grid(4);
    let cfg = cfg(60);
    let plan = plan_for(&g, 2);
    let status = sya_shard::StatusServer::start("127.0.0.1:0").expect("status server");
    let launcher = ThreadLauncher {
        graph: g.clone(),
        plan: plan.clone(),
        cfg: cfg.clone(),
        ckpt: ShardCkptOptions::default(),
        retire: None,
        faults: FaultPlan::none(),
        read_timeout: Duration::from_secs(10),
    };
    let report = run_cluster(
        &g,
        &plan,
        &cfg,
        &ShardCkptOptions::default(),
        &quick_cluster(),
        &launcher,
        Some(&status),
        &ExecContext::unbounded(),
    )
    .expect("cluster run");
    assert_eq!(report.outcome, RunOutcome::Completed, "{:?}", report.warnings);

    // The coordinator-aggregated counters must equal the sums of the
    // authoritative in-process per-shard counts from the Done reports.
    let body = http_get(status.addr(), "/metrics");
    for (w, stats) in report.per_shard.iter().enumerate() {
        let labelled =
            format!("sya_infer_shard_samples_total{{shard=\"{w}\"}} {}", stats.samples_total);
        assert!(body.contains(&labelled), "missing `{labelled}` in:\n{body}");
        let flips = format!("sya_infer_shard_flips_total{{shard=\"{w}\"}} {}", stats.flips_total);
        assert!(body.contains(&flips), "missing `{flips}` in:\n{body}");
    }
    let fleet_samples: u64 = report.per_shard.iter().map(|s| s.samples_total).sum();
    let rollup = format!("sya_fleet_infer_shard_samples_total {fleet_samples}");
    assert!(body.contains(&rollup), "missing `{rollup}` in:\n{body}");

    // Drift and staleness gauges carry per-shard labels; the run is
    // identified for cross-process trace stitching.
    for w in 0..2 {
        assert!(body.contains(&format!("sya_shard_max_delta{{shard=\"{w}\"}}")), "{body}");
        assert!(
            body.contains(&format!("sya_fleet_shard_staleness_epochs{{shard=\"{w}\"}}")),
            "{body}"
        );
    }
    assert!(body.contains("sya_fleet_run_info{run_id=\"0x"), "{body}");
    assert!(body.contains("sya_fleet_shards_reporting 2"), "{body}");

    // The JSON view is served on /fleet and `/` stays the healthz board.
    let fleet_json = http_get(status.addr(), "/fleet");
    assert!(fleet_json.contains("\"schema\": \"sya.fleet.v1\""), "{fleet_json}");
    assert!(fleet_json.contains("\"infer.shard.samples_total\""), "{fleet_json}");
    let root = http_get(status.addr(), "/");
    assert!(root.contains("\"done\":true"), "{root}");
}
