//! Property tests for the halo wire format (vendored `proptest`).
//!
//! 1. Encode→decode identity for arbitrary frames.
//! 2. Truncation at any point (a torn write) surfaces a typed
//!    [`WireError`] — never a panic, never a silent accept.
//! 3. A single bit flip anywhere in a frame is rejected (CRC-32 catches
//!    every 1-bit error).

use proptest::prelude::*;
use sya_shard::wire::{encode_frame, read_frame, Frame, WireError};

/// Materialises one of the thirteen frame variants from generated raw
/// material (the vendored proptest has no `prop_oneof!`, so variant
/// choice is an explicit selector).
#[allow(clippy::too_many_arguments)]
fn build_frame(
    variant: usize,
    a: u64,
    b: u64,
    small: u32,
    flag: bool,
    writes: Vec<(u32, u32)>,
    epochs: Vec<u64>,
    report: Vec<u8>,
) -> Frame {
    match variant % 13 {
        0 => Frame::Hello { shard: small % 64, of: small % 64 + 1, fingerprint: a, epochs },
        1 => Frame::Welcome { start_epoch: a, epochs_total: b, run_id: a ^ b },
        2 => Frame::Publish { epoch: a, phase: small % 32, writes },
        3 => Frame::Halo { epoch: a, phase: small % 32, writes },
        4 => Frame::EpochEnd { epoch: a, retired: flag },
        5 => Frame::Proceed { stop: flag.then_some((b % 256) as u8) },
        6 => Frame::Rollback,
        7 => Frame::ShardLost { shard: small % 64 },
        8 => Frame::Done { report },
        9 => Frame::Stop { outcome: (b % 256) as u8 },
        10 => Frame::Ping { nonce: a },
        11 => Frame::Pong { nonce: a },
        _ => Frame::Telemetry { shard: small % 64, epoch: a, payload: report },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_is_the_identity(
        variant in 0usize..13,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        small in 0u32..1024,
        flag in prop::bool::ANY,
        writes in prop::collection::vec((0u32..10_000, 0u32..4), 0..40),
        epochs in prop::collection::vec(0u64..1_000_000, 0..10),
        report in prop::collection::vec(0u8..255, 0..200),
    ) {
        let frame = build_frame(variant, a, b, small, flag, writes, epochs, report);
        let bytes = encode_frame(&frame);
        match read_frame(&mut &bytes[..]) {
            Ok(decoded) => prop_assert_eq!(decoded, frame),
            Err(e) => prop_assert!(false, "decode of {} failed: {}", frame.name(), e),
        }
    }

    #[test]
    fn truncation_is_a_typed_error_never_a_panic(
        variant in 0usize..13,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        small in 0u32..1024,
        flag in prop::bool::ANY,
        writes in prop::collection::vec((0u32..10_000, 0u32..4), 0..40),
        epochs in prop::collection::vec(0u64..1_000_000, 0..10),
        report in prop::collection::vec(0u8..255, 0..200),
        cut_seed in 0usize..usize::MAX,
    ) {
        let frame = build_frame(variant, a, b, small, flag, writes, epochs, report);
        let bytes = encode_frame(&frame);
        let cut = cut_seed % bytes.len(); // 0 ≤ cut < len: always torn
        match read_frame(&mut &bytes[..cut]) {
            Err(WireError::Closed) => prop_assert_eq!(cut, 0, "Closed only at a frame boundary"),
            Err(WireError::Corrupt(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {}", other),
            Ok(got) => prop_assert!(false, "torn frame accepted as {:?}", got),
        }
    }

    #[test]
    fn single_bit_flip_is_always_rejected(
        variant in 0usize..13,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        small in 0u32..1024,
        flag in prop::bool::ANY,
        writes in prop::collection::vec((0u32..10_000, 0u32..4), 0..40),
        epochs in prop::collection::vec(0u64..1_000_000, 0..10),
        report in prop::collection::vec(0u8..255, 0..200),
        byte_seed in 0usize..usize::MAX,
        bit in 0usize..8,
    ) {
        let frame = build_frame(variant, a, b, small, flag, writes, epochs, report);
        let mut bytes = encode_frame(&frame);
        let at = byte_seed % bytes.len();
        bytes[at] ^= 1 << bit;
        match read_frame(&mut &bytes[..]) {
            // A flip in the length field can also make the reader see a
            // short stream (Corrupt) or an oversized claim (Corrupt);
            // either way it must be typed, never accepted.
            Err(WireError::Corrupt(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {}", other),
            Ok(got) => prop_assert!(
                false,
                "bit flip at byte {} bit {} accepted as {:?}",
                at, bit, got
            ),
        }
    }
}
