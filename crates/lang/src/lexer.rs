//! Tokenizer for the Sya DDlog dialect.

/// A lexical token with its source line (1-based) for error messages.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword: `County`, `bigint`, `true`, `NULL`, ...
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Double(f64),
    /// String literal (single or double quoted).
    Str(String),
    /// `@spatial`, `@weight`, ... (`@` + identifier).
    At(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Colon,
    Question,
    /// `:-`
    Turnstile,
    /// `=>`
    Implies,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `!` (condition negation)
    Bang,
    Lt,
    Le,
    Gt,
    Ge,
    /// `_` or a bare `-` (wildcard in atom position).
    Underscore,
    /// Unary minus context is resolved in the parser; lexer emits Minus
    /// only when followed by a digit it folds into the number, so this is
    /// the bare `-` wildcard form used in the paper (`County(C1, L1, -)`).
    Minus,
}

/// Lexing error with line number.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src`. `#` starts a line comment (the paper's figures use
/// `# Schema Declaration` style comments). `//` comments are accepted too.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = bytes.len();

    while i < n {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '#' => {
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == b'/' => {
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token { kind: TokenKind::LParen, line });
                i += 1;
            }
            ')' => {
                out.push(Token { kind: TokenKind::RParen, line });
                i += 1;
            }
            '[' => {
                out.push(Token { kind: TokenKind::LBracket, line });
                i += 1;
            }
            ']' => {
                out.push(Token { kind: TokenKind::RBracket, line });
                i += 1;
            }
            ',' => {
                out.push(Token { kind: TokenKind::Comma, line });
                i += 1;
            }
            '.' => {
                // A dot could start a number like `.5`; DDlog numbers are
                // written with a leading digit, so `.` is always the
                // statement terminator here.
                out.push(Token { kind: TokenKind::Dot, line });
                i += 1;
            }
            '?' => {
                out.push(Token { kind: TokenKind::Question, line });
                i += 1;
            }
            '&' => {
                out.push(Token { kind: TokenKind::Amp, line });
                i += 1;
            }
            '|' => {
                out.push(Token { kind: TokenKind::Pipe, line });
                i += 1;
            }
            ':' => {
                if i + 1 < n && bytes[i + 1] == b'-' {
                    out.push(Token { kind: TokenKind::Turnstile, line });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Colon, line });
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < n && bytes[i + 1] == b'>' {
                    out.push(Token { kind: TokenKind::Implies, line });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Eq, line });
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    out.push(Token { kind: TokenKind::Ne, line });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Bang, line });
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    out.push(Token { kind: TokenKind::Le, line });
                    i += 2;
                } else if i + 1 < n && bytes[i + 1] == b'>' {
                    out.push(Token { kind: TokenKind::Ne, line });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Lt, line });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    out.push(Token { kind: TokenKind::Ge, line });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Gt, line });
                    i += 1;
                }
            }
            '_' if i + 1 >= n || !is_ident_char(bytes[i + 1] as char) => {
                out.push(Token { kind: TokenKind::Underscore, line });
                i += 1;
            }
            '-' => {
                if i + 1 < n && (bytes[i + 1] as char).is_ascii_digit() {
                    let (tok, len) = lex_number(&src[i..], line)?;
                    out.push(tok);
                    i += len;
                } else {
                    out.push(Token { kind: TokenKind::Minus, line });
                    i += 1;
                }
            }
            '@' => {
                let start = i + 1;
                let mut j = start;
                while j < n && is_ident_char(bytes[j] as char) {
                    j += 1;
                }
                if j == start {
                    return Err(LexError { line, message: "'@' must be followed by a name".into() });
                }
                out.push(Token { kind: TokenKind::At(src[start..j].to_owned()), line });
                i = j;
            }
            '"' | '\'' => {
                let quote = c;
                let mut j = i + 1;
                let mut s = String::new();
                let mut closed = false;
                while j < n {
                    let cj = bytes[j] as char;
                    if cj == quote {
                        closed = true;
                        j += 1;
                        break;
                    }
                    if cj == '\n' {
                        line += 1;
                    }
                    s.push(cj);
                    j += 1;
                }
                if !closed {
                    return Err(LexError { line, message: "unterminated string literal".into() });
                }
                out.push(Token { kind: TokenKind::Str(s), line });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let (tok, len) = lex_number(&src[i..], line)?;
                out.push(tok);
                i += len;
            }
            c if is_ident_start(c) => {
                let start = i;
                let mut j = i;
                while j < n && is_ident_char(bytes[j] as char) {
                    j += 1;
                }
                out.push(Token { kind: TokenKind::Ident(src[start..j].to_owned()), line });
                i = j;
            }
            other => {
                return Err(LexError { line, message: format!("unexpected character {other:?}") })
            }
        }
    }
    Ok(out)
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lexes a number starting at the beginning of `rest` (may begin with
/// `-`). Returns the token and its byte length.
fn lex_number(rest: &str, line: usize) -> Result<(Token, usize), LexError> {
    let bytes = rest.as_bytes();
    let mut j = 0usize;
    if bytes[j] == b'-' {
        j += 1;
    }
    while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
        j += 1;
    }
    let mut is_double = false;
    // Fractional part: only if the dot is followed by a digit, so that
    // `R1 < 0.2].` style still lexes and `5.` ends a statement.
    if j + 1 < bytes.len() && bytes[j] == b'.' && (bytes[j + 1] as char).is_ascii_digit() {
        is_double = true;
        j += 1;
        while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
            j += 1;
        }
    }
    // Exponent.
    if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
        let mut k = j + 1;
        if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
            k += 1;
        }
        if k < bytes.len() && (bytes[k] as char).is_ascii_digit() {
            is_double = true;
            j = k;
            while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                j += 1;
            }
        }
    }
    let text = &rest[..j];
    let kind = if is_double {
        TokenKind::Double(text.parse().map_err(|e| LexError {
            line,
            message: format!("bad float {text:?}: {e}"),
        })?)
    } else {
        TokenKind::Int(text.parse().map_err(|e| LexError {
            line,
            message: format!("bad integer {text:?}: {e}"),
        })?)
    };
    Ok((Token { kind, line }, j))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("County(id bigint)."),
            vec![
                TokenKind::Ident("County".into()),
                TokenKind::LParen,
                TokenKind::Ident("id".into()),
                TokenKind::Ident("bigint".into()),
                TokenKind::RParen,
                TokenKind::Dot,
            ]
        );
    }

    #[test]
    fn operators_and_annotations() {
        assert_eq!(
            kinds("@weight(0.35) A => B :- C [d < 150, e >= 2, f != g]."),
            vec![
                TokenKind::At("weight".into()),
                TokenKind::LParen,
                TokenKind::Double(0.35),
                TokenKind::RParen,
                TokenKind::Ident("A".into()),
                TokenKind::Implies,
                TokenKind::Ident("B".into()),
                TokenKind::Turnstile,
                TokenKind::Ident("C".into()),
                TokenKind::LBracket,
                TokenKind::Ident("d".into()),
                TokenKind::Lt,
                TokenKind::Int(150),
                TokenKind::Comma,
                TokenKind::Ident("e".into()),
                TokenKind::Ge,
                TokenKind::Int(2),
                TokenKind::Comma,
                TokenKind::Ident("f".into()),
                TokenKind::Ne,
                TokenKind::Ident("g".into()),
                TokenKind::RBracket,
                TokenKind::Dot,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("5"), vec![TokenKind::Int(5)]);
        assert_eq!(kinds("-5"), vec![TokenKind::Int(-5)]);
        assert_eq!(kinds("0.25"), vec![TokenKind::Double(0.25)]);
        assert_eq!(kinds("-1.5e3"), vec![TokenKind::Double(-1500.0)]);
        // trailing dot is a terminator, not a fraction
        assert_eq!(kinds("5."), vec![TokenKind::Int(5), TokenKind::Dot]);
    }

    #[test]
    fn wildcards_and_strings() {
        assert_eq!(
            kinds("County(C1, -, _)"),
            vec![
                TokenKind::Ident("County".into()),
                TokenKind::LParen,
                TokenKind::Ident("C1".into()),
                TokenKind::Comma,
                TokenKind::Minus,
                TokenKind::Comma,
                TokenKind::Underscore,
                TokenKind::RParen,
            ]
        );
        assert_eq!(kinds("\"abc\" 'x'"), vec![
            TokenKind::Str("abc".into()),
            TokenKind::Str("x".into()),
        ]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("# Schema Declaration\nA. // trailing\nB."),
            vec![
                TokenKind::Ident("A".into()),
                TokenKind::Dot,
                TokenKind::Ident("B".into()),
                TokenKind::Dot,
            ]
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("A.\nB.\n\nC.").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[2].line, 2);
        assert_eq!(toks[4].line, 4);
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a $ b").is_err());
        assert!(lex("@ (x)").is_err());
    }

    #[test]
    fn bang_lexes_standalone() {
        assert_eq!(kinds("!x"), vec![TokenKind::Bang, TokenKind::Ident("x".into())]);
        assert_eq!(kinds("x != y"), vec![
            TokenKind::Ident("x".into()),
            TokenKind::Ne,
            TokenKind::Ident("y".into()),
        ]);
    }

    #[test]
    fn underscore_prefixed_identifier_is_ident() {
        assert_eq!(kinds("_foo"), vec![TokenKind::Ident("_foo".into())]);
        assert_eq!(kinds("_"), vec![TokenKind::Underscore]);
    }
}
