//! Spatial user-defined functions (paper Section III, "Spatial UDFs").
//!
//! The paper ships ready-to-use UDFs for spatial named entity recognition
//! (NER) and object extraction from unstructured text, backed by the
//! GeoTxt library. GeoTxt is an online service; the offline substitute
//! here is a deterministic **gazetteer matcher**: place names (with
//! aliases) map to typed point locations, and extraction scans text for
//! the longest gazetteer matches at word boundaries. This exercises the
//! same architectural hook — feature extraction feeding relations during
//! grounding — without network access.

use std::collections::HashMap;
use sya_geom::Point;

/// A recognized spatial mention in a text.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialMention {
    /// Canonical gazetteer name (not the surface form).
    pub name: String,
    /// Byte offset of the match start in the input text.
    pub offset: usize,
    /// The matched surface text.
    pub surface: String,
    /// Location of the entity.
    pub location: Point,
}

/// A gazetteer: canonical place names with locations and aliases.
///
/// ```
/// use sya_lang::Gazetteer;
/// use sya_geom::Point;
///
/// let mut g = Gazetteer::new();
/// g.add("Montserrado", Point::new(-10.53, 6.55));
/// let mentions = g.extract("Cases reported in Montserrado county.");
/// assert_eq!(mentions[0].name, "Montserrado");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Gazetteer {
    /// lowercase alias -> (canonical name, location)
    entries: HashMap<String, (String, Point)>,
    /// Longest alias length in words, bounding the match window.
    max_words: usize,
}

impl Gazetteer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a place with its canonical name and location.
    pub fn add(&mut self, name: impl Into<String>, location: Point) -> &mut Self {
        let name = name.into();
        self.add_alias(name.clone(), name, location)
    }

    /// Registers an alias resolving to a canonical name.
    pub fn add_alias(
        &mut self,
        alias: impl Into<String>,
        canonical: impl Into<String>,
        location: Point,
    ) -> &mut Self {
        let alias = alias.into().to_lowercase();
        self.max_words = self.max_words.max(alias.split_whitespace().count());
        self.entries.insert(alias, (canonical.into(), location));
        self
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a name or alias (case-insensitive).
    pub fn lookup(&self, name: &str) -> Option<(&str, Point)> {
        self.entries
            .get(&name.to_lowercase())
            .map(|(n, p)| (n.as_str(), *p))
    }

    /// Extracts spatial mentions from free text: greedy longest-match
    /// over word windows, case-insensitive, at word boundaries.
    pub fn extract(&self, text: &str) -> Vec<SpatialMention> {
        // Tokenize into words with byte offsets.
        let mut words: Vec<(usize, &str)> = Vec::new();
        let mut start = None;
        for (i, c) in text.char_indices() {
            if c.is_alphanumeric() || c == '_' {
                if start.is_none() {
                    start = Some(i);
                }
            } else if let Some(s) = start.take() {
                words.push((s, &text[s..i]));
            }
        }
        if let Some(s) = start {
            words.push((s, &text[s..]));
        }

        let mut out = Vec::new();
        let mut i = 0;
        while i < words.len() {
            let mut matched = None;
            // Longest window first.
            let max_w = self.max_words.min(words.len() - i);
            for w in (1..=max_w).rev() {
                let (s0, _) = words[i];
                let (s_last, w_last) = words[i + w - 1];
                let end = s_last + w_last.len();
                let surface = &text[s0..end];
                let key = surface
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .join(" ")
                    .to_lowercase();
                if let Some((canonical, loc)) = self.entries.get(&key) {
                    matched = Some((w, SpatialMention {
                        name: canonical.clone(),
                        offset: s0,
                        surface: surface.to_owned(),
                        location: *loc,
                    }));
                    break;
                }
            }
            match matched {
                Some((w, m)) => {
                    out.push(m);
                    i += w;
                }
                None => i += 1,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn liberia() -> Gazetteer {
        let mut g = Gazetteer::new();
        g.add("Montserrado", Point::new(-10.53, 6.55));
        g.add("Margibi", Point::new(-10.30, 6.52));
        g.add("Bong", Point::new(-9.37, 6.83));
        g.add("Gbarpolu", Point::new(-10.08, 7.50));
        g.add_alias("new york city", "New York", Point::new(-74.0, 40.7));
        g
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let g = liberia();
        assert_eq!(g.lookup("montserrado").map(|(n, _)| n), Some("Montserrado"));
        assert_eq!(g.lookup("MARGIBI").map(|(n, _)| n), Some("Margibi"));
        assert!(g.lookup("atlantis").is_none());
    }

    #[test]
    fn extracts_single_word_mentions() {
        let g = liberia();
        let text = "Ebola cases rose in Montserrado and Bong counties.";
        let ms = g.extract(text);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].name, "Montserrado");
        assert_eq!(ms[0].surface, "Montserrado");
        assert_eq!(&text[ms[0].offset..ms[0].offset + 11], "Montserrado");
        assert_eq!(ms[1].name, "Bong");
    }

    #[test]
    fn extracts_multi_word_alias_longest_match() {
        let g = liberia();
        let ms = g.extract("Air pollution in New York City is monitored.");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].name, "New York");
        assert_eq!(ms[0].surface, "New York City");
    }

    #[test]
    fn no_partial_word_matches() {
        let g = liberia();
        // "Bongland" must not match "Bong".
        let ms = g.extract("Welcome to Bongland.");
        assert!(ms.is_empty());
    }

    #[test]
    fn empty_text_and_empty_gazetteer() {
        let g = liberia();
        assert!(g.extract("").is_empty());
        let empty = Gazetteer::new();
        assert!(empty.extract("Montserrado").is_empty());
        assert!(empty.is_empty());
        assert_eq!(liberia().len(), 5);
    }
}
