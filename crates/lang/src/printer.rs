//! Pretty-printer for programs. `parse_program(print_program(p)) == p`
//! modulo auto-generated labels — verified by round-trip tests.

use crate::ast::*;

/// Renders a program in Sya DDlog syntax.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for item in &p.items {
        match item {
            Item::Schema(s) => print_schema(s, &mut out),
            Item::Rule(r) => print_rule(r, &mut out),
        }
        out.push('\n');
    }
    out
}

fn print_schema(s: &SchemaDecl, out: &mut String) {
    if let Some(w) = &s.spatial {
        out.push_str(&format!("@spatial({w})\n"));
    }
    let cols = s
        .columns
        .iter()
        .map(|(n, t)| format!("{n} {}", t.ddlog_name()))
        .collect::<Vec<_>>()
        .join(", ");
    let q = if s.is_variable { "?" } else { "" };
    out.push_str(&format!("{}: {}{q}({cols}).", s.label, s.name));
}

fn print_rule(r: &Rule, out: &mut String) {
    out.push_str(&format!("{}: ", r.label));
    if let Some(w) = r.weight {
        out.push_str(&format!("@weight({w}) "));
    }
    match &r.head {
        RuleHead::Derivation(a) => {
            out.push_str(&print_atom(a));
            out.push_str(" = NULL");
        }
        RuleHead::Inference { op, atoms } => {
            let sep = match op {
                HeadOp::Imply => " => ",
                HeadOp::And => " & ",
                HeadOp::Or => " | ",
                HeadOp::IsTrue => "",
            };
            let parts: Vec<String> = atoms.iter().map(print_atom).collect();
            out.push_str(&parts.join(sep));
        }
    }
    out.push_str(" :- ");
    let body: Vec<String> = r.body.iter().map(print_atom).collect();
    out.push_str(&body.join(", "));
    if !r.conditions.is_empty() {
        let conds: Vec<String> = r.conditions.iter().map(print_cexpr).collect();
        out.push_str(&format!(" [{}]", conds.join(", ")));
    }
    out.push('.');
}

fn print_atom(a: &Atom) -> String {
    let terms: Vec<String> = a.terms.iter().map(print_term).collect();
    format!("{}({})", a.relation, terms.join(", "))
}

fn print_term(t: &Term) -> String {
    match t {
        Term::Var(v) => v.clone(),
        Term::Wildcard => "_".into(),
        Term::Lit(l) => print_literal(l),
    }
}

fn print_literal(l: &Literal) -> String {
    match l {
        Literal::Int(i) => i.to_string(),
        Literal::Double(d) => {
            // Ensure re-lexing as a double.
            if d.fract() == 0.0 && d.is_finite() {
                format!("{d:.1}")
            } else {
                d.to_string()
            }
        }
        Literal::Text(s) => format!("\"{s}\""),
        Literal::Bool(b) => b.to_string(),
        Literal::Null => "NULL".into(),
    }
}

fn print_cexpr(e: &CExpr) -> String {
    match e {
        CExpr::Var(v) | CExpr::NamedGeom(v) => v.clone(),
        CExpr::Lit(l) => print_literal(l),
        CExpr::Spatial(f, args) => {
            let a: Vec<String> = args.iter().map(print_cexpr).collect();
            format!("{}({})", f.name(), a.join(", "))
        }
        CExpr::Not(inner) => format!("!{}", print_cexpr(inner)),
        CExpr::Cmp(op, l, r) => {
            let o = match op {
                CmpOp::Eq => "=",
                CmpOp::Ne => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("{} {o} {}", print_cexpr(l), print_cexpr(r))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const SRC: &str = r#"
    S1: County (id bigint, location point, hasLowSanitation bool).
    @spatial(exp)
    S2: HasEbola? (id bigint, location point).
    D1: HasEbola(C1, L1) = NULL :- County(C1, L1, _).
    R1: @weight(0.35)
        HasEbola(C1, L1) => HasEbola(C2, L2) :-
        County(C1, L1, _), County(C2, L2, S2v)
        [distance(L1, L2) < 150, within(L1, liberia_geom), S2v = true].
    R2: HasEbola(C1, L1) & HasEbola(C2, L2) :- County(C1, L1, _), County(C2, L2, _).
    R3: HasEbola(C1, L1) | HasEbola(C2, L2) :- County(C1, L1, _), County(C2, L2, _) [C1 != C2].
    "#;

    #[test]
    fn round_trip_preserves_ast() {
        let p1 = parse_program(SRC).unwrap();
        let text = print_program(&p1);
        let p2 = parse_program(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert_eq!(p1, p2, "printed form:\n{text}");
    }

    #[test]
    fn double_literals_re_lex_as_doubles() {
        let src = "Y?(s bigint).\nZ(s bigint, v double).\nR: @weight(2) Y(S) :- Z(S, V) [V < 3.0].";
        let p1 = parse_program(src).unwrap();
        let p2 = parse_program(&print_program(&p1)).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn negation_round_trips() {
        let src = "Y?(s bigint, l point).\nZ(s bigint, l point).\n\
                   R: Y(S, L) :- Z(S, L) [!within(L, zone_geom)].";
        let p1 = parse_program(src).unwrap();
        let p2 = parse_program(&print_program(&p1)).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn prints_wildcards_as_underscore() {
        let p = parse_program("Y?(s bigint).\nZ(s bigint, t bigint).\nY(S) :- Z(S, -).").unwrap();
        let text = print_program(&p);
        assert!(text.contains("Z(S, _)"), "{text}");
    }
}
