//! Program validation — the semantic checks of the paper's language
//! module: declared relations, arity/type agreement, variable binding,
//! and the `@spatial` placement rules ("it is not allowed to annotate a
//! variable relation with `@spatial(w)` unless it has a spatial
//! attribute").

use crate::ast::*;
use std::collections::HashMap;
use sya_store::DataType;

/// A validation failure with the offending rule/relation named.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidateError {
    pub context: String,
    pub message: String,
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "validation error in {}: {}", self.context, self.message)
    }
}

impl std::error::Error for ValidateError {}

fn err(ctx: &str, msg: impl Into<String>) -> ValidateError {
    ValidateError { context: ctx.to_owned(), message: msg.into() }
}

/// Validates a parsed program. Returns the map of relation name → schema
/// for downstream use.
pub fn validate(program: &Program) -> Result<HashMap<String, SchemaDecl>, ValidateError> {
    let mut schemas: HashMap<String, SchemaDecl> = HashMap::new();
    for s in program.schemas() {
        if schemas.contains_key(&s.name) {
            return Err(err(&s.name, "relation declared more than once"));
        }
        if s.columns.is_empty() {
            return Err(err(&s.name, "relation must have at least one column"));
        }
        if let Some(w) = &s.spatial {
            if !s.is_variable {
                return Err(err(
                    &s.name,
                    "@spatial is only allowed on variable relations (declared with '?')",
                ));
            }
            if s.first_spatial_column().is_none() {
                return Err(err(
                    &s.name,
                    "@spatial requires the relation to have a spatial attribute",
                ));
            }
            if w.is_empty() {
                return Err(err(&s.name, "@spatial requires a weighting function name"));
            }
        }
        schemas.insert(s.name.clone(), s.clone());
    }

    for rule in program.rules() {
        validate_rule(rule, &schemas)?;
    }
    Ok(schemas)
}

fn validate_rule(
    rule: &Rule,
    schemas: &HashMap<String, SchemaDecl>,
) -> Result<(), ValidateError> {
    let ctx = &rule.label;
    if rule.body.is_empty() {
        return Err(err(ctx, "rule must have a non-empty body"));
    }

    // Types bound to each variable (var -> type), built from body atoms.
    let mut var_types: HashMap<&str, DataType> = HashMap::new();
    for atom in &rule.body {
        let schema = schemas
            .get(&atom.relation)
            .ok_or_else(|| err(ctx, format!("undeclared relation {:?} in body", atom.relation)))?;
        check_atom_arity(ctx, atom, schema)?;
        for (i, term) in atom.terms.iter().enumerate() {
            let col_ty = schema.columns[i].1;
            match term {
                Term::Var(v) => {
                    if let Some(prev) = var_types.get(v.as_str()) {
                        if !types_compatible(*prev, col_ty) {
                            return Err(err(
                                ctx,
                                format!(
                                    "variable {v:?} bound with incompatible types {prev:?} and {col_ty:?}"
                                ),
                            ));
                        }
                    } else {
                        var_types.insert(v, col_ty);
                    }
                }
                Term::Lit(l) => check_literal_fits(ctx, l, col_ty)?,
                Term::Wildcard => {}
            }
        }
    }

    // Head checks.
    let head_atoms: Vec<&Atom> = match &rule.head {
        RuleHead::Derivation(a) => {
            if rule.weight.is_some() {
                return Err(err(ctx, "derivation rules cannot carry @weight"));
            }
            vec![a]
        }
        RuleHead::Inference { atoms, op } => {
            if matches!(op, HeadOp::Imply) && atoms.len() != 2 {
                return Err(err(ctx, "'=>' heads require exactly two atoms"));
            }
            atoms.iter().collect()
        }
    };
    for atom in head_atoms {
        let schema = schemas
            .get(&atom.relation)
            .ok_or_else(|| err(ctx, format!("undeclared relation {:?} in head", atom.relation)))?;
        if !schema.is_variable {
            return Err(err(
                ctx,
                format!("head relation {:?} must be a variable relation", atom.relation),
            ));
        }
        check_atom_arity(ctx, atom, schema)?;
        for (i, term) in atom.terms.iter().enumerate() {
            let col_ty = schema.columns[i].1;
            match term {
                Term::Var(v) => {
                    let ty = var_types.get(v.as_str()).ok_or_else(|| {
                        err(ctx, format!("head variable {v:?} is not bound by the body"))
                    })?;
                    if !types_compatible(*ty, col_ty) {
                        return Err(err(
                            ctx,
                            format!("head variable {v:?} has type {ty:?}, column needs {col_ty:?}"),
                        ));
                    }
                }
                Term::Lit(l) => check_literal_fits(ctx, l, col_ty)?,
                Term::Wildcard => {
                    return Err(err(ctx, "wildcards are not allowed in rule heads"))
                }
            }
        }
    }

    // Condition checks: spatial arities; spatial args must be geometric.
    for c in &rule.conditions {
        validate_cexpr(ctx, c, &var_types)?;
    }
    Ok(())
}

fn check_atom_arity(ctx: &str, atom: &Atom, schema: &SchemaDecl) -> Result<(), ValidateError> {
    if atom.terms.len() != schema.arity() {
        return Err(err(
            ctx,
            format!(
                "atom {}(..) has {} terms, relation declares {} columns",
                atom.relation,
                atom.terms.len(),
                schema.arity()
            ),
        ));
    }
    Ok(())
}

fn check_literal_fits(ctx: &str, l: &Literal, ty: DataType) -> Result<(), ValidateError> {
    let ok = matches!(
        (l, ty),
        (Literal::Null, _)
            | (Literal::Int(_), DataType::BigInt | DataType::Double)
            | (Literal::Double(_), DataType::Double)
            | (Literal::Text(_), DataType::Text)
            | (Literal::Bool(_), DataType::Bool)
    );
    if ok {
        Ok(())
    } else {
        Err(err(ctx, format!("literal {l:?} does not fit column type {ty:?}")))
    }
}

fn types_compatible(a: DataType, b: DataType) -> bool {
    a == b
        || matches!(
            (a, b),
            (DataType::BigInt, DataType::Double) | (DataType::Double, DataType::BigInt)
        )
}

fn validate_cexpr(
    ctx: &str,
    e: &CExpr,
    var_types: &HashMap<&str, DataType>,
) -> Result<(), ValidateError> {
    match e {
        CExpr::Var(_) | CExpr::NamedGeom(_) | CExpr::Lit(_) => Ok(()),
        CExpr::Not(inner) => validate_cexpr(ctx, inner, var_types),
        CExpr::Cmp(_, l, r) => {
            validate_cexpr(ctx, l, var_types)?;
            validate_cexpr(ctx, r, var_types)
        }
        CExpr::Spatial(f, args) => {
            if args.len() != 2 {
                return Err(err(
                    ctx,
                    format!("{}() takes exactly 2 arguments, got {}", f.name(), args.len()),
                ));
            }
            for a in args {
                // Bound variables used spatially must have geometric type.
                if let CExpr::Var(v) = a {
                    if let Some(ty) = var_types.get(v.as_str()) {
                        if !ty.is_spatial() {
                            return Err(err(
                                ctx,
                                format!(
                                    "variable {v:?} of type {ty:?} used as a geometry in {}()",
                                    f.name()
                                ),
                            ));
                        }
                    }
                    // Unbound names are geometry constants, resolved at
                    // compile time.
                }
                validate_cexpr(ctx, a, var_types)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str) -> Result<(), ValidateError> {
        validate(&parse_program(src).unwrap()).map(|_| ())
    }

    #[test]
    fn valid_program_passes() {
        let src = r#"
        County(id bigint, location point, lowSan bool).
        @spatial(exp)
        HasEbola?(id bigint, location point).
        D1: HasEbola(C, L) = NULL :- County(C, L, _).
        R1: @weight(0.35) HasEbola(C1, L1) => HasEbola(C2, L2) :-
            County(C1, L1, _), County(C2, L2, S)
            [distance(L1, L2) < 150, S = true].
        "#;
        check(src).unwrap();
    }

    #[test]
    fn spatial_on_input_relation_rejected() {
        let src = "@spatial(exp)\nCounty(id bigint, location point).";
        let e = check(src).unwrap_err();
        assert!(e.message.contains("variable relations"), "{e}");
    }

    #[test]
    fn spatial_without_spatial_attribute_rejected() {
        let src = "@spatial(exp)\nHasEbola?(id bigint).";
        let e = check(src).unwrap_err();
        assert!(e.message.contains("spatial attribute"), "{e}");
    }

    #[test]
    fn duplicate_relation_rejected() {
        let src = "A(id bigint).\nA(id bigint).";
        assert!(check(src).is_err());
    }

    #[test]
    fn undeclared_relations_rejected() {
        assert!(check("Y?(s bigint).\nY(S) :- Missing(S).").is_err());
        assert!(check("Z(s bigint).\nMissing(S) :- Z(S).").is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let src = "Y?(s bigint).\nZ(s bigint, t bigint).\nY(S) :- Z(S).";
        let e = check(src).unwrap_err();
        assert!(e.message.contains("terms"), "{e}");
    }

    #[test]
    fn head_must_be_variable_relation() {
        let src = "Y(s bigint).\nZ(s bigint).\nY(S) :- Z(S).";
        let e = check(src).unwrap_err();
        assert!(e.message.contains("variable relation"), "{e}");
    }

    #[test]
    fn unbound_head_variable_rejected() {
        let src = "Y?(s bigint).\nZ(s bigint).\nY(T) :- Z(S).";
        let e = check(src).unwrap_err();
        assert!(e.message.contains("not bound"), "{e}");
    }

    #[test]
    fn incompatible_variable_types_rejected() {
        let src = "Y?(s bigint).\nZ(s bigint, t text).\nY(S) :- Z(S, S).";
        assert!(check(src).is_err());
    }

    #[test]
    fn non_geometry_in_spatial_fn_rejected() {
        let src = "Y?(s bigint).\nZ(s bigint).\nY(S) :- Z(S) [distance(S, S) < 5].";
        let e = check(src).unwrap_err();
        assert!(e.message.contains("geometry"), "{e}");
    }

    #[test]
    fn weight_on_derivation_rejected() {
        let src = "Y?(s bigint).\nZ(s bigint).\nR: @weight(1.0) Y(S) = NULL :- Z(S).";
        assert!(check(src).is_err());
    }

    #[test]
    fn wildcard_in_head_rejected() {
        let src = "Y?(s bigint, t bigint).\nZ(s bigint).\nY(S, _) :- Z(S).";
        assert!(check(src).is_err());
    }

    #[test]
    fn wrong_spatial_arity_rejected() {
        let src = "Y?(s bigint, l point).\nZ(s bigint, l point).\nY(S, L) :- Z(S, L) [within(L) = true].";
        assert!(check(src).is_err());
    }

    #[test]
    fn literal_type_mismatch_rejected() {
        let src = "Y?(s bigint).\nZ(s bigint, t text).\nY(S) :- Z(S, 5).";
        assert!(check(src).is_err());
    }
}
