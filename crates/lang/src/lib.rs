//! # sya-lang — the spatial DDlog language module
//!
//! Sya extends DeepDive's DDlog language (paper Section III) with spatial
//! data types, the `@spatial(w)` variable-relation annotation, spatial
//! predicates in rule bodies, and spatial UDFs. This crate implements the
//! complete front-end:
//!
//! * [`lexer`] / [`parser`] — text → [`ast::Program`];
//! * [`ast`] — schema declarations (typical relations and `?`-suffixed
//!   variable relations), derivation rules, weighted inference rules with
//!   condition lists;
//! * [`validate`] — the checks the paper's language module performs
//!   ("checks the syntax correctness and the validity of used spatial
//!   constructs"): `@spatial` only on variable relations with a spatial
//!   attribute, arity and type agreement, bound variables in conditions;
//! * [`compile`] — lowering to a typed rule IR the grounding module
//!   executes, with named-geometry constant resolution;
//! * [`udf`] — the spatial named-entity-recognition UDF (a deterministic
//!   gazetteer matcher standing in for the GeoTxt library);
//! * [`printer`] — a pretty-printer whose output re-parses to the same
//!   AST (used for round-trip property tests).
//!
//! # Example
//!
//! ```
//! use sya_lang::parse_program;
//!
//! let src = r#"
//! County(id bigint, location point, hasLowSanitation bool).
//! @spatial(exp)
//! HasEbola?(id bigint, location point).
//! D1: HasEbola(C1, L1) = NULL :- County(C1, L1, _).
//! R1: @weight(0.35)
//!     HasEbola(C1, L1) => HasEbola(C2, L2) :-
//!     County(C1, L1, _), County(C2, L2, S2)
//!     [distance(L1, L2) < 150, S2 = true].
//! "#;
//! let program = parse_program(src).unwrap();
//! assert_eq!(program.schemas().count(), 2);
//! assert_eq!(program.rules().count(), 2);
//! ```

pub mod ast;
pub mod compile;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod udf;
pub mod validate;

pub use ast::{
    Annotation, Atom, BodyAtom, CExpr, CmpOp, HeadOp, Literal, Program, Rule, RuleHead,
    SchemaDecl, SpatialFnName, Term,
};
pub use compile::{compile, CompiledAtom, CompiledProgram, CompiledRule, GeomConstants,
    RuleKind, SlotTerm};
pub use parser::{parse_program, ParseError};
pub use printer::print_program;
pub use udf::{Gazetteer, SpatialMention};
pub use validate::{validate, ValidateError};
