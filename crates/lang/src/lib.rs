//! # sya-lang — the spatial DDlog language module
//!
//! Sya extends DeepDive's DDlog language (paper Section III) with spatial
//! data types, the `@spatial(w)` variable-relation annotation, spatial
//! predicates in rule bodies, and spatial UDFs. This crate implements the
//! complete front-end:
//!
//! * [`lexer`] / [`parser`] — text → [`ast::Program`];
//! * [`ast`] — schema declarations (typical relations and `?`-suffixed
//!   variable relations), derivation rules, weighted inference rules with
//!   condition lists;
//! * [`validate`] — the checks the paper's language module performs
//!   ("checks the syntax correctness and the validity of used spatial
//!   constructs"): `@spatial` only on variable relations with a spatial
//!   attribute, arity and type agreement, bound variables in conditions;
//! * [`compile`] — lowering to a typed rule IR the grounding module
//!   executes, with named-geometry constant resolution;
//! * [`udf`] — the spatial named-entity-recognition UDF (a deterministic
//!   gazetteer matcher standing in for the GeoTxt library);
//! * [`printer`] — a pretty-printer whose output re-parses to the same
//!   AST (used for round-trip property tests).
//!
//! # Example
//!
//! ```
//! use sya_lang::parse_program;
//!
//! let src = r#"
//! County(id bigint, location point, hasLowSanitation bool).
//! @spatial(exp)
//! HasEbola?(id bigint, location point).
//! D1: HasEbola(C1, L1) = NULL :- County(C1, L1, _).
//! R1: @weight(0.35)
//!     HasEbola(C1, L1) => HasEbola(C2, L2) :-
//!     County(C1, L1, _), County(C2, L2, S2)
//!     [distance(L1, L2) < 150, S2 = true].
//! "#;
//! let program = parse_program(src).unwrap();
//! assert_eq!(program.schemas().count(), 2);
//! assert_eq!(program.rules().count(), 2);
//! ```

pub mod adorn;
pub mod ast;
pub mod compile;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod udf;
pub mod validate;

pub use adorn::{adorn_program, adorn_rule, RuleAdornment};
pub use ast::{
    Annotation, Atom, BodyAtom, CExpr, CmpOp, HeadOp, Literal, Program, Rule, RuleHead,
    SchemaDecl, SpatialFnName, Term,
};
pub use compile::{compile, CompiledAtom, CompiledProgram, CompiledRule, GeomConstants,
    RuleKind, SlotTerm};
pub use parser::{parse_program, ParseError};
pub use printer::print_program;
pub use udf::{Gazetteer, SpatialMention};
pub use validate::{validate, ValidateError};

use sya_geom::DistanceMetric;
use sya_obs::Obs;

/// Observed variant of [`parse_program`]: wraps the parse in a
/// `lang.parse` span and records `lang.schemas_total` / `lang.rules_total`
/// counters. A disabled handle makes this identical to [`parse_program`].
pub fn parse_program_with(src: &str, obs: &Obs) -> Result<Program, ParseError> {
    let mut span = obs.span_with(
        "lang.parse",
        vec![("bytes".to_string(), src.len().to_string())],
    );
    let program = parse_program(src)?;
    let schemas = program.schemas().count();
    let rules = program.rules().count();
    span.set_attr("schemas", schemas);
    span.set_attr("rules", rules);
    obs.counter_add("lang.schemas_total", schemas as u64);
    obs.counter_add("lang.rules_total", rules as u64);
    Ok(program)
}

/// Observed variant of [`compile`]: wraps validation + lowering in a
/// `lang.compile` span and records `lang.compiled_rules_total`.
pub fn compile_with(
    program: &Program,
    constants: &GeomConstants,
    metric: DistanceMetric,
    obs: &Obs,
) -> Result<CompiledProgram, ValidateError> {
    let mut span = obs.span("lang.compile");
    let compiled = compile(program, constants, metric)?;
    span.set_attr("rules", compiled.rules.len());
    obs.counter_add("lang.compiled_rules_total", compiled.rules.len() as u64);
    Ok(compiled)
}

#[cfg(test)]
mod obs_tests {
    use super::*;

    const SRC: &str = r#"
        Well(id bigint, location point).
        @spatial(exp)
        IsSafe?(id bigint, location point).
        D1: IsSafe(W, L) = NULL :- Well(W, L).
    "#;

    #[test]
    fn observed_parse_and_compile_record_spans_and_counters() {
        let obs = Obs::enabled();
        let program = parse_program_with(SRC, &obs).unwrap();
        let compiled =
            compile_with(&program, &GeomConstants::new(), DistanceMetric::Euclidean, &obs)
                .unwrap();
        assert_eq!(compiled.rules.len(), 1);
        let m = obs.metrics().unwrap();
        assert_eq!(m.counter_value("lang.schemas_total"), Some(2));
        assert_eq!(m.counter_value("lang.rules_total"), Some(1));
        assert_eq!(m.counter_value("lang.compiled_rules_total"), Some(1));
        let spans = obs.trace_snapshot().spans;
        assert!(spans.iter().any(|s| s.name == "lang.parse"));
        assert!(spans.iter().any(|s| s.name == "lang.compile"));
    }

    #[test]
    fn disabled_handle_changes_nothing() {
        let obs = Obs::disabled();
        let program = parse_program_with(SRC, &obs).unwrap();
        let plain = parse_program(SRC).unwrap();
        assert_eq!(program, plain);
        assert!(obs.metrics().is_none());
    }
}
