//! Recursive-descent parser producing [`Program`] ASTs.

use crate::ast::*;
use crate::lexer::{lex, Token, TokenKind};
use sya_store::DataType;

/// Parse error with source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a Sya DDlog program.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src).map_err(|e| ParseError { line: e.line, message: e.message })?;
    Parser { tokens, pos: 0, auto_label: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    auto_label: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek2(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos + 1).map(|t| &t.kind)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        self.pos += 1;
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { line: self.line(), message: msg.into() })
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(k) if k == kind => {
                self.pos += 1;
                Ok(())
            }
            Some(k) => {
                let k = k.clone();
                self.err(format!("expected {what}, found {k:?}"))
            }
            None => self.err(format!("expected {what}, found end of input")),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().cloned() {
            Some(TokenKind::Ident(s)) => {
                self.pos += 1;
                Ok(s)
            }
            other => self.err(format!("expected {what}, found {other:?}")),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut items = Vec::new();
        while self.peek().is_some() {
            items.push(self.item()?);
        }
        Ok(Program { items })
    }

    fn item(&mut self) -> Result<Item, ParseError> {
        let mut annotations = self.annotations()?;
        // Optional label: `Ident ':'` where the next token is not `-`
        // (the `:-` turnstile lexes as one token, so a bare Colon here is
        // unambiguous).
        let label = if matches!(self.peek(), Some(TokenKind::Ident(_)))
            && matches!(self.peek2(), Some(TokenKind::Colon))
        {
            let l = self.expect_ident("label")?;
            self.expect(&TokenKind::Colon, "':' after label")?;
            Some(l)
        } else {
            None
        };
        // Annotations may also follow the label (paper writes both
        // `@weight(0.7) R1: ...` and `R1: @weight(0.35) ...`).
        annotations.extend(self.annotations()?);

        let name = self.expect_ident("relation name")?;
        let is_variable = if matches!(self.peek(), Some(TokenKind::Question)) {
            self.pos += 1;
            true
        } else {
            false
        };
        self.expect(&TokenKind::LParen, "'('")?;

        // Schema declarations have `name type` column pairs; rule atoms
        // have single terms. A variable-relation marker (`?`) also forces
        // a schema.
        let looks_like_schema = is_variable
            || (matches!(self.peek(), Some(TokenKind::Ident(_)))
                && matches!(self.peek2(), Some(TokenKind::Ident(_))));

        if looks_like_schema {
            let decl = self.schema_tail(label, name, is_variable, &annotations)?;
            Ok(Item::Schema(decl))
        } else {
            let rule = self.rule_tail(label, name, &annotations)?;
            Ok(Item::Rule(rule))
        }
    }

    fn annotations(&mut self) -> Result<Vec<Annotation>, ParseError> {
        let mut out = Vec::new();
        while let Some(TokenKind::At(name)) = self.peek().cloned() {
            self.pos += 1;
            self.expect(&TokenKind::LParen, "'(' after annotation")?;
            match name.as_str() {
                "spatial" => {
                    let w = self.expect_ident("weighting function name")?;
                    out.push(Annotation::Spatial(w));
                }
                "weight" => {
                    let w = match self.bump() {
                        Some(TokenKind::Double(d)) => d,
                        Some(TokenKind::Int(i)) => i as f64,
                        other => return self.err(format!("expected weight value, found {other:?}")),
                    };
                    out.push(Annotation::Weight(w));
                }
                other => return self.err(format!("unknown annotation @{other}")),
            }
            self.expect(&TokenKind::RParen, "')' after annotation")?;
        }
        Ok(out)
    }

    /// Parses a schema declaration after `Name(` has been consumed.
    fn schema_tail(
        &mut self,
        label: Option<String>,
        name: String,
        is_variable: bool,
        annotations: &[Annotation],
    ) -> Result<SchemaDecl, ParseError> {
        let mut columns = Vec::new();
        loop {
            let col = self.expect_ident("column name")?;
            let ty_name = self.expect_ident("column type")?;
            let ty = DataType::from_ddlog_name(&ty_name)
                .ok_or_else(|| ParseError {
                    line: self.line(),
                    message: format!("unknown type {ty_name:?} for column {col:?}"),
                })?;
            columns.push((col, ty));
            match self.bump() {
                Some(TokenKind::Comma) => continue,
                Some(TokenKind::RParen) => break,
                other => return self.err(format!("expected ',' or ')', found {other:?}")),
            }
        }
        self.expect(&TokenKind::Dot, "'.' after schema declaration")?;

        let spatial = annotations.iter().find_map(|a| match a {
            Annotation::Spatial(w) => Some(w.clone()),
            _ => None,
        });
        Ok(SchemaDecl {
            label: label.unwrap_or_else(|| format!("S_{name}")),
            name,
            is_variable,
            columns,
            spatial,
        })
    }

    /// Parses a rule after the first head atom's `Name(` has been
    /// consumed.
    fn rule_tail(
        &mut self,
        label: Option<String>,
        first_name: String,
        annotations: &[Annotation],
    ) -> Result<Rule, ParseError> {
        let first = self.atom_terms(first_name)?;
        let head = self.head_tail(first)?;
        self.expect(&TokenKind::Turnstile, "':-' before rule body")?;

        let mut body = Vec::new();
        loop {
            let name = self.expect_ident("body atom name")?;
            self.expect(&TokenKind::LParen, "'(' after body atom name")?;
            body.push(self.atom_terms(name)?);
            match self.peek() {
                Some(TokenKind::Comma) => {
                    self.pos += 1;
                }
                _ => break,
            }
        }

        let mut conditions = Vec::new();
        if matches!(self.peek(), Some(TokenKind::LBracket)) {
            self.pos += 1;
            loop {
                conditions.push(self.condition()?);
                match self.bump() {
                    Some(TokenKind::Comma) => continue,
                    Some(TokenKind::RBracket) => break,
                    other => return self.err(format!("expected ',' or ']', found {other:?}")),
                }
            }
        }
        self.expect(&TokenKind::Dot, "'.' after rule")?;

        let weight = annotations.iter().find_map(|a| match a {
            Annotation::Weight(w) => Some(*w),
            _ => None,
        });
        let label = label.unwrap_or_else(|| {
            self.auto_label += 1;
            format!("R_auto{}", self.auto_label)
        });
        Ok(Rule { label, weight, head, body, conditions })
    }

    /// Parses the remainder of the head after its first atom.
    fn head_tail(&mut self, first: Atom) -> Result<RuleHead, ParseError> {
        match self.peek() {
            // `Atom = NULL :- ...` — derivation rule.
            Some(TokenKind::Eq) => {
                self.pos += 1;
                match self.bump() {
                    Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case("null") => {
                        Ok(RuleHead::Derivation(first))
                    }
                    other => self.err(format!("expected NULL in derivation head, found {other:?}")),
                }
            }
            Some(TokenKind::Implies) => {
                self.pos += 1;
                let rhs = self.head_atom()?;
                Ok(RuleHead::Inference { op: HeadOp::Imply, atoms: vec![first, rhs] })
            }
            Some(TokenKind::Amp) | Some(TokenKind::Pipe) => {
                let op_tok = self.bump().expect("peeked");
                let op = if op_tok == TokenKind::Amp { HeadOp::And } else { HeadOp::Or };
                let mut atoms = vec![first, self.head_atom()?];
                while self.peek() == Some(&op_tok) {
                    self.pos += 1;
                    atoms.push(self.head_atom()?);
                }
                Ok(RuleHead::Inference { op, atoms })
            }
            _ => Ok(RuleHead::Inference { op: HeadOp::IsTrue, atoms: vec![first] }),
        }
    }

    fn head_atom(&mut self) -> Result<Atom, ParseError> {
        let name = self.expect_ident("head atom name")?;
        self.expect(&TokenKind::LParen, "'(' after head atom name")?;
        self.atom_terms(name)
    }

    /// Parses `term, term, ... )` for an atom whose `Name(` was consumed.
    fn atom_terms(&mut self, relation: String) -> Result<Atom, ParseError> {
        let mut terms = Vec::new();
        if matches!(self.peek(), Some(TokenKind::RParen)) {
            self.pos += 1;
            return Ok(Atom { relation, terms });
        }
        loop {
            let term = match self.bump() {
                Some(TokenKind::Ident(s)) => match s.as_str() {
                    "true" => Term::Lit(Literal::Bool(true)),
                    "false" => Term::Lit(Literal::Bool(false)),
                    _ if s.eq_ignore_ascii_case("null") => Term::Lit(Literal::Null),
                    _ => Term::Var(s),
                },
                Some(TokenKind::Int(i)) => Term::Lit(Literal::Int(i)),
                Some(TokenKind::Double(d)) => Term::Lit(Literal::Double(d)),
                Some(TokenKind::Str(s)) => Term::Lit(Literal::Text(s)),
                Some(TokenKind::Underscore) | Some(TokenKind::Minus) => Term::Wildcard,
                other => return self.err(format!("expected term, found {other:?}")),
            };
            terms.push(term);
            match self.bump() {
                Some(TokenKind::Comma) => continue,
                Some(TokenKind::RParen) => break,
                other => return self.err(format!("expected ',' or ')', found {other:?}")),
            }
        }
        Ok(Atom { relation, terms })
    }

    /// Parses one condition: `cexpr [cmp cexpr]`.
    fn condition(&mut self) -> Result<CExpr, ParseError> {
        let left = self.cexpr()?;
        let op = match self.peek() {
            Some(TokenKind::Eq) => Some(CmpOp::Eq),
            Some(TokenKind::Ne) => Some(CmpOp::Ne),
            Some(TokenKind::Lt) => Some(CmpOp::Lt),
            Some(TokenKind::Le) => Some(CmpOp::Le),
            Some(TokenKind::Gt) => Some(CmpOp::Gt),
            Some(TokenKind::Ge) => Some(CmpOp::Ge),
            _ => None,
        };
        match op {
            None => Ok(left),
            Some(op) => {
                self.pos += 1;
                let right = self.cexpr()?;
                Ok(CExpr::Cmp(op, Box::new(left), Box::new(right)))
            }
        }
    }

    /// Parses a condition primary expression.
    fn cexpr(&mut self) -> Result<CExpr, ParseError> {
        if matches!(self.peek(), Some(TokenKind::Bang)) {
            self.pos += 1;
            return Ok(CExpr::Not(Box::new(self.cexpr()?)));
        }
        match self.bump() {
            Some(TokenKind::Int(i)) => Ok(CExpr::Lit(Literal::Int(i))),
            Some(TokenKind::Double(d)) => Ok(CExpr::Lit(Literal::Double(d))),
            Some(TokenKind::Str(s)) => Ok(CExpr::Lit(Literal::Text(s))),
            Some(TokenKind::Ident(s)) => {
                if s == "true" {
                    return Ok(CExpr::Lit(Literal::Bool(true)));
                }
                if s == "false" {
                    return Ok(CExpr::Lit(Literal::Bool(false)));
                }
                if s.eq_ignore_ascii_case("null") {
                    return Ok(CExpr::Lit(Literal::Null));
                }
                if let Some(f) = SpatialFnName::parse(&s) {
                    if matches!(self.peek(), Some(TokenKind::LParen)) {
                        self.pos += 1;
                        let mut args = Vec::new();
                        loop {
                            args.push(self.cexpr()?);
                            match self.bump() {
                                Some(TokenKind::Comma) => continue,
                                Some(TokenKind::RParen) => break,
                                other => {
                                    return self
                                        .err(format!("expected ',' or ')', found {other:?}"))
                                }
                            }
                        }
                        return Ok(CExpr::Spatial(f, args));
                    }
                }
                // Bound rule variable or named geometry constant; the
                // compiler decides which (based on body bindings).
                Ok(CExpr::Var(s))
            }
            other => self.err(format!("expected condition expression, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EBOLA: &str = r#"
    # Schema Declaration
    S1: County (id bigint, location point, hasLowSanitation bool).
    @spatial(exp)
    S2: HasEbola? (id bigint, location point).
    # Derivation Rule
    D1: HasEbola(C1, L1) = NULL :- County(C1, L1, -).
    # Inference Rule
    R1: @weight(0.35)
        HasEbola(C1, L1) => HasEbola(C2, L2) :-
        County(C1, L1, -), County(C2, L2, S2)
        [distance(L1, L2) < 150, within(L1, liberia_geom), S2 = true].
    "#;

    #[test]
    fn parses_the_paper_fig3_program() {
        let p = parse_program(EBOLA).unwrap();
        assert_eq!(p.items.len(), 4);

        let county = p.schema("County").unwrap();
        assert!(!county.is_variable);
        assert_eq!(county.arity(), 3);
        assert_eq!(county.spatial, None);

        let ebola = p.schema("HasEbola").unwrap();
        assert!(ebola.is_variable);
        assert_eq!(ebola.spatial.as_deref(), Some("exp"));
        assert_eq!(ebola.first_spatial_column(), Some(1));

        let rules: Vec<_> = p.rules().collect();
        assert_eq!(rules.len(), 2);
        assert!(rules[0].is_derivation());
        assert_eq!(rules[0].label, "D1");
        let r1 = rules[1];
        assert_eq!(r1.label, "R1");
        assert_eq!(r1.weight, Some(0.35));
        match &r1.head {
            RuleHead::Inference { op: HeadOp::Imply, atoms } => {
                assert_eq!(atoms.len(), 2);
                assert_eq!(atoms[0].relation, "HasEbola");
            }
            other => panic!("expected imply head, got {other:?}"),
        }
        assert_eq!(r1.body.len(), 2);
        assert_eq!(r1.conditions.len(), 3);
        match &r1.conditions[0] {
            CExpr::Cmp(CmpOp::Lt, l, r) => {
                assert!(matches!(l.as_ref(), CExpr::Spatial(SpatialFnName::Distance, _)));
                assert!(matches!(r.as_ref(), CExpr::Lit(Literal::Int(150))));
            }
            other => panic!("bad condition {other:?}"),
        }
    }

    #[test]
    fn weight_before_label_also_parses() {
        // Paper Fig. 7 writes `@weight(0.7) R1: IsSafe(...) => ...`.
        let src = r#"
        Well(id bigint, location point, arsenic_ratio double).
        @spatial(exp)
        IsSafe?(id bigint, location point).
        @weight(0.7)
        R1: IsSafe(W1, L1) => IsSafe(W2, L2) :-
            Well(W1, L1, R1x), Well(W2, L2, R2x)
            [distance(L1, L2) < 50, R1x < 0.2, R2x < 0.2].
        "#;
        let p = parse_program(src).unwrap();
        let r = p.rules().next().unwrap();
        assert_eq!(r.weight, Some(0.7));
        assert_eq!(r.label, "R1");
        assert_eq!(r.conditions.len(), 3);
    }

    #[test]
    fn single_atom_and_conjunction_heads() {
        let src = r#"
        Y?(s bigint).
        X?(r bigint, s bigint).
        Z(r bigint, s bigint).
        A1: Y(S) :- Z(R, S).
        A2: @weight(0.7) X(R, S) & Y(S) :- Z(R, S) [R = 5].
        A3: X(R, S) | Y(S) :- Z(R, S).
        "#;
        let p = parse_program(src).unwrap();
        let rules: Vec<_> = p.rules().collect();
        assert!(matches!(
            &rules[0].head,
            RuleHead::Inference { op: HeadOp::IsTrue, atoms } if atoms.len() == 1
        ));
        assert!(matches!(
            &rules[1].head,
            RuleHead::Inference { op: HeadOp::And, atoms } if atoms.len() == 2
        ));
        assert!(matches!(
            &rules[2].head,
            RuleHead::Inference { op: HeadOp::Or, atoms } if atoms.len() == 2
        ));
    }

    #[test]
    fn rules_without_labels_get_auto_labels() {
        let src = r#"
        Y?(s bigint).
        Z(s bigint).
        Y(S) :- Z(S).
        Y(S) :- Z(S) [S > 3].
        "#;
        let p = parse_program(src).unwrap();
        let labels: Vec<_> = p.rules().map(|r| r.label.clone()).collect();
        assert_eq!(labels.len(), 2);
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn literal_terms_in_atoms() {
        let src = r#"
        Y?(s bigint, flag bool).
        Z(s bigint, t text).
        Y(S, true) :- Z(S, "label") [S != 0].
        "#;
        let p = parse_program(src).unwrap();
        let r = p.rules().next().unwrap();
        match &r.head {
            RuleHead::Inference { atoms, .. } => {
                assert_eq!(atoms[0].terms[1], Term::Lit(Literal::Bool(true)));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(r.body[0].terms[1], Term::Lit(Literal::Text("label".into())));
    }

    #[test]
    fn negated_conditions_parse() {
        let src = r#"
        Region(id bigint, geom polygon).
        Y?(s bigint, l point).
        Z(s bigint, l point).
        R: Y(S, L) :- Z(S, L) [!within(L, danger_zone), !(S = 3)].
        "#;
        // `!(S = 3)` is not supported (no parenthesized conditions); use
        // the simple prefix form instead.
        assert!(parse_program(src).is_err());
        let simple = r#"
        Y?(s bigint, l point).
        Z(s bigint, l point).
        R: Y(S, L) :- Z(S, L) [!within(L, danger_zone)].
        "#;
        let p = parse_program(simple).unwrap();
        let r = p.rules().next().unwrap();
        assert!(matches!(&r.conditions[0], CExpr::Not(inner)
            if matches!(inner.as_ref(), CExpr::Spatial(SpatialFnName::Within, _))));
    }

    #[test]
    fn error_cases() {
        assert!(parse_program("County(id bigint")
            .unwrap_err()
            .message
            .contains("expected"));
        assert!(parse_program("County(id blob).").is_err()); // unknown type
        assert!(parse_program("R1: A(X) => B(X).").is_err()); // missing body
        assert!(parse_program("A(X) = 5 :- B(X).").is_err()); // bad derivation
        assert!(parse_program("@bogus(x) A(id bigint).").is_err()); // bad annotation
        assert!(parse_program("A(X) :- B(X) [X <].").is_err()); // bad condition
    }

    #[test]
    fn empty_program_is_ok() {
        let p = parse_program("# just a comment\n").unwrap();
        assert!(p.items.is_empty());
    }
}
