//! Lowering from the validated AST to the rule IR executed by the
//! grounding module.
//!
//! A compiled rule's body is expressed over a *binding row*: the ordered
//! list of distinct variables the body atoms bind. Conditions compile to
//! [`sya_store::Expr`] trees over that row; named geometry constants
//! (e.g. `liberia_geom` in the paper's rule R1) are resolved against a
//! [`GeomConstants`] registry and inlined as literals.

use crate::ast::*;
use crate::validate::{validate, ValidateError};
use std::collections::HashMap;
use sya_geom::{DistanceMetric, Geometry};
use sya_store::{BinOp, DataType, Expr, SpatialFn, Value};

/// Registry of named geometry constants available to programs.
#[derive(Debug, Clone, Default)]
pub struct GeomConstants {
    map: HashMap<String, Geometry>,
}

impl GeomConstants {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, name: impl Into<String>, g: Geometry) -> &mut Self {
        self.map.insert(name.into(), g);
        self
    }

    pub fn get(&self, name: &str) -> Option<&Geometry> {
        self.map.get(name)
    }
}

/// How a rule contributes to the factor graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleKind {
    /// Instantiates unobserved random variables.
    Derivation,
    /// Emits one logical factor per satisfying body binding.
    Inference(HeadOp),
}

/// A term of a compiled atom, referring to binding-row slots.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotTerm {
    /// Binding-row slot index.
    Slot(usize),
    /// Constant value.
    Const(Value),
    /// Unused position.
    Wildcard,
}

/// An atom with terms resolved to binding slots.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledAtom {
    pub relation: String,
    pub terms: Vec<SlotTerm>,
}

/// A rule lowered for execution.
#[derive(Debug, Clone)]
pub struct CompiledRule {
    pub label: String,
    /// Factor weight (`@weight`), defaulting to 1.0 for inference rules.
    pub weight: f64,
    pub kind: RuleKind,
    /// Head atoms with slot-resolved terms.
    pub head: Vec<CompiledAtom>,
    /// Body atoms with slot-resolved terms, in source order.
    pub body: Vec<CompiledAtom>,
    /// Binding row schema: `(variable name, type)` per slot.
    pub slots: Vec<(String, DataType)>,
    /// Conditions over the binding row, in source order (the grounder
    /// applies the Section IV-B heuristic re-ordering).
    pub conditions: Vec<Expr>,
}

impl CompiledRule {
    /// Slot index of a variable by name.
    pub fn slot_of(&self, var: &str) -> Option<usize> {
        self.slots.iter().position(|(n, _)| n == var)
    }
}

/// A compiled program: validated schemas plus lowered rules.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    pub schemas: HashMap<String, SchemaDecl>,
    pub rules: Vec<CompiledRule>,
}

impl CompiledProgram {
    pub fn schema(&self, name: &str) -> Option<&SchemaDecl> {
        self.schemas.get(name)
    }

    /// Variable relations annotated with `@spatial`, with their
    /// weighting-function names.
    pub fn spatial_variable_relations(&self) -> impl Iterator<Item = (&SchemaDecl, &str)> {
        self.schemas
            .values()
            .filter_map(|s| s.spatial.as_deref().map(|w| (s, w)))
    }
}

/// Compiles a validated program. `metric` selects the distance semantics
/// of `distance()` conditions (Euclidean for projected data, haversine
/// miles for lon/lat data like EbolaKB).
pub fn compile(
    program: &Program,
    constants: &GeomConstants,
    metric: DistanceMetric,
) -> Result<CompiledProgram, ValidateError> {
    let schemas = validate(program)?;
    let mut rules = Vec::new();
    for rule in program.rules() {
        rules.push(compile_rule(rule, &schemas, constants, metric)?);
    }
    Ok(CompiledProgram { schemas, rules })
}

fn compile_rule(
    rule: &Rule,
    schemas: &HashMap<String, SchemaDecl>,
    constants: &GeomConstants,
    metric: DistanceMetric,
) -> Result<CompiledRule, ValidateError> {
    let ctx = rule.label.clone();
    let mut slots: Vec<(String, DataType)> = Vec::new();
    let mut slot_of: HashMap<String, usize> = HashMap::new();

    let mut body = Vec::with_capacity(rule.body.len());
    for atom in &rule.body {
        let schema = &schemas[&atom.relation];
        let mut terms = Vec::with_capacity(atom.terms.len());
        for (i, t) in atom.terms.iter().enumerate() {
            terms.push(match t {
                Term::Wildcard => SlotTerm::Wildcard,
                Term::Lit(l) => SlotTerm::Const(literal_to_value(l)),
                Term::Var(v) => {
                    let slot = *slot_of.entry(v.clone()).or_insert_with(|| {
                        slots.push((v.clone(), schema.columns[i].1));
                        slots.len() - 1
                    });
                    SlotTerm::Slot(slot)
                }
            });
        }
        body.push(CompiledAtom { relation: atom.relation.clone(), terms });
    }

    let (kind, head_atoms): (RuleKind, Vec<&Atom>) = match &rule.head {
        RuleHead::Derivation(a) => (RuleKind::Derivation, vec![a]),
        RuleHead::Inference { op, atoms } => {
            (RuleKind::Inference(*op), atoms.iter().collect())
        }
    };

    let mut head = Vec::with_capacity(head_atoms.len());
    for atom in head_atoms {
        let mut terms = Vec::with_capacity(atom.terms.len());
        for t in &atom.terms {
            terms.push(match t {
                Term::Wildcard => {
                    return Err(ValidateError {
                        context: ctx.clone(),
                        message: "wildcard in head".into(),
                    })
                }
                Term::Lit(l) => SlotTerm::Const(literal_to_value(l)),
                Term::Var(v) => SlotTerm::Slot(*slot_of.get(v).ok_or_else(|| ValidateError {
                    context: ctx.clone(),
                    message: format!("head variable {v:?} unbound"),
                })?),
            });
        }
        head.push(CompiledAtom { relation: atom.relation.clone(), terms });
    }

    let mut conditions = Vec::with_capacity(rule.conditions.len());
    for c in &rule.conditions {
        // Constant-fold so conditions over resolved geometry constants
        // become literals the planner classifies as cheap filters.
        conditions.push(compile_cexpr(&ctx, c, &slot_of, constants, metric)?.fold_constants());
    }

    Ok(CompiledRule {
        label: rule.label.clone(),
        weight: rule.weight.unwrap_or(1.0),
        kind,
        head,
        body,
        slots,
        conditions,
    })
}

fn literal_to_value(l: &Literal) -> Value {
    match l {
        Literal::Int(i) => Value::Int(*i),
        Literal::Double(d) => Value::Double(*d),
        Literal::Text(s) => Value::Text(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Null => Value::Null,
    }
}

fn compile_cexpr(
    ctx: &str,
    e: &CExpr,
    slot_of: &HashMap<String, usize>,
    constants: &GeomConstants,
    metric: DistanceMetric,
) -> Result<Expr, ValidateError> {
    Ok(match e {
        CExpr::Lit(l) => Expr::Lit(literal_to_value(l)),
        CExpr::Var(v) | CExpr::NamedGeom(v) => match slot_of.get(v) {
            Some(&s) => Expr::Col(s),
            None => {
                let g = constants.get(v).ok_or_else(|| ValidateError {
                    context: ctx.to_owned(),
                    message: format!(
                        "name {v:?} is neither a body-bound variable nor a registered geometry constant"
                    ),
                })?;
                Expr::Lit(Value::Geom(g.clone()))
            }
        },
        CExpr::Not(inner) => {
            Expr::Not(Box::new(compile_cexpr(ctx, inner, slot_of, constants, metric)?))
        }
        CExpr::Cmp(op, l, r) => {
            let op = match op {
                CmpOp::Eq => BinOp::Eq,
                CmpOp::Ne => BinOp::Ne,
                CmpOp::Lt => BinOp::Lt,
                CmpOp::Le => BinOp::Le,
                CmpOp::Gt => BinOp::Gt,
                CmpOp::Ge => BinOp::Ge,
            };
            Expr::bin(
                op,
                compile_cexpr(ctx, l, slot_of, constants, metric)?,
                compile_cexpr(ctx, r, slot_of, constants, metric)?,
            )
        }
        CExpr::Spatial(f, args) => {
            debug_assert_eq!(args.len(), 2, "validated arity");
            let sf = match f {
                SpatialFnName::Distance => SpatialFn::Distance,
                SpatialFnName::Within => SpatialFn::Within,
                SpatialFnName::Overlaps => SpatialFn::Overlaps,
                SpatialFnName::Contains => SpatialFn::Contains,
                SpatialFnName::Intersects => SpatialFn::Intersects,
            };
            Expr::spatial(
                sf,
                metric,
                compile_cexpr(ctx, &args[0], slot_of, constants, metric)?,
                compile_cexpr(ctx, &args[1], slot_of, constants, metric)?,
            )
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use sya_geom::{Polygon, Rect};

    const SRC: &str = r#"
    County(id bigint, location point, lowSan bool).
    @spatial(exp)
    HasEbola?(id bigint, location point).
    D1: HasEbola(C, L) = NULL :- County(C, L, _).
    R1: @weight(0.35) HasEbola(C1, L1) => HasEbola(C2, L2) :-
        County(C1, L1, _), County(C2, L2, S)
        [distance(L1, L2) < 150, within(L1, liberia_geom), S = true].
    "#;

    fn constants() -> GeomConstants {
        let mut c = GeomConstants::new();
        c.insert(
            "liberia_geom",
            Geometry::Polygon(Polygon::from_rect(&Rect::raw(-12.0, 4.0, -7.0, 9.0))),
        );
        c
    }

    #[test]
    fn compiles_the_ebola_program() {
        let p = parse_program(SRC).unwrap();
        let cp = compile(&p, &constants(), DistanceMetric::HaversineMiles).unwrap();
        assert_eq!(cp.rules.len(), 2);

        let d1 = &cp.rules[0];
        assert_eq!(d1.kind, RuleKind::Derivation);
        assert_eq!(d1.slots.len(), 2); // C, L
        assert_eq!(d1.head[0].terms, vec![SlotTerm::Slot(0), SlotTerm::Slot(1)]);

        let r1 = &cp.rules[1];
        assert_eq!(r1.kind, RuleKind::Inference(HeadOp::Imply));
        assert_eq!(r1.weight, 0.35);
        // Slots: C1, L1, C2, L2, S in first-occurrence order.
        assert_eq!(
            r1.slots.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            vec!["C1", "L1", "C2", "L2", "S"]
        );
        assert_eq!(r1.conditions.len(), 3);
        // within(L1, liberia_geom) resolved the constant into a literal.
        match &r1.conditions[1] {
            Expr::Spatial(SpatialFn::Within, _, _, rhs) => {
                assert!(matches!(rhs.as_ref(), Expr::Lit(Value::Geom(_))));
            }
            other => panic!("expected within, got {other:?}"),
        }
    }

    #[test]
    fn missing_constant_is_an_error() {
        let p = parse_program(SRC).unwrap();
        let e = compile(&p, &GeomConstants::new(), DistanceMetric::Euclidean).unwrap_err();
        assert!(e.message.contains("liberia_geom"), "{e}");
    }

    #[test]
    fn default_weight_is_one() {
        let src = "Y?(s bigint).\nZ(s bigint).\nY(S) :- Z(S).";
        let p = parse_program(src).unwrap();
        let cp = compile(&p, &GeomConstants::new(), DistanceMetric::Euclidean).unwrap();
        assert_eq!(cp.rules[0].weight, 1.0);
        assert_eq!(cp.rules[0].kind, RuleKind::Inference(HeadOp::IsTrue));
    }

    #[test]
    fn spatial_variable_relations_listed() {
        let p = parse_program(SRC).unwrap();
        let cp = compile(&p, &constants(), DistanceMetric::Euclidean).unwrap();
        let spatial: Vec<_> = cp.spatial_variable_relations().collect();
        assert_eq!(spatial.len(), 1);
        assert_eq!(spatial[0].0.name, "HasEbola");
        assert_eq!(spatial[0].1, "exp");
    }

    #[test]
    fn literal_terms_compile_to_consts() {
        let src = "Y?(s bigint, f bool).\nZ(s bigint).\nY(S, true) :- Z(S).";
        let p = parse_program(src).unwrap();
        let cp = compile(&p, &GeomConstants::new(), DistanceMetric::Euclidean).unwrap();
        assert_eq!(cp.rules[0].head[0].terms[1], SlotTerm::Const(Value::Bool(true)));
    }

    #[test]
    fn slot_of_lookup() {
        let p = parse_program(SRC).unwrap();
        let cp = compile(&p, &constants(), DistanceMetric::Euclidean).unwrap();
        let r1 = &cp.rules[1];
        assert_eq!(r1.slot_of("L2"), Some(3));
        assert_eq!(r1.slot_of("nope"), None);
    }
}
