//! Rule adornments for demand-driven (magic-sets) grounding.
//!
//! A *bound marginal query* `marginal(rel, args)` fixes some argument
//! positions of a head atom. The adornment of a rule, relative to that
//! binding, records which binding-row slots the bound head arguments
//! seed and — per body atom — which columns arrive **b**ound versus
//! **f**ree when the body is evaluated left to right (the classical
//! `bf`-annotation of the magic-sets literature). The demand-driven
//! grounder in `sya-query` uses adornments to pick the rules worth
//! evaluating for a bound atom and to seed
//! [`sya-ground`]'s binding enumeration with the known values.

use crate::compile::{CompiledProgram, CompiledRule, SlotTerm};
use std::collections::BTreeSet;

/// The adornment of one rule head relative to a set of bound head
/// argument positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleAdornment {
    /// Index of the rule in [`CompiledProgram::rules`].
    pub rule_index: usize,
    /// Which head atom of the rule matched the queried relation.
    pub head_index: usize,
    /// Binding-row slots seeded by the bound head arguments, sorted and
    /// deduplicated. A bound argument position holding a constant term
    /// contributes no slot (it is checked against the query value
    /// instead).
    pub bound_slots: Vec<usize>,
    /// Per bound argument position, the `(position, slot)` pairs — the
    /// caller pairs these with the query's values to build the seed.
    pub slot_of_arg: Vec<(usize, usize)>,
    /// Per body atom, the `b`/`f` adornment string under a left-to-right
    /// evaluation seeded with `bound_slots` (constants are `b`,
    /// wildcards `f`).
    pub body: Vec<String>,
}

impl RuleAdornment {
    /// `true` when at least one body atom gains a bound column from the
    /// query — i.e. the seed actually restricts evaluation.
    pub fn is_selective(&self) -> bool {
        !self.bound_slots.is_empty()
    }
}

/// Computes the adornment of `rule` for head atom `head_index`, given
/// the bound head argument positions. Returns `None` when the head atom
/// index is out of range or a bound position exceeds the head arity.
pub fn adorn_rule(
    rule: &CompiledRule,
    rule_index: usize,
    head_index: usize,
    bound_args: &[usize],
) -> Option<RuleAdornment> {
    let head = rule.head.get(head_index)?;
    let mut bound: BTreeSet<usize> = BTreeSet::new();
    let mut slot_of_arg = Vec::new();
    for &pos in bound_args {
        match head.terms.get(pos)? {
            SlotTerm::Slot(s) => {
                bound.insert(*s);
                slot_of_arg.push((pos, *s));
            }
            // Constants carry no slot: the caller compares the query
            // value against the constant directly.
            SlotTerm::Const(_) | SlotTerm::Wildcard => {}
        }
    }

    // Simulate the grounder's left-to-right pass, seeded.
    let mut acc = bound.clone();
    let mut body = Vec::with_capacity(rule.body.len());
    for atom in &rule.body {
        let mut s = String::with_capacity(atom.terms.len());
        for t in &atom.terms {
            match t {
                SlotTerm::Const(_) => s.push('b'),
                SlotTerm::Wildcard => s.push('f'),
                SlotTerm::Slot(slot) => {
                    if acc.contains(slot) {
                        s.push('b');
                    } else {
                        s.push('f');
                        acc.insert(*slot);
                    }
                }
            }
        }
        body.push(s);
    }

    Some(RuleAdornment {
        rule_index,
        head_index,
        bound_slots: bound.into_iter().collect(),
        slot_of_arg,
        body,
    })
}

/// All adornments of `program`'s rules whose head mentions `relation`,
/// with the given argument positions bound. One entry per matching head
/// atom (a rule whose head mentions the relation twice yields two).
pub fn adorn_program(
    program: &CompiledProgram,
    relation: &str,
    bound_args: &[usize],
) -> Vec<RuleAdornment> {
    let mut out = Vec::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        for (hi, atom) in rule.head.iter().enumerate() {
            if atom.relation == relation {
                if let Some(a) = adorn_rule(rule, ri, hi, bound_args) {
                    out.push(a);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, GeomConstants};
    use crate::parser::parse_program;
    use sya_geom::DistanceMetric;

    const SRC: &str = r#"
    Well(id bigint, location point, arsenic double).
    @spatial(exp)
    IsSafe?(id bigint, location point).
    D1: IsSafe(W, L) = NULL :- Well(W, L, _).
    R1: @weight(0.7) IsSafe(W1, L1) => IsSafe(W2, L2) :-
        Well(W1, L1, A1), Well(W2, L2, A2)
        [distance(L1, L2) < 3, A1 < 0.2, A2 < 0.2, W1 != W2].
    "#;

    fn compiled() -> CompiledProgram {
        let p = parse_program(SRC).unwrap();
        compile(&p, &GeomConstants::new(), DistanceMetric::Euclidean).unwrap()
    }

    #[test]
    fn derivation_head_binding_adorns_the_body() {
        let cp = compiled();
        let adorned = adorn_program(&cp, "IsSafe", &[0]);
        // D1 (one head) + R1 (two head atoms) = three adornments.
        assert_eq!(adorned.len(), 3);
        let d1 = &adorned[0];
        assert_eq!(d1.rule_index, 0);
        assert_eq!(d1.head_index, 0);
        // Head arg 0 = slot of W; the body atom sees it bound.
        assert_eq!(d1.bound_slots.len(), 1);
        assert_eq!(d1.slot_of_arg, vec![(0, d1.bound_slots[0])]);
        assert_eq!(d1.body, vec!["bff"]);
        assert!(d1.is_selective());
    }

    #[test]
    fn inference_rule_adorns_both_head_positions() {
        let cp = compiled();
        let adorned = adorn_program(&cp, "IsSafe", &[0, 1]);
        let r1_first = adorned.iter().find(|a| a.rule_index == 1 && a.head_index == 0).unwrap();
        // W1, L1 bound: first body atom is fully seeded (arsenic free),
        // the second is free until the join conditions apply.
        assert_eq!(r1_first.body, vec!["bbf", "fff"]);
        let r1_second = adorned.iter().find(|a| a.rule_index == 1 && a.head_index == 1).unwrap();
        assert_eq!(r1_second.body, vec!["fff", "bbf"]);
    }

    #[test]
    fn unknown_relation_has_no_adornments() {
        let cp = compiled();
        assert!(adorn_program(&cp, "Nope", &[0]).is_empty());
    }

    #[test]
    fn out_of_range_bound_arg_is_rejected() {
        let cp = compiled();
        assert!(adorn_rule(&cp.rules[0], 0, 0, &[9]).is_none());
    }
}
