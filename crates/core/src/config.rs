//! Pipeline configuration: engine modes, sampler choice, and the knobs
//! the paper's experiments vary.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Duration;
use sya_ground::{GroundConfig, StepFunctionSpec};
use sya_infer::InferConfig;
use sya_runtime::RunBudget;

/// Durability settings for a run (DESIGN.md §10). Disabled by default:
/// no checkpoint directory means the samplers never touch the disk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Directory for checkpoint files and the persisted factor graph.
    /// `None` disables checkpointing entirely.
    pub dir: Option<PathBuf>,
    /// Save a checkpoint every `every` epochs (epoch barriers only).
    /// Ignored when `dir` is `None`; `0` saves only on interruption.
    pub every: usize,
    /// Resume from the newest valid checkpoint in `dir` instead of
    /// starting the chains fresh.
    pub resume: bool,
}

impl CheckpointConfig {
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }
}

/// Spatial sharding of the inference run (DESIGN.md §12). Disabled by
/// default (`shards == 0`): the classic samplers run unsharded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardingConfig {
    /// Number of shards the partitioner cuts the KB into. `0` disables
    /// sharding; `1` routes through the shard executor with one shard
    /// (useful as the parity reference).
    pub shards: usize,
    /// Pyramid level of the cut (`2^l × 2^l` candidate cells).
    pub partition_level: u8,
    /// Shard-retirement tolerance (DESIGN.md §12): a shard may stop
    /// sampling once its epoch delta stays under this. `None` (the
    /// default) disables retirement, keeping the merged marginals
    /// bit-identical to the unsharded run.
    pub retire_tol: Option<f64>,
    /// Refuse retirement while the boundary-exposed marginals have
    /// drifted past the tolerance since the quiet streak began.
    pub retire_strict: bool,
}

impl Default for ShardingConfig {
    fn default() -> Self {
        ShardingConfig { shards: 0, partition_level: 4, retire_tol: None, retire_strict: false }
    }
}

impl ShardingConfig {
    pub fn is_enabled(&self) -> bool {
        self.shards >= 1
    }
}

/// Which system is being run.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineMode {
    /// Sya: automatic spatial factors + Spatial Gibbs Sampling.
    Sya,
    /// DeepDive comparator: spatial predicates evaluated as booleans, no
    /// spatial factors, standard sampling.
    DeepDive,
    /// DeepDive with step-function rule expansion (Section VI-B2): the
    /// distance-cutoff rules are replaced by `bands` fixed-weight
    /// distance-band rules.
    DeepDiveStepFn(StepFunctionSpec),
}

/// Which sampler estimates the marginals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerKind {
    /// Spatial Gibbs Sampling (Algorithm 1) over the pyramid index.
    Spatial,
    /// DeepDive's sequential single-site Gibbs.
    Sequential,
    /// Random-partition parallel Gibbs with `k` buckets (the
    /// state-of-the-art baseline of Section V).
    ParallelRandom(usize),
}

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct SyaConfig {
    pub mode: EngineMode,
    pub sampler: SamplerKind,
    pub ground: GroundConfig,
    pub infer: InferConfig,
    /// Resource limits for the whole run (unlimited by default). The
    /// deadline stops the run gracefully with partial marginals; the
    /// count/memory limits abort grounding before a factor blow-up.
    pub budget: RunBudget,
    /// Checkpoint durability (disabled by default).
    pub checkpoint: CheckpointConfig,
    /// Spatial sharding of inference and serving (disabled by default).
    pub sharding: ShardingConfig,
}

impl SyaConfig {
    /// The Sya defaults of Section VI-A: 1000 epochs, exponential
    /// distance weighing, threshold `T = 0.5`, `L = 8`, locality level 8.
    pub fn sya() -> Self {
        SyaConfig {
            mode: EngineMode::Sya,
            sampler: SamplerKind::Spatial,
            ground: GroundConfig::default(),
            infer: InferConfig::default(),
            budget: RunBudget::unlimited(),
            checkpoint: CheckpointConfig::default(),
            sharding: ShardingConfig::default(),
        }
    }

    /// The DeepDive comparator: boolean spatial predicates, sequential
    /// Gibbs, same epoch budget.
    pub fn deepdive() -> Self {
        SyaConfig {
            mode: EngineMode::DeepDive,
            sampler: SamplerKind::Sequential,
            ground: GroundConfig { generate_spatial_factors: false, ..Default::default() },
            infer: InferConfig::default(),
            budget: RunBudget::unlimited(),
            checkpoint: CheckpointConfig::default(),
            sharding: ShardingConfig::default(),
        }
    }

    /// DeepDive with a step-function rule ladder of `bands` rules.
    pub fn deepdive_stepfn(bands: usize) -> Self {
        let mut c = Self::deepdive();
        c.mode = EngineMode::DeepDiveStepFn(StepFunctionSpec { bands, ..Default::default() });
        c
    }

    /// Step-function ladder whose band weights follow an exponential
    /// decay of the given bandwidth (the shape Sya's weighting uses).
    pub fn deepdive_stepfn_shaped(bands: usize, bandwidth: f64) -> Self {
        let mut c = Self::deepdive();
        c.mode = EngineMode::DeepDiveStepFn(StepFunctionSpec {
            bands,
            shape_bandwidth: Some(bandwidth),
            ..Default::default()
        });
        c
    }

    /// Sets the total epoch budget `E`.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.infer.epochs = epochs;
        self.infer.burn_in = (epochs / 10).max(1);
        self
    }

    /// Sets the RNG seed for grounding-independent reproducibility.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.infer.seed = seed;
        self
    }

    /// Sets the pruning threshold `T` (Section IV-C).
    pub fn with_pruning_threshold(mut self, t: f64) -> Self {
        self.ground.pruning_threshold = t;
        self
    }

    /// Declares categorical domains (relation → `h`) for the pruning
    /// experiment.
    pub fn with_domains(mut self, domains: HashMap<String, u32>) -> Self {
        self.ground.domains = domains;
        self
    }

    /// Sets the pyramid locality level (Fig. 13b).
    pub fn with_locality_level(mut self, l: u8) -> Self {
        self.infer.locality_level = l;
        self
    }

    /// Fixes the spatial weighting bandwidth (metric units) instead of
    /// deriving it from the data extent.
    pub fn with_bandwidth(mut self, bandwidth: f64) -> Self {
        self.ground.weighting_bandwidth = Some(bandwidth);
        self
    }

    /// Fixes the neighbour cutoff for spatial factor generation.
    pub fn with_spatial_radius(mut self, radius: f64) -> Self {
        self.ground.spatial_radius = Some(radius);
        self
    }

    /// Enables higher-order region factors at the given scale (the
    /// out-of-scope extension of Section IV-A, implemented here).
    pub fn with_region_factors(mut self, scale: f64) -> Self {
        self.ground.region_factor_scale = Some(scale);
        self
    }

    /// Sets a wall-clock deadline for the whole run. When it fires the
    /// pipeline stops at the next checkpoint and returns partial
    /// marginals tagged [`RunOutcome::TimedOut`](sya_runtime::RunOutcome).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.budget.deadline = Some(deadline);
        self
    }

    /// Caps the number of ground factors; grounding fails fast with a
    /// budget error instead of materialising a factor blow-up.
    pub fn with_max_factors(mut self, n: u64) -> Self {
        self.budget.max_factors = Some(n);
        self
    }

    /// Caps the number of ground variables (atoms).
    pub fn with_max_variables(mut self, n: u64) -> Self {
        self.budget.max_variables = Some(n);
        self
    }

    /// Caps the estimated factor-graph memory, in bytes.
    pub fn with_max_memory_bytes(mut self, n: u64) -> Self {
        self.budget.max_memory_bytes = Some(n);
        self
    }

    /// Enables checkpointing into `dir`, saving every `every` epochs
    /// (plus always on interruption and at the final epoch).
    pub fn with_checkpoints(mut self, dir: impl Into<PathBuf>, every: usize) -> Self {
        self.checkpoint.dir = Some(dir.into());
        self.checkpoint.every = every;
        self
    }

    /// Shards the inference run spatially into `n` partitions
    /// (DESIGN.md §12). Requires the spatial sampler; `0` disables.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.sharding.shards = n;
        self
    }

    /// Pyramid level the shard partitioner cuts at.
    pub fn with_partition_level(mut self, level: u8) -> Self {
        self.sharding.partition_level = level;
        self
    }

    /// Enables shard retirement at this boundary-delta tolerance.
    pub fn with_retire_tol(mut self, tol: f64) -> Self {
        self.sharding.retire_tol = Some(tol);
        self
    }

    /// Strict retirement: refuse to retire above the tolerance instead
    /// of warning (pairs with `--retire-tol-strict`).
    pub fn with_retire_strict(mut self, strict: bool) -> Self {
        self.sharding.retire_strict = strict;
        self
    }

    /// Resumes from the newest valid checkpoint in the checkpoint
    /// directory (no-op when checkpointing is disabled or the directory
    /// holds no usable checkpoint — the run then starts fresh).
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.checkpoint.resume = resume;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_the_paper_defaults() {
        let s = SyaConfig::sya();
        assert!(s.ground.generate_spatial_factors);
        assert_eq!(s.sampler, SamplerKind::Spatial);
        assert_eq!(s.infer.epochs, 1000);
        assert_eq!(s.ground.pruning_threshold, 0.5);
        assert_eq!(s.infer.levels, 8);
        assert_eq!(s.infer.locality_level, 8);

        let d = SyaConfig::deepdive();
        assert!(!d.ground.generate_spatial_factors);
        assert_eq!(d.sampler, SamplerKind::Sequential);
    }

    #[test]
    fn builders_update_knobs() {
        let c = SyaConfig::sya()
            .with_epochs(500)
            .with_seed(9)
            .with_pruning_threshold(0.7)
            .with_locality_level(5);
        assert_eq!(c.infer.epochs, 500);
        assert_eq!(c.infer.burn_in, 50);
        assert_eq!(c.infer.seed, 9);
        assert_eq!(c.ground.pruning_threshold, 0.7);
        assert_eq!(c.infer.locality_level, 5);
    }

    #[test]
    fn budget_builders_set_limits() {
        let c = SyaConfig::sya()
            .with_deadline(Duration::from_secs(5))
            .with_max_factors(1000)
            .with_max_variables(500)
            .with_max_memory_bytes(1 << 20);
        assert_eq!(c.budget.deadline, Some(Duration::from_secs(5)));
        assert_eq!(c.budget.max_factors, Some(1000));
        assert_eq!(c.budget.max_variables, Some(500));
        assert_eq!(c.budget.max_memory_bytes, Some(1 << 20));
        assert!(SyaConfig::sya().budget.is_unlimited());
    }

    #[test]
    fn checkpoint_builders_enable_durability() {
        let c = SyaConfig::sya();
        assert!(!c.checkpoint.is_enabled());
        let c = c.with_checkpoints("/tmp/ckpts", 25).with_resume(true);
        assert!(c.checkpoint.is_enabled());
        assert_eq!(c.checkpoint.dir.as_deref(), Some(std::path::Path::new("/tmp/ckpts")));
        assert_eq!(c.checkpoint.every, 25);
        assert!(c.checkpoint.resume);
    }

    #[test]
    fn sharding_builders_enable_the_shard_executor() {
        let c = SyaConfig::sya();
        assert!(!c.sharding.is_enabled());
        let c = c.with_shards(4).with_partition_level(3);
        assert!(c.sharding.is_enabled());
        assert_eq!(c.sharding.shards, 4);
        assert_eq!(c.sharding.partition_level, 3);
    }

    #[test]
    fn stepfn_preset_wraps_bands() {
        let c = SyaConfig::deepdive_stepfn(110);
        match c.mode {
            EngineMode::DeepDiveStepFn(spec) => assert_eq!(spec.bands, 110),
            other => panic!("{other:?}"),
        }
    }
}
