//! # sya-core — the Sya pipeline
//!
//! The top-level API of the Sya reproduction, wiring the language,
//! grounding, and inference modules into the architecture of the paper's
//! Section II: a domain expert submits a spatial DDlog program plus input
//! and evidence data; the system grounds a spatial factor graph and
//! infers the factual score of every knowledge base relation.
//!
//! ```
//! use sya_core::{EngineMode, KnowledgeBase, SyaConfig, SyaSession};
//! use sya_data::{gwdb_dataset, GwdbConfig};
//!
//! let mut dataset = gwdb_dataset(&GwdbConfig { n_wells: 120, ..Default::default() });
//! let config = SyaConfig::sya().with_epochs(200);
//! let session = SyaSession::new(&dataset.program, dataset.constants.clone(),
//!                               dataset.metric, config).unwrap();
//! let evidence = dataset.evidence.clone();
//! let kb: KnowledgeBase = session
//!     .construct(&mut dataset.db, &move |_, vals| {
//!         vals.first()
//!             .and_then(sya_store::Value::as_int)
//!             .and_then(|id| evidence.get(&id).copied())
//!     })
//!     .unwrap();
//! let scores = kb.scores_by_id("IsSafe");
//! assert_eq!(scores.len(), 120);
//! ```
//!
//! Two engine modes share the pipeline:
//! * [`EngineMode::Sya`] — spatial factors + Spatial Gibbs Sampling;
//! * [`EngineMode::DeepDive`] — the comparator: spatial predicates as
//!   plain boolean conditions, no spatial factors, sequential Gibbs;
//!   optionally with step-function rule expansion (Section VI-B2).
//!
//! Construction runs are *governed*: [`SyaConfig`] carries a
//! [`RunBudget`] (deadline, factor/variable/memory caps), callers can
//! cancel via a [`CancellationToken`], and every [`KnowledgeBase`] is
//! tagged with a [`RunOutcome`] describing how its run ended.

pub mod config;
pub mod error;
pub mod pipeline;
pub mod query;
pub mod result;

pub use config::{CheckpointConfig, EngineMode, SamplerKind, SyaConfig};
pub use error::SyaError;
pub use sya_ckpt::{CheckpointStore, CkptError, Recovery};
pub use pipeline::{ExtendStats, SyaSession};
pub use query::{hull_of, to_geojson, KbFact, KbQuery};
pub use result::{KnowledgeBase, Timings};
pub use sya_obs::{ConvergenceSeries, MetricsSnapshot, Obs, TracerSnapshot};
pub use sya_runtime::{
    Backoff, BudgetExceeded, CancellationToken, ExecContext, FaultPlan, Phase, Resource,
    RunBudget, RunOutcome,
};
// The cluster surface (DESIGN.md §13), re-exported for the CLI's
// `shard-coordinator` / `shard-worker` subcommands.
pub use sya_shard::{
    ClusterConfig, StatusServer, WorkerHandle, WorkerLauncher, WorkerOptions, WorkerSpec,
};
