//! Unified error type of the pipeline.

use sya_ckpt::CkptError;
use sya_fg::PersistError;
use sya_ground::GroundError;
use sya_infer::InferError;
use sya_lang::{ParseError, ValidateError};
use sya_runtime::BudgetExceeded;

/// Anything that can go wrong between program text and factual scores.
#[derive(Debug)]
pub enum SyaError {
    /// Program text failed to parse.
    Parse(ParseError),
    /// Program failed validation or compilation.
    Validate(ValidateError),
    /// Grounding failed (missing tables, bad types, unknown weighting).
    Ground(GroundError),
    /// Inference failed beyond repair (every parallel instance died).
    Infer(InferError),
    /// A hard resource limit of the run budget was hit.
    BudgetExceeded(BudgetExceeded),
    /// The checkpoint store failed in a way the run cannot work around
    /// (e.g. the checkpoint directory cannot be created). Note that a
    /// *corrupt checkpoint* is not fatal — recovery skips it — so this
    /// variant only surfaces hard I/O or setup failures.
    Checkpoint(CkptError),
    /// Persisting or reloading the factor graph failed.
    Persist(PersistError),
    /// Reading a program/dataset or writing results failed.
    Io(std::io::Error),
    /// Requested relation/atom does not exist in the knowledge base.
    UnknownAtom(String),
    /// The configuration is internally inconsistent (e.g. sharding with
    /// a non-spatial sampler).
    Config(String),
}

impl std::fmt::Display for SyaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyaError::Parse(e) => write!(f, "{e}"),
            SyaError::Validate(e) => write!(f, "{e}"),
            SyaError::Ground(e) => write!(f, "{e}"),
            SyaError::Infer(e) => write!(f, "{e}"),
            SyaError::BudgetExceeded(e) => write!(f, "{e}"),
            SyaError::Checkpoint(e) => write!(f, "{e}"),
            SyaError::Persist(e) => write!(f, "{e}"),
            SyaError::Io(e) => write!(f, "{e}"),
            SyaError::UnknownAtom(a) => write!(f, "unknown atom: {a}"),
            SyaError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for SyaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SyaError::Parse(e) => Some(e),
            SyaError::Validate(e) => Some(e),
            SyaError::Ground(e) => Some(e),
            SyaError::Infer(e) => Some(e),
            SyaError::BudgetExceeded(e) => Some(e),
            SyaError::Checkpoint(e) => Some(e),
            SyaError::Persist(e) => Some(e),
            SyaError::Io(e) => Some(e),
            SyaError::UnknownAtom(_) | SyaError::Config(_) => None,
        }
    }
}

impl From<ParseError> for SyaError {
    fn from(e: ParseError) -> Self {
        SyaError::Parse(e)
    }
}

impl From<ValidateError> for SyaError {
    fn from(e: ValidateError) -> Self {
        SyaError::Validate(e)
    }
}

impl From<GroundError> for SyaError {
    fn from(e: GroundError) -> Self {
        // Budget violations keep their own variant so callers can match
        // on them without digging through the grounding error.
        match e {
            GroundError::Budget(b) => SyaError::BudgetExceeded(b),
            other => SyaError::Ground(other),
        }
    }
}

impl From<InferError> for SyaError {
    fn from(e: InferError) -> Self {
        SyaError::Infer(e)
    }
}

impl From<BudgetExceeded> for SyaError {
    fn from(e: BudgetExceeded) -> Self {
        SyaError::BudgetExceeded(e)
    }
}

impl From<std::io::Error> for SyaError {
    fn from(e: std::io::Error) -> Self {
        SyaError::Io(e)
    }
}

impl From<CkptError> for SyaError {
    fn from(e: CkptError) -> Self {
        SyaError::Checkpoint(e)
    }
}

impl From<PersistError> for SyaError {
    fn from(e: PersistError) -> Self {
        SyaError::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SyaError::from(ParseError { line: 3, message: "bad token".into() });
        assert!(e.to_string().contains("line 3"));
        assert!(std::error::Error::source(&e).is_some());
        let u = SyaError::UnknownAtom("X(1)".into());
        assert!(u.to_string().contains("X(1)"));
        assert!(std::error::Error::source(&u).is_none());
    }

    #[test]
    fn ground_budget_errors_surface_as_budget_exceeded() {
        use sya_runtime::{Phase, Resource};
        let b = BudgetExceeded {
            phase: Phase::Grounding,
            resource: Resource::Factors,
            limit: 10,
            observed: 11,
        };
        let e = SyaError::from(GroundError::Budget(b.clone()));
        match &e {
            SyaError::BudgetExceeded(inner) => assert_eq!(*inner, b),
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        assert!(e.to_string().contains("budget exceeded"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn infer_and_io_errors_convert() {
        let e = SyaError::from(InferError::AllInstancesFailed {
            instances: 4,
            first_cause: "boom".into(),
        });
        assert!(e.to_string().contains("all 4 inference instance(s) failed"));
        let io = SyaError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().contains("gone"));
        assert!(std::error::Error::source(&io).is_some());
    }
}
