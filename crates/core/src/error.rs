//! Unified error type of the pipeline.

use sya_ground::GroundError;
use sya_lang::{ParseError, ValidateError};

/// Anything that can go wrong between program text and factual scores.
#[derive(Debug)]
pub enum SyaError {
    /// Program text failed to parse.
    Parse(ParseError),
    /// Program failed validation or compilation.
    Validate(ValidateError),
    /// Grounding failed (missing tables, bad types, unknown weighting).
    Ground(GroundError),
    /// Requested relation/atom does not exist in the knowledge base.
    UnknownAtom(String),
}

impl std::fmt::Display for SyaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyaError::Parse(e) => write!(f, "{e}"),
            SyaError::Validate(e) => write!(f, "{e}"),
            SyaError::Ground(e) => write!(f, "{e}"),
            SyaError::UnknownAtom(a) => write!(f, "unknown atom: {a}"),
        }
    }
}

impl std::error::Error for SyaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SyaError::Parse(e) => Some(e),
            SyaError::Validate(e) => Some(e),
            SyaError::Ground(e) => Some(e),
            SyaError::UnknownAtom(_) => None,
        }
    }
}

impl From<ParseError> for SyaError {
    fn from(e: ParseError) -> Self {
        SyaError::Parse(e)
    }
}

impl From<ValidateError> for SyaError {
    fn from(e: ValidateError) -> Self {
        SyaError::Validate(e)
    }
}

impl From<GroundError> for SyaError {
    fn from(e: GroundError) -> Self {
        SyaError::Ground(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SyaError::from(ParseError { line: 3, message: "bad token".into() });
        assert!(e.to_string().contains("line 3"));
        assert!(std::error::Error::source(&e).is_some());
        let u = SyaError::UnknownAtom("X(1)".into());
        assert!(u.to_string().contains("X(1)"));
        assert!(std::error::Error::source(&u).is_none());
    }
}
