//! Casual-user query and visualization APIs over a constructed knowledge
//! base (paper Fig. 2: "Querying/Visualization APIs").
//!
//! A [`KbQuery`] filters and ranks the factual scores of one variable
//! relation — by score band, by spatial region, top-k — and exports the
//! result as GeoJSON for map visualization.

use crate::result::KnowledgeBase;
use sya_fg::VarId;
use sya_geom::{Geometry, Point, Polygon, RTree, Rect};
use sya_store::Value;

/// One result row of a knowledge-base query.
#[derive(Debug, Clone, PartialEq)]
pub struct KbFact {
    pub var: VarId,
    /// Head values of the ground atom (id first by convention).
    pub values: Vec<Value>,
    pub location: Option<Point>,
    pub score: f64,
}

/// A fluent query over one variable relation's factual scores.
pub struct KbQuery<'kb> {
    kb: &'kb KnowledgeBase,
    relation: String,
    min_score: f64,
    max_score: f64,
    region: Option<Geometry>,
    include_evidence: bool,
    top_k: Option<usize>,
}

impl KnowledgeBase {
    /// Starts a query over `relation`'s ground atoms.
    pub fn query(&self, relation: impl Into<String>) -> KbQuery<'_> {
        KbQuery {
            kb: self,
            relation: relation.into(),
            min_score: 0.0,
            max_score: 1.0,
            region: None,
            include_evidence: true,
            top_k: None,
        }
    }
}

impl<'kb> KbQuery<'kb> {
    /// Keeps facts with score `>= s`.
    pub fn min_score(mut self, s: f64) -> Self {
        self.min_score = s;
        self
    }

    /// Keeps facts with score `<= s`.
    pub fn max_score(mut self, s: f64) -> Self {
        self.max_score = s;
        self
    }

    /// Keeps facts whose location lies within the region.
    pub fn within(mut self, region: Geometry) -> Self {
        self.region = Some(region);
        self
    }

    /// Excludes evidence atoms (query variables only).
    pub fn exclude_evidence(mut self) -> Self {
        self.include_evidence = false;
        self
    }

    /// Keeps only the `k` highest-scoring facts.
    pub fn top(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Executes the query. Results are sorted by descending score, ties
    /// by variable id (deterministic).
    pub fn run(self) -> Vec<KbFact> {
        // Candidate pruning: when a region is given, probe an R-tree over
        // the relation's located atoms instead of scanning everything.
        let atoms = self.kb.grounding.atoms_of(&self.relation);
        let candidates: Vec<VarId> = match &self.region {
            None => atoms.to_vec(),
            Some(region) => {
                let items: Vec<(Rect, VarId)> = atoms
                    .iter()
                    .filter_map(|&v| {
                        self.kb
                            .grounding
                            .graph
                            .variable(v)
                            .location
                            .map(|p| (Rect::from_point(p), v))
                    })
                    .collect();
                let tree = RTree::bulk_load(items);
                let mut hits = tree.search(&region.bbox());
                hits.sort_unstable();
                hits
            }
        };

        let mut out: Vec<KbFact> = candidates
            .into_iter()
            .filter_map(|v| {
                let var = self.kb.grounding.graph.variable(v);
                if !self.include_evidence && var.is_evidence() {
                    return None;
                }
                if let (Some(region), Some(p)) = (&self.region, var.location) {
                    if !Geometry::Point(p).within(region) {
                        return None;
                    }
                }
                let score = self.kb.score_of(v);
                if score < self.min_score || score > self.max_score {
                    return None;
                }
                let (_, values) = &self.kb.grounding.atom_meta[v as usize];
                Some(KbFact { var: v, values: values.clone(), location: var.location, score })
            })
            .collect();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.var.cmp(&b.var))
        });
        if let Some(k) = self.top_k {
            out.truncate(k);
        }
        out
    }
}

/// Convex hull of the located facts — e.g. the outline of the region
/// where `P(outbreak) >= 0.7` for map display. `None` when fewer than
/// three non-collinear locations remain.
pub fn hull_of(facts: &[KbFact]) -> Option<Polygon> {
    let points: Vec<Point> = facts.iter().filter_map(|f| f.location).collect();
    Polygon::convex_hull(&points)
}

/// Renders query results as a GeoJSON `FeatureCollection` (points with
/// `score` and `values` properties) — the map-visualization export.
pub fn to_geojson(facts: &[KbFact]) -> String {
    let features: Vec<serde_json::Value> = facts
        .iter()
        .filter_map(|f| {
            let p = f.location?;
            Some(serde_json::json!({
                "type": "Feature",
                "geometry": { "type": "Point", "coordinates": [p.x, p.y] },
                "properties": {
                    "score": f.score,
                    "values": f.values.iter().map(|v| v.to_string()).collect::<Vec<_>>(),
                },
            }))
        })
        .collect();
    serde_json::json!({ "type": "FeatureCollection", "features": features }).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SyaConfig, SyaSession};
    use sya_data::{gwdb_dataset, GwdbConfig};
    use sya_geom::Polygon;

    fn kb() -> KnowledgeBase {
        let mut d = gwdb_dataset(&GwdbConfig { n_wells: 120, ..Default::default() });
        let cfg = SyaConfig::sya()
            .with_epochs(100)
            .with_bandwidth(15.0)
            .with_spatial_radius(30.0);
        let session =
            SyaSession::new(&d.program, d.constants.clone(), d.metric, cfg).unwrap();
        let evidence = d.evidence.clone();
        session
            .construct(&mut d.db, &move |_, vals| {
                vals.first()
                    .and_then(Value::as_int)
                    .and_then(|id| evidence.get(&id).copied())
            })
            .unwrap()
    }

    #[test]
    fn score_band_filters() {
        let kb = kb();
        let high = kb.query("IsSafe").min_score(0.8).run();
        assert!(!high.is_empty());
        assert!(high.iter().all(|f| f.score >= 0.8));
        let low = kb.query("IsSafe").max_score(0.2).run();
        assert!(low.iter().all(|f| f.score <= 0.2));
    }

    #[test]
    fn results_sorted_descending_and_top_k() {
        let kb = kb();
        let all = kb.query("IsSafe").run();
        assert_eq!(all.len(), 120);
        for w in all.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        let top = kb.query("IsSafe").top(7).run();
        assert_eq!(top.len(), 7);
        assert_eq!(top, all[..7].to_vec());
    }

    #[test]
    fn region_filter_restricts_spatially() {
        let kb = kb();
        let region = Geometry::Polygon(Polygon::from_rect(&Rect::raw(0.0, 0.0, 300.0, 300.0)));
        let inside = kb.query("IsSafe").within(region.clone()).run();
        assert!(!inside.is_empty());
        assert!(inside.len() < 120);
        for f in &inside {
            assert!(Geometry::Point(f.location.unwrap()).within(&region));
        }
    }

    #[test]
    fn exclude_evidence_drops_observed_atoms() {
        let kb = kb();
        let q = kb.query("IsSafe").exclude_evidence().run();
        assert!(q.len() < 120);
        for f in &q {
            assert!(!kb.grounding.graph.variable(f.var).is_evidence());
        }
    }

    #[test]
    fn geojson_is_well_formed() {
        let kb = kb();
        let facts = kb.query("IsSafe").top(5).run();
        let gj = to_geojson(&facts);
        let parsed: serde_json::Value = serde_json::from_str(&gj).unwrap();
        assert_eq!(parsed["type"], "FeatureCollection");
        assert_eq!(parsed["features"].as_array().unwrap().len(), 5);
        let f0 = &parsed["features"][0];
        assert_eq!(f0["geometry"]["type"], "Point");
        assert!(f0["properties"]["score"].is_number());
    }

    #[test]
    fn hull_of_high_score_region() {
        let kb = kb();
        let facts = kb.query("IsSafe").min_score(0.6).run();
        if facts.len() >= 3 {
            let hull = hull_of(&facts).expect("enough points for a hull");
            for f in &facts {
                assert!(Geometry::Point(f.location.unwrap()).within(
                    &Geometry::Polygon(hull.clone())
                ));
            }
        }
        assert!(hull_of(&[]).is_none());
    }

    #[test]
    fn unknown_relation_returns_empty() {
        let kb = kb();
        assert!(kb.query("Nope").run().is_empty());
    }
}
