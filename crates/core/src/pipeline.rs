//! The construction pipeline: program text → compiled rules → grounding →
//! inference → knowledge base.

use crate::config::{EngineMode, SamplerKind, SyaConfig};
use crate::error::SyaError;
use crate::result::{KnowledgeBase, Timings};
use std::time::Instant;
use sya_ckpt::CheckpointStore;
use sya_geom::DistanceMetric;
use sya_ground::{expand_step_function_rules, Grounder, Grounding};
use sya_infer::{
    parallel_random_gibbs_ckpt, sequential_gibbs_ckpt, spatial_gibbs_ckpt, CheckpointOptions,
    CheckpointState, PyramidIndex, SamplerRun,
};
use sya_lang::{compile_with, parse_program_with, CompiledProgram, GeomConstants};
use sya_obs::Obs;
use sya_runtime::ExecContext;
use sya_store::{Database, Value};

/// Step-function expansion beyond this rule multiple is the blow-up the
/// paper warns about (Section III): the grounding workload grows with
/// the step count, so an observed session flags it as a warning event.
const STEPFN_BLOWUP_FACTOR: usize = 8;

/// A compiled program ready to construct knowledge bases. Cloning is
/// cheap relative to construction (rule set + config + obs handle) and
/// lets the serving layer hand each shard replica its own session.
#[derive(Clone)]
pub struct SyaSession {
    compiled: CompiledProgram,
    config: SyaConfig,
    obs: Obs,
}

impl SyaSession {
    /// Parses, validates, and compiles a Sya DDlog program.
    pub fn new(
        program: &str,
        constants: GeomConstants,
        metric: DistanceMetric,
        config: SyaConfig,
    ) -> Result<Self, SyaError> {
        Self::new_with_obs(program, constants, metric, config, Obs::disabled())
    }

    /// [`new`](Self::new) with an observability handle: parse/compile run
    /// under `lang.*` spans, the step-function expansion is measured, and
    /// every later [`construct`](Self::construct) call without an explicit
    /// context inherits the handle.
    pub fn new_with_obs(
        program: &str,
        constants: GeomConstants,
        metric: DistanceMetric,
        config: SyaConfig,
        obs: Obs,
    ) -> Result<Self, SyaError> {
        let ast = parse_program_with(program, &obs)?;
        let mut compiled = compile_with(&ast, &constants, metric, &obs)?;

        // Step-function mode rewrites the rule set before grounding.
        if let EngineMode::DeepDiveStepFn(spec) = &config.mode {
            let rules_before = compiled.rules.len();
            let shape = spec
                .shape_bandwidth
                .map(|bw| sya_fg::WeightingFn::Exponential { scale: 1.0, bandwidth: bw });
            compiled.rules = expand_step_function_rules(&compiled.rules, spec, shape.as_ref());
            obs.gauge_set("lang.stepfn_expanded_rules", compiled.rules.len() as f64);
            if compiled.rules.len() >= rules_before.max(1) * STEPFN_BLOWUP_FACTOR {
                obs.warn(format!(
                    "step-function expansion blew the rule set up from {rules_before} to \
                     {} rules; grounding cost scales with the step count",
                    compiled.rules.len()
                ));
            }
        }

        let mut config = config;
        config.ground.metric = metric;
        Ok(SyaSession { compiled, config, obs })
    }

    /// The session's observability handle (disabled unless the session
    /// was created via [`new_with_obs`](Self::new_with_obs)).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The compiled rule set (after any step-function expansion).
    pub fn compiled(&self) -> &CompiledProgram {
        &self.compiled
    }

    pub fn config(&self) -> &SyaConfig {
        &self.config
    }

    /// Grounds and infers: the full knowledge base construction run.
    ///
    /// `evidence` maps `(relation, head values)` to an observed value.
    /// Runs under an [`ExecContext`] built from the config's budget; use
    /// [`construct_with`](Self::construct_with) to supply your own
    /// context (external cancellation token, fault plan).
    pub fn construct(
        &self,
        db: &mut Database,
        evidence: &dyn Fn(&str, &[Value]) -> Option<u32>,
    ) -> Result<KnowledgeBase, SyaError> {
        let ctx =
            ExecContext::new(self.config.budget.clone()).with_obs(self.obs.clone());
        self.construct_with(db, evidence, &ctx)
    }

    /// [`construct`](Self::construct) under a caller-owned execution
    /// context. The deadline/cancellation stop the run at the next
    /// checkpoint with partial marginals (see [`KnowledgeBase::outcome`]);
    /// hard factor/variable/memory limits abort grounding with
    /// [`SyaError::BudgetExceeded`].
    pub fn construct_with(
        &self,
        db: &mut Database,
        evidence: &dyn Fn(&str, &[Value]) -> Option<u32>,
        ctx: &ExecContext,
    ) -> Result<KnowledgeBase, SyaError> {
        let obs = ctx.obs();
        let (grounding, grounding_time) = self.ground_phase(db, evidence, ctx)?;

        // Phase 2: inference. Even when grounding was interrupted, the
        // graph is a valid prefix: run inference (the same context stops
        // it after its first epoch) so every atom gets a finite score.
        let mut outcome = grounding.outcome;
        let mut warnings = Vec::new();
        if outcome.is_partial() {
            warnings.push(format!(
                "grounding stopped early ({outcome}); the factor graph is a valid \
                 prefix and marginals cover only the grounded atoms"
            ));
        }
        // Phase 1.5: durability. Bind a checkpoint store to the grounded
        // graph's fingerprint and, on resume, recover the newest valid
        // checkpoint (damaged or mismatched files are skipped with an
        // `error` event each; the run then falls back to an older good
        // checkpoint or a clean restart — never a panic).
        let (store, resume_state) =
            self.prepare_checkpoints(&grounding.graph, &mut warnings, obs)?;
        let ckpt = match &store {
            Some(s) => CheckpointOptions::to_sink(s, self.config.checkpoint.every),
            None => CheckpointOptions::none(),
        };

        // Sharding routes through the shard executor, which only speaks
        // the spatial sampler's sweep schedule.
        if self.config.sharding.is_enabled() && self.config.sampler != SamplerKind::Spatial {
            return Err(SyaError::Config(format!(
                "sharding (--shards {}) requires the spatial sampler; the {:?} sampler \
                 has no pyramid partition to cut",
                self.config.sharding.shards, self.config.sampler
            )));
        }

        let t1 = Instant::now();
        let infer = &self.config.infer;
        let infer_span = obs.span("pipeline.infer");
        let (run, pyramid) = match self.config.sampler {
            SamplerKind::Spatial => {
                let tp = Instant::now();
                let pyramid = {
                    let mut span = obs.span("infer.pyramid_build");
                    let pyramid =
                        PyramidIndex::build(&grounding.graph, infer.levels, infer.cell_capacity);
                    span.set_attr("levels", infer.levels);
                    pyramid
                };
                obs.gauge_set("infer.pyramid_build_seconds", tp.elapsed().as_secs_f64());
                if self.config.sharding.is_enabled() {
                    let run = self.run_sharded_inference(&grounding.graph, &pyramid, ctx)?;
                    (run, Some(pyramid))
                } else {
                    let chains = match resume_state {
                        Some(CheckpointState::Spatial { instances }) => Some(instances),
                        _ => None,
                    };
                    let run =
                        spatial_gibbs_ckpt(&grounding.graph, &pyramid, infer, ctx, ckpt, chains)?;
                    (run, Some(pyramid))
                }
            }
            SamplerKind::Sequential => {
                let chain = match resume_state {
                    Some(CheckpointState::Sequential(c)) => Some(c),
                    _ => None,
                };
                let run = sequential_gibbs_ckpt(
                    &grounding.graph,
                    infer.epochs,
                    infer.burn_in,
                    infer.seed,
                    ctx,
                    ckpt,
                    chain,
                )?;
                (run, None)
            }
            SamplerKind::ParallelRandom(k) => {
                let chain = match resume_state {
                    Some(CheckpointState::Parallel(c)) => Some(c),
                    _ => None,
                };
                let run = parallel_random_gibbs_ckpt(
                    &grounding.graph,
                    infer.epochs,
                    infer.burn_in,
                    k,
                    infer.seed,
                    ctx,
                    ckpt,
                    chain,
                )?;
                (run, None)
            }
        };
        drop(infer_span);
        let inference_time = t1.elapsed();
        obs.gauge_set("phase.inference_seconds", inference_time.as_secs_f64());
        // Fold hot-path profiler totals (if armed) into the registry so
        // `--metrics-out` dumps and `/metrics` carry `profile.*`.
        sya_obs::profile::publish(obs);
        outcome = outcome.combine(run.outcome);
        warnings.extend(run.warnings);

        Ok(KnowledgeBase {
            grounding,
            counts: run.counts,
            pyramid,
            timings: Timings { grounding: grounding_time, inference: inference_time },
            config: self.config.clone(),
            outcome,
            warnings,
            telemetry: run.telemetry,
        })
    }

    /// The sharded spatial path (DESIGN.md §12): cuts the grounded
    /// graph along pyramid cells at the configured partition level,
    /// runs one sampler chain per shard on its own thread, and merges
    /// the per-shard marginals. Without a retirement policy (the `sya
    /// run` path) the merged counts are bit-identical to `--shards 1`.
    /// Per-shard checkpoints live in `shard-NN/` subdirectories of the
    /// checkpoint dir, tied together by a manifest; the flat-directory
    /// recovery of [`prepare_checkpoints`] finds nothing there, so the
    /// two layouts never shadow each other.
    fn run_sharded_inference(
        &self,
        graph: &sya_fg::FactorGraph,
        pyramid: &PyramidIndex,
        ctx: &ExecContext,
    ) -> Result<SamplerRun, SyaError> {
        let plan = self.shard_plan(graph, ctx.obs());
        let report = sya_shard::run_sharded(
            graph,
            pyramid,
            &plan,
            &self.config.infer,
            self.retire_policy(),
            &self.shard_ckpt_options(),
            ctx,
        )?;
        Ok(SamplerRun {
            counts: report.counts,
            outcome: report.outcome,
            warnings: report.warnings,
            telemetry: report.telemetry,
        })
    }

    /// Phase 1 of every construction path: grounding under a
    /// `pipeline.ground` span. Shared by [`construct_with`]
    /// (Self::construct_with) and the cluster roles, which must all
    /// ground the *identical* graph — the wire rendezvous verifies this
    /// by fingerprint.
    fn ground_phase(
        &self,
        db: &mut Database,
        evidence: &dyn Fn(&str, &[Value]) -> Option<u32>,
        ctx: &ExecContext,
    ) -> Result<(Grounding, std::time::Duration), SyaError> {
        let obs = ctx.obs();
        // The incremental path's counters exist from the start of every
        // observed run: dashboards and `--metrics-out` dumps then show an
        // explicit zero instead of a missing key before the first
        // evidence/extend update arrives.
        obs.counter_add("infer.incremental.resampled_vars", 0);
        obs.counter_add("infer.incremental.cells_touched", 0);
        let t0 = Instant::now();
        let grounding = {
            let mut span = obs.span("pipeline.ground");
            let mut grounder = Grounder::new(&self.compiled, self.config.ground.clone());
            let grounding = grounder.ground_with(db, evidence, ctx)?;
            span.set_attr("variables", grounding.graph.num_variables());
            span.set_attr(
                "factors",
                grounding.graph.num_factors() + grounding.graph.num_spatial_factors(),
            );
            grounding
        };
        let grounding_time = t0.elapsed();
        obs.gauge_set("phase.grounding_seconds", grounding_time.as_secs_f64());
        Ok((grounding, grounding_time))
    }

    /// Cuts the grounded graph into the configured shard plan. Every
    /// cluster role derives the same plan from the same graph, so the
    /// owner table and halo sets agree without being sent on the wire.
    fn shard_plan(&self, graph: &sya_fg::FactorGraph, obs: &Obs) -> sya_shard::ShardPlan {
        let sharding = &self.config.sharding;
        // `1u32 << level` cell coordinates stay in range at level <= 12;
        // finer cuts than 4096×4096 cells buy nothing on real extents.
        let level = sharding.partition_level.min(12);
        let cells = sya_ground::pyramid_cell_map(graph, level);
        let plan = sya_shard::ShardPlan::build(graph, &cells, sharding.shards, level);
        for s in plan.summaries() {
            obs.info(format!(
                "shard {}: {} owned vars, {} halo vars, {} boundary factors",
                s.shard, s.owned_vars, s.halo_vars, s.boundary_factors
            ));
        }
        plan
    }

    /// The retirement policy implied by the sharding config: `None`
    /// unless a tolerance was set, preserving bit-parity with the
    /// unsharded run by default.
    fn retire_policy(&self) -> Option<sya_shard::RetirePolicy> {
        self.config.sharding.retire_tol.map(|tol| sya_shard::RetirePolicy {
            tol,
            strict: self.config.sharding.retire_strict,
            ..sya_shard::RetirePolicy::default()
        })
    }

    fn shard_ckpt_options(&self) -> sya_shard::ShardCkptOptions {
        sya_shard::ShardCkptOptions {
            dir: self.config.checkpoint.dir.clone(),
            every: self.config.checkpoint.every,
            resume: self.config.checkpoint.resume,
        }
    }

    /// Validates that this session's config can run as a cluster role.
    fn check_cluster_config(&self) -> Result<(), SyaError> {
        if !self.config.sharding.is_enabled() {
            return Err(SyaError::Config(
                "a cluster run needs --shards >= 1 so the partitioner has a plan to cut"
                    .to_owned(),
            ));
        }
        if self.config.sampler != SamplerKind::Spatial {
            return Err(SyaError::Config(format!(
                "cluster roles require the spatial sampler; the {:?} sampler has no \
                 pyramid partition to cut",
                self.config.sampler
            )));
        }
        Ok(())
    }

    /// Coordinator side of a multi-process cluster run (DESIGN.md §13):
    /// grounds the graph, cuts the shard plan, then supervises worker
    /// processes spawned through `launcher` — halo exchange runs over
    /// sockets instead of the in-process board. Worker crashes restart
    /// from per-shard checkpoints within the restart budget; beyond it
    /// the run degrades ([`sya_runtime::RunOutcome::Degraded`]) instead
    /// of failing, with per-shard health in the returned KB's report.
    pub fn construct_cluster(
        &self,
        db: &mut Database,
        evidence: &dyn Fn(&str, &[Value]) -> Option<u32>,
        launcher: &dyn sya_shard::WorkerLauncher,
        cluster: &sya_shard::ClusterConfig,
        status: Option<&sya_shard::StatusServer>,
        ctx: &ExecContext,
    ) -> Result<KnowledgeBase, SyaError> {
        self.check_cluster_config()?;
        let obs = ctx.obs();
        let (grounding, grounding_time) = self.ground_phase(db, evidence, ctx)?;
        if grounding.outcome.is_partial() {
            // A partial graph would never rendezvous: the workers ground
            // the full graph and their fingerprints would not match.
            return Err(SyaError::Config(format!(
                "grounding stopped early ({}); a cluster run needs the complete graph, \
                 raise the budget or run in-process",
                grounding.outcome
            )));
        }
        let infer = &self.config.infer;
        let pyramid = PyramidIndex::build(&grounding.graph, infer.levels, infer.cell_capacity);
        let plan = self.shard_plan(&grounding.graph, obs);
        let t1 = Instant::now();
        let report = sya_shard::run_cluster(
            &grounding.graph,
            &plan,
            infer,
            &self.shard_ckpt_options(),
            cluster,
            launcher,
            status,
            ctx,
        )?;
        let inference_time = t1.elapsed();
        obs.gauge_set("phase.inference_seconds", inference_time.as_secs_f64());
        sya_obs::profile::publish(obs);
        let outcome = grounding.outcome.combine(report.outcome);
        Ok(KnowledgeBase {
            grounding,
            counts: report.counts,
            pyramid: Some(pyramid),
            timings: Timings { grounding: grounding_time, inference: inference_time },
            config: self.config.clone(),
            outcome,
            warnings: report.warnings,
            telemetry: report.telemetry,
        })
    }

    /// Worker side of a cluster run: grounds the identical graph (same
    /// program, data, evidence, and config as the coordinator), derives
    /// the same shard plan, and joins the coordinator at
    /// `opts.connect`. Returns when the protocol ends — `Done`
    /// acknowledged or a `Stop`/socket loss from the coordinator.
    pub fn run_cluster_worker(
        &self,
        db: &mut Database,
        evidence: &dyn Fn(&str, &[Value]) -> Option<u32>,
        opts: &sya_shard::WorkerOptions,
        ctx: &ExecContext,
    ) -> Result<(), SyaError> {
        self.check_cluster_config()?;
        let (grounding, _) = self.ground_phase(db, evidence, ctx)?;
        let plan = self.shard_plan(&grounding.graph, ctx.obs());
        // The session config is the single source of truth for the
        // checkpoint wiring and retirement policy: the coordinator and
        // every worker parse the same flags, so deriving both here keeps
        // the fleet consistent without trusting the caller to copy them.
        let opts = sya_shard::WorkerOptions {
            ckpt: self.shard_ckpt_options(),
            retire: self.retire_policy(),
            ..opts.clone()
        };
        sya_shard::run_worker(&grounding.graph, &plan, &self.config.infer, &opts, ctx).map_err(
            |detail| SyaError::Infer(sya_infer::InferError::Cluster { detail }),
        )
    }

    /// Phase 1.5 of [`construct_with`](Self::construct_with): binds a
    /// [`CheckpointStore`] to the grounded graph's fingerprint, persists
    /// the graph beside the checkpoints as an integrity witness, and —
    /// when resuming — scans for the newest checkpoint that passes
    /// header, CRC, fingerprint, and shape validation. Unusable files
    /// are reported (severity `error`) and skipped, so a corrupted
    /// latest checkpoint degrades to an older good one, and a directory
    /// with nothing usable degrades to a clean restart.
    fn prepare_checkpoints(
        &self,
        graph: &sya_fg::FactorGraph,
        warnings: &mut Vec<String>,
        obs: &Obs,
    ) -> Result<(Option<CheckpointStore>, Option<CheckpointState>), SyaError> {
        let cfg = &self.config.checkpoint;
        let Some(dir) = &cfg.dir else { return Ok((None, None)) };
        let fingerprint = graph.fingerprint();
        let store = CheckpointStore::create(dir, fingerprint)?;
        let witness = dir.join("factor-graph.json");
        if cfg.resume && witness.exists() {
            match sya_fg::FactorGraph::load_from_path(&witness) {
                Ok(persisted) if persisted.fingerprint() == fingerprint => {
                    obs.info(format!(
                        "resume: persisted factor graph matches this run \
                         (fingerprint {fingerprint:#018x})"
                    ));
                }
                Ok(persisted) => {
                    let msg = format!(
                        "persisted factor graph (fingerprint {:#018x}) does not match this \
                         run's graph ({fingerprint:#018x}); its checkpoints will be skipped",
                        persisted.fingerprint()
                    );
                    obs.error(msg.clone());
                    warnings.push(msg);
                    graph.save_to_path(&witness)?;
                }
                Err(e) => {
                    let msg =
                        format!("persisted factor graph is unreadable ({e}); rewriting it");
                    obs.error(msg.clone());
                    warnings.push(msg);
                    graph.save_to_path(&witness)?;
                }
            }
        } else {
            graph.save_to_path(&witness)?;
        }
        if !cfg.resume {
            return Ok((Some(store), None));
        }
        let (expected_kind, instances) = match self.config.sampler {
            SamplerKind::Spatial => ("spatial", self.config.infer.instances.max(1)),
            SamplerKind::Sequential => ("sequential", 1),
            SamplerKind::ParallelRandom(_) => ("parallel", 1),
        };
        let recovery = store.recover(|state| {
            if state.kind() != expected_kind {
                return Err(format!(
                    "checkpoint was written by the {} sampler, this run uses {expected_kind}",
                    state.kind()
                ));
            }
            state.validate_for(graph, instances)
        })?;
        for (path, reason) in &recovery.skipped {
            // Load errors (CkptError) already name the file; validator
            // reasons are bare and need the path added here.
            let msg = if reason.starts_with("checkpoint ") {
                format!("{reason}; skipped")
            } else {
                format!("checkpoint {} is unusable ({reason}); skipped", path.display())
            };
            obs.error(msg.clone());
            warnings.push(msg);
        }
        let state = match recovery.state {
            Some((path, state)) => {
                obs.info(format!(
                    "resuming from checkpoint {} at epoch {}",
                    path.display(),
                    state.epoch()
                ));
                Some(state)
            }
            None => {
                obs.info("no usable checkpoint found; starting the chains fresh");
                None
            }
        };
        Ok((Some(store), state))
    }

    /// Incrementally extends a knowledge base after new input tuples
    /// arrive (paper Section II's update path): inserts the rows,
    /// delta-grounds only the affected rules, bulk-inserts the new ground
    /// atoms into the pyramid index, and re-samples only the concliques
    /// of the new variables.
    ///
    /// `new_rows` pairs relation names with tuples to insert. Requires a
    /// knowledge base built with the spatial sampler (the pyramid is the
    /// update structure); returns the update statistics.
    pub fn extend(
        &self,
        kb: &mut KnowledgeBase,
        db: &mut Database,
        new_rows: &[(String, sya_store::Row)],
        evidence: &dyn Fn(&str, &[Value]) -> Option<u32>,
    ) -> Result<ExtendStats, SyaError> {
        let t0 = Instant::now();
        // 1. Insert rows, tracking indices per relation.
        let mut delta: std::collections::HashMap<String, Vec<usize>> = Default::default();
        for (relation, row) in new_rows {
            let table = db.table_mut(relation).map_err(|e| {
                SyaError::Ground(sya_ground::GroundError::Store(e))
            })?;
            delta.entry(relation.clone()).or_default().push(table.len());
            table
                .insert(row.clone())
                .map_err(|e| SyaError::Ground(sya_ground::GroundError::Store(e)))?;
        }

        // 2. Delta grounding.
        let vars_before = kb.grounding.graph.num_variables();
        let factors_before = kb.grounding.graph.num_factors();
        let spatial_before = kb.grounding.graph.num_spatial_factors();
        let mut grounder = Grounder::new(&self.compiled, self.config.ground.clone());
        let new_vars = grounder
            .ground_delta(db, evidence, &mut kb.grounding, &delta)?;
        let grounding_time = t0.elapsed();

        // 3. Bulk-insert the new atoms into the pyramid and grow the
        //    sample counters.
        kb.counts.extend_for(&kb.grounding.graph);
        // Warm start for the restricted re-sample: existing variables at
        // their converged argmax, new ones at 0 (they are re-sampled
        // anyway — only the frozen surroundings' values matter).
        let init = kb.map_assignment();
        let t1 = Instant::now();
        let mut resampled = 0usize;
        if let Some(pyramid) = kb.pyramid.as_mut() {
            for &v in &new_vars {
                if let Some(p) = kb.grounding.graph.variable(v).location {
                    pyramid.insert(v, p, &kb.grounding.graph);
                }
            }
            // 4. Re-sample only the new variables' concliques.
            if !new_vars.is_empty() {
                let (fresh, touched) = sya_infer::incremental_spatial_gibbs_warm(
                    &kb.grounding.graph,
                    pyramid,
                    &new_vars,
                    &self.config.infer,
                    Some(&init),
                    &self.obs,
                );
                resampled = touched.len();
                kb.counts.merge_affected(&fresh, touched);
            }
        }
        // Saturating: delta grounding only adds today, but a future
        // compacting pass may shrink the graph mid-extend, and a usize
        // underflow here would panic instead of reporting zero growth.
        Ok(ExtendStats {
            new_variables: kb.grounding.graph.num_variables().saturating_sub(vars_before),
            new_logical_factors: kb.grounding.graph.num_factors().saturating_sub(factors_before),
            new_spatial_factors: kb
                .grounding
                .graph
                .num_spatial_factors()
                .saturating_sub(spatial_before),
            resampled,
            grounding: grounding_time,
            inference: t1.elapsed(),
        })
    }
}

impl SyaSession {
    /// Fits the weights of every inference rule's factors to training
    /// labels by pseudo-likelihood gradient ascent (the conventional
    /// MLN weight-learning step DeepDive performs; Sya's *spatial*
    /// weights stay closed-form). `training` maps head atoms to their
    /// observed training value; atoms without a label fall back to their
    /// evidence value (or 0). Returns `(rule label, learned weight)`
    /// pairs; the knowledge base's factors are updated in place — re-run
    /// inference afterwards to refresh the scores.
    pub fn learn_weights(
        &self,
        kb: &mut KnowledgeBase,
        training: &dyn Fn(&str, &[Value]) -> Option<u32>,
        cfg: &sya_infer::LearnConfig,
    ) -> Vec<(String, f64)> {
        let assignment: Vec<u32> = (0..kb.grounding.graph.num_variables())
            .map(|v| {
                let (relation, values) = &kb.grounding.atom_meta[v];
                training(relation, values)
                    .or(kb.grounding.graph.variables()[v].evidence)
                    .unwrap_or(0)
            })
            .collect();
        let grouped = kb.grounding.rule_factor_groups();
        let groups: Vec<Vec<u32>> = grouped.iter().map(|(_, g)| g.clone()).collect();
        let learned =
            sya_infer::learn_weights(&mut kb.grounding.graph, &groups, &assignment, cfg);
        grouped
            .into_iter()
            .map(|(label, _)| label)
            .zip(learned)
            .collect()
    }
}

/// Statistics of one [`SyaSession::extend`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtendStats {
    pub new_variables: usize,
    pub new_logical_factors: usize,
    pub new_spatial_factors: usize,
    /// Variables re-sampled by the conclique-restricted update.
    pub resampled: usize,
    pub grounding: std::time::Duration,
    pub inference: std::time::Duration,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sya_data::{ebola_dataset, gwdb_dataset, GwdbConfig};

    fn build(dataset: &mut sya_data::Dataset, config: SyaConfig) -> KnowledgeBase {
        let session = SyaSession::new(
            &dataset.program,
            dataset.constants.clone(),
            dataset.metric,
            config,
        )
        .unwrap();
        let evidence = dataset.evidence.clone();
        session
            .construct(&mut dataset.db, &move |_, vals| {
                vals.first()
                    .and_then(Value::as_int)
                    .and_then(|id| evidence.get(&id).copied())
            })
            .unwrap()
    }

    #[test]
    fn ebola_pipeline_reproduces_fig1_ordering() {
        let mut d = ebola_dataset();
        let cfg = SyaConfig::sya()
            .with_epochs(2000)
            .with_seed(3)
            .with_bandwidth(60.0)
            .with_spatial_radius(250.0);
        let kb = build(&mut d, cfg);
        let scores = kb.scores_by_id("HasEbola");
        assert_eq!(scores.len(), 4);
        let margibi = scores[1].1;
        let bong = scores[2].1;
        let gbarpolu = scores[3].1;
        // The paper's key qualitative result: Margibi > Bong > Gbarpolu,
        // with Gbarpolu well above zero (no boolean cliff).
        assert!(margibi > bong, "Margibi {margibi} vs Bong {bong}");
        assert!(bong > gbarpolu, "Bong {bong} vs Gbarpolu {gbarpolu}");
        assert!(gbarpolu > 0.05, "Gbarpolu must not be cut off: {gbarpolu}");
        // Evidence county reports 1.0.
        assert_eq!(scores[0].1, 1.0);
    }

    #[test]
    fn deepdive_mode_gives_gbarpolu_the_boolean_cliff() {
        let mut d = ebola_dataset();
        let kb = build(&mut d, SyaConfig::deepdive().with_epochs(2000).with_seed(3));
        let scores = kb.scores_by_id("HasEbola");
        let margibi = scores[1].1;
        let bong = scores[2].1;
        let gbarpolu = scores[3].1;
        // Margibi and Bong satisfy the 150 mi predicate and get similar
        // scores (the boolean cliff); Gbarpolu is outside the cutoff and
        // collapses to the negative prior. The diagnostic difference vs
        // Sya: no graded ordering between Margibi and Bong.
        assert!((margibi - bong).abs() < 0.1, "boolean predicates give similar scores");
        // Gbarpolu only feels the negative prior: sigma(-0.8) ~ 0.31.
        assert!(gbarpolu < margibi, "gbarpolu {gbarpolu} must trail the in-cutoff counties");
        assert!((gbarpolu - 0.31).abs() < 0.1, "gbarpolu {gbarpolu}");
    }

    #[test]
    fn step_function_mode_multiplies_rules_and_grounding_queries() {
        let mut d = gwdb_dataset(&GwdbConfig { n_wells: 120, ..Default::default() });
        let base = build(&mut d, SyaConfig::deepdive().with_epochs(50));
        let mut d2 = gwdb_dataset(&GwdbConfig { n_wells: 120, ..Default::default() });
        let mut cfg = SyaConfig::deepdive_stepfn(10);
        cfg = cfg.with_epochs(50);
        let step = build(&mut d2, cfg);
        assert!(step.grounding.stats.rules_executed > base.grounding.stats.rules_executed);
        assert!(step.grounding.stats.queries_executed > base.grounding.stats.queries_executed);
    }

    #[test]
    fn timings_are_recorded() {
        let mut d = gwdb_dataset(&GwdbConfig { n_wells: 80, ..Default::default() });
        let kb = build(&mut d, SyaConfig::sya().with_epochs(100));
        assert!(kb.timings.grounding.as_nanos() > 0);
        assert!(kb.timings.inference.as_nanos() > 0);
        assert!(kb.pyramid.is_some());
    }

    #[test]
    fn query_scores_exclude_evidence() {
        let mut d = gwdb_dataset(&GwdbConfig { n_wells: 100, ..Default::default() });
        let n_evidence = d.evidence.len();
        let kb = build(&mut d, SyaConfig::sya().with_epochs(100));
        let all = kb.scores_by_id("IsSafe");
        let query = kb.query_scores_by_id("IsSafe");
        assert_eq!(all.len(), 100);
        assert_eq!(query.len(), 100 - n_evidence);
    }

    #[test]
    fn incremental_update_resamples_affected_region_only() {
        let mut d = gwdb_dataset(&GwdbConfig { n_wells: 150, ..Default::default() });
        let mut kb = build(&mut d, SyaConfig::sya().with_epochs(200));
        let target = kb.grounding.atoms_of("IsSafe")[0];
        let (elapsed, resampled) = kb.update_evidence_incremental(&[(target, Some(1))]);
        assert!(resampled > 0);
        assert!(resampled < 150, "incremental must not touch everything");
        assert!(elapsed.as_nanos() > 0);
        assert_eq!(kb.score_of(target), 1.0);
    }

    #[test]
    fn parallel_random_sampler_works_end_to_end() {
        let mut d = gwdb_dataset(&GwdbConfig { n_wells: 60, ..Default::default() });
        let mut cfg = SyaConfig::sya().with_epochs(100);
        cfg.sampler = SamplerKind::ParallelRandom(4);
        let kb = build(&mut d, cfg);
        assert_eq!(kb.scores_by_id("IsSafe").len(), 60);
        assert!(kb.pyramid.is_none());
        // Incremental update gracefully no-ops without a pyramid.
        let (t, n) = {
            let mut kb = kb;
            kb.update_evidence_incremental(&[(0, Some(1))])
        };
        assert_eq!(n, 0);
        assert_eq!(t, std::time::Duration::ZERO);
    }

    #[test]
    fn extend_grows_the_knowledge_base_incrementally() {
        use sya_geom::Point;
        let mut d = gwdb_dataset(&GwdbConfig { n_wells: 200, ..Default::default() });
        let cfg = SyaConfig::sya()
            .with_epochs(200)
            .with_bandwidth(15.0)
            .with_spatial_radius(30.0);
        let session =
            SyaSession::new(&d.program, d.constants.clone(), d.metric, cfg).unwrap();
        let evidence = d.evidence.clone();
        let ev = move |_: &str, vals: &[Value]| {
            vals.first()
                .and_then(Value::as_int)
                .and_then(|id| evidence.get(&id).copied())
        };
        let mut kb = session.construct(&mut d.db, &ev).unwrap();
        assert_eq!(kb.grounding.graph.num_variables(), 200);

        // Add three new wells near existing ones.
        let new_rows: Vec<(String, Vec<Value>)> = (0..3)
            .map(|i| {
                (
                    "Well".to_owned(),
                    vec![
                        Value::Int(1000 + i),
                        Value::from(Point::new(100.0 + i as f64, 100.0)),
                        Value::Double(0.1),
                        Value::Double(0.2),
                    ],
                )
            })
            .collect();
        let stats = session.extend(&mut kb, &mut d.db, &new_rows, &ev).unwrap();
        assert_eq!(stats.new_variables, 3);
        assert_eq!(kb.grounding.graph.num_variables(), 203);
        assert!(stats.resampled >= 3, "new atoms must be sampled: {stats:?}");
        assert!(stats.resampled < 203, "must not resample everything");
        // The new atoms have scores.
        let score = kb
            .factual_score("IsSafe", &[Value::Int(1000), Value::from(Point::new(100.0, 100.0))])
            .expect("new atom exists");
        assert!((0.0..=1.0).contains(&score));
        // Query API sees the extended KB.
        assert_eq!(kb.query("IsSafe").run().len(), 203);
    }

    #[test]
    fn weight_learning_moves_rule_weights_toward_the_data() {
        let mut d = gwdb_dataset(&GwdbConfig { n_wells: 300, ..Default::default() });
        let cfg = SyaConfig::sya()
            .with_epochs(100)
            .with_bandwidth(15.0)
            .with_spatial_radius(30.0);
        let session =
            SyaSession::new(&d.program, d.constants.clone(), d.metric, cfg).unwrap();
        let evidence = d.evidence.clone();
        let mut kb = session
            .construct(&mut d.db, &move |_, vals| {
                vals.first()
                    .and_then(Value::as_int)
                    .and_then(|id| evidence.get(&id).copied())
            })
            .unwrap();
        // Training labels: the full ground truth, binarized.
        let truth = d.truth.clone();
        let training = move |_: &str, vals: &[Value]| {
            vals.first()
                .and_then(Value::as_int)
                .and_then(|id| truth.get(&id).map(|&t| t as u32))
        };
        let before = sya_infer::pseudo_log_likelihood(
            &kb.grounding.graph,
            &(0..kb.grounding.graph.num_variables())
                .map(|v| {
                    let (r, vals) = &kb.grounding.atom_meta[v];
                    training(r, vals).unwrap_or(0)
                })
                .collect(),
        );
        let learned = session.learn_weights(
            &mut kb,
            &training,
            &sya_infer::LearnConfig { learning_rate: 0.2, iterations: 30, l2: 0.01 },
        );
        // One learned weight per inference rule (10 in the GWDB program).
        assert_eq!(learned.len(), 10);
        let after = sya_infer::pseudo_log_likelihood(
            &kb.grounding.graph,
            &(0..kb.grounding.graph.num_variables())
                .map(|v| {
                    let (r, vals) = &kb.grounding.atom_meta[v];
                    training(r, vals).unwrap_or(0)
                })
                .collect(),
        );
        assert!(after > before, "PLL must improve: {before} -> {after}");
    }

    #[test]
    fn retract_atoms_removes_them_from_scores_and_queries() {
        let mut d = gwdb_dataset(&GwdbConfig { n_wells: 120, ..Default::default() });
        let cfg = SyaConfig::sya()
            .with_epochs(100)
            .with_bandwidth(15.0)
            .with_spatial_radius(30.0);
        let session =
            SyaSession::new(&d.program, d.constants.clone(), d.metric, cfg).unwrap();
        let evidence = d.evidence.clone();
        let mut kb = session
            .construct(&mut d.db, &move |_, vals| {
                vals.first()
                    .and_then(Value::as_int)
                    .and_then(|id| evidence.get(&id).copied())
            })
            .unwrap();
        let victims: Vec<u32> = kb.grounding.atoms_of("IsSafe")[..5].to_vec();
        let removed = kb.retract_atoms(&victims);
        assert_eq!(removed, 5);
        assert_eq!(kb.grounding.graph.num_variables(), 115);
        assert_eq!(kb.scores_by_id("IsSafe").len(), 115);
        assert_eq!(kb.query("IsSafe").run().len(), 115);
        // Scores still valid and incremental updates still work. Pick a
        // target with a *free* spatial neighbour through the retraction:
        // the affected region of a variable whose whole Markov blanket is
        // evidence collapses once the variable itself turns into
        // evidence, so nothing would need re-sampling.
        let target = kb
            .grounding
            .atoms_of("IsSafe")
            .iter()
            .copied()
            .find(|&v| {
                kb.grounding
                    .graph
                    .neighbours(v)
                    .iter()
                    .any(|&u| !kb.grounding.graph.variable(u).is_evidence())
            })
            .expect("some well keeps a free spatial neighbour");
        let (_, resampled) = kb.update_evidence_incremental(&[(target, Some(1))]);
        assert!(resampled > 0);
        // An isolated variable's update re-samples nothing beyond itself.
        let lone = kb
            .grounding
            .atoms_of("IsSafe")
            .iter()
            .copied()
            .find(|&v| {
                kb.grounding.graph.neighbours(v).is_empty()
                    && !kb.grounding.graph.variable(v).is_evidence()
            })
            .expect("some well is spatially isolated");
        let (_, lone_resampled) = kb.update_evidence_incremental(&[(lone, Some(0))]);
        assert_eq!(lone_resampled, 0);
        // Retracting unknown/out-of-range ids is a no-op.
        assert_eq!(kb.retract_atoms(&[9999]), 0);
    }

    #[test]
    fn observed_construct_records_phase_metrics_and_nested_spans() {
        let mut d = gwdb_dataset(&GwdbConfig { n_wells: 60, ..Default::default() });
        let obs = Obs::enabled();
        let session = SyaSession::new_with_obs(
            &d.program,
            d.constants.clone(),
            d.metric,
            SyaConfig::sya().with_epochs(40),
            obs.clone(),
        )
        .unwrap();
        let evidence = d.evidence.clone();
        let kb = session
            .construct(&mut d.db, &move |_, vals| {
                vals.first()
                    .and_then(Value::as_int)
                    .and_then(|id| evidence.get(&id).copied())
            })
            .unwrap();

        let m = obs.metrics().unwrap();
        assert!(m.gauge_value("phase.grounding_seconds").unwrap() > 0.0);
        assert!(m.gauge_value("phase.inference_seconds").unwrap() > 0.0);
        assert!(m.gauge_value("infer.pyramid_build_seconds").is_some());
        assert!(m.counter_value("ground.rules_total").unwrap() > 0);
        assert!(m.counter_value("store.spatial_queries_total").unwrap() > 0);
        // Convergence series cover the per-instance epoch share.
        let delta = m.series("infer.spatial.marginal_delta").unwrap();
        assert!(delta.len() >= 40 / 4, "marginal delta series too short: {}", delta.len());
        assert!(!kb.telemetry.is_empty());
        assert_eq!(kb.telemetry.marginal_delta.len(), delta.len());

        let spans = obs.trace_snapshot().spans;
        for name in
            ["lang.parse", "lang.compile", "pipeline.ground", "infer.pyramid_build",
             "pipeline.infer"]
        {
            assert!(spans.iter().any(|s| s.name == name), "{name} span missing");
        }
        // Grounding spans nest under the pipeline.ground phase span.
        let ground = spans.iter().find(|s| s.name == "pipeline.ground").unwrap();
        assert!(
            spans
                .iter()
                .filter(|s| s.name == "ground.rule")
                .all(|s| s.parent == Some(ground.id)),
            "ground.rule spans must be children of pipeline.ground"
        );
    }

    #[test]
    fn extend_with_no_new_rows_reports_zero_growth() {
        // Boundary of the saturating stats arithmetic: an extend call
        // that grounds nothing must report zeros, never underflow.
        let mut d = gwdb_dataset(&GwdbConfig { n_wells: 50, ..Default::default() });
        let cfg = SyaConfig::sya().with_epochs(50);
        let session =
            SyaSession::new(&d.program, d.constants.clone(), d.metric, cfg).unwrap();
        let evidence = d.evidence.clone();
        let ev = move |_: &str, vals: &[Value]| {
            vals.first()
                .and_then(Value::as_int)
                .and_then(|id| evidence.get(&id).copied())
        };
        let mut kb = session.construct(&mut d.db, &ev).unwrap();
        let stats = session.extend(&mut kb, &mut d.db, &[], &ev).unwrap();
        assert_eq!(stats.new_variables, 0);
        assert_eq!(stats.new_logical_factors, 0);
        assert_eq!(stats.new_spatial_factors, 0);
        assert_eq!(stats.resampled, 0);
    }

    #[test]
    fn checkpointed_run_resumes_from_disk_with_identical_scores() {
        let dir = std::env::temp_dir().join(format!("sya_core_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = SyaConfig::deepdive().with_epochs(80).with_seed(7).with_checkpoints(&dir, 10);
        let mut d = gwdb_dataset(&GwdbConfig { n_wells: 60, ..Default::default() });
        let kb1 = build(&mut d, cfg.clone());
        assert!(dir.join("factor-graph.json").exists(), "graph witness must be persisted");
        let ckpts = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_str()
                    .is_some_and(|n| n.ends_with(".syackpt"))
            })
            .count();
        assert!(ckpts >= 1, "periodic + final checkpoints must exist");

        // Resuming a finished run finds the final checkpoint, replays
        // zero epochs, and reproduces the exact same scores.
        let mut d2 = gwdb_dataset(&GwdbConfig { n_wells: 60, ..Default::default() });
        let kb2 = build(&mut d2, cfg.with_resume(true));
        assert_eq!(kb1.scores_by_id("IsSafe"), kb2.scores_by_id("IsSafe"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_construct_reproduces_the_single_shard_scores_exactly() {
        let cfg = SyaConfig::sya().with_epochs(120).with_seed(11).with_partition_level(3);
        let mut d = gwdb_dataset(&GwdbConfig { n_wells: 90, ..Default::default() });
        let reference = build(&mut d, cfg.clone().with_shards(1));
        for shards in [2, 4] {
            let mut d = gwdb_dataset(&GwdbConfig { n_wells: 90, ..Default::default() });
            let kb = build(&mut d, cfg.clone().with_shards(shards));
            assert_eq!(
                reference.scores_by_id("IsSafe"),
                kb.scores_by_id("IsSafe"),
                "--shards {shards} must reproduce --shards 1 exactly"
            );
            assert!(kb.pyramid.is_some());
            assert!(kb.outcome.is_completed());
        }
    }

    #[test]
    fn sharded_construct_writes_per_shard_checkpoints_and_manifest() {
        let dir = std::env::temp_dir().join(format!("sya_core_shard_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = SyaConfig::sya()
            .with_epochs(60)
            .with_shards(2)
            .with_partition_level(3)
            .with_checkpoints(&dir, 10);
        let mut d = gwdb_dataset(&GwdbConfig { n_wells: 60, ..Default::default() });
        let kb = build(&mut d, cfg);
        assert!(kb.outcome.is_completed());
        assert!(dir.join("factor-graph.json").exists(), "graph witness persists");
        let manifest = sya_shard::ShardManifest::read(&dir).expect("shard manifest");
        assert_eq!(manifest.shards, 2);
        for name in &manifest.stores {
            let ckpts = std::fs::read_dir(dir.join(name))
                .unwrap()
                .filter(|e| {
                    e.as_ref()
                        .unwrap()
                        .file_name()
                        .to_str()
                        .is_some_and(|n| n.ends_with(".syackpt"))
                })
                .count();
            assert!(ckpts >= 1, "store {name} holds checkpoints");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharding_rejects_non_spatial_samplers() {
        let mut d = gwdb_dataset(&GwdbConfig { n_wells: 30, ..Default::default() });
        let cfg = SyaConfig::deepdive().with_epochs(20).with_shards(2);
        let session =
            SyaSession::new(&d.program, d.constants.clone(), d.metric, cfg).unwrap();
        match session.construct(&mut d.db, &|_, _| None) {
            Err(SyaError::Config(msg)) => assert!(msg.contains("spatial"), "{msg}"),
            Err(other) => panic!("expected a config error, got {other}"),
            Ok(_) => panic!("expected a config error"),
        }
    }

    #[test]
    fn bad_program_reports_parse_error() {
        let result = SyaSession::new(
            "County(id bigint",
            GeomConstants::new(),
            DistanceMetric::Euclidean,
            SyaConfig::sya(),
        );
        match result {
            Err(SyaError::Parse(_)) => {}
            Err(other) => panic!("expected parse error, got {other}"),
            Ok(_) => panic!("expected parse error"),
        }
    }
}
