//! The constructed knowledge base: factual scores plus the artifacts the
//! experiments inspect (graph, pyramid, timings).

use crate::config::SyaConfig;
use std::collections::HashSet;
use std::time::Duration;
use sya_fg::VarId;
use sya_ground::Grounding;
use sya_infer::{incremental_spatial_gibbs_warm, MarginalCounts, PyramidIndex};
use sya_obs::Obs;
use sya_runtime::RunOutcome;
use sya_store::Value;

/// Wall-clock timings of the two phases (Fig. 9b, 10b, 11b, 12b).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Timings {
    pub grounding: Duration,
    pub inference: Duration,
}

/// A constructed probabilistic knowledge base. `Clone` duplicates the
/// whole graph and counts — the shard router uses it to give each
/// serving shard an independently lockable replica.
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    pub grounding: Grounding,
    pub counts: MarginalCounts,
    /// Present when the spatial sampler was used (needed for incremental
    /// inference).
    pub pyramid: Option<PyramidIndex>,
    pub timings: Timings,
    pub config: SyaConfig,
    /// How the construction run ended. `Completed` is a clean run;
    /// `Degraded` means some workers were lost but the marginals are
    /// usable; `TimedOut`/`Cancelled` mean the run stopped early and the
    /// marginals are partial (fewer samples, still valid ratios).
    pub outcome: RunOutcome,
    /// Degradation notes accumulated across grounding and inference.
    pub warnings: Vec<String>,
    /// Per-epoch convergence trajectory of the inference run (flip rate,
    /// marginal delta, pseudo-log-likelihood when observed).
    pub telemetry: sya_obs::ConvergenceSeries,
}

impl KnowledgeBase {
    /// Factual score of one relation atom, or `None` if it was never
    /// grounded.
    pub fn factual_score(&self, relation: &str, values: &[Value]) -> Option<f64> {
        let v = self.grounding.atom_id(relation, values)?;
        Some(self.score_of(v))
    }

    /// Factual score of a ground atom by variable id (evidence atoms
    /// report their observed value). Binary variables report `P(v = 1)`;
    /// categorical variables encode graded levels, so the score is the
    /// probability mass on the upper half of the domain (levels
    /// `>= h/2`), matching the generators' quantized encoding.
    pub fn score_of(&self, v: VarId) -> f64 {
        let var = self.grounding.graph.variable(v);
        match (var.evidence, var.domain.cardinality()) {
            (Some(e), 2) => e as f64,
            (Some(e), h) => f64::from(e >= h / 2),
            (None, 2) => self.counts.factual_score(v),
            (None, h) => (h / 2..h).map(|x| self.counts.marginal(v, x)).sum(),
        }
    }

    /// `(entity id, factual score)` for every atom of a relation, keyed
    /// by the first (id) column, sorted by id.
    pub fn scores_by_id(&self, relation: &str) -> Vec<(i64, f64)> {
        let mut out: Vec<(i64, f64)> = self
            .grounding
            .atoms_of(relation)
            .iter()
            .filter_map(|&v| {
                let (_, values) = &self.grounding.atom_meta[v as usize];
                values.first().and_then(Value::as_int).map(|id| (id, self.score_of(v)))
            })
            .collect();
        out.sort_by_key(|&(id, _)| id);
        out
    }

    /// Query-only variant of [`Self::scores_by_id`] (evidence atoms
    /// excluded) — what the quality metrics evaluate.
    pub fn query_scores_by_id(&self, relation: &str) -> Vec<(i64, f64)> {
        let mut out: Vec<(i64, f64)> = self
            .grounding
            .atoms_of(relation)
            .iter()
            .filter(|&&v| !self.grounding.graph.variable(v).is_evidence())
            .filter_map(|&v| {
                let (_, values) = &self.grounding.atom_meta[v as usize];
                values.first().and_then(Value::as_int).map(|id| (id, self.score_of(v)))
            })
            .collect();
        out.sort_by_key(|&(id, _)| id);
        out
    }

    /// The maximum-marginal assignment: each evidence variable at its
    /// observed value, each query variable at the argmax of its counts.
    /// This is the warm-start state for incremental re-inference and the
    /// per-chain assignment of serve-time checkpoint synthesis.
    pub fn map_assignment(&self) -> Vec<u32> {
        let rows = self.counts.to_rows();
        self.grounding
            .graph
            .variables()
            .iter()
            .enumerate()
            .map(|(i, var)| match var.evidence {
                Some(e) => e,
                None => rows[i]
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &n)| n)
                    .map(|(x, _)| x as u32)
                    .unwrap_or(0),
            })
            .collect()
    }

    /// Retracts ground atoms (the bulk-deletion half of the paper's
    /// update path): removes them with every touching factor, compacts
    /// the graph, remaps the sample counters, and rebuilds the pyramid
    /// index. Returns the number of atoms actually removed.
    pub fn retract_atoms(&mut self, vars: &[VarId]) -> usize {
        let remove: HashSet<VarId> = vars
            .iter()
            .copied()
            .filter(|&v| (v as usize) < self.grounding.graph.num_variables())
            .collect();
        if remove.is_empty() {
            return 0;
        }
        let remap = self.grounding.remove_atoms(&remove);
        self.counts = self.counts.remap(&remap, &self.grounding.graph);
        if self.pyramid.is_some() {
            self.pyramid = Some(PyramidIndex::build(
                &self.grounding.graph,
                self.config.infer.levels,
                self.config.infer.cell_capacity,
            ));
        }
        remove.len()
    }

    /// Applies evidence updates and re-runs inference incrementally over
    /// the affected concliques only (Fig. 13a). Returns the wall-clock
    /// time and the number of re-sampled variables.
    ///
    /// Falls back to a no-op error-free zero result when the knowledge
    /// base was built without the spatial sampler (no pyramid).
    pub fn update_evidence_incremental(
        &mut self,
        changes: &[(VarId, Option<u32>)],
    ) -> (Duration, usize) {
        self.update_evidence_incremental_observed(changes, &Obs::disabled())
    }

    /// [`update_evidence_incremental`](Self::update_evidence_incremental)
    /// under an observability handle: the conclique-restricted re-run
    /// records the `infer.incremental.*` counters and an
    /// `infer.incremental` span on `obs`.
    pub fn update_evidence_incremental_observed(
        &mut self,
        changes: &[(VarId, Option<u32>)],
        obs: &Obs,
    ) -> (Duration, usize) {
        if self.pyramid.is_none() {
            return (Duration::ZERO, 0);
        };
        // Warm start from the pre-update marginals: the restricted sweep
        // conditions on the frozen surroundings, which must sit at their
        // converged values, not at random draws. Computed before the
        // evidence lands so retractions still see the old argmax.
        let init = self.map_assignment();
        for &(v, value) in changes {
            self.grounding.graph.set_evidence(v, value);
        }
        let pyramid = self.pyramid.as_ref().expect("checked above");
        let changed: Vec<VarId> = changes.iter().map(|&(v, _)| v).collect();
        let start = std::time::Instant::now();
        let (fresh, resampled): (MarginalCounts, HashSet<VarId>) =
            incremental_spatial_gibbs_warm(
                &self.grounding.graph,
                pyramid,
                &changed,
                &self.config.infer,
                Some(&init),
                obs,
            );
        let elapsed = start.elapsed();
        self.counts.merge_affected(&fresh, resampled.iter().copied());
        (elapsed, resampled.len())
    }
}

#[cfg(test)]
mod tests {
    // KnowledgeBase is exercised end-to-end in pipeline.rs tests and the
    // integration suite; unit tests here would need a full pipeline run.
}
