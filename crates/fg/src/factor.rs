//! Logical (non-spatial) factors with DeepDive true-grounding semantics:
//! a factor of weight `w` contributes `w · 1[formula satisfied]` to the
//! log-probability (Equation 1).

use crate::variable::VarId;
use serde::{Deserialize, Serialize};

/// The logical formula shape of a factor, mirroring the rule-head forms
/// of the language module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FactorKind {
    /// `vars[0] ∧ ... ∧ vars[n-2] => vars[n-1]` — the common KBC factor
    /// (for the paper's rules the body has one antecedent).
    Imply,
    /// All variables true.
    And,
    /// At least one variable true.
    Or,
    /// All variables share the same truth value.
    Equal,
    /// Single variable is true.
    IsTrue,
}

/// A weighted logical factor over a set of variables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Factor {
    pub kind: FactorKind,
    pub vars: Vec<VarId>,
    pub weight: f64,
}

impl Factor {
    pub fn new(kind: FactorKind, vars: Vec<VarId>, weight: f64) -> Self {
        debug_assert!(!vars.is_empty(), "factor must touch at least one variable");
        Factor { kind, vars, weight }
    }

    /// Truth interpretation of a variable value: non-zero is "true".
    /// Binary variables use `{0, 1}` directly; categorical variables
    /// entering logical factors count any selected non-zero domain value
    /// as true (value 0 is reserved for the "none"/false level).
    #[inline]
    pub fn truthy(value: u32) -> bool {
        value != 0
    }

    /// Whether the formula is satisfied given `value_of(var)`.
    pub fn satisfied(&self, value_of: &dyn Fn(VarId) -> u32) -> bool {
        match self.kind {
            FactorKind::IsTrue => Self::truthy(value_of(self.vars[0])),
            FactorKind::And => self.vars.iter().all(|&v| Self::truthy(value_of(v))),
            FactorKind::Or => self.vars.iter().any(|&v| Self::truthy(value_of(v))),
            FactorKind::Equal => {
                let first = Self::truthy(value_of(self.vars[0]));
                self.vars.iter().all(|&v| Self::truthy(value_of(v)) == first)
            }
            FactorKind::Imply => {
                let n = self.vars.len();
                let antecedent = self.vars[..n - 1]
                    .iter()
                    .all(|&v| Self::truthy(value_of(v)));
                !antecedent || Self::truthy(value_of(self.vars[n - 1]))
            }
        }
    }

    /// Energy contribution: `weight` when satisfied, `0` otherwise.
    #[inline]
    pub fn energy(&self, value_of: &dyn Fn(VarId) -> u32) -> f64 {
        if self.satisfied(value_of) {
            self.weight
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(assign: &[u32]) -> impl Fn(VarId) -> u32 + '_ {
        move |v| assign[v as usize]
    }

    #[test]
    fn imply_semantics() {
        let f = Factor::new(FactorKind::Imply, vec![0, 1], 2.0);
        assert!(f.satisfied(&val(&[0, 0]))); // F => F
        assert!(f.satisfied(&val(&[0, 1]))); // F => T
        assert!(!f.satisfied(&val(&[1, 0]))); // T => F
        assert!(f.satisfied(&val(&[1, 1]))); // T => T
        assert_eq!(f.energy(&val(&[1, 0])), 0.0);
        assert_eq!(f.energy(&val(&[1, 1])), 2.0);
    }

    #[test]
    fn imply_with_conjunction_antecedent() {
        let f = Factor::new(FactorKind::Imply, vec![0, 1, 2], 1.0);
        assert!(f.satisfied(&val(&[1, 0, 0]))); // antecedent false
        assert!(!f.satisfied(&val(&[1, 1, 0])));
        assert!(f.satisfied(&val(&[1, 1, 1])));
    }

    #[test]
    fn and_or_equal_istrue() {
        let and = Factor::new(FactorKind::And, vec![0, 1], 1.0);
        let or = Factor::new(FactorKind::Or, vec![0, 1], 1.0);
        let eq = Factor::new(FactorKind::Equal, vec![0, 1], 1.0);
        let ist = Factor::new(FactorKind::IsTrue, vec![0], 1.0);
        assert!(and.satisfied(&val(&[1, 1])));
        assert!(!and.satisfied(&val(&[1, 0])));
        assert!(or.satisfied(&val(&[1, 0])));
        assert!(!or.satisfied(&val(&[0, 0])));
        assert!(eq.satisfied(&val(&[0, 0])));
        assert!(eq.satisfied(&val(&[1, 1])));
        assert!(!eq.satisfied(&val(&[1, 0])));
        assert!(ist.satisfied(&val(&[1])));
        assert!(!ist.satisfied(&val(&[0])));
    }

    #[test]
    fn categorical_values_are_truthy_when_nonzero() {
        let f = Factor::new(FactorKind::IsTrue, vec![0], 1.0);
        assert!(f.satisfied(&val(&[7])));
        assert!(!f.satisfied(&val(&[0])));
    }

    #[test]
    fn negative_weights_penalize_satisfaction() {
        let f = Factor::new(FactorKind::IsTrue, vec![0], -1.5);
        assert_eq!(f.energy(&val(&[1])), -1.5);
        assert_eq!(f.energy(&val(&[0])), 0.0);
    }
}
