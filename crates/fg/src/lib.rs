//! # sya-fg — the (spatial) factor graph
//!
//! The probabilistic model at the heart of MLN-based knowledge base
//! construction (paper Section IV). A classical factor graph
//! `φ = {V, F}` holds random variables and weighted logical factors; Sya
//! extends it to the **spatial factor graph** `G = {V, F ∪ ρ}` by adding
//! *spatial factors* — automatically generated, distance-weighted
//! pairwise correlations between ground atoms of `@spatial` variable
//! relations (Definitions 1 and 2, Equations 2–4).
//!
//! This crate provides:
//! * [`Variable`] — binary or categorical ground atoms, with optional
//!   locations and evidence values;
//! * [`Factor`] — logical factors (imply / and / or / equal / is-true)
//!   with DeepDive's true-grounding semantics;
//! * [`SpatialFactor`] — Eq. 2 (binary) and Eq. 4 (categorical) spatial
//!   correlations;
//! * [`WeightingFn`] — the `@spatial(w)` weighting functions
//!   (exponential distance weighing after GeoDa, gaussian,
//!   inverse-distance, linear);
//! * [`FactorGraph`] — adjacency-indexed storage;
//! * [`energy`] — unnormalized log-probability (Eq. 1/3) and the local
//!   conditionals used by every Gibbs variant in `sya-infer`.

pub mod energy;
pub mod factor;
pub mod graph;
pub mod partition;
pub mod region_factor;
pub mod serialize;
pub mod spatial_factor;
pub mod variable;
pub mod weighting;

pub use energy::{binary_conditional_true, conditional_distribution, conditional_with,
    local_energy, local_energy_with, log_prob_unnormalized};
pub use factor::{Factor, FactorKind};
pub use graph::{Assignment, FactorGraph};
pub use partition::ShardInterface;
pub use region_factor::RegionFactor;
pub use serialize::PersistError;
pub use spatial_factor::SpatialFactor;
pub use variable::{Domain, VarId, Variable};
pub use weighting::WeightingFn;
