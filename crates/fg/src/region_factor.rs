//! Higher-order spatial factors — the extension the paper marks as
//! "intuitive ... but out of scope" (Section IV-A: "spatial correlations
//! can be defined on more than two grounds").
//!
//! A [`RegionFactor`] correlates *all* spatial ground atoms of a small
//! region at once with a normalized pairwise-agreement potential
//!
//! ```text
//! ρ_R(v) = exp( w · (agree(v) − disagree(v)) / C(n, 2) )
//! ```
//!
//! where `agree`/`disagree` count the value-(dis)agreeing atom pairs of
//! the region. For a two-atom region this reduces exactly to the pairwise
//! Definition 1 (`+w` on agreement, `−w` on disagreement), so region
//! factors are a strict generalization of Eq. 2 — one factor replacing
//! the `C(n, 2)` pairwise factors of a tight cluster.

use crate::variable::VarId;
use serde::{Deserialize, Serialize};

/// A majority-agreement factor over the atoms of one spatial region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionFactor {
    pub vars: Vec<VarId>,
    /// Region weight (the distance-derived scale of the consensus pull).
    pub weight: f64,
}

impl RegionFactor {
    /// Creates a region factor over at least two atoms.
    pub fn new(vars: Vec<VarId>, weight: f64) -> Self {
        debug_assert!(vars.len() >= 2, "region factor needs at least two atoms");
        RegionFactor { vars, weight }
    }

    /// Log-space energy: `w · (agree − disagree) / C(n, 2)` over the
    /// region's atom pairs. Binary regions avoid allocation.
    pub fn energy(&self, value_of: &dyn Fn(VarId) -> u32) -> f64 {
        let n = self.vars.len();
        let total_pairs = (n * (n - 1) / 2) as f64;
        // Value histogram; fast path for binary {0, 1}.
        let mut count0 = 0usize;
        let mut count1 = 0usize;
        let mut others: Option<std::collections::HashMap<u32, usize>> = None;
        for &v in &self.vars {
            match value_of(v) {
                0 => count0 += 1,
                1 => count1 += 1,
                x => {
                    *others
                        .get_or_insert_with(Default::default)
                        .entry(x)
                        .or_insert(0) += 1;
                }
            }
        }
        let pairs = |c: usize| (c * c.saturating_sub(1) / 2) as f64;
        let mut agree = pairs(count0) + pairs(count1);
        if let Some(map) = &others {
            agree += map.values().map(|&c| pairs(c)).sum::<f64>();
        }
        let disagree = total_pairs - agree;
        self.weight * (agree - disagree) / total_pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(assign: &[u32]) -> impl Fn(VarId) -> u32 + '_ {
        move |v| assign[v as usize]
    }

    #[test]
    fn two_atom_region_reduces_to_pairwise_definition() {
        let f = RegionFactor::new(vec![0, 1], 0.8);
        assert_eq!(f.energy(&val(&[1, 1])), 0.8);
        assert_eq!(f.energy(&val(&[0, 0])), 0.8);
        assert_eq!(f.energy(&val(&[1, 0])), -0.8);
        assert_eq!(f.energy(&val(&[0, 1])), -0.8);
    }

    #[test]
    fn consensus_scales_with_pairwise_agreement() {
        let f = RegionFactor::new(vec![0, 1, 2, 3], 1.0);
        assert_eq!(f.energy(&val(&[1, 1, 1, 1])), 1.0); // 6/6 agree
        assert_eq!(f.energy(&val(&[1, 1, 1, 0])), 0.0); // 3 agree, 3 disagree
        // 2 agree (one 1-pair, one 0-pair), 4 disagree -> -1/3.
        assert!((f.energy(&val(&[1, 1, 0, 0])) - (-1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn categorical_pair_counting() {
        let f = RegionFactor::new(vec![0, 1, 2], 1.0);
        // 5,5,2 -> 1 agree, 2 disagree over 3 pairs -> -1/3.
        assert!((f.energy(&val(&[5, 5, 2])) - (-1.0 / 3.0)).abs() < 1e-12);
        // all distinct -> -1.
        assert!((f.energy(&val(&[5, 7, 2])) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_binary_and_zero_counts() {
        let f = RegionFactor::new(vec![0, 1, 2, 3, 4], 2.0);
        // 0,0,0,1,1 -> agree C(3,2)+C(2,2)=4 of 10 -> 2*(4-6)/10 = -0.4.
        assert!((f.energy(&val(&[0, 0, 0, 1, 1])) + 0.4).abs() < 1e-12);
    }
}
