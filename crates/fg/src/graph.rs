//! The factor graph container with variable→factor adjacency.

use crate::factor::Factor;
use crate::region_factor::RegionFactor;
use crate::spatial_factor::SpatialFactor;
use crate::variable::{VarId, Variable};
use serde::{Deserialize, Serialize};
use sya_geom::{Point, Rect};

/// A complete assignment of values to all variables (indexed by `VarId`).
pub type Assignment = Vec<u32>;

/// A (spatial) factor graph: variables, logical factors, spatial factors,
/// and per-variable adjacency into both factor sets.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FactorGraph {
    variables: Vec<Variable>,
    factors: Vec<Factor>,
    spatial_factors: Vec<SpatialFactor>,
    /// Higher-order region factors (extension; empty by default).
    #[serde(default)]
    region_factors: Vec<RegionFactor>,
    /// `var -> indices into factors`.
    var_factors: Vec<Vec<u32>>,
    /// `var -> indices into spatial_factors`.
    var_spatial: Vec<Vec<u32>>,
    /// `var -> indices into region_factors`.
    #[serde(default)]
    var_region: Vec<Vec<u32>>,
}

impl FactorGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable, assigning it the next dense id.
    /// The `id` field of `v` is overwritten with the assigned id, which
    /// is returned.
    pub fn add_variable(&mut self, mut v: Variable) -> VarId {
        let id = self.variables.len() as VarId;
        v.id = id;
        self.variables.push(v);
        self.var_factors.push(Vec::new());
        self.var_spatial.push(Vec::new());
        self.var_region.push(Vec::new());
        id
    }

    /// Adds a logical factor.
    ///
    /// # Panics
    /// Panics (debug) when a referenced variable does not exist.
    pub fn add_factor(&mut self, f: Factor) -> u32 {
        let idx = self.factors.len() as u32;
        for &v in &f.vars {
            debug_assert!((v as usize) < self.variables.len(), "factor references unknown var");
            self.var_factors[v as usize].push(idx);
        }
        self.factors.push(f);
        idx
    }

    /// Adds a spatial factor.
    pub fn add_spatial_factor(&mut self, f: SpatialFactor) -> u32 {
        let idx = self.spatial_factors.len() as u32;
        debug_assert!((f.a as usize) < self.variables.len());
        debug_assert!((f.b as usize) < self.variables.len());
        self.var_spatial[f.a as usize].push(idx);
        if f.b != f.a {
            self.var_spatial[f.b as usize].push(idx);
        }
        self.spatial_factors.push(f);
        idx
    }

    pub fn num_variables(&self) -> usize {
        self.variables.len()
    }

    pub fn num_factors(&self) -> usize {
        self.factors.len()
    }

    pub fn num_spatial_factors(&self) -> usize {
        self.spatial_factors.len()
    }

    /// Total factor count (logical + spatial + region) — the paper's
    /// "No. Factors".
    pub fn total_factors(&self) -> usize {
        self.factors.len() + self.spatial_factors.len() + self.region_factors.len()
    }

    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    pub fn variable(&self, id: VarId) -> &Variable {
        &self.variables[id as usize]
    }

    pub fn variable_mut(&mut self, id: VarId) -> &mut Variable {
        &mut self.variables[id as usize]
    }

    pub fn factors(&self) -> &[Factor] {
        &self.factors
    }

    pub fn factor(&self, idx: u32) -> &Factor {
        &self.factors[idx as usize]
    }

    /// Adds a higher-order region factor (extension).
    pub fn add_region_factor(&mut self, f: RegionFactor) -> u32 {
        let idx = self.region_factors.len() as u32;
        for &v in &f.vars {
            debug_assert!((v as usize) < self.variables.len());
            self.var_region[v as usize].push(idx);
        }
        self.region_factors.push(f);
        idx
    }

    pub fn region_factors(&self) -> &[RegionFactor] {
        &self.region_factors
    }

    pub fn region_factor(&self, idx: u32) -> &RegionFactor {
        &self.region_factors[idx as usize]
    }

    /// Indices of region factors touching `v`.
    pub fn region_factors_of(&self, v: VarId) -> &[u32] {
        self.var_region.get(v as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn num_region_factors(&self) -> usize {
        self.region_factors.len()
    }

    /// Updates the weight of a logical factor (weight learning).
    pub fn set_factor_weight(&mut self, idx: u32, weight: f64) {
        self.factors[idx as usize].weight = weight;
    }

    pub fn spatial_factors(&self) -> &[SpatialFactor] {
        &self.spatial_factors
    }

    pub fn spatial_factor(&self, idx: u32) -> &SpatialFactor {
        &self.spatial_factors[idx as usize]
    }

    /// Indices of logical factors touching `v`.
    pub fn factors_of(&self, v: VarId) -> &[u32] {
        &self.var_factors[v as usize]
    }

    /// Indices of spatial factors touching `v`.
    pub fn spatial_factors_of(&self, v: VarId) -> &[u32] {
        &self.var_spatial[v as usize]
    }

    /// An initial assignment: evidence values where observed, `0`
    /// elsewhere.
    pub fn initial_assignment(&self) -> Assignment {
        self.variables
            .iter()
            .map(|v| v.evidence.unwrap_or(0))
            .collect()
    }

    /// Ids of non-evidence (query) variables.
    pub fn query_variables(&self) -> Vec<VarId> {
        self.variables
            .iter()
            .filter(|v| !v.is_evidence())
            .map(|v| v.id)
            .collect()
    }

    /// Bounding box of all located variables (empty rect when none).
    pub fn bounding_box(&self) -> Rect {
        self.variables
            .iter()
            .filter_map(|v| v.location)
            .fold(Rect::EMPTY, |acc, p: Point| acc.union(&Rect::from_point(p)))
    }

    /// Updates the evidence value of a variable (used by incremental
    /// inference experiments); pass `None` to un-observe.
    pub fn set_evidence(&mut self, id: VarId, value: Option<u32>) {
        if let Some(v) = value {
            assert!(self.variables[id as usize].domain.contains(v));
        }
        self.variables[id as usize].evidence = value;
    }

    /// Removes a set of variables, dropping every factor touching them
    /// and compacting ids. Returns the old-id → new-id map (removed
    /// variables map to `None`) — the bulk-deletion path of the paper's
    /// update handling (callers remap their side tables and rebuild the
    /// pyramid index).
    pub fn remove_variables(&self, remove: &std::collections::HashSet<VarId>) -> (FactorGraph, Vec<Option<VarId>>) {
        let mut remap: Vec<Option<VarId>> = Vec::with_capacity(self.variables.len());
        let mut out = FactorGraph::new();
        for v in &self.variables {
            if remove.contains(&v.id) {
                remap.push(None);
            } else {
                let nv = out.add_variable(v.clone());
                remap.push(Some(nv));
            }
        }
        for f in &self.factors {
            let vars: Option<Vec<VarId>> =
                f.vars.iter().map(|&v| remap[v as usize]).collect();
            if let Some(vars) = vars {
                out.add_factor(Factor { kind: f.kind, vars, weight: f.weight });
            }
        }
        for s in &self.spatial_factors {
            if let (Some(a), Some(b)) = (remap[s.a as usize], remap[s.b as usize]) {
                out.add_spatial_factor(SpatialFactor { a, b, ..*s });
            }
        }
        for r in &self.region_factors {
            let vars: Option<Vec<VarId>> =
                r.vars.iter().map(|&v| remap[v as usize]).collect();
            if let Some(vars) = vars {
                out.add_region_factor(RegionFactor { vars, weight: r.weight });
            }
        }
        (out, remap)
    }

    /// Estimated heap footprint of the graph in bytes: struct sizes plus
    /// the owned allocations (variable names, factor scopes, adjacency
    /// lists). An estimate, not an accounting — it feeds the memory
    /// budget checks of the execution layer, where "within a few percent"
    /// is plenty to catch a grounding blow-up.
    pub fn approx_memory_bytes(&self) -> u64 {
        use std::mem::size_of;
        let vars: usize = self
            .variables
            .iter()
            .map(|v| size_of::<Variable>() + v.name.capacity())
            .sum();
        let factors: usize = self
            .factors
            .iter()
            .map(|f| size_of::<Factor>() + f.vars.capacity() * size_of::<VarId>())
            .sum();
        let spatial = self.spatial_factors.capacity() * size_of::<SpatialFactor>();
        let region: usize = self
            .region_factors
            .iter()
            .map(|r| size_of::<RegionFactor>() + r.vars.capacity() * size_of::<VarId>())
            .sum();
        let adjacency: usize = [&self.var_factors, &self.var_spatial, &self.var_region]
            .iter()
            .flat_map(|adj| adj.iter())
            .map(|list| size_of::<Vec<u32>>() + list.capacity() * size_of::<u32>())
            .sum();
        (vars + factors + spatial + region + adjacency) as u64
    }

    /// Structural fingerprint of the graph (FNV-1a, 64-bit): variable
    /// domains/evidence/locations, factor kinds/scopes/weights, spatial
    /// and region factors. Checkpoints record it so that a resume
    /// against a *different* grounding (changed program, data, or
    /// weights) is rejected instead of silently producing garbage
    /// marginals. Names are deliberately excluded — they do not affect
    /// sampling.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.variables.len() as u64);
        for v in &self.variables {
            mix(v.domain.cardinality() as u64);
            mix(match v.evidence {
                Some(e) => 1 + e as u64,
                None => 0,
            });
            match v.location {
                Some(p) => {
                    mix(1);
                    mix(p.x.to_bits());
                    mix(p.y.to_bits());
                }
                None => mix(0),
            }
        }
        mix(self.factors.len() as u64);
        for f in &self.factors {
            mix(f.kind as u64);
            mix(f.vars.len() as u64);
            for &v in &f.vars {
                mix(v as u64);
            }
            mix(f.weight.to_bits());
        }
        mix(self.spatial_factors.len() as u64);
        for s in &self.spatial_factors {
            mix(s.a as u64);
            mix(s.b as u64);
            mix(s.weight.to_bits());
            mix(match s.domain_pair {
                Some((ta, tb)) => 1 + (((ta as u64) << 32) | tb as u64),
                None => 0,
            });
        }
        mix(self.region_factors.len() as u64);
        for r in &self.region_factors {
            mix(r.vars.len() as u64);
            for &v in &r.vars {
                mix(v as u64);
            }
            mix(r.weight.to_bits());
        }
        h
    }

    /// Variables that share a logical or spatial factor with `v`
    /// (deduplicated, `v` excluded) — the Markov blanket neighbourhood.
    pub fn neighbours(&self, v: VarId) -> Vec<VarId> {
        let mut out: Vec<VarId> = Vec::new();
        for &fi in self.factors_of(v) {
            for &u in &self.factors[fi as usize].vars {
                if u != v {
                    out.push(u);
                }
            }
        }
        for &si in self.spatial_factors_of(v) {
            let o = self.spatial_factors[si as usize].other(v);
            if o != v {
                out.push(o);
            }
        }
        for &ri in self.region_factors_of(v) {
            for &u in &self.region_factors[ri as usize].vars {
                if u != v {
                    out.push(u);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::FactorKind;
    use crate::variable::Variable;

    fn tiny() -> FactorGraph {
        let mut g = FactorGraph::new();
        let a = g.add_variable(Variable::binary(0, "a").at(Point::new(0.0, 0.0)));
        let b = g.add_variable(Variable::binary(0, "b").at(Point::new(3.0, 4.0)));
        let c = g.add_variable(Variable::binary(0, "c").with_evidence(1));
        g.add_factor(Factor::new(FactorKind::Imply, vec![a, b], 1.0));
        g.add_factor(Factor::new(FactorKind::IsTrue, vec![c], 0.5));
        g.add_spatial_factor(SpatialFactor::binary(a, b, 0.7));
        g
    }

    #[test]
    fn ids_are_dense_and_overwritten() {
        let g = tiny();
        assert_eq!(g.num_variables(), 3);
        for (i, v) in g.variables().iter().enumerate() {
            assert_eq!(v.id as usize, i);
        }
    }

    #[test]
    fn adjacency_is_maintained() {
        let g = tiny();
        assert_eq!(g.factors_of(0), &[0]);
        assert_eq!(g.factors_of(1), &[0]);
        assert_eq!(g.factors_of(2), &[1]);
        assert_eq!(g.spatial_factors_of(0), &[0]);
        assert_eq!(g.spatial_factors_of(1), &[0]);
        assert!(g.spatial_factors_of(2).is_empty());
        assert_eq!(g.total_factors(), 3);
    }

    #[test]
    fn initial_assignment_uses_evidence() {
        let g = tiny();
        assert_eq!(g.initial_assignment(), vec![0, 0, 1]);
        assert_eq!(g.query_variables(), vec![0, 1]);
    }

    #[test]
    fn bounding_box_covers_located_vars() {
        let g = tiny();
        assert_eq!(g.bounding_box(), Rect::raw(0.0, 0.0, 3.0, 4.0));
    }

    #[test]
    fn neighbours_combine_both_factor_kinds() {
        let mut g = tiny();
        g.add_factor(Factor::new(FactorKind::And, vec![0, 2], 1.0));
        assert_eq!(g.neighbours(0), vec![1, 2]);
        assert_eq!(g.neighbours(1), vec![0]);
    }

    #[test]
    fn region_factor_adjacency_and_neighbours() {
        let mut g = tiny();
        let d = g.add_variable(Variable::binary(0, "d"));
        g.add_region_factor(crate::region_factor::RegionFactor::new(vec![0, 1, d], 0.5));
        assert_eq!(g.num_region_factors(), 1);
        assert_eq!(g.region_factors_of(0), &[0]);
        assert_eq!(g.region_factors_of(d), &[0]);
        assert!(g.neighbours(d).contains(&0));
        assert!(g.neighbours(d).contains(&1));
        assert_eq!(g.total_factors(), 4);
    }

    #[test]
    fn remove_variables_compacts_and_drops_factors() {
        let mut g = tiny();
        let d = g.add_variable(Variable::binary(0, "d"));
        g.add_factor(Factor::new(FactorKind::And, vec![0, d], 1.0));
        g.add_region_factor(crate::region_factor::RegionFactor::new(vec![0, 1, d], 0.5));
        // Remove variable 1 ("b"): every factor touching it is dropped;
        // factors over surviving variables are kept and remapped.
        let remove: std::collections::HashSet<VarId> = [1u32].into();
        let (g2, remap) = g.remove_variables(&remove);
        assert_eq!(g2.num_variables(), 3);
        assert_eq!(remap[1], None);
        assert_eq!(remap[2], Some(1)); // compacted
        // Imply(0,1) and spatial(0,1) dropped; IsTrue(2) and And(0,d) kept.
        assert_eq!(g2.num_factors(), 2);
        assert_eq!(g2.num_spatial_factors(), 0);
        // Region factor touching the removed var is dropped entirely.
        assert_eq!(g2.num_region_factors(), 0);
        // Names preserved through the remap.
        assert_eq!(g2.variable(remap[3].unwrap()).name, "d");
        // Adjacency is rebuilt consistently.
        for (i, f) in g2.factors().iter().enumerate() {
            for &v in &f.vars {
                assert!(g2.factors_of(v).contains(&(i as u32)));
            }
        }
    }

    #[test]
    fn memory_estimate_grows_with_the_graph() {
        let small = tiny().approx_memory_bytes();
        assert!(small > 0);
        let mut g = tiny();
        for i in 0..100 {
            let v = g.add_variable(Variable::binary(0, format!("extra{i}")));
            g.add_factor(Factor::new(FactorKind::IsTrue, vec![v], 0.1));
        }
        assert!(g.approx_memory_bytes() > small);
    }

    #[test]
    fn fingerprint_tracks_sampling_relevant_structure() {
        let g = tiny();
        assert_eq!(g.fingerprint(), tiny().fingerprint(), "deterministic");
        // Weight changes, evidence changes, and new factors all matter.
        let mut w = tiny();
        w.set_factor_weight(0, 2.0);
        assert_ne!(g.fingerprint(), w.fingerprint());
        let mut e = tiny();
        e.set_evidence(0, Some(1));
        assert_ne!(g.fingerprint(), e.fingerprint());
        let mut f = tiny();
        f.add_factor(Factor::new(FactorKind::IsTrue, vec![0], 0.1));
        assert_ne!(g.fingerprint(), f.fingerprint());
        let mut s = tiny();
        s.add_spatial_factor(SpatialFactor::binary(0, 2, 0.1));
        assert_ne!(g.fingerprint(), s.fingerprint());
        // Names do not: two graphs differing only in names fingerprint
        // the same (the serialized graph carries names, sampling ignores
        // them).
        let mut renamed = tiny();
        renamed.variable_mut(0).name = "renamed".to_owned();
        assert_eq!(g.fingerprint(), renamed.fingerprint());
        // Survives a serialize/deserialize round trip.
        let mut buf = Vec::new();
        g.save(&mut buf).unwrap();
        let g2 = FactorGraph::load(buf.as_slice()).unwrap();
        assert_eq!(g.fingerprint(), g2.fingerprint());
    }

    #[test]
    fn set_evidence_toggles() {
        let mut g = tiny();
        g.set_evidence(0, Some(1));
        assert!(g.variable(0).is_evidence());
        g.set_evidence(0, None);
        assert!(!g.variable(0).is_evidence());
    }
}
