//! The factor graph container with variable→factor adjacency.

use crate::factor::Factor;
use crate::region_factor::RegionFactor;
use crate::spatial_factor::SpatialFactor;
use crate::variable::{VarId, Variable};
use serde::{Deserialize, Serialize};
use sya_geom::{Point, Rect};

/// A complete assignment of values to all variables (indexed by `VarId`).
pub type Assignment = Vec<u32>;

/// A (spatial) factor graph: variables, logical factors, spatial factors,
/// and per-variable adjacency into both factor sets.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FactorGraph {
    variables: Vec<Variable>,
    factors: Vec<Factor>,
    spatial_factors: Vec<SpatialFactor>,
    /// Higher-order region factors (extension; empty by default).
    #[serde(default)]
    region_factors: Vec<RegionFactor>,
    /// `var -> indices into factors`.
    var_factors: Vec<Vec<u32>>,
    /// `var -> indices into spatial_factors`.
    var_spatial: Vec<Vec<u32>>,
    /// `var -> indices into region_factors`.
    #[serde(default)]
    var_region: Vec<Vec<u32>>,
    /// Tombstone flags for logical factors. Empty until the first
    /// removal (old serialized graphs load with every factor live);
    /// once non-empty it is kept at `factors.len()`.
    #[serde(default)]
    factor_dead: Vec<bool>,
    /// Tombstone flags for spatial factors (same convention).
    #[serde(default)]
    spatial_dead: Vec<bool>,
    /// Tombstone flags for variables (same convention). Variable slots
    /// are never reused — marginal-count rows and delta grounding both
    /// rely on ids being append-only — so a dead variable is a
    /// permanently retired id.
    #[serde(default)]
    var_dead: Vec<bool>,
    /// Free logical-factor slots available for reuse.
    #[serde(default)]
    factor_free: Vec<u32>,
    /// Free spatial-factor slots available for reuse.
    #[serde(default)]
    spatial_free: Vec<u32>,
}

impl FactorGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable, assigning it the next dense id.
    /// The `id` field of `v` is overwritten with the assigned id, which
    /// is returned.
    pub fn add_variable(&mut self, mut v: Variable) -> VarId {
        let id = self.variables.len() as VarId;
        v.id = id;
        self.variables.push(v);
        self.var_factors.push(Vec::new());
        self.var_spatial.push(Vec::new());
        self.var_region.push(Vec::new());
        if !self.var_dead.is_empty() {
            self.var_dead.push(false);
        }
        id
    }

    /// Adds a logical factor, reusing a tombstoned slot when one is
    /// free. Returns the slot index — callers keeping side tables in
    /// lockstep (e.g. grounding rule labels) must write at this index
    /// rather than assuming a push.
    ///
    /// # Panics
    /// Panics (debug) when a referenced variable does not exist.
    pub fn add_factor(&mut self, f: Factor) -> u32 {
        for &v in &f.vars {
            debug_assert!((v as usize) < self.variables.len(), "factor references unknown var");
        }
        if let Some(idx) = self.factor_free.pop() {
            for &v in &f.vars {
                self.var_factors[v as usize].push(idx);
            }
            self.factors[idx as usize] = f;
            self.factor_dead[idx as usize] = false;
            return idx;
        }
        let idx = self.factors.len() as u32;
        for &v in &f.vars {
            self.var_factors[v as usize].push(idx);
        }
        self.factors.push(f);
        if !self.factor_dead.is_empty() {
            self.factor_dead.push(false);
        }
        idx
    }

    /// Adds a spatial factor, reusing a tombstoned slot when one is
    /// free (same contract as [`FactorGraph::add_factor`]).
    pub fn add_spatial_factor(&mut self, f: SpatialFactor) -> u32 {
        debug_assert!((f.a as usize) < self.variables.len());
        debug_assert!((f.b as usize) < self.variables.len());
        if let Some(idx) = self.spatial_free.pop() {
            self.var_spatial[f.a as usize].push(idx);
            if f.b != f.a {
                self.var_spatial[f.b as usize].push(idx);
            }
            self.spatial_factors[idx as usize] = f;
            self.spatial_dead[idx as usize] = false;
            return idx;
        }
        let idx = self.spatial_factors.len() as u32;
        self.var_spatial[f.a as usize].push(idx);
        if f.b != f.a {
            self.var_spatial[f.b as usize].push(idx);
        }
        self.spatial_factors.push(f);
        if !self.spatial_dead.is_empty() {
            self.spatial_dead.push(false);
        }
        idx
    }

    /// True when the logical factor at `idx` is a tombstone.
    pub fn is_factor_dead(&self, idx: u32) -> bool {
        self.factor_dead.get(idx as usize).copied().unwrap_or(false)
    }

    /// True when the spatial factor at `idx` is a tombstone.
    pub fn is_spatial_factor_dead(&self, idx: u32) -> bool {
        self.spatial_dead.get(idx as usize).copied().unwrap_or(false)
    }

    /// True when the variable `v` has been retired.
    pub fn is_var_dead(&self, v: VarId) -> bool {
        self.var_dead.get(v as usize).copied().unwrap_or(false)
    }

    /// Tombstones a logical factor: detaches it from the adjacency
    /// lists, zeroes its weight (so any full-scan energy walk that
    /// still sees it contributes nothing), and queues its slot for
    /// reuse. The scope (`vars`) is kept intact so energy evaluation
    /// over the dense factor array never indexes out of bounds.
    /// Returns the factor's scope; no-op (empty vec) when already dead.
    pub fn remove_factor(&mut self, idx: u32) -> Vec<VarId> {
        if self.is_factor_dead(idx) || (idx as usize) >= self.factors.len() {
            return Vec::new();
        }
        if self.factor_dead.len() < self.factors.len() {
            self.factor_dead.resize(self.factors.len(), false);
        }
        let vars = self.factors[idx as usize].vars.clone();
        for &v in &vars {
            self.var_factors[v as usize].retain(|&f| f != idx);
        }
        self.factors[idx as usize].weight = 0.0;
        self.factor_dead[idx as usize] = true;
        self.factor_free.push(idx);
        vars
    }

    /// Tombstones a spatial factor (same contract as
    /// [`FactorGraph::remove_factor`]). Returns its endpoints; no-op
    /// (`None`) when already dead.
    pub fn remove_spatial_factor(&mut self, idx: u32) -> Option<(VarId, VarId)> {
        if self.is_spatial_factor_dead(idx) || (idx as usize) >= self.spatial_factors.len() {
            return None;
        }
        if self.spatial_dead.len() < self.spatial_factors.len() {
            self.spatial_dead.resize(self.spatial_factors.len(), false);
        }
        let (a, b) = {
            let s = &self.spatial_factors[idx as usize];
            (s.a, s.b)
        };
        self.var_spatial[a as usize].retain(|&f| f != idx);
        if b != a {
            self.var_spatial[b as usize].retain(|&f| f != idx);
        }
        self.spatial_factors[idx as usize].weight = 0.0;
        self.spatial_dead[idx as usize] = true;
        self.spatial_free.push(idx);
        Some((a, b))
    }

    /// Retires a variable: clears its adjacency (callers are expected
    /// to tombstone its factors first) and marks it dead. The id is
    /// never reused — marginal-count rows and delta grounding rely on
    /// ids being append-only — so retirement is a bounded leak of one
    /// `Variable` slot per retracted atom.
    pub fn kill_variable(&mut self, v: VarId) {
        if (v as usize) >= self.variables.len() || self.is_var_dead(v) {
            return;
        }
        if self.var_dead.len() < self.variables.len() {
            self.var_dead.resize(self.variables.len(), false);
        }
        self.var_factors[v as usize].clear();
        self.var_spatial[v as usize].clear();
        self.var_region[v as usize].clear();
        self.variables[v as usize].evidence = None;
        self.var_dead[v as usize] = true;
    }

    /// Number of live (non-tombstoned) logical factors.
    pub fn num_live_factors(&self) -> usize {
        self.factors.len() - self.factor_dead.iter().filter(|&&d| d).count()
    }

    /// Number of live (non-tombstoned) spatial factors.
    pub fn num_live_spatial_factors(&self) -> usize {
        self.spatial_factors.len() - self.spatial_dead.iter().filter(|&&d| d).count()
    }

    /// Number of live (non-retired) variables.
    pub fn num_live_variables(&self) -> usize {
        self.variables.len() - self.var_dead.iter().filter(|&&d| d).count()
    }

    pub fn num_variables(&self) -> usize {
        self.variables.len()
    }

    pub fn num_factors(&self) -> usize {
        self.factors.len()
    }

    pub fn num_spatial_factors(&self) -> usize {
        self.spatial_factors.len()
    }

    /// Total factor count (logical + spatial + region) — the paper's
    /// "No. Factors".
    pub fn total_factors(&self) -> usize {
        self.factors.len() + self.spatial_factors.len() + self.region_factors.len()
    }

    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    pub fn variable(&self, id: VarId) -> &Variable {
        &self.variables[id as usize]
    }

    pub fn variable_mut(&mut self, id: VarId) -> &mut Variable {
        &mut self.variables[id as usize]
    }

    pub fn factors(&self) -> &[Factor] {
        &self.factors
    }

    pub fn factor(&self, idx: u32) -> &Factor {
        &self.factors[idx as usize]
    }

    /// Adds a higher-order region factor (extension).
    pub fn add_region_factor(&mut self, f: RegionFactor) -> u32 {
        let idx = self.region_factors.len() as u32;
        for &v in &f.vars {
            debug_assert!((v as usize) < self.variables.len());
            self.var_region[v as usize].push(idx);
        }
        self.region_factors.push(f);
        idx
    }

    pub fn region_factors(&self) -> &[RegionFactor] {
        &self.region_factors
    }

    pub fn region_factor(&self, idx: u32) -> &RegionFactor {
        &self.region_factors[idx as usize]
    }

    /// Indices of region factors touching `v`.
    pub fn region_factors_of(&self, v: VarId) -> &[u32] {
        self.var_region.get(v as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn num_region_factors(&self) -> usize {
        self.region_factors.len()
    }

    /// Updates the weight of a logical factor (weight learning).
    pub fn set_factor_weight(&mut self, idx: u32, weight: f64) {
        self.factors[idx as usize].weight = weight;
    }

    pub fn spatial_factors(&self) -> &[SpatialFactor] {
        &self.spatial_factors
    }

    pub fn spatial_factor(&self, idx: u32) -> &SpatialFactor {
        &self.spatial_factors[idx as usize]
    }

    /// Indices of logical factors touching `v`.
    pub fn factors_of(&self, v: VarId) -> &[u32] {
        &self.var_factors[v as usize]
    }

    /// Indices of spatial factors touching `v`.
    pub fn spatial_factors_of(&self, v: VarId) -> &[u32] {
        &self.var_spatial[v as usize]
    }

    /// An initial assignment: evidence values where observed, `0`
    /// elsewhere.
    pub fn initial_assignment(&self) -> Assignment {
        self.variables
            .iter()
            .map(|v| v.evidence.unwrap_or(0))
            .collect()
    }

    /// Ids of non-evidence (query) variables. Retired variables are
    /// excluded — they are no longer part of the model.
    pub fn query_variables(&self) -> Vec<VarId> {
        self.variables
            .iter()
            .filter(|v| !v.is_evidence() && !self.is_var_dead(v.id))
            .map(|v| v.id)
            .collect()
    }

    /// Bounding box of all live located variables (empty rect when
    /// none).
    pub fn bounding_box(&self) -> Rect {
        self.variables
            .iter()
            .filter(|v| !self.is_var_dead(v.id))
            .filter_map(|v| v.location)
            .fold(Rect::EMPTY, |acc, p: Point| acc.union(&Rect::from_point(p)))
    }

    /// Updates the evidence value of a variable (used by incremental
    /// inference experiments); pass `None` to un-observe.
    pub fn set_evidence(&mut self, id: VarId, value: Option<u32>) {
        if let Some(v) = value {
            assert!(self.variables[id as usize].domain.contains(v));
        }
        self.variables[id as usize].evidence = value;
    }

    /// Removes a set of variables, dropping every factor touching them
    /// and compacting ids. Returns the old-id → new-id map (removed
    /// variables map to `None`) — the bulk-deletion path of the paper's
    /// update handling (callers remap their side tables and rebuild the
    /// pyramid index).
    pub fn remove_variables(&self, remove: &std::collections::HashSet<VarId>) -> (FactorGraph, Vec<Option<VarId>>) {
        let mut remap: Vec<Option<VarId>> = Vec::with_capacity(self.variables.len());
        let mut out = FactorGraph::new();
        for v in &self.variables {
            if remove.contains(&v.id) || self.is_var_dead(v.id) {
                remap.push(None);
            } else {
                let nv = out.add_variable(v.clone());
                remap.push(Some(nv));
            }
        }
        for (i, f) in self.factors.iter().enumerate() {
            if self.is_factor_dead(i as u32) {
                continue;
            }
            let vars: Option<Vec<VarId>> =
                f.vars.iter().map(|&v| remap[v as usize]).collect();
            if let Some(vars) = vars {
                out.add_factor(Factor { kind: f.kind, vars, weight: f.weight });
            }
        }
        for (i, s) in self.spatial_factors.iter().enumerate() {
            if self.is_spatial_factor_dead(i as u32) {
                continue;
            }
            if let (Some(a), Some(b)) = (remap[s.a as usize], remap[s.b as usize]) {
                out.add_spatial_factor(SpatialFactor { a, b, ..*s });
            }
        }
        for r in &self.region_factors {
            let vars: Option<Vec<VarId>> =
                r.vars.iter().map(|&v| remap[v as usize]).collect();
            if let Some(vars) = vars {
                out.add_region_factor(RegionFactor { vars, weight: r.weight });
            }
        }
        (out, remap)
    }

    /// Estimated heap footprint of the graph in bytes: struct sizes plus
    /// the owned allocations (variable names, factor scopes, adjacency
    /// lists). An estimate, not an accounting — it feeds the memory
    /// budget checks of the execution layer, where "within a few percent"
    /// is plenty to catch a grounding blow-up.
    pub fn approx_memory_bytes(&self) -> u64 {
        use std::mem::size_of;
        let vars: usize = self
            .variables
            .iter()
            .map(|v| size_of::<Variable>() + v.name.capacity())
            .sum();
        let factors: usize = self
            .factors
            .iter()
            .map(|f| size_of::<Factor>() + f.vars.capacity() * size_of::<VarId>())
            .sum();
        let spatial = self.spatial_factors.capacity() * size_of::<SpatialFactor>();
        let region: usize = self
            .region_factors
            .iter()
            .map(|r| size_of::<RegionFactor>() + r.vars.capacity() * size_of::<VarId>())
            .sum();
        let adjacency: usize = [&self.var_factors, &self.var_spatial, &self.var_region]
            .iter()
            .flat_map(|adj| adj.iter())
            .map(|list| size_of::<Vec<u32>>() + list.capacity() * size_of::<u32>())
            .sum();
        (vars + factors + spatial + region + adjacency) as u64
    }

    /// Structural fingerprint of the graph (FNV-1a, 64-bit): variable
    /// domains/evidence/locations, factor kinds/scopes/weights, spatial
    /// and region factors. Checkpoints record it so that a resume
    /// against a *different* grounding (changed program, data, or
    /// weights) is rejected instead of silently producing garbage
    /// marginals. Names are deliberately excluded — they do not affect
    /// sampling.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.variables.len() as u64);
        for v in &self.variables {
            mix(v.domain.cardinality() as u64);
            mix(match v.evidence {
                Some(e) => 1 + e as u64,
                None => 0,
            });
            match v.location {
                Some(p) => {
                    mix(1);
                    mix(p.x.to_bits());
                    mix(p.y.to_bits());
                }
                None => mix(0),
            }
        }
        mix(self.factors.len() as u64);
        for f in &self.factors {
            mix(f.kind as u64);
            mix(f.vars.len() as u64);
            for &v in &f.vars {
                mix(v as u64);
            }
            mix(f.weight.to_bits());
        }
        mix(self.spatial_factors.len() as u64);
        for s in &self.spatial_factors {
            mix(s.a as u64);
            mix(s.b as u64);
            mix(s.weight.to_bits());
            mix(match s.domain_pair {
                Some((ta, tb)) => 1 + (((ta as u64) << 32) | tb as u64),
                None => 0,
            });
        }
        mix(self.region_factors.len() as u64);
        for r in &self.region_factors {
            mix(r.vars.len() as u64);
            for &v in &r.vars {
                mix(v as u64);
            }
            mix(r.weight.to_bits());
        }
        // Liveness: tombstoned slots and retired variables change the
        // model even when the dense arrays look alike (a zero-weight
        // live factor is not the same model as a tombstone awaiting
        // reuse). Only dead entries are mixed, so graphs without any
        // tombstones keep their historical fingerprint.
        for (i, &d) in self.factor_dead.iter().enumerate() {
            if d {
                mix(0xdead_f001);
                mix(i as u64);
            }
        }
        for (i, &d) in self.spatial_dead.iter().enumerate() {
            if d {
                mix(0xdead_f002);
                mix(i as u64);
            }
        }
        for (i, &d) in self.var_dead.iter().enumerate() {
            if d {
                mix(0xdead_f003);
                mix(i as u64);
            }
        }
        h
    }

    /// Variables that share a logical or spatial factor with `v`
    /// (deduplicated, `v` excluded) — the Markov blanket neighbourhood.
    pub fn neighbours(&self, v: VarId) -> Vec<VarId> {
        let mut out: Vec<VarId> = Vec::new();
        for &fi in self.factors_of(v) {
            for &u in &self.factors[fi as usize].vars {
                if u != v {
                    out.push(u);
                }
            }
        }
        for &si in self.spatial_factors_of(v) {
            let o = self.spatial_factors[si as usize].other(v);
            if o != v {
                out.push(o);
            }
        }
        for &ri in self.region_factors_of(v) {
            for &u in &self.region_factors[ri as usize].vars {
                if u != v {
                    out.push(u);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::FactorKind;
    use crate::variable::Variable;

    fn tiny() -> FactorGraph {
        let mut g = FactorGraph::new();
        let a = g.add_variable(Variable::binary(0, "a").at(Point::new(0.0, 0.0)));
        let b = g.add_variable(Variable::binary(0, "b").at(Point::new(3.0, 4.0)));
        let c = g.add_variable(Variable::binary(0, "c").with_evidence(1));
        g.add_factor(Factor::new(FactorKind::Imply, vec![a, b], 1.0));
        g.add_factor(Factor::new(FactorKind::IsTrue, vec![c], 0.5));
        g.add_spatial_factor(SpatialFactor::binary(a, b, 0.7));
        g
    }

    #[test]
    fn ids_are_dense_and_overwritten() {
        let g = tiny();
        assert_eq!(g.num_variables(), 3);
        for (i, v) in g.variables().iter().enumerate() {
            assert_eq!(v.id as usize, i);
        }
    }

    #[test]
    fn adjacency_is_maintained() {
        let g = tiny();
        assert_eq!(g.factors_of(0), &[0]);
        assert_eq!(g.factors_of(1), &[0]);
        assert_eq!(g.factors_of(2), &[1]);
        assert_eq!(g.spatial_factors_of(0), &[0]);
        assert_eq!(g.spatial_factors_of(1), &[0]);
        assert!(g.spatial_factors_of(2).is_empty());
        assert_eq!(g.total_factors(), 3);
    }

    #[test]
    fn initial_assignment_uses_evidence() {
        let g = tiny();
        assert_eq!(g.initial_assignment(), vec![0, 0, 1]);
        assert_eq!(g.query_variables(), vec![0, 1]);
    }

    #[test]
    fn bounding_box_covers_located_vars() {
        let g = tiny();
        assert_eq!(g.bounding_box(), Rect::raw(0.0, 0.0, 3.0, 4.0));
    }

    #[test]
    fn neighbours_combine_both_factor_kinds() {
        let mut g = tiny();
        g.add_factor(Factor::new(FactorKind::And, vec![0, 2], 1.0));
        assert_eq!(g.neighbours(0), vec![1, 2]);
        assert_eq!(g.neighbours(1), vec![0]);
    }

    #[test]
    fn region_factor_adjacency_and_neighbours() {
        let mut g = tiny();
        let d = g.add_variable(Variable::binary(0, "d"));
        g.add_region_factor(crate::region_factor::RegionFactor::new(vec![0, 1, d], 0.5));
        assert_eq!(g.num_region_factors(), 1);
        assert_eq!(g.region_factors_of(0), &[0]);
        assert_eq!(g.region_factors_of(d), &[0]);
        assert!(g.neighbours(d).contains(&0));
        assert!(g.neighbours(d).contains(&1));
        assert_eq!(g.total_factors(), 4);
    }

    #[test]
    fn remove_variables_compacts_and_drops_factors() {
        let mut g = tiny();
        let d = g.add_variable(Variable::binary(0, "d"));
        g.add_factor(Factor::new(FactorKind::And, vec![0, d], 1.0));
        g.add_region_factor(crate::region_factor::RegionFactor::new(vec![0, 1, d], 0.5));
        // Remove variable 1 ("b"): every factor touching it is dropped;
        // factors over surviving variables are kept and remapped.
        let remove: std::collections::HashSet<VarId> = [1u32].into();
        let (g2, remap) = g.remove_variables(&remove);
        assert_eq!(g2.num_variables(), 3);
        assert_eq!(remap[1], None);
        assert_eq!(remap[2], Some(1)); // compacted
        // Imply(0,1) and spatial(0,1) dropped; IsTrue(2) and And(0,d) kept.
        assert_eq!(g2.num_factors(), 2);
        assert_eq!(g2.num_spatial_factors(), 0);
        // Region factor touching the removed var is dropped entirely.
        assert_eq!(g2.num_region_factors(), 0);
        // Names preserved through the remap.
        assert_eq!(g2.variable(remap[3].unwrap()).name, "d");
        // Adjacency is rebuilt consistently.
        for (i, f) in g2.factors().iter().enumerate() {
            for &v in &f.vars {
                assert!(g2.factors_of(v).contains(&(i as u32)));
            }
        }
    }

    #[test]
    fn memory_estimate_grows_with_the_graph() {
        let small = tiny().approx_memory_bytes();
        assert!(small > 0);
        let mut g = tiny();
        for i in 0..100 {
            let v = g.add_variable(Variable::binary(0, format!("extra{i}")));
            g.add_factor(Factor::new(FactorKind::IsTrue, vec![v], 0.1));
        }
        assert!(g.approx_memory_bytes() > small);
    }

    #[test]
    fn fingerprint_tracks_sampling_relevant_structure() {
        let g = tiny();
        assert_eq!(g.fingerprint(), tiny().fingerprint(), "deterministic");
        // Weight changes, evidence changes, and new factors all matter.
        let mut w = tiny();
        w.set_factor_weight(0, 2.0);
        assert_ne!(g.fingerprint(), w.fingerprint());
        let mut e = tiny();
        e.set_evidence(0, Some(1));
        assert_ne!(g.fingerprint(), e.fingerprint());
        let mut f = tiny();
        f.add_factor(Factor::new(FactorKind::IsTrue, vec![0], 0.1));
        assert_ne!(g.fingerprint(), f.fingerprint());
        let mut s = tiny();
        s.add_spatial_factor(SpatialFactor::binary(0, 2, 0.1));
        assert_ne!(g.fingerprint(), s.fingerprint());
        // Names do not: two graphs differing only in names fingerprint
        // the same (the serialized graph carries names, sampling ignores
        // them).
        let mut renamed = tiny();
        renamed.variable_mut(0).name = "renamed".to_owned();
        assert_eq!(g.fingerprint(), renamed.fingerprint());
        // Survives a serialize/deserialize round trip.
        let mut buf = Vec::new();
        g.save(&mut buf).unwrap();
        let g2 = FactorGraph::load(buf.as_slice()).unwrap();
        assert_eq!(g.fingerprint(), g2.fingerprint());
    }

    #[test]
    fn remove_factor_detaches_and_reuses_slot() {
        let mut g = tiny();
        let scope = g.remove_factor(0);
        assert_eq!(scope, vec![0, 1]);
        assert!(g.is_factor_dead(0));
        assert!(g.factors_of(0).is_empty());
        assert!(g.factors_of(1).is_empty());
        assert_eq!(g.factor(0).weight, 0.0);
        assert_eq!(g.num_live_factors(), 1);
        // Removing again is a no-op.
        assert!(g.remove_factor(0).is_empty());
        // The next add reuses the tombstoned slot and reattaches
        // adjacency.
        let idx = g.add_factor(Factor::new(FactorKind::And, vec![0, 2], 2.0));
        assert_eq!(idx, 0);
        assert!(!g.is_factor_dead(0));
        assert_eq!(g.factors_of(0), &[0]);
        assert_eq!(g.factors_of(2), &[1, 0]);
        assert_eq!(g.num_factors(), 2);
        // A further add appends (free list drained) and stays live.
        let idx2 = g.add_factor(Factor::new(FactorKind::IsTrue, vec![1], 0.3));
        assert_eq!(idx2, 2);
        assert!(!g.is_factor_dead(2));
        assert_eq!(g.num_live_factors(), 3);
    }

    #[test]
    fn remove_spatial_factor_detaches_and_reuses_slot() {
        let mut g = tiny();
        assert_eq!(g.remove_spatial_factor(0), Some((0, 1)));
        assert!(g.is_spatial_factor_dead(0));
        assert!(g.spatial_factors_of(0).is_empty());
        assert!(g.spatial_factors_of(1).is_empty());
        assert_eq!(g.num_live_spatial_factors(), 0);
        assert_eq!(g.remove_spatial_factor(0), None);
        let idx = g.add_spatial_factor(SpatialFactor::binary(1, 2, 0.4));
        assert_eq!(idx, 0);
        assert_eq!(g.spatial_factors_of(1), &[0]);
        assert_eq!(g.spatial_factors_of(2), &[0]);
        assert_eq!(g.num_live_spatial_factors(), 1);
    }

    #[test]
    fn kill_variable_retires_without_compaction() {
        let mut g = tiny();
        g.remove_factor(0);
        g.remove_spatial_factor(0);
        g.kill_variable(1);
        assert!(g.is_var_dead(1));
        assert_eq!(g.num_variables(), 3, "slot is kept");
        assert_eq!(g.num_live_variables(), 2);
        assert_eq!(g.query_variables(), vec![0]);
        // The dead var's location no longer widens the bounding box.
        assert_eq!(g.bounding_box(), Rect::raw(0.0, 0.0, 0.0, 0.0));
        // New variables still get fresh dense ids.
        let d = g.add_variable(Variable::binary(0, "d"));
        assert_eq!(d, 3);
        assert!(!g.is_var_dead(d));
        // Compaction drops tombstones and dead vars.
        let (g2, remap) = g.remove_variables(&std::collections::HashSet::new());
        assert_eq!(g2.num_variables(), 3);
        assert_eq!(remap[1], None);
        assert_eq!(g2.num_factors(), 1);
        assert_eq!(g2.num_spatial_factors(), 0);
    }

    #[test]
    fn fingerprint_tracks_liveness() {
        let base = tiny();
        let mut t = tiny();
        t.remove_factor(1);
        assert_ne!(base.fingerprint(), t.fingerprint());
        // A tombstone differs from a live zero-weight factor in the
        // same slot.
        let mut z = tiny();
        z.set_factor_weight(1, 0.0);
        assert_ne!(z.fingerprint(), t.fingerprint());
        let mut k = tiny();
        k.kill_variable(2);
        assert_ne!(base.fingerprint(), k.fingerprint());
        // Round-trips through serialization.
        let mut buf = Vec::new();
        t.save(&mut buf).unwrap();
        let t2 = FactorGraph::load(buf.as_slice()).unwrap();
        assert_eq!(t.fingerprint(), t2.fingerprint());
    }

    #[test]
    fn set_evidence_toggles() {
        let mut g = tiny();
        g.set_evidence(0, Some(1));
        assert!(g.variable(0).is_evidence());
        g.set_evidence(0, None);
        assert!(!g.variable(0).is_evidence());
    }
}
