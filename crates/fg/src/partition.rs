//! Shard-interface metadata over a factor graph.
//!
//! Given an assignment of every variable to one of `N` shards, each
//! factor is either **interior** (all endpoints on one shard) or
//! **boundary** (spans shards), and each variable is, from a shard's
//! point of view, either **owned** or a **halo** — a read-only replica
//! of a neighbouring shard's variable that a boundary factor needs for
//! conditional computation. The sharded sampler in `sya-shard` consumes
//! this classification to size its halo exchange; the gauges it exports
//! (`shard.boundary_factors`, `shard.halo_bytes`) come straight from
//! here.

use crate::graph::FactorGraph;
use crate::variable::VarId;

/// Per-shard halo/boundary classification of a partitioned graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInterface {
    /// Factors (logical + spatial + region) whose endpoints all live on
    /// one shard.
    pub interior_factors: usize,
    /// Factors spanning at least two shards.
    pub boundary_factors: usize,
    /// Per shard: the halo variables — every variable owned elsewhere
    /// that shares a factor with one of the shard's own variables.
    /// Sorted, deduplicated.
    pub halo: Vec<Vec<VarId>>,
    /// Per shard: how many boundary factors touch it.
    pub boundary_per_shard: Vec<usize>,
}

impl ShardInterface {
    /// Bytes a full halo exchange moves for one shard: one `u32` state
    /// word per halo variable.
    pub fn halo_bytes(&self, shard: usize) -> usize {
        self.halo.get(shard).map_or(0, |h| h.len() * std::mem::size_of::<u32>())
    }

    /// Total halo replicas across all shards.
    pub fn halo_vars_total(&self) -> usize {
        self.halo.iter().map(Vec::len).sum()
    }
}

impl FactorGraph {
    /// Classifies every factor of the graph as interior or boundary
    /// under `owner` (one shard id per variable, each `< shards`) and
    /// collects each shard's halo set.
    ///
    /// # Panics
    /// Panics when `owner` does not cover every variable or names a
    /// shard `>= shards`.
    pub fn shard_interface(&self, owner: &[u32], shards: usize) -> ShardInterface {
        assert_eq!(
            owner.len(),
            self.num_variables(),
            "owner map must cover every variable"
        );
        assert!(
            owner.iter().all(|&s| (s as usize) < shards),
            "owner map names a shard out of range"
        );
        let mut interface = ShardInterface {
            interior_factors: 0,
            boundary_factors: 0,
            halo: vec![Vec::new(); shards],
            boundary_per_shard: vec![0; shards],
        };
        let mut classify = |vars: &mut dyn Iterator<Item = VarId>| {
            let vars: Vec<VarId> = vars.collect();
            let first = match vars.first() {
                Some(&v) => owner[v as usize],
                None => return,
            };
            if vars.iter().all(|&v| owner[v as usize] == first) {
                interface.interior_factors += 1;
                return;
            }
            interface.boundary_factors += 1;
            let mut touched: Vec<u32> = vars.iter().map(|&v| owner[v as usize]).collect();
            touched.sort_unstable();
            touched.dedup();
            for &s in &touched {
                interface.boundary_per_shard[s as usize] += 1;
                // Halo of shard s: the factor's variables owned elsewhere.
                for &v in &vars {
                    if owner[v as usize] != s {
                        interface.halo[s as usize].push(v);
                    }
                }
            }
        };
        for f in self.factors() {
            classify(&mut f.vars.iter().copied());
        }
        for f in self.spatial_factors() {
            classify(&mut [f.a, f.b].into_iter());
        }
        for f in self.region_factors() {
            classify(&mut f.vars.iter().copied());
        }
        for h in &mut interface.halo {
            h.sort_unstable();
            h.dedup();
        }
        interface
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::{Factor, FactorKind};
    use crate::spatial_factor::SpatialFactor;
    use crate::variable::Variable;

    fn line(n: usize) -> FactorGraph {
        let mut g = FactorGraph::new();
        for i in 0..n {
            g.add_variable(Variable::binary(0, format!("v{i}")));
        }
        for i in 0..n - 1 {
            g.add_spatial_factor(SpatialFactor::binary(i as VarId, i as VarId + 1, 1.0));
        }
        g
    }

    #[test]
    fn interior_and_boundary_factors_partition_the_factor_set() {
        // 4 vars in a line, cut down the middle: one boundary factor.
        let g = line(4);
        let iface = g.shard_interface(&[0, 0, 1, 1], 2);
        assert_eq!(iface.interior_factors, 2);
        assert_eq!(iface.boundary_factors, 1);
        assert_eq!(iface.boundary_per_shard, vec![1, 1]);
        // Shard 0's halo is var 2 (owned by 1, adjacent to var 1).
        assert_eq!(iface.halo[0], vec![2]);
        assert_eq!(iface.halo[1], vec![1]);
        assert_eq!(iface.halo_bytes(0), 4);
        assert_eq!(iface.halo_vars_total(), 2);
    }

    #[test]
    fn single_shard_has_no_boundary() {
        let g = line(5);
        let iface = g.shard_interface(&[0; 5], 1);
        assert_eq!(iface.boundary_factors, 0);
        assert_eq!(iface.interior_factors, 4);
        assert!(iface.halo[0].is_empty());
    }

    #[test]
    fn logical_factors_spanning_shards_are_boundary() {
        let mut g = line(3);
        g.add_factor(Factor::new(FactorKind::Imply, vec![0, 2], 1.5));
        let iface = g.shard_interface(&[0, 0, 1], 2);
        // Spatial 1-2 and logical 0-2 span the cut.
        assert_eq!(iface.boundary_factors, 2);
        assert_eq!(iface.halo[0], vec![2]);
        // Shard 1 sees both 0 (logical) and 1 (spatial) as halo.
        assert_eq!(iface.halo[1], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "owner map must cover")]
    fn short_owner_map_panics() {
        line(3).shard_interface(&[0, 0], 2);
    }
}
