//! Factor-graph persistence: the grounding phase is expensive for large
//! knowledge bases, so the ground (spatial) factor graph can be saved
//! after grounding and reloaded for repeated inference runs — the same
//! role DeepDive's on-disk factor-graph files play.

use crate::graph::FactorGraph;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from save/load.
#[derive(Debug)]
pub enum PersistError {
    Io(std::io::Error),
    /// Save-side encoding failure.
    Encode(serde_json::Error),
    /// Load-side failure: the file is not a valid serialized graph —
    /// truncated, bit-flipped, or plain garbage. Carries the byte
    /// offset at which decoding gave up, so operators can tell a
    /// truncation (offset ≈ file size) from corruption in the middle.
    Corrupt {
        offset: usize,
        detail: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "factor graph I/O error: {e}"),
            PersistError::Encode(e) => write!(f, "factor graph encoding error: {e}"),
            PersistError::Corrupt { offset, detail } => write!(
                f,
                "factor graph file is corrupt at byte offset {offset}: {detail}"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Encode(e)
    }
}

/// Classifies a load-side decode failure as corruption, preserving the
/// parser's byte offset.
fn corrupt(e: serde_json::Error) -> PersistError {
    match e {
        serde_json::Error::Syntax { msg, offset } => {
            PersistError::Corrupt { offset, detail: msg }
        }
        // Well-formed JSON that is not a factor graph — still a damaged
        // or foreign file from the loader's point of view, with no
        // meaningful offset.
        serde_json::Error::Data(msg) => PersistError::Corrupt { offset: 0, detail: msg },
        serde_json::Error::Io(e) => PersistError::Io(e),
    }
}

impl FactorGraph {
    /// Serializes the graph as JSON to a writer.
    pub fn save<W: Write>(&self, writer: W) -> Result<(), PersistError> {
        serde_json::to_writer(writer, self)?;
        Ok(())
    }

    /// Deserializes a graph from a JSON reader. Decode failures are
    /// reported as [`PersistError::Corrupt`] with byte-offset context —
    /// on the load side a malformed stream means a damaged file, not an
    /// encoding bug.
    pub fn load<R: Read>(reader: R) -> Result<FactorGraph, PersistError> {
        serde_json::from_reader(reader).map_err(corrupt)
    }

    /// Saves to a file path (buffered).
    pub fn save_to_path(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let file = std::fs::File::create(path)?;
        self.save(BufWriter::new(file))
    }

    /// Loads from a file path (buffered).
    pub fn load_from_path(path: impl AsRef<Path>) -> Result<FactorGraph, PersistError> {
        let file = std::fs::File::open(path)?;
        Self::load(BufReader::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::{Factor, FactorKind};
    use crate::spatial_factor::SpatialFactor;
    use crate::variable::Variable;
    use sya_geom::Point;

    fn graph() -> FactorGraph {
        let mut g = FactorGraph::new();
        let a = g.add_variable(Variable::binary(0, "a").at(Point::new(1.0, 2.0)));
        let b = g.add_variable(Variable::categorical(0, 5, "b").with_evidence(3));
        g.add_factor(Factor::new(FactorKind::Imply, vec![a, b], 0.7));
        g.add_spatial_factor(SpatialFactor::categorical(a, b, 0.4, 1, 1));
        g
    }

    #[test]
    fn round_trips_through_memory() {
        let g = graph();
        let mut buf = Vec::new();
        g.save(&mut buf).unwrap();
        let g2 = FactorGraph::load(buf.as_slice()).unwrap();
        assert_eq!(g2.num_variables(), 2);
        assert_eq!(g2.num_factors(), 1);
        assert_eq!(g2.num_spatial_factors(), 1);
        assert_eq!(g2.variable(1).evidence, Some(3));
        assert_eq!(g2.variable(0).location, Some(Point::new(1.0, 2.0)));
        // Adjacency survives (it is serialized, not rebuilt).
        assert_eq!(g2.factors_of(0), g.factors_of(0));
        assert_eq!(g2.spatial_factors_of(1), g.spatial_factors_of(1));
    }

    #[test]
    fn round_trips_through_a_file() {
        let g = graph();
        let dir = std::env::temp_dir().join("sya_fg_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.json");
        g.save_to_path(&path).unwrap();
        let g2 = FactorGraph::load_from_path(&path).unwrap();
        assert_eq!(g2.num_variables(), g.num_variables());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(FactorGraph::load(&b"not json"[..]).is_err());
        assert!(FactorGraph::load_from_path("/nonexistent/graph.json").is_err());
    }

    #[test]
    fn garbage_is_reported_as_corrupt_not_encode() {
        match FactorGraph::load(&b"not json"[..]) {
            Err(PersistError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // A missing file is an I/O problem, not corruption.
        match FactorGraph::load_from_path("/nonexistent/graph.json") {
            Err(PersistError::Io(_)) => {}
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn truncated_file_is_corrupt_with_offset_near_the_cut() {
        let g = graph();
        let mut buf = Vec::new();
        g.save(&mut buf).unwrap();
        // Cut the serialized graph mid-stream: every prefix must fail as
        // Corrupt, never panic, and point at (or before) the cut.
        for cut in [1, buf.len() / 3, buf.len() / 2, buf.len() - 1] {
            match FactorGraph::load(&buf[..cut]) {
                Err(PersistError::Corrupt { offset, detail }) => {
                    assert!(
                        offset <= cut,
                        "offset {offset} past the {cut}-byte truncation ({detail})"
                    );
                }
                other => panic!("truncation at {cut} gave {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flipped_file_fails_to_load_cleanly() {
        let g = graph();
        let mut buf = Vec::new();
        g.save(&mut buf).unwrap();
        // Structural characters flipped to garbage: decode errors, no
        // panics. (Flips inside numbers can survive as different valid
        // values — that is what the checkpoint layer's CRC is for.)
        let brace = buf.iter().position(|&b| b == b'{').unwrap();
        let mut broken = buf.clone();
        broken[brace] = 0xFF;
        assert!(matches!(
            FactorGraph::load(broken.as_slice()),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn energies_identical_after_round_trip() {
        let g = graph();
        let mut buf = Vec::new();
        g.save(&mut buf).unwrap();
        let g2 = FactorGraph::load(buf.as_slice()).unwrap();
        let assignment = vec![1u32, 3u32];
        assert_eq!(
            crate::energy::log_prob_unnormalized(&g, &assignment),
            crate::energy::log_prob_unnormalized(&g2, &assignment),
        );
    }
}
