//! Spatial weighting functions — the `w` of `@spatial(w)`
//! (paper Section III / IV-A).
//!
//! The weight of a spatial factor is a decreasing function of the
//! distance between its atoms; the paper's default is the *exponential
//! distance weighing* function of GeoDa [Anselin et al.]. All functions
//! are normalized so the weight at distance 0 equals `scale` and decays
//! with the configured bandwidth.

use serde::{Deserialize, Serialize};

/// A distance-decay weighting function.
///
/// ```
/// use sya_fg::WeightingFn;
///
/// let exp = WeightingFn::by_name("exp", 1.0, 10.0).unwrap();
/// assert_eq!(exp.weight(0.0), 1.0);
/// assert!(exp.weight(10.0) < exp.weight(5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WeightingFn {
    /// `w(d) = scale · exp(-d / bandwidth)` — GeoDa-style exponential
    /// distance weighing; the paper's `@spatial(exp)` built-in.
    Exponential { scale: f64, bandwidth: f64 },
    /// `w(d) = scale · exp(-(d / bandwidth)²)` — gaussian kernel.
    Gaussian { scale: f64, bandwidth: f64 },
    /// `w(d) = scale / (1 + d / bandwidth)` — inverse-distance weighing.
    InverseDistance { scale: f64, bandwidth: f64 },
    /// `w(d) = scale · max(0, 1 - d / cutoff)` — linear taper to zero at
    /// the cutoff distance.
    Linear { scale: f64, cutoff: f64 },
}

impl WeightingFn {
    /// The paper's default: exponential with unit scale.
    pub fn default_exp(bandwidth: f64) -> Self {
        WeightingFn::Exponential { scale: 1.0, bandwidth }
    }

    /// Resolves a `@spatial(name)` annotation to a built-in function.
    /// `bandwidth` calibrates the decay to the dataset's spatial extent
    /// (Sya derives it from the rule's distance cutoff, falling back to
    /// the dataset diameter / 10).
    pub fn by_name(name: &str, scale: f64, bandwidth: f64) -> Option<Self> {
        Some(match name {
            "exp" | "exponential" => WeightingFn::Exponential { scale, bandwidth },
            "gauss" | "gaussian" => WeightingFn::Gaussian { scale, bandwidth },
            "invd" | "inverse" | "inverse_distance" => {
                WeightingFn::InverseDistance { scale, bandwidth }
            }
            "linear" => WeightingFn::Linear { scale, cutoff: bandwidth },
            _ => return None,
        })
    }

    /// Evaluates the weight at distance `d >= 0`.
    pub fn weight(&self, d: f64) -> f64 {
        debug_assert!(d >= 0.0, "distance must be non-negative");
        match *self {
            WeightingFn::Exponential { scale, bandwidth } => scale * (-d / bandwidth).exp(),
            WeightingFn::Gaussian { scale, bandwidth } => {
                let t = d / bandwidth;
                scale * (-t * t).exp()
            }
            WeightingFn::InverseDistance { scale, bandwidth } => scale / (1.0 + d / bandwidth),
            WeightingFn::Linear { scale, cutoff } => scale * (1.0 - d / cutoff).max(0.0),
        }
    }

    /// Weights below this are treated as negligible; grounding skips the
    /// corresponding spatial factors to bound graph size.
    pub const NEGLIGIBLE: f64 = 1e-4;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_functions_decay_monotonically() {
        for f in [
            WeightingFn::Exponential { scale: 1.0, bandwidth: 5.0 },
            WeightingFn::Gaussian { scale: 1.0, bandwidth: 5.0 },
            WeightingFn::InverseDistance { scale: 1.0, bandwidth: 5.0 },
            WeightingFn::Linear { scale: 1.0, cutoff: 5.0 },
        ] {
            let mut prev = f.weight(0.0);
            assert!((prev - 1.0).abs() < 1e-12, "weight at 0 must equal scale");
            for step in 1..=20 {
                let w = f.weight(step as f64);
                assert!(w <= prev + 1e-15, "{f:?} not decreasing at d={step}");
                assert!(w >= 0.0);
                prev = w;
            }
        }
    }

    #[test]
    fn exponential_matches_formula() {
        let f = WeightingFn::Exponential { scale: 2.0, bandwidth: 10.0 };
        assert!((f.weight(10.0) - 2.0 * (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn linear_reaches_zero_at_cutoff() {
        let f = WeightingFn::Linear { scale: 1.0, cutoff: 4.0 };
        assert_eq!(f.weight(4.0), 0.0);
        assert_eq!(f.weight(6.0), 0.0);
        assert_eq!(f.weight(2.0), 0.5);
    }

    #[test]
    fn name_resolution() {
        assert!(matches!(
            WeightingFn::by_name("exp", 1.0, 5.0),
            Some(WeightingFn::Exponential { .. })
        ));
        assert!(matches!(
            WeightingFn::by_name("gaussian", 1.0, 5.0),
            Some(WeightingFn::Gaussian { .. })
        ));
        assert!(matches!(
            WeightingFn::by_name("invd", 1.0, 5.0),
            Some(WeightingFn::InverseDistance { .. })
        ));
        assert!(matches!(
            WeightingFn::by_name("linear", 1.0, 5.0),
            Some(WeightingFn::Linear { .. })
        ));
        assert_eq!(WeightingFn::by_name("mystery", 1.0, 5.0), None);
    }
}
