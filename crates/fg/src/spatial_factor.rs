//! Spatial factors — the paper's core modelling contribution
//! (Section IV-A, Definitions 1 and 2).
//!
//! A spatial factor `ρ_{j,k}` correlates two spatial ground atoms of the
//! same `@spatial` variable relation with a weight derived from their
//! distance. In exponential form the factor multiplies straight into the
//! joint distribution, i.e. adds `±w_d` to the log-probability
//! (Equation 3).

use crate::variable::VarId;
use serde::{Deserialize, Serialize};

/// A pairwise spatial factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpatialFactor {
    pub a: VarId,
    pub b: VarId,
    /// The distance-derived weight `w_{d(a,b)}` (already evaluated by the
    /// weighting function at grounding time).
    pub weight: f64,
    /// `None` for binary variables (Definition 1 / Eq. 2).
    /// `Some((t_a, t_b))` for categorical variables (Definition 2 /
    /// Eq. 4): the factor is active only when `a` takes `t_a` and `b`
    /// takes `t_b`.
    pub domain_pair: Option<(u32, u32)>,
}

impl SpatialFactor {
    /// Binary spatial factor (Eq. 2).
    pub fn binary(a: VarId, b: VarId, weight: f64) -> Self {
        SpatialFactor { a, b, weight, domain_pair: None }
    }

    /// Categorical spatial factor over one domain-value pair (Eq. 4).
    pub fn categorical(a: VarId, b: VarId, weight: f64, t_a: u32, t_b: u32) -> Self {
        SpatialFactor { a, b, weight, domain_pair: Some((t_a, t_b)) }
    }

    /// Log-space contribution of this factor under values `va`, `vb`.
    ///
    /// * Binary (Eq. 2): `+w` when `va == vb`, `-w` otherwise —
    ///   favouring spatial clustering.
    /// * Categorical (Eq. 4): active only when both atoms select the
    ///   factor's domain pair; then `+w` when the pair agrees
    ///   (`t_a == t_b`) and `-w` when it disagrees. Inactive factors
    ///   contribute 0 (factor value 1).
    #[inline]
    pub fn energy(&self, va: u32, vb: u32) -> f64 {
        match self.domain_pair {
            None => {
                if va == vb {
                    self.weight
                } else {
                    -self.weight
                }
            }
            Some((ta, tb)) => {
                if va == ta && vb == tb {
                    if ta == tb {
                        self.weight
                    } else {
                        -self.weight
                    }
                } else {
                    0.0
                }
            }
        }
    }

    /// The other endpoint relative to `v`.
    ///
    /// # Panics
    /// Panics when `v` is not an endpoint.
    #[inline]
    pub fn other(&self, v: VarId) -> VarId {
        if v == self.a {
            self.b
        } else {
            debug_assert_eq!(v, self.b, "variable {v} not on this factor");
            self.a
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_favours_agreement() {
        let f = SpatialFactor::binary(0, 1, 0.8);
        assert_eq!(f.energy(1, 1), 0.8);
        assert_eq!(f.energy(0, 0), 0.8);
        assert_eq!(f.energy(1, 0), -0.8);
        assert_eq!(f.energy(0, 1), -0.8);
    }

    #[test]
    fn categorical_same_value_pair_rewards() {
        let f = SpatialFactor::categorical(0, 1, 0.5, 3, 3);
        assert_eq!(f.energy(3, 3), 0.5);
        assert_eq!(f.energy(3, 2), 0.0); // b did not select t_b -> inactive
        assert_eq!(f.energy(0, 0), 0.0);
    }

    #[test]
    fn categorical_cross_value_pair_penalizes() {
        let f = SpatialFactor::categorical(0, 1, 0.5, 2, 7);
        assert_eq!(f.energy(2, 7), -0.5); // active, t_a != t_b
        assert_eq!(f.energy(7, 2), 0.0); // order matters: pair is directed
        assert_eq!(f.energy(2, 2), 0.0);
    }

    #[test]
    fn other_endpoint() {
        let f = SpatialFactor::binary(4, 9, 1.0);
        assert_eq!(f.other(4), 9);
        assert_eq!(f.other(9), 4);
    }
}
