//! Energy (unnormalized log-probability) computations — Equations 1 and 3
//! of the paper — and the local conditionals driving Gibbs sampling.

use crate::graph::{Assignment, FactorGraph};
use crate::variable::VarId;

/// Unnormalized log-probability of a complete assignment (Eq. 3):
/// `Σ_f w_f·1[f satisfied] + Σ_ρ ±w_d`.
pub fn log_prob_unnormalized(graph: &FactorGraph, assignment: &Assignment) -> f64 {
    debug_assert_eq!(assignment.len(), graph.num_variables());
    let value_of = |v: VarId| assignment[v as usize];
    let logical: f64 = graph.factors().iter().map(|f| f.energy(&value_of)).sum();
    let spatial: f64 = graph
        .spatial_factors()
        .iter()
        .map(|s| s.energy(assignment[s.a as usize], assignment[s.b as usize]))
        .sum();
    let region: f64 = graph
        .region_factors()
        .iter()
        .map(|r| r.energy(&value_of))
        .sum();
    logical + spatial + region
}

/// Local energy of variable `v` taking `value`, with the other values
/// supplied by an arbitrary source (a plain assignment slice, or an
/// atomic view during lock-free parallel sampling).
pub fn local_energy_with(
    graph: &FactorGraph,
    value_source: &dyn Fn(VarId) -> u32,
    v: VarId,
    value: u32,
) -> f64 {
    let value_of = |u: VarId| if u == v { value } else { value_source(u) };
    let mut e = 0.0;
    for &fi in graph.factors_of(v) {
        e += graph.factor(fi).energy(&value_of);
    }
    for &si in graph.spatial_factors_of(v) {
        let s = graph.spatial_factor(si);
        e += s.energy(value_of(s.a), value_of(s.b));
    }
    for &ri in graph.region_factors_of(v) {
        e += graph.region_factor(ri).energy(&value_of);
    }
    e
}

/// Local energy of variable `v` taking `value`, holding the rest of the
/// assignment fixed: the sum over factors touching `v` only. Differences
/// of this function across values give the Gibbs conditional.
pub fn local_energy(graph: &FactorGraph, assignment: &Assignment, v: VarId, value: u32) -> f64 {
    local_energy_with(graph, &|u| assignment[u as usize], v, value)
}

/// Gibbs conditional with an arbitrary value source (see
/// [`local_energy_with`]).
pub fn conditional_with(
    graph: &FactorGraph,
    value_source: &dyn Fn(VarId) -> u32,
    v: VarId,
) -> Vec<f64> {
    let h = graph.variable(v).domain.cardinality();
    let energies: Vec<f64> = (0..h)
        .map(|x| local_energy_with(graph, value_source, v, x))
        .collect();
    // Log-sum-exp normalization.
    let max = energies.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut probs: Vec<f64> = energies.iter().map(|e| (e - max).exp()).collect();
    let z: f64 = probs.iter().sum();
    for p in &mut probs {
        *p /= z;
    }
    probs
}

/// `P(v = 1 | rest)` for a *binary* variable — the allocation-free fast
/// path used in samplers' hot loops (`conditional_with` allocates a
/// probability vector per call).
pub fn binary_conditional_true(
    graph: &FactorGraph,
    value_source: &dyn Fn(VarId) -> u32,
    v: VarId,
) -> f64 {
    debug_assert_eq!(graph.variable(v).domain.cardinality(), 2);
    let delta = local_energy_with(graph, value_source, v, 1)
        - local_energy_with(graph, value_source, v, 0);
    1.0 / (1.0 + (-delta).exp())
}

/// The full Gibbs conditional `P(v = x | rest)` over the variable's
/// domain, as a normalized probability vector.
pub fn conditional_distribution(
    graph: &FactorGraph,
    assignment: &Assignment,
    v: VarId,
) -> Vec<f64> {
    conditional_with(graph, &|u| assignment[u as usize], v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::{Factor, FactorKind};
    use crate::spatial_factor::SpatialFactor;
    use crate::variable::Variable;

    /// Two binary vars with an Imply factor and a spatial factor.
    fn two_var_graph(w_imply: f64, w_spatial: f64) -> FactorGraph {
        let mut g = FactorGraph::new();
        let a = g.add_variable(Variable::binary(0, "a"));
        let b = g.add_variable(Variable::binary(0, "b"));
        if w_imply != 0.0 {
            g.add_factor(Factor::new(FactorKind::Imply, vec![a, b], w_imply));
        }
        if w_spatial != 0.0 {
            g.add_spatial_factor(SpatialFactor::binary(a, b, w_spatial));
        }
        g
    }

    #[test]
    fn log_prob_matches_manual_sum() {
        let g = two_var_graph(2.0, 0.5);
        // a=1, b=0: imply unsatisfied (0), spatial disagree (-0.5)
        assert_eq!(log_prob_unnormalized(&g, &vec![1, 0]), -0.5);
        // a=1, b=1: imply satisfied (2.0), spatial agree (+0.5)
        assert_eq!(log_prob_unnormalized(&g, &vec![1, 1]), 2.5);
    }

    #[test]
    fn local_energy_consistent_with_global_difference() {
        let g = two_var_graph(1.3, 0.7);
        let assignment = vec![1u32, 0u32];
        // ΔE from flipping b must match global log-prob difference,
        // because all factors touching b are counted in local_energy.
        let global_diff = log_prob_unnormalized(&g, &vec![1, 1])
            - log_prob_unnormalized(&g, &vec![1, 0]);
        let local_diff = local_energy(&g, &assignment, 1, 1) - local_energy(&g, &assignment, 1, 0);
        assert!((global_diff - local_diff).abs() < 1e-12);
    }

    #[test]
    fn conditional_matches_exact_enumeration() {
        let g = two_var_graph(1.0, 0.4);
        // P(b=1 | a=1) by exact enumeration over b.
        let assignment = vec![1u32, 0u32];
        let probs = conditional_distribution(&g, &assignment, 1);
        let e0 = log_prob_unnormalized(&g, &vec![1, 0]);
        let e1 = log_prob_unnormalized(&g, &vec![1, 1]);
        let want1 = e1.exp() / (e0.exp() + e1.exp());
        assert!((probs[1] - want1).abs() < 1e-12);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conditional_over_categorical_domain() {
        let mut g = FactorGraph::new();
        let a = g.add_variable(Variable::categorical(0, 4, "a"));
        let b = g.add_variable(Variable::categorical(0, 4, "b").with_evidence(2));
        g.add_spatial_factor(SpatialFactor::categorical(a, b, 1.0, 2, 2));
        let assignment = g.initial_assignment();
        let probs = conditional_distribution(&g, &assignment, a);
        assert_eq!(probs.len(), 4);
        // Value 2 activates the agreeing factor: highest probability.
        let best = probs
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 2);
        // All other values have identical probability.
        assert!((probs[0] - probs[1]).abs() < 1e-12);
        assert!((probs[1] - probs[3]).abs() < 1e-12);
    }

    #[test]
    fn spatial_only_graph_prefers_agreement() {
        let g = two_var_graph(0.0, 2.0);
        let probs = conditional_distribution(&g, &vec![1, 0], 1);
        assert!(probs[1] > 0.9, "strong spatial factor should pull b to 1: {probs:?}");
    }

    #[test]
    fn binary_fast_path_matches_general_conditional() {
        let g = two_var_graph(1.1, 0.6);
        for a in [0u32, 1] {
            let assignment = vec![a, 0];
            let probs = conditional_distribution(&g, &assignment, 1);
            let fast = binary_conditional_true(&g, &|u| assignment[u as usize], 1);
            assert!((probs[1] - fast).abs() < 1e-12, "a={a}: {} vs {fast}", probs[1]);
        }
    }

    #[test]
    fn region_factors_enter_the_conditional() {
        use crate::region_factor::RegionFactor;
        let mut g = FactorGraph::new();
        let a = g.add_variable(Variable::binary(0, "a"));
        let b = g.add_variable(Variable::binary(0, "b").with_evidence(1));
        let c = g.add_variable(Variable::binary(0, "c").with_evidence(1));
        g.add_region_factor(RegionFactor::new(vec![a, b, c], 1.5));
        let assignment = g.initial_assignment();
        let probs = conditional_distribution(&g, &assignment, a);
        // Two region-mates at 1: consensus pulls a strongly toward 1.
        assert!(probs[1] > 0.7, "{probs:?}");
        // Global energy sees the region term.
        assert!(
            log_prob_unnormalized(&g, &vec![1, 1, 1])
                > log_prob_unnormalized(&g, &vec![0, 1, 1])
        );
    }

    #[test]
    fn large_energies_do_not_overflow() {
        let g = two_var_graph(800.0, 500.0);
        let probs = conditional_distribution(&g, &vec![1, 0], 1);
        assert!(probs.iter().all(|p| p.is_finite()));
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
