//! Random variables (ground atoms) of the factor graph.

use serde::{Deserialize, Serialize};
use sya_geom::Point;

/// Identifier of a variable within its factor graph (dense, 0-based).
pub type VarId = u32;

/// Domain of a random variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Domain {
    /// Boolean variable taking values `{0, 1}` (false / true).
    Binary,
    /// Categorical variable taking values `0..h` (paper Section IV-A,
    /// "Spatial Factors for Categorical Variables").
    Categorical(u32),
}

impl Domain {
    /// Number of values in the domain.
    pub fn cardinality(&self) -> u32 {
        match self {
            Domain::Binary => 2,
            Domain::Categorical(h) => *h,
        }
    }

    /// True when `value` lies in the domain.
    pub fn contains(&self, value: u32) -> bool {
        value < self.cardinality()
    }
}

/// A ground atom: one random variable of the knowledge base.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Variable {
    pub id: VarId,
    pub domain: Domain,
    /// Location of the underlying entity — `Some` for *spatial ground
    /// atoms* of `@spatial` relations, `None` otherwise.
    pub location: Option<Point>,
    /// Observed value: evidence variables are clamped during sampling.
    pub evidence: Option<u32>,
    /// Human-readable name for result reporting, e.g. `HasEbola(3)`.
    pub name: String,
}

impl Variable {
    /// A binary query (non-evidence) variable.
    pub fn binary(id: VarId, name: impl Into<String>) -> Self {
        Variable { id, domain: Domain::Binary, location: None, evidence: None, name: name.into() }
    }

    /// A categorical query variable with `h` domain values.
    pub fn categorical(id: VarId, h: u32, name: impl Into<String>) -> Self {
        Variable {
            id,
            domain: Domain::Categorical(h),
            location: None,
            evidence: None,
            name: name.into(),
        }
    }

    /// Attaches a location (makes this a spatial ground atom).
    pub fn at(mut self, p: Point) -> Self {
        self.location = Some(p);
        self
    }

    /// Clamps the variable to an observed value.
    ///
    /// # Panics
    /// Panics when `value` is outside the domain.
    pub fn with_evidence(mut self, value: u32) -> Self {
        assert!(self.domain.contains(value), "evidence {value} outside domain");
        self.evidence = Some(value);
        self
    }

    /// True when this variable is observed.
    pub fn is_evidence(&self) -> bool {
        self.evidence.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_cardinality_and_membership() {
        assert_eq!(Domain::Binary.cardinality(), 2);
        assert!(Domain::Binary.contains(1));
        assert!(!Domain::Binary.contains(2));
        let c = Domain::Categorical(10);
        assert_eq!(c.cardinality(), 10);
        assert!(c.contains(9));
        assert!(!c.contains(10));
    }

    #[test]
    fn builders() {
        let v = Variable::binary(3, "HasEbola(3)")
            .at(Point::new(1.0, 2.0))
            .with_evidence(1);
        assert_eq!(v.id, 3);
        assert_eq!(v.location, Some(Point::new(1.0, 2.0)));
        assert!(v.is_evidence());
        assert_eq!(v.evidence, Some(1));
        assert_eq!(v.name, "HasEbola(3)");
    }

    #[test]
    #[should_panic]
    fn out_of_domain_evidence_panics() {
        let _ = Variable::binary(0, "x").with_evidence(2);
    }
}
