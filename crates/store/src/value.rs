//! Cell values and column data types, including the four spatial types.

use serde::{Deserialize, Serialize};
use sya_geom::Geometry;

/// Column data type. The spatial types mirror the paper's Section III
/// extension of the DDlog schema declarations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataType {
    Bool,
    BigInt,
    Double,
    Text,
    Point,
    Rect,
    Polygon,
    LineString,
}

impl DataType {
    /// True for the four spatial types.
    pub fn is_spatial(&self) -> bool {
        matches!(
            self,
            DataType::Point | DataType::Rect | DataType::Polygon | DataType::LineString
        )
    }

    /// The type name as written in Sya DDlog schema declarations.
    pub fn ddlog_name(&self) -> &'static str {
        match self {
            DataType::Bool => "bool",
            DataType::BigInt => "bigint",
            DataType::Double => "double",
            DataType::Text => "text",
            DataType::Point => "point",
            DataType::Rect => "rectangle",
            DataType::Polygon => "polygon",
            DataType::LineString => "linestring",
        }
    }

    /// Parses a DDlog type name.
    pub fn from_ddlog_name(name: &str) -> Option<DataType> {
        Some(match name {
            "bool" | "boolean" => DataType::Bool,
            "bigint" | "int" | "integer" => DataType::BigInt,
            "double" | "float" | "real" => DataType::Double,
            "text" | "varchar" | "string" => DataType::Text,
            "point" => DataType::Point,
            "rectangle" | "rect" => DataType::Rect,
            "polygon" => DataType::Polygon,
            "linestring" => DataType::LineString,
            _ => return None,
        })
    }
}

/// A single cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Double(f64),
    Text(String),
    Geom(Geometry),
}

impl Value {
    /// The value's data type, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        Some(match self {
            Value::Null => return None,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::BigInt,
            Value::Double(_) => DataType::Double,
            Value::Text(_) => DataType::Text,
            Value::Geom(Geometry::Point(_)) => DataType::Point,
            Value::Geom(Geometry::Rect(_)) => DataType::Rect,
            Value::Geom(Geometry::Polygon(_)) => DataType::Polygon,
            Value::Geom(Geometry::LineString(_)) => DataType::LineString,
        })
    }

    /// True when the value is storable in a column of type `ty`
    /// (ints coerce into double columns; `Null` fits anywhere).
    pub fn fits(&self, ty: DataType) -> bool {
        match (self.data_type(), ty) {
            (None, _) => true,
            (Some(DataType::BigInt), DataType::Double) => true,
            (Some(t), u) => t == u,
        }
    }

    /// Numeric view (ints and doubles), used by comparison predicates.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_geom(&self) -> Option<&Geometry> {
        match self {
            Value::Geom(g) => Some(g),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL-style three-valued equality: `Null` compares equal to nothing
    /// (returns `None`); numbers compare across int/double.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        if let (Some(a), Some(b)) = (self.as_f64(), other.as_f64()) {
            return Some(a == b);
        }
        Some(self == other)
    }

    /// SQL-style ordering over comparable values (numbers, text, bools).
    pub fn sql_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        use std::cmp::Ordering;
        if self.is_null() || other.is_null() {
            return None;
        }
        if let (Some(a), Some(b)) = (self.as_f64(), other.as_f64()) {
            return a.partial_cmp(&b);
        }
        match (self, other) {
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
        .map(|o: Ordering| o)
    }

    /// A hash key usable by the equi-join (total over non-geometry values;
    /// doubles are keyed by their bit pattern).
    pub fn join_key(&self) -> Option<JoinKey> {
        Some(match self {
            Value::Null => return None,
            Value::Bool(b) => JoinKey::Bool(*b),
            Value::Int(i) => JoinKey::Int(*i),
            // Key int-valued doubles as ints so Int(2) joins Double(2.0).
            Value::Double(d) => {
                if d.fract() == 0.0 && d.abs() < i64::MAX as f64 {
                    JoinKey::Int(*d as i64)
                } else {
                    JoinKey::DoubleBits(d.to_bits())
                }
            }
            Value::Text(s) => JoinKey::Text(s.clone()),
            Value::Geom(_) => return None,
        })
    }
}

/// Hashable key for equi-joins.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum JoinKey {
    Bool(bool),
    Int(i64),
    DoubleBits(u64),
    Text(String),
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Geom(g) => write!(f, "{}", sya_geom::to_wkt(g)),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(d: f64) -> Self {
        Value::Double(d)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}
impl From<Geometry> for Value {
    fn from(g: Geometry) -> Self {
        Value::Geom(g)
    }
}
impl From<sya_geom::Point> for Value {
    fn from(p: sya_geom::Point) -> Self {
        Value::Geom(Geometry::Point(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sya_geom::Point;

    #[test]
    fn type_round_trip() {
        for ty in [
            DataType::Bool,
            DataType::BigInt,
            DataType::Double,
            DataType::Text,
            DataType::Point,
            DataType::Rect,
            DataType::Polygon,
            DataType::LineString,
        ] {
            assert_eq!(DataType::from_ddlog_name(ty.ddlog_name()), Some(ty));
        }
        assert_eq!(DataType::from_ddlog_name("blob"), None);
    }

    #[test]
    fn spatial_flag() {
        assert!(DataType::Point.is_spatial());
        assert!(DataType::Polygon.is_spatial());
        assert!(!DataType::BigInt.is_spatial());
    }

    #[test]
    fn fits_allows_int_in_double_column() {
        assert!(Value::Int(3).fits(DataType::Double));
        assert!(!Value::Double(3.0).fits(DataType::BigInt));
        assert!(Value::Null.fits(DataType::Point));
        assert!(Value::from(Point::new(0.0, 0.0)).fits(DataType::Point));
        assert!(!Value::from(Point::new(0.0, 0.0)).fits(DataType::Polygon));
    }

    #[test]
    fn sql_eq_three_valued() {
        assert_eq!(Value::Int(2).sql_eq(&Value::Double(2.0)), Some(true));
        assert_eq!(Value::Null.sql_eq(&Value::Int(2)), None);
        assert_eq!(Value::from("a").sql_eq(&Value::from("b")), Some(false));
    }

    #[test]
    fn sql_cmp_numbers_and_text() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Int(1).sql_cmp(&Value::Double(1.5)), Some(Less));
        assert_eq!(Value::from("b").sql_cmp(&Value::from("a")), Some(Greater));
        assert_eq!(Value::from("b").sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn join_keys_unify_int_valued_doubles() {
        assert_eq!(Value::Int(2).join_key(), Value::Double(2.0).join_key());
        assert_ne!(Value::Int(2).join_key(), Value::Double(2.5).join_key());
        assert_eq!(Value::Null.join_key(), None);
        assert_eq!(Value::from(Point::ORIGIN).join_key(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::from("x").to_string(), "'x'");
        assert_eq!(Value::from(Point::new(1.0, 2.0)).to_string(), "POINT(1 2)");
    }
}
