//! # sya-store — embedded in-memory spatial relational engine
//!
//! Sya evaluates grounding rules as (spatial) SQL queries against a
//! relational database with spatial support; the paper uses PostgreSQL +
//! PostGIS (Section IV-B). This crate is the offline substitute: an
//! embedded engine providing exactly the operator set the translated rules
//! need —
//!
//! * typed tables with schemas ([`Table`], [`TableSchema`], [`Value`]),
//! * a scalar expression language with the Sya spatial functions
//!   (`distance`, `within`, `overlaps`, `contains`, `intersects`)
//!   ([`Expr`]),
//! * filtered scans, hash equi-joins, R-tree backed **spatial distance
//!   joins** and **range queries** ([`query`]),
//! * the heuristic optimizer that re-orders spatial predicates so cheap
//!   selective filters run before expensive joins (paper Fig. 5 example)
//!   ([`planner`]),
//! * co-occurrence statistics over evidence columns, feeding the spatial
//!   factor pruning of Section IV-C ([`stats`]).
//!
//! The engine is deliberately small but real: every operator is exercised
//! by the grounding module and covered by correctness tests against
//! brute-force evaluation.

pub mod csv;
pub mod database;
pub mod expr;
pub mod planner;
pub mod query;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use csv::{parse_cell, read_csv_into, split_csv_line, write_csv, CsvError};
pub use database::Database;
pub use expr::{expr_columns, BinOp, Expr, SpatialFn};
pub use planner::{estimate_cost, order_predicates};
pub use query::{hash_join, range_query, spatial_distance_join, JoinSide};
pub use schema::{Column, TableSchema};
pub use stats::CoOccurrence;
pub use table::{Row, Table};
pub use value::{DataType, JoinKey, Value};

/// Errors surfaced by the storage engine.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Referenced table does not exist.
    UnknownTable(String),
    /// Referenced column does not exist in the schema.
    UnknownColumn(String),
    /// A table with this name already exists.
    DuplicateTable(String),
    /// Row arity or value type does not match the schema.
    TypeMismatch { expected: String, got: String },
    /// Expression evaluation failed (e.g. spatial fn on non-geometry).
    Eval(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            StoreError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            StoreError::DuplicateTable(t) => write!(f, "table already exists: {t}"),
            StoreError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            StoreError::Eval(msg) => write!(f, "evaluation error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}
