//! Co-occurrence statistics over evidence data (paper Section IV-C).
//!
//! For a categorical spatial variable with domain values `0..h`, Sya
//! prunes spatial factors over a value pair `(i, j)` unless the pair
//! co-occurs in the evidence data with conditional probabilities
//! `P(i|j)` **and** `P(j|i)` above a threshold `T`. This module computes
//! those probabilities from observed neighbouring evidence pairs.

use std::collections::HashMap;

/// Accumulates counts of domain values and co-occurring value pairs, then
/// answers the Bayesian pruning test of Section IV-C.
#[derive(Debug, Clone, Default)]
pub struct CoOccurrence {
    /// `count[i]` — occurrences of value `i` in the evidence data.
    value_counts: HashMap<u32, u64>,
    /// `pair[(min,max)]` — co-occurrences of the unordered pair.
    pair_counts: HashMap<(u32, u32), u64>,
    /// `involved[i]` — co-occurrence events involving value `i`.
    pair_involvement: HashMap<u32, u64>,
    total_pairs: u64,
}

impl CoOccurrence {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one evidence observation of value `v`.
    pub fn observe_value(&mut self, v: u32) {
        *self.value_counts.entry(v).or_insert(0) += 1;
    }

    /// Records a co-occurrence of values `i` and `j` (e.g. at two
    /// neighbouring evidence locations). Order-insensitive.
    pub fn observe_pair(&mut self, i: u32, j: u32) {
        let key = (i.min(j), i.max(j));
        *self.pair_counts.entry(key).or_insert(0) += 1;
        *self.pair_involvement.entry(i).or_insert(0) += 1;
        if i != j {
            *self.pair_involvement.entry(j).or_insert(0) += 1;
        }
        self.total_pairs += 1;
    }

    /// Occurrences of value `i`.
    pub fn count(&self, i: u32) -> u64 {
        self.value_counts.get(&i).copied().unwrap_or(0)
    }

    /// Co-occurrences of the unordered pair `(i, j)`.
    pub fn pair_count(&self, i: u32, j: u32) -> u64 {
        self.pair_counts
            .get(&(i.min(j), i.max(j)))
            .copied()
            .unwrap_or(0)
    }

    /// `P(i|j)` — the probability that a co-occurrence involving `j` has
    /// `i` on the other side: (co-occurrences of i and j) / (co-occurrence
    /// events involving j). Returns 0 when `j` never co-occurs.
    ///
    /// The paper's formula divides by "no. of j appears in evidence
    /// data"; normalizing over j's *co-occurrence appearances* keeps the
    /// statistic independent of how many isolated (pair-less) evidence
    /// entries exist, which matters at low evidence density.
    pub fn conditional(&self, i: u32, j: u32) -> f64 {
        let denom = self.pair_involvement.get(&j).copied().unwrap_or(0);
        if denom == 0 {
            return 0.0;
        }
        self.pair_count(i, j) as f64 / denom as f64
    }

    /// The pruning test: keep spatial factors over the pair `(i, j)` only
    /// when both `P(i|j) >= t` and `P(j|i) >= t`.
    pub fn passes_threshold(&self, i: u32, j: u32, t: f64) -> bool {
        self.conditional(i, j) >= t && self.conditional(j, i) >= t
    }

    /// All distinct values observed.
    pub fn values(&self) -> impl Iterator<Item = u32> + '_ {
        self.value_counts.keys().copied()
    }

    /// Number of recorded pairs.
    pub fn total_pairs(&self) -> u64 {
        self.total_pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CoOccurrence {
        let mut c = CoOccurrence::new();
        // values: 0 appears 4x, 1 appears 2x, 2 appears 1x
        for v in [0, 0, 0, 0, 1, 1, 2] {
            c.observe_value(v);
        }
        // pairs: (0,0) 3x, (0,1) 2x, (1,2) 1x
        for (i, j) in [(0, 0), (0, 0), (0, 0), (0, 1), (1, 0), (1, 2)] {
            c.observe_pair(i, j);
        }
        c
    }

    #[test]
    fn counts() {
        let c = sample();
        assert_eq!(c.count(0), 4);
        assert_eq!(c.count(3), 0);
        assert_eq!(c.pair_count(0, 1), 2);
        assert_eq!(c.pair_count(1, 0), 2); // symmetric
        assert_eq!(c.total_pairs(), 6);
    }

    #[test]
    fn conditionals() {
        let c = sample();
        // Co-occurrence events involving 1: two (0,1) pairs + one (1,2)
        // pair = 3; P(0|1) = 2/3.
        assert!((c.conditional(0, 1) - 2.0 / 3.0).abs() < 1e-12);
        // Events involving 0: three (0,0) + two (0,1) = 5; P(1|0) = 2/5.
        assert!((c.conditional(1, 0) - 0.4).abs() < 1e-12);
        // unseen value
        assert_eq!(c.conditional(0, 9), 0.0);
    }

    #[test]
    fn threshold_requires_both_directions() {
        let c = sample();
        assert!(c.passes_threshold(0, 1, 0.4)); // 2/3 and 2/5
        assert!(!c.passes_threshold(0, 1, 0.5)); // P(1|0)=0.4 < 0.5
        assert!(!c.passes_threshold(0, 9, 0.1)); // unseen pair
    }

    #[test]
    fn higher_threshold_prunes_more() {
        let c = sample();
        let kept = |t: f64| -> usize {
            let vals: Vec<u32> = (0..3).collect();
            let mut n = 0;
            for &i in &vals {
                for &j in &vals {
                    if i <= j && c.passes_threshold(i, j, t) {
                        n += 1;
                    }
                }
            }
            n
        };
        assert!(kept(0.3) >= kept(0.5));
        assert!(kept(0.5) >= kept(0.9));
    }
}
