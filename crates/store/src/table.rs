//! In-memory tables with optional on-the-fly R-tree spatial indexes
//! (paper Section IV-B, optimization 1).

use crate::schema::TableSchema;
use crate::value::Value;
use crate::StoreError;
use sya_geom::{Point, RTree, Rect};
use sya_obs::{Counter, Obs};

/// A row is a boxed slice of values matching the table schema.
pub type Row = Vec<Value>;

/// An in-memory table: schema + rows + lazily built spatial index.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: TableSchema,
    rows: Vec<Row>,
    /// R-tree over one spatial column: `(column index, index over row ids)`.
    /// Invalidated (dropped) on mutation.
    spatial_index: Option<(usize, RTree<usize>)>,
    /// Observability handle (disabled unless attached via the database).
    obs: Obs,
    /// Counter handles resolved at attach time so the per-probe hot path
    /// (`rows_within_distance` inside the grounder's binding loop) pays
    /// one relaxed atomic add, never a registry lock.
    ctr_spatial_queries: Counter,
    ctr_rows_fetched: Counter,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: TableSchema) -> Self {
        let obs = Obs::disabled();
        let ctr_spatial_queries = obs.counter("store.spatial_queries_total");
        let ctr_rows_fetched = obs.counter("store.rows_fetched_total");
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
            spatial_index: None,
            obs,
            ctr_spatial_queries,
            ctr_rows_fetched,
        }
    }

    /// Attaches an observability handle; index builds and queries on
    /// this table record `store.*` metrics through it.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.ctr_spatial_queries = obs.counter("store.spatial_queries_total");
        self.ctr_rows_fetched = obs.counter("store.rows_fetched_total");
        self.obs = obs;
    }

    /// The table's observability handle (disabled by default).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a row after checking arity and per-column type fit.
    pub fn insert(&mut self, row: Row) -> Result<(), StoreError> {
        self.check_row(&row)?;
        self.spatial_index = None;
        self.rows.push(row);
        Ok(())
    }

    /// Bulk insert; stops at the first bad row.
    pub fn insert_all(&mut self, rows: impl IntoIterator<Item = Row>) -> Result<(), StoreError> {
        for r in rows {
            self.insert(r)?;
        }
        Ok(())
    }

    /// Value at `(row, column name)`.
    pub fn value(&self, row: usize, column: &str) -> Result<&Value, StoreError> {
        let c = self
            .schema
            .index_of(column)
            .ok_or_else(|| StoreError::UnknownColumn(column.to_owned()))?;
        Ok(&self.rows[row][c])
    }

    /// Builds (or returns the cached) R-tree over the given spatial
    /// column. Rows whose value is `Null` or non-geometry are skipped.
    pub fn spatial_index(&mut self, column: &str) -> Result<&RTree<usize>, StoreError> {
        let col = self
            .schema
            .index_of(column)
            .ok_or_else(|| StoreError::UnknownColumn(column.to_owned()))?;
        let stale = match &self.spatial_index {
            Some((c, _)) => *c != col,
            None => true,
        };
        if stale {
            let mut span = self.obs.span_with(
                "store.spatial_index_build",
                vec![("table".to_string(), self.name.clone())],
            );
            let items: Vec<(Rect, usize)> = self
                .rows
                .iter()
                .enumerate()
                .filter_map(|(i, row)| row[col].as_geom().map(|g| (g.bbox(), i)))
                .collect();
            span.set_attr("rows", items.len());
            self.obs.counter_add("store.spatial_index_builds_total", 1);
            self.obs.counter_add("store.spatial_index_rows_total", items.len() as u64);
            self.spatial_index = Some((col, RTree::bulk_load(items)));
        }
        Ok(&self.spatial_index.as_ref().expect("just built").1)
    }

    /// Row ids whose geometry in `column` lies within `radius` of `center`
    /// (uses the spatial index).
    pub fn rows_within_distance(
        &mut self,
        column: &str,
        center: &Point,
        radius: f64,
    ) -> Result<Vec<usize>, StoreError> {
        let rows = self.spatial_index(column)?.within_distance(center, radius);
        self.ctr_spatial_queries.inc();
        self.ctr_rows_fetched.add(rows.len() as u64);
        Ok(rows)
    }

    /// The point value of the first spatial column for `row`, if present.
    pub fn point_of(&self, row: usize) -> Option<Point> {
        let col = self.schema.first_spatial_column()?;
        self.rows[row][col].as_geom().map(|g| g.representative_point())
    }

    /// Checks a row against the schema (arity + per-column type fit)
    /// without inserting it — the same validation `insert` applies.
    pub fn check_row(&self, row: &[Value]) -> Result<(), StoreError> {
        if row.len() != self.schema.arity() {
            return Err(StoreError::TypeMismatch {
                expected: format!("{} columns", self.schema.arity()),
                got: format!("{} values", row.len()),
            });
        }
        for (v, c) in row.iter().zip(self.schema.columns()) {
            if !v.fits(c.ty) {
                return Err(StoreError::TypeMismatch {
                    expected: format!("{} for column {:?}", c.ty.ddlog_name(), c.name),
                    got: format!("{v}"),
                });
            }
        }
        Ok(())
    }

    /// Row ids whose values equal `row` exactly (full-row equality).
    pub fn find_rows(&self, row: &[Value]) -> Vec<usize> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.as_slice() == row)
            .map(|(i, _)| i)
            .collect()
    }

    /// Deletes the given row ids, preserving the order of survivors
    /// and invalidating the spatial index. Out-of-range ids are
    /// ignored. Returns the number of rows removed.
    pub fn remove_rows(&mut self, remove: &[usize]) -> usize {
        if remove.is_empty() {
            return 0;
        }
        let dead: std::collections::HashSet<usize> = remove.iter().copied().collect();
        let before = self.rows.len();
        let mut i = 0usize;
        self.rows.retain(|_| {
            let keep = !dead.contains(&i);
            i += 1;
            keep
        });
        let removed = before - self.rows.len();
        if removed > 0 {
            self.spatial_index = None;
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;
    use sya_geom::Point;

    fn well_table() -> Table {
        let schema = TableSchema::new(vec![
            Column::new("id", DataType::BigInt),
            Column::new("location", DataType::Point),
            Column::new("arsenic_ratio", DataType::Double),
        ]);
        let mut t = Table::new("Well", schema);
        for i in 0..10i64 {
            t.insert(vec![
                Value::Int(i),
                Value::from(Point::new(i as f64, 0.0)),
                Value::Double(0.1 * i as f64),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn insert_checks_arity_and_types() {
        let mut t = well_table();
        assert!(t.insert(vec![Value::Int(1)]).is_err());
        assert!(t
            .insert(vec![Value::Int(1), Value::from("oops"), Value::Double(0.0)])
            .is_err());
        // Int fits a double column.
        assert!(t
            .insert(vec![Value::Int(99), Value::from(Point::ORIGIN), Value::Int(1)])
            .is_ok());
    }

    #[test]
    fn value_lookup() {
        let t = well_table();
        assert_eq!(t.value(3, "id").unwrap(), &Value::Int(3));
        assert!(t.value(0, "nope").is_err());
    }

    #[test]
    fn spatial_index_finds_neighbours() {
        let mut t = well_table();
        let mut ids = t
            .rows_within_distance("location", &Point::new(5.0, 0.0), 1.5)
            .unwrap();
        ids.sort_unstable();
        assert_eq!(ids, vec![4, 5, 6]);
    }

    #[test]
    fn spatial_index_invalidated_on_insert() {
        let mut t = well_table();
        let _ = t.spatial_index("location").unwrap();
        t.insert(vec![
            Value::Int(100),
            Value::from(Point::new(5.0, 0.1)),
            Value::Double(0.0),
        ])
        .unwrap();
        let ids = t
            .rows_within_distance("location", &Point::new(5.0, 0.0), 0.5)
            .unwrap();
        assert!(ids.contains(&10), "new row must be visible: {ids:?}");
    }

    #[test]
    fn null_geometries_are_skipped_by_index() {
        let mut t = well_table();
        t.insert(vec![Value::Int(11), Value::Null, Value::Double(0.0)])
            .unwrap();
        let idx = t.spatial_index("location").unwrap();
        assert_eq!(idx.len(), 10); // null row not indexed
    }

    #[test]
    fn point_of_uses_first_spatial_column() {
        let t = well_table();
        assert_eq!(t.point_of(2), Some(Point::new(2.0, 0.0)));
    }

    #[test]
    fn remove_rows_deletes_and_invalidates_index() {
        let mut t = well_table();
        let _ = t.spatial_index("location").unwrap();
        let hits = t.find_rows(&[
            Value::Int(5),
            Value::from(Point::new(5.0, 0.0)),
            Value::Double(0.5),
        ]);
        assert_eq!(hits, vec![5]);
        assert_eq!(t.remove_rows(&hits), 1);
        assert_eq!(t.len(), 9);
        // Survivor order preserved; index rebuilt without the row.
        assert_eq!(t.value(5, "id").unwrap(), &Value::Int(6));
        let ids = t
            .rows_within_distance("location", &Point::new(5.0, 0.0), 0.5)
            .unwrap();
        assert!(ids.is_empty(), "deleted row must not be found: {ids:?}");
        // Out-of-range and repeated removals are harmless.
        assert_eq!(t.remove_rows(&[99]), 0);
        assert_eq!(t.remove_rows(&[]), 0);
    }

    #[test]
    fn check_row_matches_insert_validation() {
        let t = well_table();
        assert!(t.check_row(&[Value::Int(1)]).is_err());
        assert!(t
            .check_row(&[Value::Int(1), Value::from("oops"), Value::Double(0.0)])
            .is_err());
        assert!(t
            .check_row(&[Value::Int(1), Value::from(Point::ORIGIN), Value::Int(2)])
            .is_ok());
    }

    #[test]
    fn attached_obs_records_store_metrics() {
        let obs = Obs::enabled();
        let mut t = well_table();
        t.attach_obs(obs.clone());
        let ids = t.rows_within_distance("location", &Point::new(5.0, 0.0), 1.5).unwrap();
        let m = obs.metrics().unwrap();
        assert_eq!(m.counter_value("store.spatial_index_builds_total"), Some(1));
        assert_eq!(m.counter_value("store.spatial_index_rows_total"), Some(10));
        assert_eq!(m.counter_value("store.spatial_queries_total"), Some(1));
        assert_eq!(m.counter_value("store.rows_fetched_total"), Some(ids.len() as u64));
        assert!(obs
            .trace_snapshot()
            .spans
            .iter()
            .any(|s| s.name == "store.spatial_index_build"));
        // Cached index: a second query builds no new index.
        let _ = t.rows_within_distance("location", &Point::new(5.0, 0.0), 1.5).unwrap();
        assert_eq!(m.counter_value("store.spatial_index_builds_total"), Some(1));
    }
}
