//! Minimal CSV import/export for tables — the input path of the `sya`
//! command-line tool. Quoting follows RFC 4180 (double quotes, doubled
//! escapes); geometry cells are WKT.

use crate::table::Table;
use crate::value::{DataType, Value};
use crate::StoreError;
use std::io::{BufRead, Write};

/// CSV-layer errors, wrapping storage errors with row context. Every
/// malformed data row is a hard error carrying its 1-based line number
/// (the header is line 1) — a bad row never silently disappears into a
/// run that then reports scores with full confidence.
#[derive(Debug)]
pub enum CsvError {
    Io(std::io::Error),
    /// `(line number, message)` — header/structure problems.
    Parse(usize, String),
    /// A data row whose field count differs from the header's.
    Arity { line: usize, expected: usize, got: usize },
    /// A cell that does not parse as its column's declared type.
    BadValue { line: usize, column: String, message: String },
    Store(StoreError),
}

impl CsvError {
    /// The 1-based line the error points at, when it has one.
    pub fn line(&self) -> Option<usize> {
        match self {
            CsvError::Parse(line, _)
            | CsvError::Arity { line, .. }
            | CsvError::BadValue { line, .. } => Some(*line),
            CsvError::Io(_) | CsvError::Store(_) => None,
        }
    }
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv I/O error: {e}"),
            CsvError::Parse(line, msg) => write!(f, "csv parse error at line {line}: {msg}"),
            CsvError::Arity { line, expected, got } => write!(
                f,
                "csv arity error at line {line}: row has {got} fields, header declares {expected}"
            ),
            CsvError::BadValue { line, column, message } => write!(
                f,
                "csv value error at line {line}: column {column:?}: {message}"
            ),
            CsvError::Store(e) => write!(f, "csv row rejected: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl From<StoreError> for CsvError {
    fn from(e: StoreError) -> Self {
        CsvError::Store(e)
    }
}

/// Splits one CSV record into fields (RFC 4180 quoting).
pub fn split_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Renders one field with quoting when needed.
fn render_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Parses a cell into a [`Value`] of the given type. Empty cells are
/// `Null`; geometry cells are WKT (bare `x y` pairs are also accepted
/// for point columns).
pub fn parse_cell(cell: &str, ty: DataType) -> Result<Value, String> {
    let s = cell.trim();
    if s.is_empty() {
        return Ok(Value::Null);
    }
    Ok(match ty {
        DataType::Bool => match s.to_ascii_lowercase().as_str() {
            "true" | "t" | "1" | "yes" => Value::Bool(true),
            "false" | "f" | "0" | "no" => Value::Bool(false),
            other => return Err(format!("invalid bool {other:?}")),
        },
        DataType::BigInt => Value::Int(s.parse().map_err(|e| format!("invalid int: {e}"))?),
        DataType::Double => {
            Value::Double(s.parse().map_err(|e| format!("invalid double: {e}"))?)
        }
        DataType::Text => Value::Text(s.to_owned()),
        DataType::Point | DataType::Rect | DataType::Polygon | DataType::LineString => {
            // Accept WKT, or a bare "x y" pair for points.
            match sya_geom::parse_wkt(s) {
                Ok(g) => Value::Geom(g),
                Err(e) => {
                    if ty == DataType::Point {
                        let parts: Vec<&str> = s.split_whitespace().collect();
                        if let [x, y] = parts.as_slice() {
                            if let (Ok(x), Ok(y)) = (x.parse(), y.parse()) {
                                return Ok(Value::from(sya_geom::Point::new(x, y)));
                            }
                        }
                    }
                    return Err(e.to_string());
                }
            }
        }
    })
}

/// Reads CSV rows into `table`. The header must name the schema's columns
/// (any order); extra header columns are ignored, but every data row must
/// carry exactly the header's field count — a short or long row is an
/// [`CsvError::Arity`] error, a cell that does not parse as its column's
/// declared type a [`CsvError::BadValue`], both with the 1-based line.
pub fn read_csv_into(table: &mut Table, reader: impl BufRead) -> Result<usize, CsvError> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| CsvError::Parse(1, "missing header".into()))??;
    let names = split_csv_line(&header);
    let schema = table.schema().clone();
    // Map each schema column to its CSV position.
    let mut positions = Vec::with_capacity(schema.arity());
    for col in schema.columns() {
        let pos = names
            .iter()
            .position(|n| n.trim() == col.name)
            .ok_or_else(|| CsvError::Parse(1, format!("missing column {:?}", col.name)))?;
        positions.push(pos);
    }

    let mut inserted = 0usize;
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_csv_line(&line);
        if fields.len() != names.len() {
            return Err(CsvError::Arity {
                line: line_no,
                expected: names.len(),
                got: fields.len(),
            });
        }
        let mut row = Vec::with_capacity(schema.arity());
        for (c, &pos) in positions.iter().enumerate() {
            let col = &schema.columns()[c];
            row.push(parse_cell(&fields[pos], col.ty).map_err(|message| {
                CsvError::BadValue { line: line_no, column: col.name.clone(), message }
            })?);
        }
        table.insert(row)?;
        inserted += 1;
    }
    Ok(inserted)
}

/// Writes `rows` of `(header, record)` data as CSV.
pub fn write_csv(
    mut writer: impl Write,
    header: &[&str],
    rows: impl IntoIterator<Item = Vec<String>>,
) -> Result<(), CsvError> {
    let head: Vec<String> = header.iter().map(|h| render_field(h)).collect();
    writeln!(writer, "{}", head.join(","))?;
    for row in rows {
        let fields: Vec<String> = row.iter().map(|f| render_field(f)).collect();
        writeln!(writer, "{}", fields.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use sya_geom::Point;

    fn schema() -> TableSchema {
        TableSchema::new(vec![
            Column::new("id", DataType::BigInt),
            Column::new("location", DataType::Point),
            Column::new("arsenic", DataType::Double),
            Column::new("name", DataType::Text),
            Column::new("active", DataType::Bool),
        ])
    }

    #[test]
    fn reads_typed_rows_with_reordered_header() {
        let csv = "\
name,id,arsenic,location,active,extra
\"well, one\",1,0.25,POINT(1 2),true,ignored
two,2,,\"3 4\",no,x
";
        let mut t = Table::new("Well", schema());
        let n = read_csv_into(&mut t, csv.as_bytes()).unwrap();
        assert_eq!(n, 2);
        assert_eq!(t.value(0, "name").unwrap(), &Value::from("well, one"));
        assert_eq!(t.value(0, "id").unwrap(), &Value::Int(1));
        assert_eq!(t.value(0, "location").unwrap(), &Value::from(Point::new(1.0, 2.0)));
        assert_eq!(t.value(0, "active").unwrap(), &Value::Bool(true));
        // Empty cell -> Null; bare "x y" point form; "no" -> false.
        assert_eq!(t.value(1, "arsenic").unwrap(), &Value::Null);
        assert_eq!(t.value(1, "location").unwrap(), &Value::from(Point::new(3.0, 4.0)));
        assert_eq!(t.value(1, "active").unwrap(), &Value::Bool(false));
    }

    #[test]
    fn bad_typed_value_is_a_typed_error_with_line_and_column() {
        let csv = "id,location,arsenic,name,active\n\
                   1,POINT(0 0),0.5,ok,true\n\
                   2,POINT(1 1),bad,\u{78},true\n";
        let mut t = Table::new("Well", schema());
        match read_csv_into(&mut t, csv.as_bytes()) {
            Err(ref e @ CsvError::BadValue { line: 3, ref column, ref message }) => {
                assert_eq!(column, "arsenic");
                assert!(message.contains("double"), "{message}");
                assert_eq!(e.line(), Some(3));
                assert!(e.to_string().contains("line 3"), "{e}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wrong_arity_rows_are_typed_errors_never_skipped() {
        let mut t = Table::new("Well", schema());
        // Short row: fewer fields than the header declares.
        let short = "id,location,arsenic,name,active\n1,POINT(0 0),0.1\n";
        match read_csv_into(&mut t, short.as_bytes()) {
            Err(e @ CsvError::Arity { line: 2, expected: 5, got: 3 }) => {
                assert_eq!(e.line(), Some(2));
                assert!(e.to_string().contains("line 2"), "{e}");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(t.len(), 0, "the bad row must not be half-inserted");
        // Long row, after a valid one: the line number points at it.
        let long = "id,location,arsenic,name,active\n\
                    1,POINT(0 0),0.1,a,true\n\
                    2,POINT(1 1),0.2,b,false,surprise\n";
        let mut t = Table::new("Well", schema());
        match read_csv_into(&mut t, long.as_bytes()) {
            Err(CsvError::Arity { line: 3, expected: 5, got: 6 }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_schema_column_is_reported() {
        let csv = "id,location\n";
        let mut t = Table::new("Well", schema());
        match read_csv_into(&mut t, csv.as_bytes()) {
            Err(CsvError::Parse(1, msg)) => assert!(msg.contains("arsenic"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn quoting_round_trips() {
        assert_eq!(
            split_csv_line("a,\"b,c\",\"d\"\"e\",f"),
            vec!["a", "b,c", "d\"e", "f"]
        );
        let mut out = Vec::new();
        write_csv(
            &mut out,
            &["x", "y"],
            vec![vec!["plain".into(), "with,comma".into()], vec!["q\"q".into(), "".into()]],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text, "x,y\nplain,\"with,comma\"\n\"q\"\"q\",\n");
        // And the written form re-parses.
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(split_csv_line(lines[1]), vec!["plain", "with,comma"]);
        assert_eq!(split_csv_line(lines[2]), vec!["q\"q", ""]);
    }

    #[test]
    fn parse_cell_geometry_forms() {
        assert!(matches!(
            parse_cell("POLYGON((0 0, 1 0, 1 1, 0 0))", DataType::Polygon),
            Ok(Value::Geom(_))
        ));
        assert!(parse_cell("not wkt", DataType::Polygon).is_err());
        assert!(parse_cell("1 2 3", DataType::Point).is_err());
        assert_eq!(parse_cell("  ", DataType::Point).unwrap(), Value::Null);
    }
}
