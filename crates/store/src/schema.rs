//! Table schemas: named, typed columns with spatial-attribute awareness.

use crate::value::DataType;
use serde::{Deserialize, Serialize};

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    pub name: String,
    pub ty: DataType,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Column { name: name.into(), ty }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    columns: Vec<Column>,
}

impl TableSchema {
    /// Builds a schema; column names must be unique.
    ///
    /// # Panics
    /// Panics on duplicate column names (schemas are constructed from
    /// validated DDlog declarations, so duplicates are a programmer bug).
    pub fn new(columns: Vec<Column>) -> Self {
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate column name {:?}", a.name);
            }
        }
        TableSchema { columns }
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Type of the column at `idx`.
    pub fn type_at(&self, idx: usize) -> Option<DataType> {
        self.columns.get(idx).map(|c| c.ty)
    }

    /// Index of the first spatial column, if any — the attribute the
    /// `@spatial` annotation binds to.
    pub fn first_spatial_column(&self) -> Option<usize> {
        self.columns.iter().position(|c| c.ty.is_spatial())
    }

    /// True when at least one column is spatial.
    pub fn has_spatial_column(&self) -> bool {
        self.first_spatial_column().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(vec![
            Column::new("id", DataType::BigInt),
            Column::new("location", DataType::Point),
            Column::new("arsenic_ratio", DataType::Double),
        ])
    }

    #[test]
    fn lookup_by_name_and_index() {
        let s = schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("location"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.type_at(2), Some(DataType::Double));
        assert_eq!(s.type_at(9), None);
    }

    #[test]
    fn spatial_column_detection() {
        let s = schema();
        assert!(s.has_spatial_column());
        assert_eq!(s.first_spatial_column(), Some(1));
        let plain = TableSchema::new(vec![Column::new("id", DataType::BigInt)]);
        assert!(!plain.has_spatial_column());
    }

    #[test]
    #[should_panic]
    fn duplicate_columns_panic() {
        TableSchema::new(vec![
            Column::new("id", DataType::BigInt),
            Column::new("id", DataType::Text),
        ]);
    }
}
