//! Physical query operators: filtered scan, hash equi-join, spatial
//! distance join, and spatial range query.
//!
//! These are the operators the rules-queries translator emits (paper
//! Section IV-B): non-spatial rule bodies become scans + equi-joins;
//! spatial predicates become spatial joins and range queries.

use crate::expr::Expr;
use crate::table::{Row, Table};
use crate::StoreError;
use std::collections::HashMap;

/// Which side of a join a column comes from when building join keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinSide {
    Left,
    Right,
}

/// Scans `table`, returning ids of rows matching `filter` (all rows when
/// `filter` is `None`).
pub fn scan_filter(table: &Table, filter: Option<&Expr>) -> Result<Vec<usize>, StoreError> {
    let mut out = Vec::new();
    for (i, row) in table.rows().iter().enumerate() {
        match filter {
            None => out.push(i),
            Some(f) => {
                if f.matches(row)? {
                    out.push(i);
                }
            }
        }
    }
    table.obs().counter_add("store.scans_total", 1);
    table.obs().counter_add("store.rows_scanned_total", table.len() as u64);
    Ok(out)
}

/// Hash equi-join of two row-id sets on `left.col == right.col` pairs,
/// with an optional residual predicate over the concatenated row
/// (left columns first, then right columns).
///
/// Returns pairs of row ids `(left, right)`.
pub fn hash_join(
    left: &Table,
    left_rows: &[usize],
    right: &Table,
    right_rows: &[usize],
    key_cols: &[(usize, usize)],
    residual: Option<&Expr>,
) -> Result<Vec<(usize, usize)>, StoreError> {
    // Build on the smaller side.
    let build_left = left_rows.len() <= right_rows.len();
    let mut table_map: HashMap<Vec<crate::value::JoinKey>, Vec<usize>> = HashMap::new();

    let (build_tab, build_rows, probe_tab, probe_rows) = if build_left {
        (left, left_rows, right, right_rows)
    } else {
        (right, right_rows, left, left_rows)
    };
    let build_cols: Vec<usize> = key_cols
        .iter()
        .map(|&(l, r)| if build_left { l } else { r })
        .collect();
    let probe_cols: Vec<usize> = key_cols
        .iter()
        .map(|&(l, r)| if build_left { r } else { l })
        .collect();

    'rows: for &rid in build_rows {
        let row = &build_tab.rows()[rid];
        let mut key = Vec::with_capacity(build_cols.len());
        for &c in &build_cols {
            match row
                .get(c)
                .ok_or_else(|| StoreError::Eval(format!("join key column {c} out of range")))?
                .join_key()
            {
                Some(k) => key.push(k),
                None => continue 'rows, // nulls never join
            }
        }
        table_map.entry(key).or_default().push(rid);
    }

    let mut out = Vec::new();
    let mut concat: Row = Vec::with_capacity(left.schema().arity() + right.schema().arity());
    'probe: for &rid in probe_rows {
        let row = &probe_tab.rows()[rid];
        let mut key = Vec::with_capacity(probe_cols.len());
        for &c in &probe_cols {
            match row
                .get(c)
                .ok_or_else(|| StoreError::Eval(format!("join key column {c} out of range")))?
                .join_key()
            {
                Some(k) => key.push(k),
                None => continue 'probe,
            }
        }
        if let Some(matches) = table_map.get(&key) {
            for &bid in matches {
                let (l, r) = if build_left { (bid, rid) } else { (rid, bid) };
                if let Some(res) = residual {
                    concat.clear();
                    concat.extend_from_slice(&left.rows()[l]);
                    concat.extend_from_slice(&right.rows()[r]);
                    if !res.matches(&concat)? {
                        continue;
                    }
                }
                out.push((l, r));
            }
        }
    }
    Ok(out)
}

/// Spatial distance join: pairs `(l, r)` where the geometry in
/// `left_col` of `left` is within `radius` of the geometry in `right_col`
/// of `right`, with an optional residual predicate over the concatenated
/// row. Uses the right table's R-tree (index nested loop join).
///
/// Distance is Euclidean between representative points, matching the
/// translation of `distance(L1, L2) < radius`.
pub fn spatial_distance_join(
    left: &Table,
    left_rows: &[usize],
    right: &mut Table,
    right_col: &str,
    left_col: usize,
    radius: f64,
    residual: Option<&Expr>,
) -> Result<Vec<(usize, usize)>, StoreError> {
    // Build/reuse the index first (needs &mut), then probe immutably.
    right.spatial_index(right_col)?;
    let mut out = Vec::new();
    let mut concat: Row = Vec::with_capacity(left.schema().arity() + right.schema().arity());
    for &l in left_rows {
        let g = match left.rows()[l]
            .get(left_col)
            .ok_or_else(|| StoreError::Eval(format!("column {left_col} out of range")))?
            .as_geom()
        {
            Some(g) => g,
            None => continue, // null/absent geometry never joins
        };
        let center = g.representative_point();
        let candidates = right.spatial_index(right_col)?.within_distance(&center, radius);
        for r in candidates {
            if let Some(res) = residual {
                concat.clear();
                concat.extend_from_slice(&left.rows()[l]);
                concat.extend_from_slice(&right.rows()[r]);
                if !res.matches(&concat)? {
                    continue;
                }
            }
            out.push((l, r));
        }
    }
    Ok(out)
}

/// Spatial range query: rows of `table` whose geometry in `col` lies
/// within the given query geometry (`within` predicate), filtered from
/// R-tree candidates by the exact test.
pub fn range_query(
    table: &mut Table,
    col: &str,
    query: &sya_geom::Geometry,
) -> Result<Vec<usize>, StoreError> {
    let bbox = query.bbox();
    let col_idx = table
        .schema()
        .index_of(col)
        .ok_or_else(|| StoreError::UnknownColumn(col.to_owned()))?;
    let candidates: Vec<usize> = {
        let idx = table.spatial_index(col)?;
        let mut v = Vec::new();
        idx.for_each_in(&bbox, |_, id| v.push(*id));
        v
    };
    let mut out = Vec::new();
    for id in candidates {
        if let Some(g) = table.rows()[id][col_idx].as_geom() {
            if g.within(query) {
                out.push(id);
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Materializes the projection of selected rows into a new row vector —
/// helper for derived relations.
pub fn project(table: &Table, rows: &[usize], cols: &[usize]) -> Vec<Row> {
    rows.iter()
        .map(|&r| cols.iter().map(|&c| table.rows()[r][c].clone()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::schema::{Column, TableSchema};
    use crate::value::{DataType, Value};
    use sya_geom::{Geometry, Point, Polygon, Rect};

    fn wells(n: i64) -> Table {
        let schema = TableSchema::new(vec![
            Column::new("id", DataType::BigInt),
            Column::new("location", DataType::Point),
            Column::new("arsenic", DataType::Double),
        ]);
        let mut t = Table::new("Well", schema);
        for i in 0..n {
            t.insert(vec![
                Value::Int(i),
                Value::from(Point::new(i as f64, (i % 3) as f64)),
                Value::Double(0.05 * i as f64),
            ])
            .unwrap();
        }
        t
    }

    fn readings() -> Table {
        let schema = TableSchema::new(vec![
            Column::new("well_id", DataType::BigInt),
            Column::new("level", DataType::Double),
        ]);
        let mut t = Table::new("Reading", schema);
        for (w, l) in [(0i64, 1.0), (1, 2.0), (1, 3.0), (4, 4.0), (9, 9.0)] {
            t.insert(vec![Value::Int(w), Value::Double(l)]).unwrap();
        }
        t
    }

    #[test]
    fn scan_filter_selects_matching_rows() {
        let t = wells(10);
        let f = Expr::bin(BinOp::Lt, Expr::col(2), Expr::lit(0.2));
        let ids = scan_filter(&t, Some(&f)).unwrap();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(scan_filter(&t, None).unwrap().len(), 10);
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let w = wells(10);
        let r = readings();
        let wl: Vec<usize> = (0..w.len()).collect();
        let rl: Vec<usize> = (0..r.len()).collect();
        let mut got = hash_join(&w, &wl, &r, &rl, &[(0, 0)], None).unwrap();
        got.sort_unstable();
        let mut want = Vec::new();
        for (i, wr) in w.rows().iter().enumerate() {
            for (j, rr) in r.rows().iter().enumerate() {
                if wr[0].sql_eq(&rr[0]) == Some(true) {
                    want.push((i, j));
                }
            }
        }
        want.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn hash_join_residual_filters() {
        let w = wells(10);
        let r = readings();
        let wl: Vec<usize> = (0..w.len()).collect();
        let rl: Vec<usize> = (0..r.len()).collect();
        // residual: reading.level > 2.5 (column 3+1 = index 4 in concat)
        let res = Expr::bin(BinOp::Gt, Expr::col(4), Expr::lit(2.5));
        let got = hash_join(&w, &wl, &r, &rl, &[(0, 0)], Some(&res)).unwrap();
        assert_eq!(got.len(), 3); // (1,3.0), (4,4.0), (9,9.0)
    }

    #[test]
    fn null_join_keys_never_match() {
        let mut w = wells(2);
        w.insert(vec![Value::Null, Value::from(Point::ORIGIN), Value::Double(0.0)])
            .unwrap();
        let mut r = readings();
        r.insert(vec![Value::Null, Value::Double(0.0)]).unwrap();
        let wl: Vec<usize> = (0..w.len()).collect();
        let rl: Vec<usize> = (0..r.len()).collect();
        let got = hash_join(&w, &wl, &r, &rl, &[(0, 0)], None).unwrap();
        assert!(got.iter().all(|&(l, r)| l != 2 && r != 5));
    }

    #[test]
    fn spatial_join_matches_brute_force() {
        let left = wells(30);
        let mut right = wells(30);
        let ll: Vec<usize> = (0..left.len()).collect();
        let got = spatial_distance_join(&left, &ll, &mut right, "location", 1, 2.0, None).unwrap();
        let mut got_sorted = got.clone();
        got_sorted.sort_unstable();
        let mut want = Vec::new();
        for (i, a) in left.rows().iter().enumerate() {
            for (j, b) in right.rows().iter().enumerate() {
                let pa = a[1].as_geom().unwrap().representative_point();
                let pb = b[1].as_geom().unwrap().representative_point();
                if pa.distance(&pb) <= 2.0 {
                    want.push((i, j));
                }
            }
        }
        want.sort_unstable();
        assert_eq!(got_sorted, want);
    }

    #[test]
    fn spatial_join_residual_excludes_self_pairs() {
        let left = wells(10);
        let mut right = wells(10);
        let ll: Vec<usize> = (0..left.len()).collect();
        // residual: left.id != right.id (concat col 0 vs 3)
        let res = Expr::bin(BinOp::Ne, Expr::col(0), Expr::col(3));
        let got =
            spatial_distance_join(&left, &ll, &mut right, "location", 1, 1.5, Some(&res)).unwrap();
        assert!(got.iter().all(|&(l, r)| l != r));
        assert!(!got.is_empty());
    }

    #[test]
    fn range_query_within_polygon() {
        let mut t = wells(10);
        let poly = Geometry::Polygon(Polygon::from_rect(&Rect::raw(2.5, -1.0, 6.5, 3.0)));
        let ids = range_query(&mut t, "location", &poly).unwrap();
        assert_eq!(ids, vec![3, 4, 5, 6]);
    }

    #[test]
    fn project_extracts_columns() {
        let t = wells(3);
        let rows = project(&t, &[0, 2], &[0, 2]);
        assert_eq!(rows, vec![
            vec![Value::Int(0), Value::Double(0.0)],
            vec![Value::Int(2), Value::Double(0.1)],
        ]);
    }
}
