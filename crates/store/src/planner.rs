//! Heuristic query optimizer (paper Section IV-B, optimization 2).
//!
//! When a rule has multiple (spatial) predicates, Sya re-orders the
//! translated queries so that cheap, selective predicates run before
//! expensive spatial joins — the paper's Fig. 5 example runs the `within`
//! range query before the `distance` spatial join "to reduce the number
//! of tuples to be joined".
//!
//! The cost model is intentionally simple and mirrors the paper's
//! "simple heuristic query optimizer": each predicate is assigned a cost
//! class, and predicates are sorted ascending by class (stable, so
//! user-written order breaks ties).

use crate::expr::{BinOp, Expr, SpatialFn};

/// Cost classes, cheapest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CostClass {
    /// Constant-only or single-column comparison against a literal —
    /// evaluable during the scan.
    CheapFilter = 0,
    /// Point-in-region / containment predicates — range query with an
    /// index, touches one relation.
    RangePredicate = 1,
    /// Equality between columns of different atoms — hash join.
    EquiJoin = 2,
    /// Distance predicate between two atoms — spatial join.
    SpatialJoin = 3,
    /// Anything else (complex residuals) — evaluated last.
    Residual = 4,
}

/// Estimates the cost class of a predicate expression.
pub fn estimate_cost(e: &Expr) -> CostClass {
    match e {
        Expr::Bin(op, l, r) => {
            let lc = l.references_columns();
            let rc = r.references_columns();
            match (lc, rc) {
                (false, false) => CostClass::CheapFilter,
                (true, false) | (false, true) => {
                    let col_side = if lc { l } else { r };
                    match col_side.as_ref() {
                        // comparison of a raw column with a literal
                        Expr::Col(_) => CostClass::CheapFilter,
                        // distance(a,b) <op> literal — spatial join shape
                        Expr::Spatial(SpatialFn::Distance, ..) => CostClass::SpatialJoin,
                        Expr::Spatial(..) => CostClass::RangePredicate,
                        _ => CostClass::Residual,
                    }
                }
                (true, true) => match op {
                    BinOp::Eq if matches!((l.as_ref(), r.as_ref()), (Expr::Col(_), Expr::Col(_))) => {
                        CostClass::EquiJoin
                    }
                    _ => CostClass::Residual,
                },
            }
        }
        Expr::Spatial(SpatialFn::Distance, ..) => CostClass::SpatialJoin,
        // within/overlaps/contains/intersects with one side a literal
        // geometry is a range predicate; between two atoms it is a join.
        Expr::Spatial(_, _, l, r) => {
            if l.references_columns() && r.references_columns() {
                CostClass::SpatialJoin
            } else {
                CostClass::RangePredicate
            }
        }
        Expr::Not(inner) | Expr::IsNull(inner) => estimate_cost(inner),
        Expr::Col(_) => CostClass::CheapFilter,
        Expr::Lit(_) => CostClass::CheapFilter,
    }
}

/// Stably orders predicates by ascending cost class and returns the
/// permutation (indices into the input slice).
pub fn order_predicates(preds: &[Expr]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..preds.len()).collect();
    idx.sort_by_key(|&i| estimate_cost(&preds[i]));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use sya_geom::{DistanceMetric, Geometry, Point, Polygon, Rect};

    fn distance_pred() -> Expr {
        // distance(col0, col1) < 150
        Expr::bin(
            BinOp::Lt,
            Expr::distance(Expr::col(0), Expr::col(1)),
            Expr::lit(150.0),
        )
    }

    fn within_pred() -> Expr {
        // within(col0, liberia_geom)
        let poly = Geometry::Polygon(Polygon::from_rect(&Rect::raw(0.0, 0.0, 1.0, 1.0)));
        Expr::spatial(
            SpatialFn::Within,
            DistanceMetric::Euclidean,
            Expr::col(0),
            Expr::Lit(Value::Geom(poly)),
        )
    }

    fn cheap_pred() -> Expr {
        // col2 = true
        Expr::bin(BinOp::Eq, Expr::col(2), Expr::lit(true))
    }

    #[test]
    fn cost_classes() {
        assert_eq!(estimate_cost(&cheap_pred()), CostClass::CheapFilter);
        assert_eq!(estimate_cost(&within_pred()), CostClass::RangePredicate);
        assert_eq!(estimate_cost(&distance_pred()), CostClass::SpatialJoin);
        let equi = Expr::bin(BinOp::Eq, Expr::col(0), Expr::col(3));
        assert_eq!(estimate_cost(&equi), CostClass::EquiJoin);
    }

    #[test]
    fn fig5_reordering_range_before_spatial_join() {
        // Paper Fig. 5: rule lists distance first, within second; the
        // optimizer must run within (range) before distance (join).
        let preds = vec![distance_pred(), within_pred(), cheap_pred()];
        let order = order_predicates(&preds);
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn stable_for_equal_classes() {
        let preds = vec![cheap_pred(), cheap_pred(), cheap_pred()];
        assert_eq!(order_predicates(&preds), vec![0, 1, 2]);
    }

    #[test]
    fn spatial_predicate_between_two_atoms_is_join() {
        let e = Expr::spatial(
            SpatialFn::Overlaps,
            DistanceMetric::Euclidean,
            Expr::col(0),
            Expr::col(1),
        );
        assert_eq!(estimate_cost(&e), CostClass::SpatialJoin);
    }

    #[test]
    fn distance_between_literal_points_is_cheap() {
        let e = Expr::bin(
            BinOp::Lt,
            Expr::distance(
                Expr::Lit(Value::from(Point::new(0.0, 0.0))),
                Expr::Lit(Value::from(Point::new(1.0, 1.0))),
            ),
            Expr::lit(5.0),
        );
        assert_eq!(estimate_cost(&e), CostClass::CheapFilter);
    }
}
