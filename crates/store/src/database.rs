//! The database catalog: a named collection of tables. This is the
//! "abstract database driver" surface of the paper's Section IV-B — the
//! grounding module talks to storage only through this type, so swapping
//! in another engine means re-implementing this interface.

use crate::schema::TableSchema;
use crate::table::{Row, Table};
use crate::StoreError;
use std::collections::BTreeMap;
use sya_obs::Obs;

/// An in-memory database: a catalog of named tables.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    /// Observability handle propagated to every table (disabled by
    /// default; attach via [`Database::attach_obs`]).
    obs: Obs,
}

impl Database {
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches an observability handle to the catalog and every table
    /// (existing and future), so `store.*` metrics are recorded.
    pub fn attach_obs(&mut self, obs: Obs) {
        for t in self.tables.values_mut() {
            t.attach_obs(obs.clone());
        }
        self.obs = obs;
    }

    /// Creates a table; errors if the name is taken.
    pub fn create_table(
        &mut self,
        name: impl Into<String>,
        schema: TableSchema,
    ) -> Result<&mut Table, StoreError> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(StoreError::DuplicateTable(name));
        }
        let mut t = Table::new(name.clone(), schema);
        t.attach_obs(self.obs.clone());
        Ok(self.tables.entry(name).or_insert(t))
    }

    /// Creates the table if absent, otherwise returns the existing one
    /// (schema must match).
    pub fn create_or_get(
        &mut self,
        name: impl Into<String>,
        schema: TableSchema,
    ) -> Result<&mut Table, StoreError> {
        let name = name.into();
        if let Some(existing) = self.tables.get(&name) {
            if existing.schema() != &schema {
                return Err(StoreError::TypeMismatch {
                    expected: format!("existing schema of {name}"),
                    got: "different schema".into(),
                });
            }
        }
        let obs = &self.obs;
        Ok(self.tables.entry(name.clone()).or_insert_with(|| {
            let mut t = Table::new(name, schema);
            t.attach_obs(obs.clone());
            t
        }))
    }

    pub fn table(&self, name: &str) -> Result<&Table, StoreError> {
        self.tables
            .get(name)
            .ok_or_else(|| StoreError::UnknownTable(name.to_owned()))
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StoreError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StoreError::UnknownTable(name.to_owned()))
    }

    /// Two tables mutably at once (for join operators); names must differ.
    pub fn two_tables_mut(
        &mut self,
        a: &str,
        b: &str,
    ) -> Result<(&mut Table, &mut Table), StoreError> {
        assert_ne!(a, b, "two_tables_mut requires distinct tables");
        // BTreeMap has no get_many_mut; do it with a split borrow.
        let a_exists = self.tables.contains_key(a);
        let b_exists = self.tables.contains_key(b);
        if !a_exists {
            return Err(StoreError::UnknownTable(a.to_owned()));
        }
        if !b_exists {
            return Err(StoreError::UnknownTable(b.to_owned()));
        }
        let ptr: *mut BTreeMap<String, Table> = &mut self.tables;
        // SAFETY: a != b (asserted), so the two mutable references alias
        // distinct map values; the map itself is not resized while the
        // references live.
        unsafe {
            let ta = (*ptr).get_mut(a).expect("checked");
            let tb = (*ptr).get_mut(b).expect("checked");
            Ok((ta, tb))
        }
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    pub fn drop_table(&mut self, name: &str) -> Result<(), StoreError> {
        self.tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StoreError::UnknownTable(name.to_owned()))
    }

    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Inserts rows into an existing table.
    pub fn insert(&mut self, name: &str, rows: Vec<Row>) -> Result<(), StoreError> {
        self.table_mut(name)?.insert_all(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::{DataType, Value};

    fn schema() -> TableSchema {
        TableSchema::new(vec![Column::new("id", DataType::BigInt)])
    }

    #[test]
    fn create_and_lookup() {
        let mut db = Database::new();
        db.create_table("A", schema()).unwrap();
        assert!(db.has_table("A"));
        assert!(db.table("A").is_ok());
        assert!(db.table("B").is_err());
        assert!(matches!(
            db.create_table("A", schema()),
            Err(StoreError::DuplicateTable(_))
        ));
    }

    #[test]
    fn create_or_get_checks_schema() {
        let mut db = Database::new();
        db.create_or_get("A", schema()).unwrap();
        assert!(db.create_or_get("A", schema()).is_ok());
        let other = TableSchema::new(vec![Column::new("x", DataType::Text)]);
        assert!(db.create_or_get("A", other).is_err());
    }

    #[test]
    fn insert_and_drop() {
        let mut db = Database::new();
        db.create_table("A", schema()).unwrap();
        db.insert("A", vec![vec![Value::Int(1)], vec![Value::Int(2)]])
            .unwrap();
        assert_eq!(db.table("A").unwrap().len(), 2);
        db.drop_table("A").unwrap();
        assert!(!db.has_table("A"));
        assert!(db.drop_table("A").is_err());
    }

    #[test]
    fn two_tables_mut_gives_disjoint_borrows() {
        let mut db = Database::new();
        db.create_table("A", schema()).unwrap();
        db.create_table("B", schema()).unwrap();
        let (a, b) = db.two_tables_mut("A", "B").unwrap();
        a.insert(vec![Value::Int(1)]).unwrap();
        b.insert(vec![Value::Int(2)]).unwrap();
        assert_eq!(db.table("A").unwrap().len(), 1);
        assert_eq!(db.table("B").unwrap().len(), 1);
    }

    #[test]
    fn attach_obs_propagates_to_existing_and_new_tables() {
        let obs = Obs::enabled();
        let mut db = Database::new();
        db.create_table("A", schema()).unwrap();
        db.attach_obs(obs.clone());
        assert!(db.table("A").unwrap().obs().is_enabled());
        db.create_table("B", schema()).unwrap();
        assert!(db.table("B").unwrap().obs().is_enabled());
        db.create_or_get("C", schema()).unwrap();
        assert!(db.table("C").unwrap().obs().is_enabled());
    }

    #[test]
    #[should_panic]
    fn two_tables_mut_same_name_panics() {
        let mut db = Database::new();
        db.create_table("A", schema()).unwrap();
        let _ = db.two_tables_mut("A", "A");
    }
}
