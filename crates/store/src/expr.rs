//! Scalar expression language used by rule bodies after translation:
//! column references, literals, comparisons, boolean connectives,
//! arithmetic, and the Sya spatial functions.

use crate::value::Value;
use crate::StoreError;
use sya_geom::DistanceMetric;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
}

/// Spatial functions available in rule bodies (paper Section III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpatialFn {
    /// `distance(a, b)` — numeric.
    Distance,
    /// `within(a, b)` — boolean, `a` inside `b`.
    Within,
    /// `overlaps(a, b)` — boolean.
    Overlaps,
    /// `contains(a, b)` — boolean, `a` contains `b`.
    Contains,
    /// `intersects(a, b)` — boolean.
    Intersects,
}

/// A scalar expression evaluated against a row (a slice of values).
///
/// ```
/// use sya_store::{BinOp, Expr, Value};
///
/// // arsenic < 0.25 over a row [id, arsenic]
/// let pred = Expr::bin(BinOp::Lt, Expr::col(1), Expr::lit(0.25));
/// assert!(pred.matches(&[Value::Int(7), Value::Double(0.1)]).unwrap());
/// assert!(!pred.matches(&[Value::Int(8), Value::Double(0.9)]).unwrap());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference by position in the evaluation row.
    Col(usize),
    /// Constant.
    Lit(Value),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Spatial function call with the metric to use for `Distance`.
    Spatial(SpatialFn, DistanceMetric, Box<Expr>, Box<Expr>),
    /// `IS NULL` check.
    IsNull(Box<Expr>),
}

impl Expr {
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Bin(op, Box::new(l), Box::new(r))
    }

    pub fn distance(l: Expr, r: Expr) -> Expr {
        Expr::Spatial(SpatialFn::Distance, DistanceMetric::Euclidean, Box::new(l), Box::new(r))
    }

    pub fn spatial(f: SpatialFn, metric: DistanceMetric, l: Expr, r: Expr) -> Expr {
        Expr::Spatial(f, metric, Box::new(l), Box::new(r))
    }

    /// Evaluates against `row`. SQL three-valued logic: comparisons with
    /// `Null` produce `Null`; `And`/`Or` short-circuit around `Null` per
    /// Kleene logic.
    pub fn eval(&self, row: &[Value]) -> Result<Value, StoreError> {
        match self {
            Expr::Col(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| StoreError::Eval(format!("column index {i} out of range"))),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::IsNull(e) => Ok(Value::Bool(e.eval(row)?.is_null())),
            Expr::Not(e) => match e.eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Bool(b) => Ok(Value::Bool(!b)),
                other => Err(StoreError::Eval(format!("NOT applied to {other}"))),
            },
            Expr::Bin(op, l, r) => eval_bin(*op, l, r, row),
            Expr::Spatial(f, metric, l, r) => {
                let lv = l.eval(row)?;
                let rv = r.eval(row)?;
                if lv.is_null() || rv.is_null() {
                    return Ok(Value::Null);
                }
                let lg = lv
                    .as_geom()
                    .ok_or_else(|| StoreError::Eval(format!("{f:?} on non-geometry {lv}")))?;
                let rg = rv
                    .as_geom()
                    .ok_or_else(|| StoreError::Eval(format!("{f:?} on non-geometry {rv}")))?;
                Ok(match f {
                    SpatialFn::Distance => Value::Double(lg.distance_with(rg, *metric)),
                    SpatialFn::Within => Value::Bool(lg.within(rg)),
                    SpatialFn::Overlaps => Value::Bool(lg.overlaps(rg)),
                    SpatialFn::Contains => Value::Bool(lg.contains(rg)),
                    SpatialFn::Intersects => Value::Bool(lg.intersects(rg)),
                })
            }
        }
    }

    /// Evaluates as a predicate: `Null` counts as *not satisfied* (SQL
    /// WHERE semantics).
    pub fn matches(&self, row: &[Value]) -> Result<bool, StoreError> {
        Ok(matches!(self.eval(row)?, Value::Bool(true)))
    }

    /// True when the expression references any column (non-constant).
    pub fn references_columns(&self) -> bool {
        match self {
            Expr::Col(_) => true,
            Expr::Lit(_) => false,
            Expr::Not(e) | Expr::IsNull(e) => e.references_columns(),
            Expr::Bin(_, l, r) | Expr::Spatial(_, _, l, r) => {
                l.references_columns() || r.references_columns()
            }
        }
    }

    /// Highest column index referenced, if any — used to decide which join
    /// side an expression can be pushed to.
    pub fn max_column(&self) -> Option<usize> {
        match self {
            Expr::Col(i) => Some(*i),
            Expr::Lit(_) => None,
            Expr::Not(e) | Expr::IsNull(e) => e.max_column(),
            Expr::Bin(_, l, r) | Expr::Spatial(_, _, l, r) => {
                match (l.max_column(), r.max_column()) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                }
            }
        }
    }

    /// True when the expression calls a spatial function anywhere.
    pub fn is_spatial(&self) -> bool {
        match self {
            Expr::Spatial(..) => true,
            Expr::Col(_) | Expr::Lit(_) => false,
            Expr::Not(e) | Expr::IsNull(e) => e.is_spatial(),
            Expr::Bin(_, l, r) => l.is_spatial() || r.is_spatial(),
        }
    }

    /// Folds constant subexpressions: any subtree that references no
    /// columns and evaluates without error is replaced by its literal
    /// value. Rule conditions over named geometry constants (e.g.
    /// `distance(liberia_a, liberia_b) < 150`) thus become plain boolean
    /// literals before grounding.
    pub fn fold_constants(&self) -> Expr {
        // Fold children first, then try to collapse this node.
        let folded = match self {
            Expr::Col(_) | Expr::Lit(_) => self.clone(),
            Expr::Not(e) => Expr::Not(Box::new(e.fold_constants())),
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.fold_constants())),
            Expr::Bin(op, l, r) => Expr::Bin(
                *op,
                Box::new(l.fold_constants()),
                Box::new(r.fold_constants()),
            ),
            Expr::Spatial(f, m, l, r) => Expr::Spatial(
                *f,
                *m,
                Box::new(l.fold_constants()),
                Box::new(r.fold_constants()),
            ),
        };
        if matches!(folded, Expr::Lit(_)) || folded.references_columns() {
            return folded;
        }
        match folded.eval(&[]) {
            Ok(v) => Expr::Lit(v),
            Err(_) => folded, // leave type errors to surface at runtime
        }
    }

    /// Rewrites column indices through `map` (old index → new index);
    /// returns `None` if a referenced column is not in the map.
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> Option<usize>) -> Option<Expr> {
        Some(match self {
            Expr::Col(i) => Expr::Col(map(*i)?),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Not(e) => Expr::Not(Box::new(e.remap_columns(map)?)),
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.remap_columns(map)?)),
            Expr::Bin(op, l, r) => Expr::Bin(
                *op,
                Box::new(l.remap_columns(map)?),
                Box::new(r.remap_columns(map)?),
            ),
            Expr::Spatial(f, m, l, r) => Expr::Spatial(
                *f,
                *m,
                Box::new(l.remap_columns(map)?),
                Box::new(r.remap_columns(map)?),
            ),
        })
    }
}

/// Collects every column index referenced by `e` into `out`.
pub fn expr_columns(e: &Expr, out: &mut std::collections::BTreeSet<usize>) {
    match e {
        Expr::Col(i) => {
            out.insert(*i);
        }
        Expr::Lit(_) => {}
        Expr::Not(inner) | Expr::IsNull(inner) => expr_columns(inner, out),
        Expr::Bin(_, l, r) | Expr::Spatial(_, _, l, r) => {
            expr_columns(l, out);
            expr_columns(r, out);
        }
    }
}

fn eval_bin(op: BinOp, l: &Expr, r: &Expr, row: &[Value]) -> Result<Value, StoreError> {
    // Kleene logic for AND/OR.
    if matches!(op, BinOp::And | BinOp::Or) {
        let lv = l.eval(row)?;
        let rv = r.eval(row)?;
        let lb = lv.as_bool();
        let rb = rv.as_bool();
        if !lv.is_null() && lb.is_none() {
            return Err(StoreError::Eval(format!("{op:?} applied to {lv}")));
        }
        if !rv.is_null() && rb.is_none() {
            return Err(StoreError::Eval(format!("{op:?} applied to {rv}")));
        }
        return Ok(match op {
            BinOp::And => match (lb, rb) {
                (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                (Some(true), Some(true)) => Value::Bool(true),
                _ => Value::Null,
            },
            BinOp::Or => match (lb, rb) {
                (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                (Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            },
            _ => unreachable!(),
        });
    }

    let lv = l.eval(row)?;
    let rv = r.eval(row)?;
    if lv.is_null() || rv.is_null() {
        return Ok(Value::Null);
    }
    use std::cmp::Ordering;
    let cmp = |want: &[Ordering]| -> Result<Value, StoreError> {
        lv.sql_cmp(&rv)
            .map(|o| Value::Bool(want.contains(&o)))
            .ok_or_else(|| StoreError::Eval(format!("cannot compare {lv} and {rv}")))
    };
    match op {
        BinOp::Eq => lv
            .sql_eq(&rv)
            .map(Value::Bool)
            .ok_or_else(|| StoreError::Eval("null in eq".into())),
        BinOp::Ne => lv
            .sql_eq(&rv)
            .map(|b| Value::Bool(!b))
            .ok_or_else(|| StoreError::Eval("null in ne".into())),
        BinOp::Lt => cmp(&[Ordering::Less]),
        BinOp::Le => cmp(&[Ordering::Less, Ordering::Equal]),
        BinOp::Gt => cmp(&[Ordering::Greater]),
        BinOp::Ge => cmp(&[Ordering::Greater, Ordering::Equal]),
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
            let (a, b) = (
                lv.as_f64()
                    .ok_or_else(|| StoreError::Eval(format!("arith on {lv}")))?,
                rv.as_f64()
                    .ok_or_else(|| StoreError::Eval(format!("arith on {rv}")))?,
            );
            let out = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                _ => unreachable!(),
            };
            // Preserve integer typing for int-int arithmetic except division.
            if lv.as_int().is_some() && rv.as_int().is_some() && !matches!(op, BinOp::Div) {
                Ok(Value::Int(out as i64))
            } else {
                Ok(Value::Double(out))
            }
        }
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sya_geom::{Geometry, Point, Polygon, Rect};

    fn row() -> Vec<Value> {
        vec![
            Value::Int(5),
            Value::Double(2.5),
            Value::from(Point::new(0.0, 0.0)),
            Value::from(Point::new(3.0, 4.0)),
            Value::Null,
            Value::Geom(Geometry::Polygon(Polygon::from_rect(&Rect::raw(
                -1.0, -1.0, 10.0, 10.0,
            )))),
        ]
    }

    #[test]
    fn comparisons() {
        let r = row();
        assert_eq!(
            Expr::bin(BinOp::Lt, Expr::col(1), Expr::lit(3.0)).eval(&r).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::bin(BinOp::Eq, Expr::col(0), Expr::lit(5.0)).eval(&r).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::bin(BinOp::Ge, Expr::col(0), Expr::lit(6i64)).eval(&r).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn null_propagates_and_fails_match() {
        let r = row();
        let e = Expr::bin(BinOp::Lt, Expr::col(4), Expr::lit(3.0));
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
        assert!(!e.matches(&r).unwrap());
        assert_eq!(
            Expr::IsNull(Box::new(Expr::col(4))).eval(&r).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn kleene_and_or() {
        let r = row();
        let null = Expr::bin(BinOp::Lt, Expr::col(4), Expr::lit(1.0));
        let t = Expr::lit(true);
        let f = Expr::lit(false);
        assert_eq!(
            Expr::bin(BinOp::And, f.clone(), null.clone()).eval(&r).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Expr::bin(BinOp::And, t.clone(), null.clone()).eval(&r).unwrap(),
            Value::Null
        );
        assert_eq!(
            Expr::bin(BinOp::Or, t, null.clone()).eval(&r).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(Expr::bin(BinOp::Or, f, null).eval(&r).unwrap(), Value::Null);
    }

    #[test]
    fn spatial_distance_and_within() {
        let r = row();
        assert_eq!(
            Expr::distance(Expr::col(2), Expr::col(3)).eval(&r).unwrap(),
            Value::Double(5.0)
        );
        let within = Expr::spatial(
            SpatialFn::Within,
            DistanceMetric::Euclidean,
            Expr::col(2),
            Expr::col(5),
        );
        assert_eq!(within.eval(&r).unwrap(), Value::Bool(true));
    }

    #[test]
    fn spatial_on_null_is_null() {
        let r = row();
        let e = Expr::distance(Expr::col(2), Expr::col(4));
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
    }

    #[test]
    fn spatial_on_non_geometry_errors() {
        let r = row();
        assert!(Expr::distance(Expr::col(0), Expr::col(2)).eval(&r).is_err());
    }

    #[test]
    fn arithmetic_typing() {
        let r = row();
        assert_eq!(
            Expr::bin(BinOp::Add, Expr::col(0), Expr::lit(2i64)).eval(&r).unwrap(),
            Value::Int(7)
        );
        assert_eq!(
            Expr::bin(BinOp::Div, Expr::col(0), Expr::lit(2i64)).eval(&r).unwrap(),
            Value::Double(2.5)
        );
        assert_eq!(
            Expr::bin(BinOp::Mul, Expr::col(1), Expr::lit(2i64)).eval(&r).unwrap(),
            Value::Double(5.0)
        );
    }

    #[test]
    fn introspection_helpers() {
        let e = Expr::bin(
            BinOp::Lt,
            Expr::distance(Expr::col(2), Expr::col(3)),
            Expr::lit(50.0),
        );
        assert!(e.is_spatial());
        assert!(e.references_columns());
        assert_eq!(e.max_column(), Some(3));
        assert!(!Expr::lit(1i64).references_columns());
    }

    #[test]
    fn fold_constants_collapses_literal_subtrees() {
        // distance(P(0,0), P(3,4)) < 6  ->  true
        let e = Expr::bin(
            BinOp::Lt,
            Expr::distance(
                Expr::Lit(Value::from(Point::new(0.0, 0.0))),
                Expr::Lit(Value::from(Point::new(3.0, 4.0))),
            ),
            Expr::lit(6.0),
        );
        assert_eq!(e.fold_constants(), Expr::Lit(Value::Bool(true)));
        // Column-referencing parts stay; the literal distance folds.
        let partial = Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Lt, Expr::col(0), Expr::lit(1.0)),
            Expr::bin(
                BinOp::Gt,
                Expr::distance(
                    Expr::Lit(Value::from(Point::new(0.0, 0.0))),
                    Expr::Lit(Value::from(Point::new(3.0, 4.0))),
                ),
                Expr::lit(1.0),
            ),
        );
        match partial.fold_constants() {
            Expr::Bin(BinOp::And, l, r) => {
                assert!(l.references_columns());
                assert_eq!(*r, Expr::Lit(Value::Bool(true)));
            }
            other => panic!("{other:?}"),
        }
        // Erroring constants are left unfolded.
        let bad = Expr::distance(Expr::lit(1i64), Expr::lit(2i64));
        assert!(matches!(bad.fold_constants(), Expr::Spatial(..)));
    }

    #[test]
    fn remap_columns() {
        let e = Expr::bin(BinOp::Eq, Expr::col(2), Expr::col(5));
        let shifted = e.remap_columns(&|i| Some(i + 10)).unwrap();
        assert_eq!(shifted.max_column(), Some(15));
        assert!(e.remap_columns(&|i| if i == 2 { Some(0) } else { None }).is_none());
    }
}
