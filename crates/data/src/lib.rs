//! # sya-data — datasets and evaluation metrics for the Sya reproduction
//!
//! The paper evaluates Sya on two real knowledge bases — **GWDB** (Texas
//! water-well quality, 9,831 wells, 11 rules) and **NYCCAS** (New York
//! City air pollution raster, 4 rules) — plus the **EbolaKB** example of
//! the introduction. The raw datasets are not redistributable offline, so
//! this crate generates *synthetic equivalents* that preserve the
//! properties the experiments exercise (see DESIGN.md §4):
//!
//! * [`field`] — spatially autocorrelated scalar fields (kernel-smoothed
//!   seed processes), the statistical backbone of both generators;
//! * [`gwdb`] — a Texas-like well dataset with an arsenic field, a safety
//!   ground truth, an evidence sample, and the 11-rule program;
//! * [`nyccas`] — an NYC-like raster with pollutant fields, a 4-rule
//!   program, and a *random-evidence fraction* knob reproducing the
//!   paper's observation that noisy NYCCAS evidence caps Sya's recall
//!   advantage;
//! * [`ebola`] — the 4 Liberia counties of Fig. 1 with the paper's
//!   distances and scores;
//! * [`metrics`] — the paper's quality metrics: precision / recall /
//!   F1-score with the "within 0.1 of ground truth" correctness rule
//!   (Section VI-A).

pub mod ebola;
pub mod field;
pub mod gwdb;
pub mod metrics;
pub mod nyccas;

pub use ebola::ebola_dataset;
pub use field::SmoothField;
pub use gwdb::{gwdb_dataset, GwdbConfig};
pub use metrics::{supported_ids, QualityEval};
pub use nyccas::{nyccas_dataset, NyccasConfig};

use std::collections::HashMap;
use sya_geom::{DistanceMetric, Point};
use sya_lang::GeomConstants;
use sya_store::{Database, Value};

/// A generated dataset: everything the pipeline needs to build and
/// evaluate a knowledge base.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub name: String,
    /// Sya DDlog program source.
    pub program: String,
    /// Input tables.
    pub db: Database,
    /// Named geometry constants referenced by the program.
    pub constants: GeomConstants,
    /// Distance semantics of the program's `distance()` predicates.
    pub metric: DistanceMetric,
    /// Entity id → observed evidence value.
    pub evidence: HashMap<i64, u32>,
    /// Entity id → ground-truth factual score (binarized: the observable
    /// "is the fact true" label the paper's precision/recall judge
    /// against).
    pub truth: HashMap<i64, f64>,
    /// Entity id → the underlying smooth probability field in `[0, 1]`
    /// (the "true marginal probabilities" of the Fig. 14 KL experiment).
    pub truth_prob: HashMap<i64, f64>,
    /// Entity id → location (for support computation and indexing).
    pub locations: HashMap<i64, Point>,
    /// Radius within which evidence can plausibly support a prediction
    /// (the recall denominator of [`metrics::QualityEval`]).
    pub support_radius: f64,
}

impl Dataset {
    /// Evidence closure in the shape the grounder expects: variable
    /// relations in the generated programs key on the entity id in their
    /// first column.
    pub fn evidence_fn(&self) -> impl Fn(&str, &[Value]) -> Option<u32> + '_ {
        move |_, values| {
            values
                .first()
                .and_then(Value::as_int)
                .and_then(|id| self.evidence.get(&id).copied())
        }
    }

    /// Ids of query (non-evidence) entities.
    pub fn query_ids(&self) -> Vec<i64> {
        let mut v: Vec<i64> = self
            .truth
            .keys()
            .filter(|id| !self.evidence.contains_key(id))
            .copied()
            .collect();
        v.sort_unstable();
        v
    }
}
