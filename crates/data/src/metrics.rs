//! The paper's evaluation metrics (Section VI-A):
//!
//! * **Precision** — correctly inferred scores (within 0.1 of ground
//!   truth) over all predicted scores;
//! * **Recall** — correctly inferred scores over the scores that *should*
//!   be predictable from the evidence data (here: query entities with at
//!   least one evidence entity within the dataset's support radius);
//! * **F1-score** — their harmonic mean.

use std::collections::{HashMap, HashSet};
use sya_geom::{DistanceMetric, Point, RTree, Rect};

/// The paper's correctness tolerance: a score is correctly inferred when
/// it is within 0.1 of the ground truth.
pub const CORRECTNESS_TOLERANCE: f64 = 0.1;

/// Quality evaluation result.
///
/// ```
/// use std::collections::{HashMap, HashSet};
/// use sya_data::QualityEval;
///
/// let truth = HashMap::from([(1, 1.0), (2, 0.0)]);
/// let supported: HashSet<i64> = [1, 2].into();
/// let eval = QualityEval::evaluate(&[(1, 0.95), (2, 0.4)], &truth, &supported);
/// assert_eq!(eval.correct, 1); // only id 1 within 0.1 of its truth
/// assert_eq!(eval.precision(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityEval {
    /// Query entities that received a score.
    pub predicted: usize,
    /// Scores within tolerance of the ground truth.
    pub correct: usize,
    /// Query entities supported by nearby evidence (recall denominator).
    pub supported: usize,
    /// Correct ∩ supported.
    pub correct_supported: usize,
}

impl QualityEval {
    /// Evaluates predicted scores against ground truth.
    ///
    /// * `scores` — `(entity id, predicted factual score)` for query
    ///   entities;
    /// * `truth` — ground-truth scores;
    /// * `supported` — the entities recoverable from evidence.
    pub fn evaluate(
        scores: &[(i64, f64)],
        truth: &HashMap<i64, f64>,
        supported: &HashSet<i64>,
    ) -> QualityEval {
        let mut eval = QualityEval { predicted: 0, correct: 0, supported: 0, correct_supported: 0 };
        for &(id, score) in scores {
            let Some(&t) = truth.get(&id) else { continue };
            eval.predicted += 1;
            let ok = (score - t).abs() <= CORRECTNESS_TOLERANCE;
            let sup = supported.contains(&id);
            if ok {
                eval.correct += 1;
            }
            if sup {
                eval.supported += 1;
                if ok {
                    eval.correct_supported += 1;
                }
            }
        }
        eval
    }

    /// Evaluates with explicit truth *ranges* (the EbolaKB form: a score
    /// is correct when it falls inside the ground-truth range).
    pub fn evaluate_ranges(
        scores: &[(i64, f64)],
        ranges: &HashMap<i64, (f64, f64)>,
        supported: &HashSet<i64>,
    ) -> QualityEval {
        let mut eval = QualityEval { predicted: 0, correct: 0, supported: 0, correct_supported: 0 };
        for &(id, score) in scores {
            let Some(&(lo, hi)) = ranges.get(&id) else { continue };
            eval.predicted += 1;
            let ok = (lo..=hi).contains(&score);
            let sup = supported.contains(&id);
            if ok {
                eval.correct += 1;
            }
            if sup {
                eval.supported += 1;
                if ok {
                    eval.correct_supported += 1;
                }
            }
        }
        eval
    }

    pub fn precision(&self) -> f64 {
        if self.predicted == 0 {
            return 0.0;
        }
        self.correct as f64 / self.predicted as f64
    }

    pub fn recall(&self) -> f64 {
        if self.supported == 0 {
            return 0.0;
        }
        self.correct_supported as f64 / self.supported as f64
    }

    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

/// Query entities with at least one evidence entity within `radius`
/// (under the dataset's metric) — the recall denominator.
pub fn supported_ids(
    locations: &HashMap<i64, Point>,
    evidence_ids: impl IntoIterator<Item = i64>,
    query_ids: &[i64],
    radius: f64,
    metric: DistanceMetric,
) -> HashSet<i64> {
    let ev_points: Vec<(Rect, Point)> = evidence_ids
        .into_iter()
        .filter_map(|id| locations.get(&id).map(|p| (Rect::from_point(*p), *p)))
        .collect();
    if ev_points.is_empty() {
        return HashSet::new();
    }
    let tree = RTree::bulk_load(ev_points);
    let cand_radius = match metric {
        DistanceMetric::Euclidean => radius,
        DistanceMetric::HaversineMiles => radius / 69.0 * 2.5,
    };
    query_ids
        .iter()
        .filter(|id| {
            let Some(p) = locations.get(id) else { return false };
            tree.within_distance(p, cand_radius).iter().any(|q| {
                let d = match metric {
                    DistanceMetric::Euclidean => p.distance(q),
                    DistanceMetric::HaversineMiles => sya_geom::haversine_miles(p, q),
                };
                d <= radius
            })
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> HashMap<i64, f64> {
        HashMap::from([(0, 0.8), (1, 0.5), (2, 0.2)])
    }

    #[test]
    fn precision_counts_within_tolerance() {
        let scores = vec![(0, 0.75), (1, 0.9), (2, 0.25)];
        let supported: HashSet<i64> = [0, 1, 2].into();
        let e = QualityEval::evaluate(&scores, &truth(), &supported);
        assert_eq!(e.predicted, 3);
        assert_eq!(e.correct, 2); // 0 and 2 within 0.1; 1 off by 0.4
        assert!((e.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((e.recall() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn recall_uses_supported_denominator() {
        let scores = vec![(0, 0.75), (1, 0.9), (2, 0.25)];
        let supported: HashSet<i64> = [0].into();
        let e = QualityEval::evaluate(&scores, &truth(), &supported);
        assert_eq!(e.supported, 1);
        assert_eq!(e.correct_supported, 1);
        assert_eq!(e.recall(), 1.0);
        assert!((e.precision() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let e = QualityEval { predicted: 4, correct: 2, supported: 2, correct_supported: 2 };
        let p = 0.5;
        let r = 1.0;
        assert!((e.f1() - 2.0 * p * r / (p + r)).abs() < 1e-12);
        let zero = QualityEval { predicted: 0, correct: 0, supported: 0, correct_supported: 0 };
        assert_eq!(zero.f1(), 0.0);
    }

    #[test]
    fn range_evaluation() {
        let ranges = HashMap::from([(1, (0.6, 0.9)), (2, (0.1, 0.3))]);
        let supported: HashSet<i64> = [1, 2].into();
        let e = QualityEval::evaluate_ranges(&[(1, 0.76), (2, 0.63)], &ranges, &supported);
        assert_eq!(e.correct, 1);
        assert_eq!(e.predicted, 2);
    }

    #[test]
    fn unknown_ids_are_skipped() {
        let supported: HashSet<i64> = HashSet::new();
        let e = QualityEval::evaluate(&[(99, 0.5)], &truth(), &supported);
        assert_eq!(e.predicted, 0);
    }

    #[test]
    fn supported_ids_respect_radius() {
        let locations = HashMap::from([
            (0, Point::new(0.0, 0.0)),  // evidence
            (1, Point::new(1.0, 0.0)),  // near
            (2, Point::new(10.0, 0.0)), // far
        ]);
        let s = supported_ids(&locations, [0], &[1, 2], 2.0, DistanceMetric::Euclidean);
        assert!(s.contains(&1));
        assert!(!s.contains(&2));
        let none = supported_ids(&locations, [], &[1, 2], 2.0, DistanceMetric::Euclidean);
        assert!(none.is_empty());
    }
}
