//! GWDB — the Texas Ground Water Database scenario (paper Section VI-A).
//!
//! The real GWDB relation holds ~9,831 wells with locations and element
//! concentrations (arsenic, fluoride); the paper's 11-rule program infers
//! the risk of drinking from each well ("a well is considered dangerous
//! if the arsenic concentration exceeded an EPA threshold and its
//! location is near another risky well"). The synthetic generator keeps
//! the load-bearing structure: a spatially smooth safety ground truth, a
//! correlated arsenic/fluoride signal, an evidence sample, and the same
//! 11-rule program shape (1 derivation + 10 weighted inference rules over
//! one input relation — Table I: 1 relation, 11 rules).
//!
//! Coordinates are projected miles over a Texas-sized box (~770 × 730).

use crate::field::SmoothField;
use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use sya_geom::{DistanceMetric, Point, Rect};
use sya_lang::GeomConstants;
use sya_store::{Column, DataType, Database, TableSchema, Value};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct GwdbConfig {
    /// Number of wells (paper: 9,831; default scaled to 1,500).
    pub n_wells: usize,
    /// Fraction of wells with observed safety evidence.
    pub evidence_fraction: f64,
    /// Correlation length of the ground-truth field, in miles.
    pub field_bandwidth: f64,
    /// Probability that a well's arsenic reading contradicts the truth
    /// (sensor noise).
    pub noise: f64,
    /// When set, evidence is quantized to `h` domain levels instead of
    /// binary (the categorical setting of the pruning experiment,
    /// Section VI-B3). Level `floor(t·h)` encodes the truth `t`; the
    /// upper half of the domain means "safe".
    pub domain_h: Option<u32>,
    /// Probability that a categorical evidence level is corrupted to a
    /// uniformly random level (creates the spurious co-occurrences the
    /// pruning threshold `T` is designed to filter out).
    pub evidence_noise: f64,
    pub seed: u64,
}

impl Default for GwdbConfig {
    fn default() -> Self {
        GwdbConfig {
            n_wells: 1500,
            evidence_fraction: 0.3,
            field_bandwidth: 80.0,
            noise: 0.15,
            domain_h: None,
            evidence_noise: 0.0,
            seed: 4242,
        }
    }
}

/// Texas-like extent in projected miles.
pub const GWDB_BOUNDS: Rect = Rect::raw(0.0, 0.0, 770.0, 730.0);

/// Distance below which evidence plausibly supports a prediction and
/// below which the program's longest-range rule fires.
pub const GWDB_SUPPORT_RADIUS: f64 = 50.0;

/// Calibrated spatial weighting bandwidth (miles) for the GWDB scale.
pub const GWDB_BANDWIDTH: f64 = 15.0;

/// Calibrated neighbour cutoff (miles) for spatial factor generation.
pub const GWDB_RADIUS: f64 = 30.0;

/// The 11-rule GWDB program (1 derivation + 10 inference rules).
pub fn gwdb_program() -> String {
    r#"
    # Texas Ground Water Database: well safety knowledge base.
    Well(id bigint, location point, arsenic double, fluoride double).
    @spatial(exp)
    IsSafe?(id bigint, location point).

    # Derivation: one random variable per well.
    D1: IsSafe(W, L) = NULL :- Well(W, L, _, _).

    # Spatial propagation over arsenic-clean pairs at three ranges.
    R1: @weight(0.7) IsSafe(W1, L1) => IsSafe(W2, L2) :-
        Well(W1, L1, A1, _), Well(W2, L2, A2, _)
        [distance(L1, L2) < 15, A1 < 0.25, A2 < 0.25, W1 != W2].
    R2: @weight(0.5) IsSafe(W1, L1) => IsSafe(W2, L2) :-
        Well(W1, L1, A1, _), Well(W2, L2, A2, _)
        [distance(L1, L2) < 30, A1 < 0.25, A2 < 0.25, W1 != W2].
    R3: @weight(0.3) IsSafe(W1, L1) => IsSafe(W2, L2) :-
        Well(W1, L1, A1, _), Well(W2, L2, A2, _)
        [distance(L1, L2) < 50, A1 < 0.25, A2 < 0.25, W1 != W2].

    # Spatial propagation over fluoride-clean pairs at two ranges.
    R4: @weight(0.4) IsSafe(W1, L1) => IsSafe(W2, L2) :-
        Well(W1, L1, _, F1), Well(W2, L2, _, F2)
        [distance(L1, L2) < 15, F1 < 0.3, F2 < 0.3, W1 != W2].
    R5: @weight(0.25) IsSafe(W1, L1) => IsSafe(W2, L2) :-
        Well(W1, L1, _, F1), Well(W2, L2, _, F2)
        [distance(L1, L2) < 40, F1 < 0.3, F2 < 0.3, W1 != W2].

    # Element-level priors (EPA-style thresholds).
    R6: @weight(0.8)  IsSafe(W, L) :- Well(W, L, A, _) [A < 0.1].
    R7: @weight(0.4)  IsSafe(W, L) :- Well(W, L, _, F) [F < 0.1].
    R8: @weight(-1.0) IsSafe(W, L) :- Well(W, L, A, _) [A > 0.6].
    R9: @weight(-0.5) IsSafe(W, L) :- Well(W, L, _, F) [F > 0.7].
    R10: @weight(-0.3) IsSafe(W, L) :- Well(W, L, A, F) [A > 0.45, F > 0.45].
    "#
    .to_owned()
}

/// Generates the GWDB dataset.
pub fn gwdb_dataset(cfg: &GwdbConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Ground truth: smooth "safety" field; readings are noisy inverses.
    let truth_field = SmoothField::random(GWDB_BOUNDS, 40, cfg.field_bandwidth, cfg.seed ^ 0xA5);
    let fluoride_field =
        SmoothField::random(GWDB_BOUNDS, 30, cfg.field_bandwidth * 0.8, cfg.seed ^ 0x5A);

    let schema = TableSchema::new(vec![
        Column::new("id", DataType::BigInt),
        Column::new("location", DataType::Point),
        Column::new("arsenic", DataType::Double),
        Column::new("fluoride", DataType::Double),
    ]);
    let mut db = Database::new();
    let table = db.create_table("Well", schema).expect("fresh database");

    let mut evidence = HashMap::new();
    let mut truth = HashMap::new();
    let mut truth_prob = HashMap::new();
    let mut locations = HashMap::new();

    for i in 0..cfg.n_wells as i64 {
        let p = Point::new(
            rng.gen_range(GWDB_BOUNDS.min_x..GWDB_BOUNDS.max_x),
            rng.gen_range(GWDB_BOUNDS.min_y..GWDB_BOUNDS.max_y),
        );
        // Safety score in [0,1]; stretch the smooth field to use the
        // whole range.
        let t = ((truth_field.value(&p) - 0.5) * 2.2 + 0.5).clamp(0.02, 0.98);
        // Arsenic anti-correlates with safety, plus sensor noise.
        let noise_a: f64 = rng.gen_range(-cfg.noise..cfg.noise);
        let arsenic = ((1.0 - t) * 0.7 + 0.1 + noise_a).clamp(0.0, 1.0);
        let noise_f: f64 = rng.gen_range(-cfg.noise..cfg.noise);
        let fluoride =
            ((1.0 - fluoride_field.value(&p)) * 0.6 + 0.15 + noise_f).clamp(0.0, 1.0);

        table
            .insert(vec![
                Value::Int(i),
                Value::from(p),
                Value::Double(arsenic),
                Value::Double(fluoride),
            ])
            .expect("schema-conformant row");

        truth_prob.insert(i, t);
        truth.insert(i, f64::from(t >= 0.5));
        locations.insert(i, p);
        if rng.gen_bool(cfg.evidence_fraction) {
            let v = match cfg.domain_h {
                None => u32::from(t >= 0.5),
                Some(h) => {
                    if cfg.evidence_noise > 0.0 && rng.gen_bool(cfg.evidence_noise) {
                        rng.gen_range(0..h)
                    } else {
                        ((t * h as f64) as u32).min(h - 1)
                    }
                }
            };
            evidence.insert(i, v);
        }
    }

    Dataset {
        name: "GWDB".into(),
        program: gwdb_program(),
        db,
        constants: GeomConstants::new(),
        metric: DistanceMetric::Euclidean,
        evidence,
        truth,
        truth_prob,
        locations,
        support_radius: GWDB_SUPPORT_RADIUS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sya_lang::{compile, parse_program};

    #[test]
    fn program_parses_and_has_11_rules() {
        let p = parse_program(&gwdb_program()).unwrap();
        assert_eq!(p.rules().count(), 11);
        assert_eq!(p.schemas().count(), 2);
        let compiled = compile(&p, &GeomConstants::new(), DistanceMetric::Euclidean).unwrap();
        assert_eq!(compiled.rules.len(), 11);
        assert_eq!(compiled.spatial_variable_relations().count(), 1);
    }

    #[test]
    fn dataset_shape() {
        let cfg = GwdbConfig { n_wells: 200, ..Default::default() };
        let d = gwdb_dataset(&cfg);
        assert_eq!(d.db.table("Well").unwrap().len(), 200);
        assert_eq!(d.truth.len(), 200);
        assert_eq!(d.locations.len(), 200);
        let ev = d.evidence.len() as f64 / 200.0;
        assert!((0.15..0.45).contains(&ev), "evidence fraction {ev}");
        // Evidence values agree with the binary truth.
        for (id, &v) in &d.evidence {
            assert_eq!(v as f64, d.truth[id]);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GwdbConfig { n_wells: 50, ..Default::default() };
        let a = gwdb_dataset(&cfg);
        let b = gwdb_dataset(&cfg);
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.evidence, b.evidence);
    }

    #[test]
    fn arsenic_anticorrelates_with_truth() {
        let cfg = GwdbConfig { n_wells: 400, noise: 0.05, ..Default::default() };
        let d = gwdb_dataset(&cfg);
        let table = d.db.table("Well").unwrap();
        let mut cov = 0.0;
        for row in table.rows() {
            let id = row[0].as_int().unwrap();
            let a = row[2].as_f64().unwrap();
            cov += (d.truth_prob[&id] - 0.5) * (a - 0.45);
        }
        assert!(cov < 0.0, "arsenic must anti-correlate with safety: {cov}");
    }

    #[test]
    fn evidence_fn_keys_on_first_value() {
        let cfg = GwdbConfig { n_wells: 50, ..Default::default() };
        let d = gwdb_dataset(&cfg);
        let f = d.evidence_fn();
        let (&id, &v) = d.evidence.iter().next().unwrap();
        assert_eq!(f("IsSafe", &[Value::Int(id), Value::Null]), Some(v));
        assert_eq!(f("IsSafe", &[Value::Int(-1)]), None);
    }

    #[test]
    fn query_ids_exclude_evidence() {
        let cfg = GwdbConfig { n_wells: 100, ..Default::default() };
        let d = gwdb_dataset(&cfg);
        for id in d.query_ids() {
            assert!(!d.evidence.contains_key(&id));
        }
        assert_eq!(d.query_ids().len() + d.evidence.len(), 100);
    }
}
