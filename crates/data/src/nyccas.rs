//! NYCCAS — the New York City Community Air Survey scenario (paper
//! Section VI-A).
//!
//! The real input is a raster of annual predicted pollutant
//! concentrations maintained by DOHMH; the paper's program has 4 rules
//! relating EPA guidelines to the raster observations (Table I: 1
//! relation, 4 rules, 34K variables, 233K factors — note the much
//! sparser factor graph than GWDB). Two properties matter for the
//! experiments and are reproduced here:
//!
//! * raster cells on a regular grid (so the variable count is the grid
//!   size), and
//! * a sizeable *random* fraction of the evidence ("a significant amount
//!   of its evidence data entries ... follow random assignments"), which
//!   is exactly why Fig. 8(b) shows Sya's recall advantage shrinking to
//!   ~9% on NYCCAS.

use crate::field::SmoothField;
use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use sya_geom::{DistanceMetric, Point, Rect};
use sya_lang::GeomConstants;
use sya_store::{Column, DataType, Database, TableSchema, Value};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct NyccasConfig {
    /// Raster is `grid × grid` cells (paper: ~34K variables; default
    /// scaled to 32×32 = 1,024).
    pub grid: usize,
    /// Fraction of cells with observed evidence.
    pub evidence_fraction: f64,
    /// Fraction of the evidence that is randomly assigned rather than
    /// thresholded truth — the paper's noisy-evidence property.
    pub random_evidence_fraction: f64,
    /// Correlation length of the pollution field, in miles.
    pub field_bandwidth: f64,
    pub seed: u64,
}

impl Default for NyccasConfig {
    fn default() -> Self {
        NyccasConfig {
            grid: 32,
            evidence_fraction: 0.3,
            random_evidence_fraction: 0.35,
            field_bandwidth: 4.0,
            seed: 777,
        }
    }
}

/// NYC-like extent in projected miles (~30 × 30).
pub const NYCCAS_BOUNDS: Rect = Rect::raw(0.0, 0.0, 30.0, 30.0);

/// Support radius for the recall denominator (the program's spatial rule
/// range).
pub const NYCCAS_SUPPORT_RADIUS: f64 = 2.5;

/// Calibrated spatial weighting bandwidth (miles) for the NYC scale.
pub const NYCCAS_BANDWIDTH: f64 = 1.2;

/// Calibrated neighbour cutoff (miles) for spatial factor generation.
pub const NYCCAS_RADIUS: f64 = 2.5;

/// The 4-rule NYCCAS program (1 derivation + 3 inference rules).
pub fn nyccas_program() -> String {
    r#"
    # NYC Community Air Survey: pollution knowledge base.
    AirCell(id bigint, location point, no2 double, pm25 double).
    @spatial(exp)
    IsPolluted?(id bigint, location point).

    D1: IsPolluted(C, L) = NULL :- AirCell(C, L, _, _).

    # EPA-style guideline priors (positive and negative).
    R1: @weight(2.5)  IsPolluted(C, L) :- AirCell(C, L, N, _) [N > 0.55].
    R2: @weight(-2.5) IsPolluted(C, L) :- AirCell(C, L, N, _) [N < 0.35].

    # Spatial propagation between nearby high-PM cells.
    R3: @weight(0.5) IsPolluted(C1, L1) => IsPolluted(C2, L2) :-
        AirCell(C1, L1, _, P1), AirCell(C2, L2, _, P2)
        [distance(L1, L2) < 2.5, P1 > 0.4, P2 > 0.4, C1 != C2].
    "#
    .to_owned()
}

/// Generates the NYCCAS dataset.
pub fn nyccas_dataset(cfg: &NyccasConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let pollution = SmoothField::random(NYCCAS_BOUNDS, 25, cfg.field_bandwidth, cfg.seed ^ 0x33);
    let pm_field = SmoothField::random(NYCCAS_BOUNDS, 25, cfg.field_bandwidth, cfg.seed ^ 0x44);

    let schema = TableSchema::new(vec![
        Column::new("id", DataType::BigInt),
        Column::new("location", DataType::Point),
        Column::new("no2", DataType::Double),
        Column::new("pm25", DataType::Double),
    ]);
    let mut db = Database::new();
    let table = db.create_table("AirCell", schema).expect("fresh database");

    let mut evidence = HashMap::new();
    let mut truth = HashMap::new();
    let mut truth_prob = HashMap::new();
    let mut locations = HashMap::new();

    let step_x = NYCCAS_BOUNDS.width() / cfg.grid as f64;
    let step_y = NYCCAS_BOUNDS.height() / cfg.grid as f64;
    for r in 0..cfg.grid {
        for c in 0..cfg.grid {
            let id = (r * cfg.grid + c) as i64;
            let p = Point::new(
                NYCCAS_BOUNDS.min_x + (c as f64 + 0.5) * step_x,
                NYCCAS_BOUNDS.min_y + (r as f64 + 0.5) * step_y,
            );
            let t = ((pollution.value(&p) - 0.5) * 2.2 + 0.5).clamp(0.02, 0.98);
            let no2 = (t * 0.7 + 0.15 + rng.gen_range(-0.08..0.08)).clamp(0.0, 1.0);
            let pm25 = (pm_field.value(&p) * 0.5 + t * 0.3 + rng.gen_range(-0.08..0.08))
                .clamp(0.0, 1.0);

            table
                .insert(vec![
                    Value::Int(id),
                    Value::from(p),
                    Value::Double(no2),
                    Value::Double(pm25),
                ])
                .expect("schema-conformant row");

            truth_prob.insert(id, t);
            truth.insert(id, f64::from(t >= 0.5));
            locations.insert(id, p);
            if rng.gen_bool(cfg.evidence_fraction) {
                let v = if rng.gen_bool(cfg.random_evidence_fraction) {
                    // Random assignment — the paper's NYCCAS noise.
                    rng.gen_range(0..2u32)
                } else {
                    u32::from(t >= 0.5)
                };
                evidence.insert(id, v);
            }
        }
    }

    Dataset {
        name: "NYCCAS".into(),
        program: nyccas_program(),
        db,
        constants: GeomConstants::new(),
        metric: DistanceMetric::Euclidean,
        evidence,
        truth,
        truth_prob,
        locations,
        support_radius: NYCCAS_SUPPORT_RADIUS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sya_lang::{compile, parse_program};

    #[test]
    fn program_parses_and_has_4_rules() {
        let p = parse_program(&nyccas_program()).unwrap();
        assert_eq!(p.rules().count(), 4);
        let compiled = compile(&p, &GeomConstants::new(), DistanceMetric::Euclidean).unwrap();
        assert_eq!(compiled.rules.len(), 4);
    }

    #[test]
    fn raster_has_grid_squared_cells() {
        let cfg = NyccasConfig { grid: 8, ..Default::default() };
        let d = nyccas_dataset(&cfg);
        assert_eq!(d.db.table("AirCell").unwrap().len(), 64);
        assert_eq!(d.truth.len(), 64);
        // All cells inside the bounds.
        for p in d.locations.values() {
            assert!(NYCCAS_BOUNDS.contains_point(p));
        }
    }

    #[test]
    fn some_evidence_is_random() {
        let cfg = NyccasConfig { grid: 24, random_evidence_fraction: 0.5, ..Default::default() };
        let d = nyccas_dataset(&cfg);
        let mismatches = d
            .evidence
            .iter()
            .filter(|(id, &v)| v as f64 != d.truth[id])
            .count();
        assert!(
            mismatches > 0,
            "with 50% random evidence some entries must contradict the truth"
        );
        // But not all: the rest is thresholded truth.
        assert!(mismatches < d.evidence.len());
    }

    #[test]
    fn zero_random_fraction_means_clean_evidence() {
        let cfg = NyccasConfig { grid: 16, random_evidence_fraction: 0.0, ..Default::default() };
        let d = nyccas_dataset(&cfg);
        for (id, &v) in &d.evidence {
            assert_eq!(v as f64, d.truth[id]);
        }
    }

    #[test]
    fn deterministic_generation() {
        let cfg = NyccasConfig { grid: 10, ..Default::default() };
        assert_eq!(nyccas_dataset(&cfg).evidence, nyccas_dataset(&cfg).evidence);
    }
}
