//! EbolaKB — the introduction's running example (paper Fig. 1).
//!
//! Four Liberian counties; Montserrado is observed with a high infection
//! rate (evidence 1), and the system infers the factual scores of
//! Margibi, Bong and Gbarpolu. The paper's map puts Margibi and Bong
//! within the 150-mile cutoff of Montserrado and Gbarpolu just outside
//! (~160 miles) — the case that exposes DeepDive's boolean-predicate
//! cliff. Coordinates below are synthetic lon/lat chosen to reproduce
//! exactly those haversine distances; the ground-truth ranges follow the
//! WHO table of Fig. 1(b) (ranges consistent with the reported scores:
//! Sya's 0.76 / 0.53 / 0.22 all fall inside, DeepDive's 0.54 / 0.52 /
//! 0.63 mostly outside).

use crate::Dataset;
use std::collections::HashMap;
use sya_geom::{DistanceMetric, Geometry, Point, Polygon, Rect};
use sya_lang::GeomConstants;
use sya_store::{Column, DataType, Database, TableSchema, Value};

/// Spatial weighting bandwidth calibrated to the Liberia county scale
/// (miles): Margibi keeps a strong pull, Bong a moderate one, Gbarpolu a
/// weak one — the graded scores of Fig. 1(b).
pub const EBOLA_BANDWIDTH_MILES: f64 = 60.0;

/// Neighbour cutoff for spatial factor generation (miles): large enough
/// that Gbarpolu (160 mi) still receives a spatial factor.
pub const EBOLA_RADIUS_MILES: f64 = 250.0;

/// County ids in table order.
pub const MONTSERRADO: i64 = 0;
pub const MARGIBI: i64 = 1;
pub const BONG: i64 = 2;
pub const GBARPOLU: i64 = 3;

/// County names, indexed by id.
pub const COUNTY_NAMES: [&str; 4] = ["Montserrado", "Margibi", "Bong", "Gbarpolu"];

/// Synthetic lon/lat placing the counties at the paper's distances from
/// Montserrado: Margibi ≈ 30 mi, Bong ≈ 110 mi, Gbarpolu ≈ 160 mi.
pub fn county_locations() -> [Point; 4] {
    let base = Point::new(-10.80, 6.30); // Montserrado
    [
        base,
        Point::new(-10.363, 6.30), // ~30 mi east
        Point::new(-9.198, 6.30),  // ~110 mi east
        Point::new(-10.80, 8.62),  // ~160 mi north
    ]
}

/// Ground-truth infection-rate ranges `[lo, hi]` per county (WHO table of
/// Fig. 1b; Montserrado is evidence). Chosen so the paper's reported Sya
/// scores fall inside and DeepDive's boolean-cutoff scores fall outside
/// for Margibi (0.54 vs [0.65, 0.9]) and Gbarpolu (0.63 / 0.06 vs
/// [0.15, 0.35]).
pub fn truth_ranges() -> HashMap<i64, (f64, f64)> {
    HashMap::from([
        (MONTSERRADO, (0.9, 1.0)),
        (MARGIBI, (0.65, 0.9)),
        (BONG, (0.45, 0.65)),
        (GBARPOLU, (0.15, 0.35)),
    ])
}

/// The EbolaKB program of Fig. 3: the spatial Sya form. The 150-mile
/// predicate stays as a *candidate* cutoff, but `@spatial(exp)` adds the
/// distance-decayed spatial factors that produce graded scores.
pub fn ebola_program() -> String {
    r#"
    # EbolaKB (paper Fig. 3).
    County(id bigint, location point, hasLowSanitation bool).
    @spatial(exp)
    HasEbola?(id bigint, location point).

    D1: HasEbola(C1, L1) = NULL :- County(C1, L1, _).

    R1: @weight(0.35) HasEbola(C1, L1) => HasEbola(C2, L2) :-
        County(C1, L1, _), County(C2, L2, S2)
        [distance(L1, L2) < 150, within(L2, liberia_geom), S2 = true, C1 != C2].

    # Weak negative prior: infection is rare absent supporting evidence
    # (the implicit default-false prior of MLN-based KBC systems).
    R2: @weight(-0.8) HasEbola(C, L) :- County(C, L, _).
    "#
    .to_owned()
}

/// Builds the EbolaKB dataset.
pub fn ebola_dataset() -> Dataset {
    let locs = county_locations();
    let schema = TableSchema::new(vec![
        Column::new("id", DataType::BigInt),
        Column::new("location", DataType::Point),
        Column::new("hasLowSanitation", DataType::Bool),
    ]);
    let mut db = Database::new();
    let table = db.create_table("County", schema).expect("fresh database");
    for (i, p) in locs.iter().enumerate() {
        // All four counties share the same (low) sanitation level.
        table
            .insert(vec![Value::Int(i as i64), Value::from(*p), Value::Bool(true)])
            .expect("schema-conformant row");
    }

    let mut constants = GeomConstants::new();
    constants.insert(
        "liberia_geom",
        Geometry::Polygon(Polygon::from_rect(&Rect::raw(-12.0, 4.0, -7.0, 9.5))),
    );

    let ranges = truth_ranges();
    let truth: HashMap<i64, f64> = ranges
        .iter()
        .map(|(&id, &(lo, hi))| (id, (lo + hi) * 0.5))
        .collect();
    let locations: HashMap<i64, Point> =
        locs.iter().enumerate().map(|(i, p)| (i as i64, *p)).collect();

    Dataset {
        name: "EbolaKB".into(),
        program: ebola_program(),
        db,
        constants,
        metric: DistanceMetric::HaversineMiles,
        evidence: HashMap::from([(MONTSERRADO, 1u32)]),
        truth_prob: truth.clone(),
        truth,
        locations,
        support_radius: 200.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sya_geom::haversine_miles;
    use sya_lang::{compile, parse_program};

    #[test]
    fn distances_match_the_papers_map() {
        let locs = county_locations();
        let d_margibi = haversine_miles(&locs[0], &locs[1]);
        let d_bong = haversine_miles(&locs[0], &locs[2]);
        let d_gbarpolu = haversine_miles(&locs[0], &locs[3]);
        assert!((25.0..35.0).contains(&d_margibi), "Margibi {d_margibi}");
        assert!((100.0..120.0).contains(&d_bong), "Bong {d_bong}");
        assert!(
            (150.0..170.0).contains(&d_gbarpolu),
            "Gbarpolu must be just past the 150 mi cutoff: {d_gbarpolu}"
        );
        // The boolean cutoff includes Margibi and Bong, excludes Gbarpolu.
        assert!(d_margibi < 150.0 && d_bong < 150.0 && d_gbarpolu > 150.0);
    }

    #[test]
    fn program_compiles_with_the_liberia_constant() {
        let d = ebola_dataset();
        let p = parse_program(&d.program).unwrap();
        let compiled = compile(&p, &d.constants, d.metric).unwrap();
        assert_eq!(compiled.rules.len(), 3);
    }

    #[test]
    fn dataset_has_one_evidence_county() {
        let d = ebola_dataset();
        assert_eq!(d.evidence.len(), 1);
        assert_eq!(d.evidence[&MONTSERRADO], 1);
        assert_eq!(d.query_ids(), vec![MARGIBI, BONG, GBARPOLU]);
    }

    #[test]
    fn truth_ranges_order_by_distance() {
        // The closer to Montserrado, the higher the true infection rate.
        let r = truth_ranges();
        assert!(r[&MARGIBI].0 > r[&BONG].0);
        assert!(r[&BONG].0 > r[&GBARPOLU].0);
    }

    #[test]
    fn all_counties_inside_liberia_constant() {
        let d = ebola_dataset();
        let liberia = d.constants.get("liberia_geom").unwrap();
        for p in county_locations() {
            assert!(Geometry::Point(p).within(liberia));
        }
    }
}
