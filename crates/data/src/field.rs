//! Spatially autocorrelated scalar fields.
//!
//! Both evaluation datasets rest on the first law of geography the paper
//! quotes — "nearby things are more related than distant things". The
//! generator realizes it with a kernel-smoothed seed process: `k` seed
//! points with random values, smoothed by a Gaussian kernel. The result
//! is a deterministic, smooth field in `[0, 1]` whose correlation length
//! is the kernel bandwidth.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sya_geom::{Point, Rect};

/// A smooth random field over a bounding region.
///
/// ```
/// use sya_data::SmoothField;
/// use sya_geom::{Point, Rect};
///
/// let f = SmoothField::random(Rect::raw(0.0, 0.0, 100.0, 100.0), 20, 15.0, 7);
/// let v = f.value(&Point::new(50.0, 50.0));
/// assert!((0.0..=1.0).contains(&v));
/// ```
#[derive(Debug, Clone)]
pub struct SmoothField {
    seeds: Vec<(Point, f64)>,
    bandwidth: f64,
}

impl SmoothField {
    /// Samples `n_seeds` random seeds in `bounds` with values in
    /// `[0, 1]`, smoothed at the given `bandwidth`.
    pub fn random(bounds: Rect, n_seeds: usize, bandwidth: f64, seed: u64) -> Self {
        assert!(n_seeds > 0, "need at least one seed");
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let seeds = (0..n_seeds)
            .map(|_| {
                let x = rng.gen_range(bounds.min_x..=bounds.max_x);
                let y = rng.gen_range(bounds.min_y..=bounds.max_y);
                (Point::new(x, y), rng.gen_range(0.0..=1.0))
            })
            .collect();
        SmoothField { seeds, bandwidth }
    }

    /// Builds a field from explicit seeds (tests, hand-crafted scenarios).
    pub fn from_seeds(seeds: Vec<(Point, f64)>, bandwidth: f64) -> Self {
        assert!(!seeds.is_empty());
        SmoothField { seeds, bandwidth }
    }

    /// Field value at `p`: Gaussian-kernel weighted average of the seed
    /// values (Nadaraya–Watson), guaranteed inside the seed value range.
    pub fn value(&self, p: &Point) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for (q, v) in &self.seeds {
            let d = p.distance(q) / self.bandwidth;
            let w = (-d * d).exp().max(1e-300);
            num += w * v;
            den += w;
        }
        num / den
    }

    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> Rect {
        Rect::raw(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn values_stay_in_seed_range() {
        let f = SmoothField::random(bounds(), 20, 15.0, 7);
        for i in 0..50 {
            let p = Point::new((i * 13 % 100) as f64, (i * 29 % 100) as f64);
            let v = f.value(&p);
            assert!((0.0..=1.0).contains(&v), "value {v} out of range");
        }
    }

    #[test]
    fn field_is_deterministic_per_seed() {
        let a = SmoothField::random(bounds(), 10, 10.0, 3);
        let b = SmoothField::random(bounds(), 10, 10.0, 3);
        let p = Point::new(42.0, 17.0);
        assert_eq!(a.value(&p), b.value(&p));
        let c = SmoothField::random(bounds(), 10, 10.0, 4);
        assert_ne!(a.value(&p), c.value(&p));
    }

    #[test]
    fn nearby_points_are_more_similar_than_distant_ones() {
        // Spatial autocorrelation: average |Δvalue| grows with distance.
        let f = SmoothField::random(bounds(), 30, 10.0, 11);
        let mut near_diff = 0.0;
        let mut far_diff = 0.0;
        let mut count = 0;
        for i in 0..40 {
            let p = Point::new((i * 7 % 90) as f64 + 5.0, (i * 31 % 90) as f64 + 5.0);
            let near = Point::new(p.x + 1.0, p.y);
            let far = Point::new((p.x + 50.0) % 100.0, (p.y + 50.0) % 100.0);
            near_diff += (f.value(&p) - f.value(&near)).abs();
            far_diff += (f.value(&p) - f.value(&far)).abs();
            count += 1;
        }
        assert!(
            near_diff / count as f64 * 3.0 < far_diff / count as f64,
            "near {near_diff} vs far {far_diff}"
        );
    }

    #[test]
    fn interpolates_explicit_seeds() {
        let f = SmoothField::from_seeds(
            vec![
                (Point::new(0.0, 0.0), 0.0),
                (Point::new(10.0, 0.0), 1.0),
            ],
            3.0,
        );
        assert!(f.value(&Point::new(0.0, 0.0)) < 0.1);
        assert!(f.value(&Point::new(10.0, 0.0)) > 0.9);
        let mid = f.value(&Point::new(5.0, 0.0));
        assert!((mid - 0.5).abs() < 0.05, "midpoint {mid}");
    }

    #[test]
    #[should_panic]
    fn zero_seeds_panics() {
        SmoothField::random(bounds(), 0, 1.0, 0);
    }
}
