//! `sya-serve`: the online knowledge-base serving layer.
//!
//! The batch pipeline constructs a [`sya_core::KnowledgeBase`] once;
//! this crate keeps it *live*: a dependency-free HTTP/1.1 server on
//! `std::net::TcpListener` with a fixed worker-thread pool, serving
//! point and batch marginal queries, absorbing evidence updates through
//! the paper's conclique-restricted incremental sampler (Fig. 13a), and
//! periodically snapshotting the refreshed marginals as `sya-ckpt`
//! checkpoints the next process can warm-start from.
//!
//! | endpoint                        | method | purpose                                  |
//! |---------------------------------|--------|------------------------------------------|
//! | `/v1/marginal/{relation}?args=` | GET    | point marginal lookup                    |
//! | `/v1/query`                     | POST   | batch marginal queries (JSON body)       |
//! | `/v1/evidence`                  | POST   | append evidence → incremental re-infer   |
//! | `/metrics`                      | GET    | Prometheus text exposition               |
//! | `/healthz`                      | GET    | readiness + KB epoch + checkpoint age    |
//!
//! Graceful shutdown and per-request deadlines reuse the `sya-runtime`
//! primitives ([`sya_runtime::CancellationToken`] /
//! [`sya_runtime::RunBudget`]); request counters, latency histograms,
//! and per-endpoint spans land in the server's [`sya_obs::Obs`] handle,
//! which `/metrics` renders.

pub mod admission;
mod http;
mod lazy;
mod router;
mod rows;
mod server;
mod state;

pub use admission::{Admission, AdmissionConfig, InflightGuard, Shed, Ticket};
pub use http::{json_string, read_request, HttpError, Request, Response};
pub use lazy::{LazyConfig, LazyKb};
pub use router::{ServeState, ShardRouter};
pub use rows::{RawRowUpdate, RowsOutcome};
pub use server::SyaServer;
pub use state::{EvidenceOutcome, EvidenceUpdate, MarginalAnswer, ServingKb};

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Server tunables, mirrored by the `sya serve` CLI flags.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// `host:port` to bind; port 0 picks an ephemeral port.
    pub listen: String,
    /// Fixed worker-thread pool size.
    pub workers: usize,
    /// Per-request deadline (socket timeouts + handler budget).
    pub request_timeout: Duration,
    /// Background checkpoint cadence; `None` disables the thread.
    pub checkpoint_refresh: Option<Duration>,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Bounded accept-queue depth; overflow is shed with
    /// `503 + Retry-After` before the body is read. `0` = auto
    /// (8 × workers).
    pub max_queue: usize,
    /// In-flight concurrency gate for expensive requests; `/healthz`
    /// and `/metrics` bypass it. `0` = auto (= workers, i.e. inert
    /// until lowered).
    pub max_inflight: usize,
}

impl ServeConfig {
    /// `max_queue` with the `0 = auto` default applied: eight waiting
    /// connections per worker keeps worst-case queue wait well under a
    /// typical request timeout while still absorbing bursts.
    pub fn resolved_max_queue(&self) -> usize {
        if self.max_queue == 0 { self.workers.max(1) * 8 } else { self.max_queue }
    }

    /// `max_inflight` with the `0 = auto` default applied: one slot per
    /// worker, so the gate only binds when explicitly tightened.
    pub fn resolved_max_inflight(&self) -> usize {
        if self.max_inflight == 0 { self.workers.max(1) } else { self.max_inflight }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:7171".into(),
            workers: 4,
            request_timeout: Duration::from_millis(10_000),
            checkpoint_refresh: None,
            max_body_bytes: 1024 * 1024,
            max_queue: 0,
            max_inflight: 0,
        }
    }
}

/// Serving-layer failures.
#[derive(Debug)]
pub enum ServeError {
    /// Could not bind or configure the listener.
    Bind(std::io::Error),
    /// The KB was built without the spatial sampler: no pyramid index,
    /// no incremental updates, nothing to serve.
    NotSpatial,
    /// An evidence batch failed schema validation (client error).
    BadEvidence(String),
    /// A `/v1/rows` batch failed decoding or validation (client error).
    BadRows(String),
    /// `/v1/rows` is not available in this serving mode (sharded
    /// replicas have no single mutable database) → 501.
    RowsUnsupported { mode: &'static str },
    /// A validated row batch failed mid-apply (grounding or inference
    /// error) — a server-side 500, not a retryable condition.
    RowsFailed(String),
    /// The shard owning the requested atom is marked down: the request
    /// is answerable again once the shard recovers → 503 + Retry-After.
    ShardDown { shard: usize },
    /// The shard's circuit breaker is open after consecutive failures:
    /// fast-fail with 503 + Retry-After instead of letting a sick shard
    /// hold worker threads hostage.
    BreakerOpen { shard: usize },
    /// Saving or opening the checkpoint store failed.
    Checkpoint(String),
    /// A lazy-mode demand grounding exhausted its per-request
    /// `RunBudget`: the query is answerable with a looser budget or a
    /// quieter server → 503 + Retry-After, counted on
    /// `serve.query.budget_exceeded_total`.
    QueryBudget(String),
    /// The lazy query path failed outright (grounding or inference
    /// error) — a server-side 500, not a retryable condition.
    QueryFailed(String),
    /// Threads still alive after the shutdown deadline — a leak.
    ShutdownTimeout { alive: Vec<String> },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind(e) => write!(f, "cannot bind listener: {e}"),
            ServeError::NotSpatial => write!(
                f,
                "serving requires the spatial engine: incremental re-inference \
                 needs the pyramid index"
            ),
            ServeError::BadEvidence(msg) => write!(f, "bad evidence: {msg}"),
            ServeError::BadRows(msg) => write!(f, "bad row batch: {msg}"),
            ServeError::RowsUnsupported { mode } => {
                write!(f, "row updates are not supported in {mode} serving mode")
            }
            ServeError::RowsFailed(msg) => write!(f, "row apply failed: {msg}"),
            ServeError::ShardDown { shard } => {
                write!(f, "shard {shard} is down; retry after it recovers")
            }
            ServeError::BreakerOpen { shard } => {
                write!(f, "shard {shard} breaker is open; fast-failing while it recovers")
            }
            ServeError::Checkpoint(msg) => write!(f, "checkpoint failure: {msg}"),
            ServeError::QueryBudget(msg) => {
                write!(f, "query budget exhausted: {msg}; retry with a looser budget")
            }
            ServeError::QueryFailed(msg) => write!(f, "query failed: {msg}"),
            ServeError::ShutdownTimeout { alive } => write!(
                f,
                "shutdown deadline expired with {} thread(s) still alive: {}",
                alive.len(),
                alive.join(", ")
            ),
        }
    }
}

impl std::error::Error for ServeError {}

static TERMINATION: AtomicBool = AtomicBool::new(false);

extern "C" fn on_termination_signal(_signum: i32) {
    // Only async-signal-safe work here: set the flag, nothing else.
    TERMINATION.store(true, Ordering::SeqCst);
}

/// Installs a SIGTERM/SIGINT handler that flips the flag behind
/// [`termination_requested`]. The serve loop polls it and starts a
/// graceful shutdown — this is the `kill -TERM` path of process
/// managers and the CI smoke. No-op on non-Unix targets.
pub fn install_termination_handler() {
    #[cfg(unix)]
    {
        // libc's signal(2), declared directly: the container vendors no
        // libc crate, and the two constants are ABI-stable on Linux.
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        unsafe {
            signal(SIGTERM, on_termination_signal);
            signal(SIGINT, on_termination_signal);
        }
    }
}

/// Whether a termination signal arrived since
/// [`install_termination_handler`] was called.
pub fn termination_requested() -> bool {
    TERMINATION.load(Ordering::SeqCst)
}
