//! The HTTP server: a nonblocking acceptor polling the cancellation
//! token, a fixed worker-thread pool draining accepted connections from
//! a *bounded* queue, a shed-lane triage thread keeping the health
//! plane alive at saturation, an optional background checkpointer — all
//! joined under a deadline on shutdown so a leaked worker is an error,
//! not a mystery.
//!
//! Overload path (DESIGN.md §15): the acceptor claims a bounded
//! [`Ticket`](crate::admission::Ticket) per connection; overflow falls
//! to the shed lane, whose thread reads only the request *head* and
//! answers `GET /healthz` / `GET /metrics` while shedding everything
//! else with `503 + Retry-After` — before the body is ever read. At
//! dequeue, a ticket that waited out the request timeout is shed
//! without executing, and what remains of the deadline becomes the
//! socket timeouts and handler budget.

use crate::admission::{Admission, AdmissionConfig, Shed};
use crate::http::{read_request, HttpError, Request, Response};
use crate::router::ServeState;
use crate::state::EvidenceUpdate;
use crate::{ServeConfig, ServeError};
use serde_json::Value as Json;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use sya_obs::Obs;
use sya_runtime::{CancellationToken, ExecContext};

/// How often the acceptor re-checks the cancellation token while no
/// connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Depth of the shed lane: enough for a scrape plus health probes to
/// queue behind a burst, small enough that triage stays instant.
const SHED_LANE_DEPTH: usize = 32;

/// Socket deadline for shed-lane triage and shed 503 writes: a client
/// too stalled to take a one-line rejection is simply dropped.
const SHED_IO_TIMEOUT: Duration = Duration::from_millis(250);

/// Overall wall-clock bound on the lingering-close drain.
/// [`SHED_IO_TIMEOUT`] is per-read *idle* time, so without this a
/// client dripping one byte per interval would pin the draining thread
/// indefinitely.
const SHED_DRAIN_DEADLINE: Duration = Duration::from_secs(1);

/// An accepted connection travelling the queue with its admission
/// ticket; dropping the pair (shutdown drains) releases the slot.
struct Pending {
    stream: TcpStream,
    ticket: crate::admission::Ticket,
}

/// A running server. Dropping it without calling
/// [`shutdown`](SyaServer::shutdown) leaves the threads running until
/// the process exits — always shut down explicitly.
pub struct SyaServer {
    addr: SocketAddr,
    token: CancellationToken,
    threads: Vec<(String, JoinHandle<()>)>,
    state: Arc<ServeState>,
    admission: Admission,
}

impl SyaServer {
    /// Binds `cfg.listen` (port 0 picks an ephemeral port) and starts
    /// the acceptor, `cfg.workers` request workers, and — when
    /// `cfg.checkpoint_refresh` is set — the background checkpointer.
    pub fn start(
        state: impl Into<ServeState>,
        cfg: ServeConfig,
    ) -> Result<SyaServer, ServeError> {
        Self::start_with_token(state, cfg, CancellationToken::new())
    }

    /// [`start`](Self::start) under a caller-owned token, so embedders
    /// (tests, the CLI's signal handler) can request shutdown.
    pub fn start_with_token(
        state: impl Into<ServeState>,
        cfg: ServeConfig,
        token: CancellationToken,
    ) -> Result<SyaServer, ServeError> {
        let listener = TcpListener::bind(&cfg.listen).map_err(ServeError::Bind)?;
        listener.set_nonblocking(true).map_err(ServeError::Bind)?;
        let addr = listener.local_addr().map_err(ServeError::Bind)?;
        let state = Arc::new(state.into());
        let admission = Admission::new(
            AdmissionConfig {
                max_queue: cfg.resolved_max_queue(),
                max_inflight: cfg.resolved_max_inflight(),
                shed_lane_depth: SHED_LANE_DEPTH,
                request_timeout: cfg.request_timeout,
            },
            state.obs().clone(),
        );
        let (tx, rx) = mpsc::channel::<Pending>();
        let (shed_tx, shed_rx) = mpsc::channel::<Pending>();
        let rx = Arc::new(Mutex::new(rx));
        let mut threads = Vec::new();

        for i in 0..cfg.workers.max(1) {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            let cfg = cfg.clone();
            let admission = admission.clone();
            let handle = std::thread::Builder::new()
                .name(format!("sya-serve-worker-{i}"))
                .spawn(move || {
                    // The loop ends when every sender is gone: the
                    // acceptor drops its channels on cancellation.
                    while let Ok(pending) = {
                        let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                        guard.recv()
                    } {
                        let Pending { mut stream, ticket } = pending;
                        let waited = ticket.waited();
                        drop(ticket); // dequeued: free the queue slot now
                        match admission.admit_waited(waited) {
                            Ok(budget) => {
                                handle_connection(&state, &cfg, &admission, stream, budget);
                            }
                            Err(shed) => {
                                // The client already waited out the whole
                                // deadline in the queue: executing now
                                // would burn a worker on an answer nobody
                                // is waiting for.
                                admission.count_shed(shed);
                                write_shed(state.obs(), &mut stream, shed);
                            }
                        }
                    }
                })
                .expect("spawn worker thread");
            threads.push((format!("worker-{i}"), handle));
        }

        {
            // Shed-lane triage: reads only the request head and keeps
            // the health plane (`/healthz`, `/metrics`) answering while
            // the main queue is full; everything else is shed.
            let state = Arc::clone(&state);
            let admission = admission.clone();
            let handle = std::thread::Builder::new()
                .name("sya-serve-shedder".into())
                .spawn(move || {
                    while let Ok(pending) = shed_rx.recv() {
                        let Pending { mut stream, ticket } = pending;
                        drop(ticket);
                        triage_connection(&state, &admission, &mut stream);
                    }
                })
                .expect("spawn shed thread");
            threads.push(("shedder".into(), handle));
        }

        {
            let token = token.clone();
            let obs = state.obs().clone();
            let admission = admission.clone();
            let handle = std::thread::Builder::new()
                .name("sya-serve-acceptor".into())
                .spawn(move || {
                    while !token.is_cancelled() {
                        match listener.accept() {
                            Ok((mut stream, _)) => {
                                obs.counter_add("serve.connections_total", 1);
                                match admission.try_enqueue() {
                                    Ok(ticket) => {
                                        if tx.send(Pending { stream, ticket }).is_err() {
                                            break;
                                        }
                                    }
                                    // Main queue full: the shed lane gets
                                    // a chance to answer health probes.
                                    Err(_) => match admission.try_enqueue_shed() {
                                        Ok(ticket) => {
                                            if shed_tx
                                                .send(Pending { stream, ticket })
                                                .is_err()
                                            {
                                                break;
                                            }
                                        }
                                        // Even the shed lane is full:
                                        // reject without reading a byte
                                        // and without the drain — the
                                        // singleton acceptor must not
                                        // block on a slow client while
                                        // sheds are raining.
                                        Err(shed) => {
                                            admission.count_shed(shed);
                                            write_shed_nodrain(&obs, &mut stream, shed);
                                        }
                                    },
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(ACCEPT_POLL);
                            }
                            Err(_) => std::thread::sleep(ACCEPT_POLL),
                        }
                    }
                    // Dropping `tx`/`shed_tx` here lets the workers and
                    // the shedder drain their queues and exit.
                })
                .expect("spawn acceptor thread");
            threads.push(("acceptor".into(), handle));
        }

        if let Some(period) = cfg.checkpoint_refresh {
            let token = token.clone();
            let state_bg = Arc::clone(&state);
            let handle = std::thread::Builder::new()
                .name("sya-serve-ckpt".into())
                .spawn(move || {
                    let mut last = Instant::now();
                    while !token.is_cancelled() {
                        std::thread::sleep(ACCEPT_POLL.min(period));
                        if last.elapsed() < period {
                            continue;
                        }
                        last = Instant::now();
                        if let Err(e) = state_bg.checkpoint_now() {
                            state_bg.obs().error(format!("background checkpoint failed: {e}"));
                        }
                    }
                    // Final save on the way out, so a graceful stop
                    // never loses the last evidence updates.
                    if let Err(e) = state_bg.checkpoint_now() {
                        state_bg.obs().error(format!("shutdown checkpoint failed: {e}"));
                    }
                })
                .expect("spawn checkpoint thread");
            threads.push(("checkpointer".into(), handle));
        }

        Ok(SyaServer { addr, token, threads, state, admission })
    }

    /// The bound address (with the real port when 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A clone of the server's cancellation token; cancelling it starts
    /// a graceful shutdown.
    pub fn token(&self) -> CancellationToken {
        self.token.clone()
    }

    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// The server's admission state machine — live queue/in-flight
    /// occupancy, for tests and embedders.
    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    /// Cancels the token and joins every thread under `deadline`. An
    /// error names the threads still alive — the worker-leak assertion
    /// the acceptance criteria demand.
    pub fn shutdown(self, deadline: Duration) -> Result<(), ServeError> {
        self.token.cancel();
        let start = Instant::now();
        let mut pending = self.threads;
        while !pending.is_empty() && start.elapsed() < deadline {
            pending.retain(|(_, h)| !h.is_finished());
            if pending.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        if !pending.is_empty() {
            return Err(ServeError::ShutdownTimeout {
                alive: pending.into_iter().map(|(name, _)| name).collect(),
            });
        }
        Ok(())
    }
}

/// Writes `response`, counting a stalled reader against
/// `serve.write_timeout_total` — a dead-slow client must cost a
/// bounded write deadline, not a pinned worker.
fn write_response(obs: &Obs, stream: &mut TcpStream, response: &Response) {
    if let Err(e) = response.write_to(stream) {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                obs.counter_add("serve.write_timeout_total", 1);
            }
            _ => {
                obs.counter_add("serve.socket_errors_total", 1);
            }
        }
    }
}

/// Best-effort shed rejection for the *acceptor* path: `503 +
/// Retry-After` under a short write deadline, no lingering-close
/// drain. The acceptor is a singleton, and it sheds inline exactly
/// when both queues are full — blocking it on a slow client's drain
/// there would collapse accept throughput at the very moment this
/// path exists for. The write itself lands in the empty send buffer
/// of a fresh connection, so it effectively never blocks; the cost is
/// that a client still mid-send may see a TCP reset instead of the
/// 503, which is the accepted trade on this path.
fn write_shed_nodrain(obs: &Obs, stream: &mut TcpStream, shed: Shed) {
    let _ = stream.set_write_timeout(Some(SHED_IO_TIMEOUT));
    let response =
        Response::error(503, shed.reason()).with_retry_after(RETRY_AFTER_SECONDS);
    write_response(obs, stream, &response);
}

/// The full shed rejection for worker/shedder threads: the 503 write,
/// then a lingering close (FIN + bounded drain of whatever the client
/// was still sending), so the rejection reaches the client instead of
/// being torn down by a reset for unread request bytes. The drain is
/// bounded both in bytes and in wall-clock ([`SHED_DRAIN_DEADLINE`]) —
/// the per-read timeout alone only bounds *idle* gaps.
fn write_shed(obs: &Obs, stream: &mut TcpStream, shed: Shed) {
    write_shed_nodrain(obs, stream, shed);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(SHED_IO_TIMEOUT));
    let deadline = Instant::now() + SHED_DRAIN_DEADLINE;
    let mut chunk = [0u8; 4096];
    let mut budget = 64 * 1024usize;
    while budget > 0 && Instant::now() < deadline {
        match std::io::Read::read(stream, &mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
}

/// Shed-lane triage: reads only the request *head* (zero body budget),
/// answers cheap `GET /healthz` / `GET /metrics` so the health plane
/// survives saturation, and sheds everything else.
fn triage_connection(state: &Arc<ServeState>, admission: &Admission, stream: &mut TcpStream) {
    let obs = state.obs().clone();
    let _ = stream.set_read_timeout(Some(SHED_IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SHED_IO_TIMEOUT));
    match read_request(stream, 0) {
        Ok(req) if req.method == "GET" && req.path == "/healthz" => {
            obs.counter_add("serve.requests_total", 1);
            obs.counter_add("serve.healthz_requests_total", 1);
            write_response(&obs, stream, &healthz(state));
        }
        Ok(req) if req.method == "GET" && req.path == "/metrics" => {
            obs.counter_add("serve.requests_total", 1);
            obs.counter_add("serve.metrics_requests_total", 1);
            let body = sya_obs::export::render_prometheus(&state.obs().metrics_snapshot());
            write_response(&obs, stream, &Response::text(200, body));
        }
        // Anything expensive — including POSTs whose Content-Length
        // alone trips the zero body budget (`TooLarge`) — is shed.
        Ok(_) | Err(HttpError::TooLarge(_)) | Err(HttpError::BadRequest(_)) => {
            admission.count_shed(Shed::QueueFull);
            write_shed(&obs, stream, Shed::QueueFull);
        }
        Err(HttpError::Timeout) => {
            admission.count_shed(Shed::QueueFull);
            write_shed(&obs, stream, Shed::QueueFull);
        }
        // Socket gone: nothing sensible to send.
        Err(HttpError::Io(_)) => {
            obs.counter_add("serve.socket_errors_total", 1);
        }
    }
}

/// Serves one connection: one request, one response, close. `budget` is
/// what remains of the request deadline after queue wait — it bounds
/// the socket reads, the handler's `ExecContext`, and the response
/// write.
fn handle_connection(
    state: &Arc<ServeState>,
    cfg: &ServeConfig,
    admission: &Admission,
    mut stream: TcpStream,
    budget: Duration,
) {
    let _ = stream.set_read_timeout(Some(budget));
    let _ = stream.set_write_timeout(Some(budget));
    let started = Instant::now();
    let obs = state.obs().clone();
    // Held across the *response write* too, not just the handler: a
    // slow reader stalling `write_response` for the remaining request
    // budget is still occupying this request's concurrency slot, so
    // the guard lives in the function scope and drops after the write.
    let mut _inflight = None;
    let (endpoint, response) = match read_request(&mut stream, cfg.max_body_bytes) {
        Ok(req) => {
            let endpoint = endpoint_of(&req);
            // The in-flight gate bounds expensive work; the health
            // plane (`/healthz`, `/metrics`) bypasses it so saturation
            // stays observable.
            if !matches!(endpoint, "healthz" | "metrics") {
                match admission.try_begin() {
                    Ok(guard) => _inflight = Some(guard),
                    Err(shed) => {
                        admission.count_shed(shed);
                        obs.counter_add("serve.requests_total", 1);
                        obs.counter_add(&format!("serve.{endpoint}_requests_total"), 1);
                        obs.counter_add("serve.errors_total", 1);
                        write_shed(&obs, &mut stream, shed);
                        return;
                    }
                }
            }
            // Per-request deadline via the runtime's budget machinery:
            // the handler checks the context between stages and turns an
            // expired deadline into a 503 instead of a hung socket. The
            // state's own resource budget (lazy mode's grounding caps)
            // rides under the same context.
            let ctx = ExecContext::new(state.request_budget().with_deadline(budget))
                .with_obs(obs.clone());
            let mut span = obs.span_with(
                "serve.request",
                vec![("endpoint".into(), endpoint.to_owned())],
            );
            let response = route(state, &ctx, &req);
            span.set_attr("status", response.status);
            (endpoint, response)
        }
        Err(HttpError::TooLarge(n)) => {
            ("bad", Response::error(413, &format!("request body of {n} bytes is too large")))
        }
        Err(HttpError::BadRequest(msg)) => ("bad", Response::error(400, &msg)),
        // Slow-loris / stalled sender: tell the client it was too slow.
        Err(HttpError::Timeout) => {
            obs.counter_add("serve.request_timeouts_total", 1);
            ("bad", Response::error(408, "client did not deliver the request in time"))
        }
        // Other socket errors: nothing sensible to send.
        Err(HttpError::Io(_)) => {
            obs.counter_add("serve.socket_errors_total", 1);
            return;
        }
    };
    obs.counter_add("serve.requests_total", 1);
    obs.counter_add(&format!("serve.{endpoint}_requests_total"), 1);
    if response.status >= 400 {
        obs.counter_add("serve.errors_total", 1);
    }
    obs.histogram_record("serve.request_seconds", started.elapsed().as_secs_f64());
    write_response(&obs, &mut stream, &response);
}

/// Metric/span label for the request's endpoint family.
fn endpoint_of(req: &Request) -> &'static str {
    match (req.method.as_str(), req.path.as_str()) {
        (_, p) if p.starts_with("/v1/marginal/") => "marginal",
        (_, "/v1/query") => "query",
        (_, "/v1/evidence") => "evidence",
        (_, "/v1/rows") => "rows",
        (_, "/metrics") => "metrics",
        (_, "/healthz") => "healthz",
        _ => "other",
    }
}

fn route(state: &Arc<ServeState>, ctx: &ExecContext, req: &Request) -> Response {
    if let Some(outcome) = ctx.interrupted() {
        return Response::error(503, &format!("request aborted: {outcome}"));
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(state),
        ("GET", "/metrics") => Response::text(
            200,
            sya_obs::export::render_prometheus(&state.obs().metrics_snapshot()),
        ),
        ("GET", p) if p.starts_with("/v1/marginal/") => {
            marginal(state, ctx, &p["/v1/marginal/".len()..], req)
        }
        ("POST", "/v1/query") => query(state, ctx, req),
        ("POST", "/v1/evidence") => evidence(state, req),
        ("POST", "/v1/rows") => rows(state, req),
        (_, "/healthz" | "/metrics" | "/v1/query" | "/v1/evidence" | "/v1/rows") => {
            Response::error(405, "method not allowed")
        }
        (_, p) if p.starts_with("/v1/marginal/") => Response::error(405, "method not allowed"),
        _ => Response::error(404, "no such endpoint"),
    }
}

fn healthz(state: &Arc<ServeState>) -> Response {
    let (variables, outcome) = state.health_shape();
    let age = match state.checkpoint_age() {
        Some(age) => format!("{:.3}", age.as_secs_f64()),
        None => "null".to_owned(),
    };
    let down = state.down_shards();
    let breakers = state.open_breakers();
    let status = if down.is_empty() && breakers.is_empty() { "ok" } else { "degraded" };
    let down_json: Vec<String> = down.iter().map(usize::to_string).collect();
    let breakers_json: Vec<String> = breakers.iter().map(usize::to_string).collect();
    Response::json(
        200,
        format!(
            "{{\"status\":\"{}\",\"mode\":\"{}\",\"epoch\":{},\"variables\":{},\
             \"outcome\":{},\
             \"shards\":{},\"shards_down\":[{}],\"breakers_open\":[{}],\
             \"uptime_seconds\":{:.3},\"checkpoint_age_seconds\":{}}}",
            status,
            state.mode(),
            state.epoch(),
            variables,
            crate::http::json_string(&outcome),
            state.shard_count(),
            down_json.join(","),
            breakers_json.join(","),
            state.uptime().as_secs_f64(),
            age,
        ),
    )
}

/// Renders one marginal answer as a JSON object.
fn marginal_json(m: &crate::state::MarginalAnswer) -> String {
    let evidence = match m.evidence {
        Some(e) => e.to_string(),
        None => "null".to_owned(),
    };
    let shard = match m.shard {
        Some(s) => s.to_string(),
        None => "null".to_owned(),
    };
    format!(
        "{{\"relation\":{},\"id\":{},\"score\":{:.6},\"evidence\":{},\"epoch\":{},\
         \"shard\":{}}}",
        crate::http::json_string(&m.relation),
        m.id,
        m.score,
        evidence,
        m.epoch,
        shard,
    )
}

/// `GET /v1/marginal/{relation}?args=ID` (also accepts `id=ID`).
fn marginal(
    state: &Arc<ServeState>,
    ctx: &ExecContext,
    relation: &str,
    req: &Request,
) -> Response {
    let Some(raw) = req.query_value("args").or_else(|| req.query_value("id")) else {
        return Response::error(400, "missing ?args=<id> (the atom's id column)");
    };
    let Ok(id) = raw.trim().parse::<i64>() else {
        return Response::error(400, &format!("bad id {raw:?}: want an integer"));
    };
    match state.marginal(relation, id, ctx) {
        Ok(Some(m)) => Response::json(200, marginal_json(&m)),
        Ok(None) => Response::error(404, &format!("no ground atom {relation}({id})")),
        Err(e) => read_failure_response(&e),
    }
}

/// Maps a read-path serving failure onto the wire: transient conditions
/// (down shard, open breaker, exhausted lazy query budget) are 503 +
/// `Retry-After`; a lazy query that failed outright is a plain 500.
fn read_failure_response(e: &ServeError) -> Response {
    match e {
        ServeError::QueryFailed(_) => Response::error(500, &e.to_string()),
        _ => Response::error(503, &e.to_string()).with_retry_after(RETRY_AFTER_SECONDS),
    }
}

/// What a 503 for a down shard advises clients to wait before retrying.
const RETRY_AFTER_SECONDS: u64 = 5;

/// `POST /v1/query` — batch marginal lookup. Body:
/// `{"queries": [{"relation": "IsSafe", "id": 7}, ...]}`.
fn query(state: &Arc<ServeState>, ctx: &ExecContext, req: &Request) -> Response {
    let parsed: Json = match serde_json::from_slice(&req.body) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("bad JSON body: {e}")),
    };
    let Some(queries) = parsed.get("queries").and_then(Json::as_array) else {
        return Response::error(400, "body must be {\"queries\": [{\"relation\",\"id\"}, ...]}");
    };
    let mut pairs: Vec<(String, i64)> = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        let (Some(relation), Some(id)) =
            (q.get("relation").and_then(Json::as_str), q.get("id").and_then(Json::as_i64))
        else {
            return Response::error(
                400,
                &format!("query {i}: want {{\"relation\": string, \"id\": integer}}"),
            );
        };
        pairs.push((relation.to_owned(), id));
    }
    // One marginals() call: lazy mode grounds the batch's misses as a
    // single union neighborhood instead of once per query.
    let answers = match state.marginals(&pairs, ctx) {
        Ok(a) => a,
        Err(e) => return read_failure_response(&e),
    };
    let mut results = Vec::with_capacity(answers.len());
    for (i, answer) in answers.iter().enumerate() {
        match answer {
            Some(m) => results.push(marginal_json(m)),
            None => {
                let (relation, id) = &pairs[i];
                return Response::error(
                    404,
                    &format!("query {i}: no ground atom {relation}({id})"),
                );
            }
        }
    }
    Response::json(
        200,
        format!("{{\"epoch\":{},\"results\":[{}]}}", state.epoch(), results.join(",")),
    )
}

/// `POST /v1/rows` — typed base-row updates, absorbed differentially.
/// Body: `{"updates": [{"op": "insert"|"retract", "relation": "Well",
/// "row": [960, {"x": 20.0, "y": 35.0}, 0.12]}, ...]}`. Cells decode
/// against the relation's declared column types; points also accept
/// `[x, y]`.
fn rows(state: &Arc<ServeState>, req: &Request) -> Response {
    let parsed: Json = match serde_json::from_slice(&req.body) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("bad JSON body: {e}")),
    };
    let Some(updates) = parsed.get("updates").and_then(Json::as_array) else {
        return Response::error(
            400,
            "body must be {\"updates\": [{\"op\",\"relation\",\"row\"}, ...]}",
        );
    };
    let mut raw = Vec::with_capacity(updates.len());
    for (i, u) in updates.iter().enumerate() {
        let op = match u.get("op").and_then(Json::as_str) {
            Some("insert") => sya_delta::RowOp::Insert,
            Some("retract") => sya_delta::RowOp::Retract,
            other => {
                return Response::error(
                    400,
                    &format!(
                        "update {i}: bad op {other:?}: want \"insert\" or \"retract\""
                    ),
                )
            }
        };
        let (Some(relation), Some(row)) =
            (u.get("relation").and_then(Json::as_str), u.get("row").and_then(Json::as_array))
        else {
            return Response::error(
                400,
                &format!("update {i}: want {{\"op\", \"relation\": string, \"row\": array}}"),
            );
        };
        raw.push(crate::rows::RawRowUpdate {
            op,
            relation: relation.to_owned(),
            row: row.clone(),
        });
    }
    match state.apply_rows(&raw) {
        Ok(o) => Response::json(
            200,
            format!(
                "{{\"epoch\":{},\"rows_inserted\":{},\"rows_retracted\":{},\
                 \"vars_added\":{},\"vars_removed\":{},\
                 \"factors_added\":{},\"factors_tombstoned\":{},\
                 \"spatial_factors_added\":{},\"spatial_factors_tombstoned\":{},\
                 \"resampled\":{},\"cache_invalidated\":{},\
                 \"apply_seconds\":{:.6},\"infer_seconds\":{:.6}}}",
                o.epoch,
                o.rows_inserted,
                o.rows_retracted,
                o.vars_added,
                o.vars_removed,
                o.factors_added,
                o.factors_tombstoned,
                o.spatial_factors_added,
                o.spatial_factors_tombstoned,
                o.resampled,
                o.cache_invalidated,
                o.apply_time.as_secs_f64(),
                o.infer_time.as_secs_f64(),
            ),
        ),
        Err(ServeError::BadRows(msg)) => Response::error(400, &msg),
        Err(e @ ServeError::RowsUnsupported { .. }) => Response::error(501, &e.to_string()),
        Err(e @ ServeError::RowsFailed(_)) => Response::error(500, &e.to_string()),
        Err(e) => Response::error(503, &e.to_string()),
    }
}

/// `POST /v1/evidence` — append evidence rows. Body:
/// `{"rows": [{"relation": "IsSafe", "id": 7, "value": 1}, ...]}`;
/// `"value": null` retracts the observation.
fn evidence(state: &Arc<ServeState>, req: &Request) -> Response {
    let parsed: Json = match serde_json::from_slice(&req.body) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("bad JSON body: {e}")),
    };
    let Some(rows) = parsed.get("rows").and_then(Json::as_array) else {
        return Response::error(
            400,
            "body must be {\"rows\": [{\"relation\",\"id\",\"value\"}, ...]}",
        );
    };
    let mut updates = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let (Some(relation), Some(id)) =
            (row.get("relation").and_then(Json::as_str), row.get("id").and_then(Json::as_i64))
        else {
            return Response::error(
                400,
                &format!("row {i}: want {{\"relation\": string, \"id\": integer, \"value\": 0..|null}}"),
            );
        };
        let value = match row.get("value") {
            None | Some(Json::Null) => None,
            Some(v) => match v.as_u64().and_then(|n| u32::try_from(n).ok()) {
                Some(n) => Some(n),
                None => {
                    return Response::error(
                        400,
                        &format!("row {i}: bad value {v}: want a small non-negative integer or null"),
                    )
                }
            },
        };
        updates.push(EvidenceUpdate { relation: relation.to_owned(), id, value });
    }
    match state.apply_evidence(&updates) {
        Ok(outcome) => Response::json(
            200,
            format!(
                "{{\"epoch\":{},\"resampled\":{},\"elapsed_seconds\":{:.6}}}",
                outcome.epoch,
                outcome.resampled,
                outcome.elapsed.as_secs_f64()
            ),
        ),
        Err(ServeError::BadEvidence(msg)) => Response::error(400, &msg),
        Err(e @ (ServeError::ShardDown { .. } | ServeError::BreakerOpen { .. })) => {
            read_failure_response(&e)
        }
        Err(e) => Response::error(503, &e.to_string()),
    }
}
