//! Admission control and load shedding for the serving plane
//! (DESIGN.md §15).
//!
//! An overloaded server that queues without bound fails *everyone*
//! slowly: every request waits behind the backlog, every deadline
//! blows, and goodput collapses exactly when traffic peaks. The
//! overload-control remedy is to fail *some* requests fast so the rest
//! stay within their latency budget. This module is that policy,
//! factored out of the socket plumbing so it can be property-tested as
//! a pure state machine:
//!
//! - **Bounded queue** — [`Admission::try_enqueue`] hands out at most
//!   `max_queue` [`Ticket`]s; overflow is shed with
//!   `503 + Retry-After` *before* the request body is read.
//! - **Shed lane** — queue overflow first tries a tiny triage lane
//!   ([`Admission::try_enqueue_shed`]) whose dedicated thread answers
//!   `GET /healthz` and `GET /metrics` cheaply and sheds everything
//!   else, so the health plane stays alive at full saturation.
//! - **Deadline budget** — a ticket that waited out the request
//!   timeout in the queue is shed at dequeue
//!   ([`Admission::admit_waited`]) instead of executing work whose
//!   client has already given up.
//! - **In-flight gate** — [`Admission::try_begin`] bounds concurrently
//!   executing expensive requests; cheap endpoints bypass it.
//!
//! Every transition lands on the metrics plane:
//! `serve.admission.{queued,inflight}` gauges and
//! `serve.admission.shed_{queue_full,deadline,inflight}_total`
//! counters, all visible on `/metrics`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use sya_obs::Obs;

/// Tunables for the admission state machine, resolved from
/// [`ServeConfig`](crate::ServeConfig) at server start.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Accepted connections waiting for a worker; overflow is shed.
    pub max_queue: usize,
    /// Concurrently executing expensive requests; cheap endpoints
    /// (`/healthz`, `/metrics`) bypass the gate.
    pub max_inflight: usize,
    /// Depth of the triage lane that keeps the health plane answering
    /// when the main queue is full.
    pub shed_lane_depth: usize,
    /// Per-request deadline: queue wait counts against it, and a ticket
    /// that exhausted it is shed at dequeue.
    pub request_timeout: Duration,
}

/// Why a request was shed rather than served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shed {
    /// Both the accept queue and the shed lane are full.
    QueueFull,
    /// The request spent its whole deadline waiting in the queue.
    DeadlineSpent,
    /// The in-flight gate is at capacity.
    InflightFull,
}

impl Shed {
    /// The counter this shed feeds (`serve.admission.*`).
    fn metric(self) -> &'static str {
        match self {
            Shed::QueueFull => "serve.admission.shed_queue_full_total",
            Shed::DeadlineSpent => "serve.admission.shed_deadline_total",
            Shed::InflightFull => "serve.admission.shed_inflight_total",
        }
    }

    /// Human-readable reason for the 503 body.
    pub fn reason(self) -> &'static str {
        match self {
            Shed::QueueFull => "server overloaded: accept queue is full",
            Shed::DeadlineSpent => {
                "server overloaded: request spent its deadline queued"
            }
            Shed::InflightFull => "server overloaded: concurrency limit reached",
        }
    }
}

/// Which bounded lane a [`Ticket`] occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lane {
    Main,
    Shed,
}

/// The admission state machine; cloned handles share one set of
/// counters (acceptor, workers, and the shed thread each hold one).
#[derive(Clone)]
pub struct Admission {
    inner: Arc<AdmissionInner>,
}

struct AdmissionInner {
    cfg: AdmissionConfig,
    queued: AtomicUsize,
    shed_queued: AtomicUsize,
    inflight: AtomicUsize,
    obs: Obs,
}

/// Occupancy of one queue slot, released on drop — a `Pending`
/// connection carries its ticket through the channel so an abandoned
/// queue (shutdown) still releases its slots.
pub struct Ticket {
    admission: Admission,
    lane: Lane,
    enqueued_at: Instant,
}

impl Ticket {
    /// How long this ticket has been queued.
    pub fn waited(&self) -> Duration {
        self.enqueued_at.elapsed()
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        let inner = &self.admission.inner;
        match self.lane {
            Lane::Main => {
                inner.queued.fetch_sub(1, Ordering::AcqRel);
                inner.obs.gauge_add("serve.admission.queued", -1.0);
            }
            Lane::Shed => {
                inner.shed_queued.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }
}

/// Occupancy of one in-flight execution slot, released on drop.
pub struct InflightGuard {
    admission: Admission,
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.admission.inner.inflight.fetch_sub(1, Ordering::AcqRel);
        self.admission.inner.obs.gauge_add("serve.admission.inflight", -1.0);
    }
}

impl Admission {
    pub fn new(cfg: AdmissionConfig, obs: Obs) -> Self {
        // Publish the limits once so a /metrics scrape shows the
        // configured envelope next to the live occupancy.
        obs.gauge_set("serve.admission.max_queue", cfg.max_queue as f64);
        obs.gauge_set("serve.admission.max_inflight", cfg.max_inflight as f64);
        obs.gauge_set("serve.admission.queued", 0.0);
        obs.gauge_set("serve.admission.inflight", 0.0);
        Admission {
            inner: Arc::new(AdmissionInner {
                cfg,
                queued: AtomicUsize::new(0),
                shed_queued: AtomicUsize::new(0),
                inflight: AtomicUsize::new(0),
                obs,
            }),
        }
    }

    pub fn config(&self) -> &AdmissionConfig {
        &self.inner.cfg
    }

    /// Claims a main-queue slot, or reports the queue full. CAS loop:
    /// concurrent acceptor/worker races can never push occupancy past
    /// `max_queue`.
    pub fn try_enqueue(&self) -> Result<Ticket, Shed> {
        self.claim(&self.inner.queued, self.inner.cfg.max_queue, Lane::Main)
    }

    /// Claims a shed-lane slot (triage for queue overflow).
    pub fn try_enqueue_shed(&self) -> Result<Ticket, Shed> {
        self.claim(&self.inner.shed_queued, self.inner.cfg.shed_lane_depth, Lane::Shed)
    }

    fn claim(&self, slot: &AtomicUsize, limit: usize, lane: Lane) -> Result<Ticket, Shed> {
        let mut cur = slot.load(Ordering::Acquire);
        loop {
            if cur >= limit {
                return Err(Shed::QueueFull);
            }
            match slot.compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        if lane == Lane::Main {
            self.inner.obs.gauge_add("serve.admission.queued", 1.0);
        }
        Ok(Ticket { admission: self.clone(), lane, enqueued_at: Instant::now() })
    }

    /// Deadline-budget check at dequeue: a request that spent `waited`
    /// in the queue either still has budget (`Ok(remaining)`) or is
    /// shed without executing. Taking the wait as a parameter keeps the
    /// check clock-free for property tests; the server passes
    /// [`Ticket::waited`].
    pub fn admit_waited(&self, waited: Duration) -> Result<Duration, Shed> {
        match self.inner.cfg.request_timeout.checked_sub(waited) {
            Some(rem) if rem > Duration::ZERO => Ok(rem),
            _ => Err(Shed::DeadlineSpent),
        }
    }

    /// Claims an in-flight execution slot for an expensive request.
    pub fn try_begin(&self) -> Result<InflightGuard, Shed> {
        let slot = &self.inner.inflight;
        let mut cur = slot.load(Ordering::Acquire);
        loop {
            if cur >= self.inner.cfg.max_inflight {
                return Err(Shed::InflightFull);
            }
            match slot.compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        self.inner.obs.gauge_add("serve.admission.inflight", 1.0);
        Ok(InflightGuard { admission: self.clone() })
    }

    /// Records a shed on its `serve.admission.*` counter. Called at the
    /// exact point the 503 is written, so the counters equal the
    /// rejects the wire observed.
    pub fn count_shed(&self, shed: Shed) {
        self.inner.obs.counter_add(shed.metric(), 1);
    }

    /// Live main-queue occupancy.
    pub fn queued(&self) -> usize {
        self.inner.queued.load(Ordering::Acquire)
    }

    /// Live shed-lane occupancy.
    pub fn shed_queued(&self) -> usize {
        self.inner.shed_queued.load(Ordering::Acquire)
    }

    /// Live in-flight occupancy.
    pub fn inflight(&self) -> usize {
        self.inner.inflight.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admission(max_queue: usize, max_inflight: usize) -> Admission {
        Admission::new(
            AdmissionConfig {
                max_queue,
                max_inflight,
                shed_lane_depth: 2,
                request_timeout: Duration::from_millis(100),
            },
            Obs::enabled(),
        )
    }

    #[test]
    fn queue_overflow_is_shed_and_slots_are_released_on_drop() {
        let adm = admission(2, 1);
        let t1 = adm.try_enqueue().expect("slot 1");
        let _t2 = adm.try_enqueue().expect("slot 2");
        assert_eq!(adm.queued(), 2);
        assert!(matches!(adm.try_enqueue(), Err(Shed::QueueFull)));
        drop(t1);
        assert_eq!(adm.queued(), 1);
        let _t3 = adm.try_enqueue().expect("slot freed by drop");
    }

    #[test]
    fn shed_lane_is_independent_of_the_main_queue() {
        let adm = admission(1, 1);
        let _main = adm.try_enqueue().expect("main slot");
        assert!(matches!(adm.try_enqueue(), Err(Shed::QueueFull)));
        let _s1 = adm.try_enqueue_shed().expect("shed slot 1");
        let _s2 = adm.try_enqueue_shed().expect("shed slot 2");
        assert!(matches!(adm.try_enqueue_shed(), Err(Shed::QueueFull)));
        assert_eq!(adm.shed_queued(), 2);
    }

    #[test]
    fn deadline_budget_sheds_stale_tickets() {
        let adm = admission(4, 1);
        let rem = adm.admit_waited(Duration::from_millis(40)).expect("within budget");
        assert_eq!(rem, Duration::from_millis(60));
        assert!(matches!(
            adm.admit_waited(Duration::from_millis(100)),
            Err(Shed::DeadlineSpent)
        ));
        assert!(matches!(
            adm.admit_waited(Duration::from_secs(5)),
            Err(Shed::DeadlineSpent)
        ));
    }

    #[test]
    fn inflight_gate_bounds_concurrency_and_drains_to_zero() {
        let adm = admission(4, 2);
        let g1 = adm.try_begin().expect("slot 1");
        let g2 = adm.try_begin().expect("slot 2");
        assert!(matches!(adm.try_begin(), Err(Shed::InflightFull)));
        assert_eq!(adm.inflight(), 2);
        drop(g1);
        drop(g2);
        assert_eq!(adm.inflight(), 0);
    }

    #[test]
    fn shed_counters_land_on_the_metrics_plane() {
        let obs = Obs::enabled();
        let adm = Admission::new(
            AdmissionConfig {
                max_queue: 1,
                max_inflight: 1,
                shed_lane_depth: 1,
                request_timeout: Duration::from_millis(10),
            },
            obs.clone(),
        );
        adm.count_shed(Shed::QueueFull);
        adm.count_shed(Shed::QueueFull);
        adm.count_shed(Shed::DeadlineSpent);
        adm.count_shed(Shed::InflightFull);
        let snap = obs.metrics_snapshot();
        assert_eq!(snap.counters.get("serve.admission.shed_queue_full_total"), Some(&2));
        assert_eq!(snap.counters.get("serve.admission.shed_deadline_total"), Some(&1));
        assert_eq!(snap.counters.get("serve.admission.shed_inflight_total"), Some(&1));
    }
}
