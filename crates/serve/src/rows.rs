//! `POST /v1/rows`: typed base-row updates over the wire.
//!
//! The dual of `/v1/evidence`: evidence observes *variable* relations,
//! row updates mutate *input* relations — and the KB absorbs them
//! differentially (`sya-delta`) instead of re-grounding from scratch.
//! JSON cells are decoded against the relation's declared column types
//! before anything touches the tables, so a malformed batch is a 400
//! with the offending column named, never a half-applied mutation.

use serde_json::Value as Json;
use std::time::Duration;
use sya_delta::{RowOp, RowUpdate};
use sya_geom::Point;
use sya_lang::CompiledProgram;
use sya_store::{DataType, Row, Value};

/// One wire-format row update, cells still in JSON.
#[derive(Debug, Clone)]
pub struct RawRowUpdate {
    pub op: RowOp,
    pub relation: String,
    pub row: Vec<Json>,
}

/// What an applied `/v1/rows` batch did, across serving modes. The
/// graph-shape fields are zero in lazy mode (nothing is materialized to
/// tombstone or re-sample); `cache_invalidated` is zero in full mode
/// (nothing is cached).
#[derive(Debug, Clone, Copy, Default)]
pub struct RowsOutcome {
    /// The KB epoch after the batch.
    pub epoch: u64,
    pub rows_inserted: usize,
    pub rows_retracted: usize,
    pub vars_added: usize,
    pub vars_removed: usize,
    pub factors_added: usize,
    pub factors_tombstoned: usize,
    pub spatial_factors_added: usize,
    pub spatial_factors_tombstoned: usize,
    /// Variables re-sampled by the conclique-restricted re-inference.
    pub resampled: usize,
    /// Lazy-cache entries dropped because their neighborhood intersects
    /// the delta.
    pub cache_invalidated: usize,
    pub apply_time: Duration,
    pub infer_time: Duration,
}

impl RowsOutcome {
    /// Full-mode outcome from the delta layer's statistics.
    pub(crate) fn from_delta(epoch: u64, s: &sya_delta::DeltaStats) -> RowsOutcome {
        RowsOutcome {
            epoch,
            rows_inserted: s.rows_inserted,
            rows_retracted: s.rows_retracted,
            vars_added: s.vars_added,
            vars_removed: s.vars_removed,
            factors_added: s.factors_added,
            factors_tombstoned: s.factors_tombstoned,
            spatial_factors_added: s.spatial_factors_added,
            spatial_factors_tombstoned: s.spatial_factors_tombstoned,
            resampled: s.resampled,
            cache_invalidated: 0,
            apply_time: s.apply_time,
            infer_time: s.infer_time,
        }
    }
}

/// Decodes a wire batch against the program schemas into typed
/// [`RowUpdate`]s. Rejects variable relations: their ground truth
/// arrives through `/v1/evidence`, not the tables.
pub(crate) fn decode_updates(
    program: &CompiledProgram,
    raw: &[RawRowUpdate],
) -> Result<Vec<RowUpdate>, String> {
    if raw.is_empty() {
        return Err("empty row batch".into());
    }
    let mut updates = Vec::with_capacity(raw.len());
    for (i, u) in raw.iter().enumerate() {
        let at = |msg: String| format!("update #{i}: {msg}");
        let schema = program
            .schema(&u.relation)
            .ok_or_else(|| at(format!("undeclared relation {:?}", u.relation)))?;
        if schema.is_variable {
            return Err(at(format!(
                "{:?} is a variable relation; row updates apply to input relations \
                 (observations go through /v1/evidence)",
                u.relation
            )));
        }
        if u.row.len() != schema.columns.len() {
            return Err(at(format!(
                "{:?} wants {} columns, got {}",
                u.relation,
                schema.columns.len(),
                u.row.len()
            )));
        }
        let mut row: Row = Vec::with_capacity(u.row.len());
        for (cell, (name, ty)) in u.row.iter().zip(&schema.columns) {
            row.push(
                decode_cell(cell, *ty).map_err(|msg| at(format!("column {name:?}: {msg}")))?,
            );
        }
        updates.push(RowUpdate { op: u.op, relation: u.relation.clone(), row });
    }
    Ok(updates)
}

fn decode_cell(cell: &Json, ty: DataType) -> Result<Value, String> {
    if cell.is_null() {
        return Ok(Value::Null);
    }
    let decoded = match ty {
        DataType::Bool => cell.as_bool().map(Value::Bool),
        DataType::BigInt => cell.as_i64().map(Value::Int),
        DataType::Double => cell.as_f64().map(Value::Double),
        DataType::Text => cell.as_str().map(|s| Value::Text(s.to_owned())),
        DataType::Point => decode_point(cell).map(Value::from),
        DataType::Rect | DataType::Polygon | DataType::LineString => {
            return Err(format!("{ty:?} columns are not supported over the wire"))
        }
    };
    decoded.ok_or_else(|| format!("cannot decode {cell} as {ty:?}"))
}

/// A point is `{"x": 20.0, "y": 35.0}` or `[20.0, 35.0]`.
fn decode_point(cell: &Json) -> Option<Point> {
    if let Some(arr) = cell.as_array() {
        if let [x, y] = arr.as_slice() {
            return Some(Point::new(x.as_f64()?, y.as_f64()?));
        }
        return None;
    }
    Some(Point::new(cell.get("x")?.as_f64()?, cell.get("y")?.as_f64()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sya_geom::DistanceMetric;
    use sya_lang::{compile, parse_program, GeomConstants};

    fn program() -> CompiledProgram {
        let src = r#"
        Well(id bigint, location point, arsenic double).
        @spatial(exp)
        IsSafe?(id bigint, location point).
        D1: IsSafe(W, L) = NULL :- Well(W, L, _).
        "#;
        let p = parse_program(src).unwrap();
        compile(&p, &GeomConstants::new(), DistanceMetric::Euclidean).unwrap()
    }

    fn raw(op: RowOp, relation: &str, row: Vec<Json>) -> RawRowUpdate {
        RawRowUpdate { op, relation: relation.to_owned(), row }
    }

    #[test]
    fn decodes_typed_cells_in_both_point_spellings() {
        let p = program();
        let batch = vec![
            raw(
                RowOp::Insert,
                "Well",
                vec![
                    serde_json::json!(7),
                    serde_json::json!({"x": 1.5, "y": 2.5}),
                    serde_json::json!(0.25),
                ],
            ),
            raw(
                RowOp::Retract,
                "Well",
                vec![serde_json::json!(8), serde_json::json!([3.0, 4.0]), Json::Null],
            ),
        ];
        let updates = decode_updates(&p, &batch).unwrap();
        assert_eq!(updates[0].op, RowOp::Insert);
        assert_eq!(updates[0].row[0], Value::Int(7));
        assert_eq!(updates[0].row[1], Value::from(Point::new(1.5, 2.5)));
        assert_eq!(updates[0].row[2], Value::Double(0.25));
        assert_eq!(updates[1].op, RowOp::Retract);
        assert_eq!(updates[1].row[1], Value::from(Point::new(3.0, 4.0)));
        assert_eq!(updates[1].row[2], Value::Null);
    }

    #[test]
    fn rejects_bad_batches_with_the_offending_member_named() {
        let p = program();
        let cases: Vec<(RawRowUpdate, &str)> = vec![
            (raw(RowOp::Insert, "Nope", vec![]), "undeclared"),
            (raw(RowOp::Insert, "IsSafe", vec![]), "variable relation"),
            (raw(RowOp::Insert, "Well", vec![serde_json::json!(1)]), "columns"),
            (
                raw(
                    RowOp::Insert,
                    "Well",
                    vec![serde_json::json!("x"), Json::Null, Json::Null],
                ),
                "column \"id\"",
            ),
        ];
        for (bad, needle) in cases {
            let err = decode_updates(&p, &[bad]).unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
        assert!(decode_updates(&p, &[]).unwrap_err().contains("empty"));
    }
}
