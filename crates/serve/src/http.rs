//! A minimal HTTP/1.1 subset on `std::net::TcpStream` — just enough for
//! the serving endpoints: request line + headers + `Content-Length`
//! body in, status + JSON/text body out, `Connection: close` on every
//! response. No chunked encoding, no keep-alive, no TLS; a reverse
//! proxy in front is the expected production posture (ROADMAP north
//! star), this layer is the engine-side contract.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers). Anything
/// larger is a 431-class client error, not a buffering exercise.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path without the query string, percent-decoded per segment is
    /// *not* applied (relation names are plain identifiers).
    pub path: String,
    /// Decoded `key=value` pairs from the query string.
    pub query: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be served; maps onto an HTTP status.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line/headers/body framing → 400.
    BadRequest(String),
    /// Body longer than the server's limit → 413.
    TooLarge(usize),
    /// The client did not deliver its request within the read deadline
    /// (slow-loris or a stalled sender) → 408.
    Timeout,
    /// Socket-level failure other than a timeout — connection is
    /// dropped without a response body worth sending.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HttpError::TooLarge(n) => write!(f, "request body of {n} bytes exceeds the limit"),
            HttpError::Timeout => write!(f, "client did not deliver the request in time"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        // A read deadline on the socket surfaces as WouldBlock (most
        // Unixes) or TimedOut; both mean the *client* was too slow.
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
            _ => HttpError::Io(e),
        }
    }
}

/// Decodes `%XX` escapes and `+`-as-space in a query component.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok());
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    // Malformed escape: keep the literal bytes.
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a raw query string into decoded pairs.
fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Reads and parses one request from the stream. `max_body` bounds the
/// `Content-Length` the server will buffer.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    // Read until the blank line terminating the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut head_end = None;
    let mut chunk = [0u8; 1024];
    while head_end.is_none() {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::BadRequest("request head too large".into()));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::BadRequest("connection closed mid-request".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
        head_end = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4);
    }
    let head_end = head_end.unwrap();
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?
        .to_owned();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("request line has no target".into()))?;
    if !parts.next().is_some_and(|v| v.starts_with("HTTP/1.")) {
        return Err(HttpError::BadRequest("not an HTTP/1.x request".into()));
    }

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::BadRequest("bad Content-Length".into()))?;
            }
        }
    }
    if content_length > max_body {
        return Err(HttpError::TooLarge(content_length));
    }

    let mut body = buf[head_end..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::BadRequest("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    let (path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q),
        None => (target.to_owned(), ""),
    };
    Ok(Request { method, path, query: parse_query(raw_query), body })
}

/// One response, written with `Connection: close` framing.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Emits a `Retry-After: <seconds>` header — set on 503s for
    /// transient conditions (a down shard, an aborted request) so
    /// well-behaved clients back off instead of hammering.
    pub retry_after: Option<u64>,
}

impl Response {
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        Response::json(status, format!("{{\"error\":{}}}", json_string(message)))
    }

    pub fn with_retry_after(mut self, seconds: u64) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let retry = match self.retry_after {
            Some(secs) => format!("Retry-After: {secs}\r\n"),
            None => String::new(),
        };
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            retry,
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Renders a string as a JSON string literal (quotes + escapes).
pub fn json_string(s: &str) -> String {
    serde_json::Value::String(s.to_owned()).to_json_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_parsing_decodes_escapes() {
        let q = parse_query("args=1&name=a%20b&flag&plus=x+y");
        assert_eq!(q[0], ("args".to_owned(), "1".to_owned()));
        assert_eq!(q[1], ("name".to_owned(), "a b".to_owned()));
        assert_eq!(q[2], ("flag".to_owned(), String::new()));
        assert_eq!(q[3], ("plus".to_owned(), "x y".to_owned()));
    }

    #[test]
    fn percent_decode_tolerates_malformed_escapes() {
        assert_eq!(percent_decode("%"), "%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("%41"), "A");
    }

    #[test]
    fn json_string_escapes_quotes() {
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
    }

    use std::net::TcpListener;
    use std::time::Duration;

    /// A connected (server, client) socket pair on loopback.
    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (server, client)
    }

    /// The status line [`handle_connection`](crate::server) would write
    /// for this read_request error (408 for timeouts, 413 for oversize).
    fn status_for(err: &HttpError) -> u16 {
        match err {
            HttpError::BadRequest(_) => 400,
            HttpError::Timeout => 408,
            HttpError::TooLarge(_) => 413,
            HttpError::Io(_) => 0,
        }
    }

    #[test]
    fn slow_loris_times_out_as_408() {
        let (mut server, mut client) = socket_pair();
        server.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        // A partial request head, then silence: the classic slow-loris.
        client.write_all(b"GET /healthz HT").unwrap();
        client.flush().unwrap();
        let err = read_request(&mut server, 1024).expect_err("must not hang");
        assert!(matches!(err, HttpError::Timeout), "got {err:?}");
        assert_eq!(status_for(&err), 408);
    }

    #[test]
    fn oversized_body_is_rejected_as_413_without_buffering() {
        let (mut server, mut client) = socket_pair();
        server.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        // Content-Length over the limit: rejected from the header alone,
        // before any body bytes arrive.
        client
            .write_all(b"POST /v1/evidence HTTP/1.1\r\nContent-Length: 4096\r\n\r\n")
            .unwrap();
        client.flush().unwrap();
        let err = read_request(&mut server, 1024).expect_err("oversized body must be refused");
        assert!(matches!(err, HttpError::TooLarge(4096)), "got {err:?}");
        assert_eq!(status_for(&err), 413);
    }

    #[test]
    fn well_formed_request_still_parses_under_the_same_deadline() {
        let (mut server, mut client) = socket_pair();
        server.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        client
            .write_all(b"POST /v1/query?x=1 HTTP/1.1\r\nContent-Length: 2\r\n\r\nok")
            .unwrap();
        client.flush().unwrap();
        let req = read_request(&mut server, 1024).expect("valid request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/query");
        assert_eq!(req.body, b"ok");
    }

    #[test]
    fn retry_after_header_is_emitted_on_demand() {
        let (mut server, mut client) = socket_pair();
        client.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        Response::error(503, "shard 1 is down")
            .with_retry_after(5)
            .write_to(&mut server)
            .unwrap();
        drop(server);
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("\r\nRetry-After: 5\r\n"), "{text}");
        assert!(text.contains("shard 1 is down"), "{text}");

        // And stays absent when not requested.
        let (mut server, mut client) = socket_pair();
        client.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        Response::error(404, "nope").write_to(&mut server).unwrap();
        drop(server);
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        assert!(!text.contains("Retry-After"), "{text}");
    }
}
