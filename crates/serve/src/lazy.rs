//! Lazy serving (DESIGN.md §16): a KB that is *never fully grounded*.
//!
//! `sya serve --lazy` skips `SyaSession::construct` entirely — the
//! server holds only the compiled program and the input tables, and
//! every `/v1/marginal` / `/v1/query` request demand-grounds the bound
//! atom's factor neighborhood through [`sya_query::QueryGrounder`] and
//! answers it with a short restricted chain. This is the read path for
//! KBs too large to ground up front: per-request cost scales with the
//! neighborhood (hop depth × spatial radius), not the KB.
//!
//! Answers are cached in an **epoch-keyed LRU**: each entry is stamped
//! with the evidence epoch it was grounded under, and `/v1/evidence`
//! bumps the epoch (and drops the cache), so a stale neighborhood can
//! never answer a query — the lazy twin of the full path's
//! epoch-versioned `RwLock` swap. Evidence updates here cost O(rows):
//! no incremental re-inference runs, because nothing is materialized to
//! re-infer; the next query of an affected atom simply re-grounds.
//!
//! Trade-offs versus [`ServingKb`](crate::ServingKb), by design:
//! * evidence validation cannot check atom *existence* (there is no
//!   grounded catalogue); an unknown id is accepted and simply never
//!   matches a neighborhood;
//! * misses serialize on the single grounder lock (the hash-index and
//!   bandwidth caches are shared mutable state); hits are lock-cheap;
//! * marginals carry single-chain sampling noise per grounding, where
//!   the full path amortizes one long chain over every atom.

use crate::rows::{RawRowUpdate, RowsOutcome};
use crate::state::{EvidenceOutcome, EvidenceUpdate, MarginalAnswer};
use crate::ServeError;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};
use sya_delta::RowOp;
use sya_geom::{DistanceMetric, Point, Rect};
use sya_ground::{candidate_radius, GroundConfig, Grounding};
use sya_lang::CompiledProgram;
use sya_obs::Obs;
use sya_query::{QueryAnswer, QueryConfig, QueryError, QueryGrounder};
use sya_runtime::{ExecContext, RunBudget};
use sya_store::{Database, Value};

/// Tunables of the lazy serving state.
#[derive(Debug, Clone)]
pub struct LazyConfig {
    /// Hop depth, boundary policy, and restricted-chain settings of the
    /// per-request demand grounding.
    pub query: QueryConfig,
    /// Per-request resource budget (variables/factors/memory); the
    /// request deadline is layered on top by the server. Exhaustion is
    /// a 503 + Retry-After, counted on `serve.query.budget_exceeded_total`.
    pub budget: RunBudget,
    /// Neighborhood-cache capacity (answers, one per `(relation, id)`);
    /// 0 disables caching.
    pub cache_capacity: usize,
}

impl Default for LazyConfig {
    fn default() -> Self {
        LazyConfig {
            query: QueryConfig::default(),
            budget: RunBudget::unlimited(),
            cache_capacity: 1024,
        }
    }
}

/// The demand grounder and its input tables. One lock for both: every
/// cache miss needs the grounder's hash-index/bandwidth caches and the
/// database's R-tree probes mutably, together.
struct LazyEngine {
    grounder: QueryGrounder,
    db: Database,
}

/// A cached neighborhood's invalidation footprint: the grounding's
/// bounding box plus the integer ids of every atom it materialized. A
/// `/v1/rows` delta intersects the entry iff one of its rows lands
/// inside the box (expanded by the spatial interaction radius) or names
/// one of the ids — everything else provably cannot change the answer.
#[derive(Debug, Clone)]
struct Footprint {
    bbox: Rect,
    ids: HashSet<i64>,
}

fn footprint_of(grounding: &Grounding) -> Footprint {
    let ids = grounding
        .atom_meta
        .iter()
        .filter_map(|(_, values)| values.first().and_then(Value::as_int))
        .collect();
    Footprint { bbox: grounding.graph.bounding_box(), ids }
}

/// One cached answer, stamped with the evidence epoch it was grounded
/// under and an LRU tick.
struct CacheEntry {
    epoch: u64,
    tick: u64,
    answer: QueryAnswer,
    footprint: Footprint,
}

/// Bounded `(relation, id)` → answer map with epoch invalidation and
/// least-recently-used eviction (linear-scan evict: the capacity is
/// dashboard-scale, not KB-scale).
struct QueryCache {
    map: HashMap<(String, i64), CacheEntry>,
    tick: u64,
    capacity: usize,
}

impl QueryCache {
    fn new(capacity: usize) -> Self {
        QueryCache { map: HashMap::new(), tick: 0, capacity }
    }

    /// A hit requires the entry's grounding epoch to match the current
    /// evidence epoch; a stale entry is dropped on sight.
    fn get(&mut self, key: &(String, i64), epoch: u64) -> Option<QueryAnswer> {
        match self.map.get_mut(key) {
            Some(e) if e.epoch == epoch => {
                self.tick += 1;
                e.tick = self.tick;
                Some(e.answer.clone())
            }
            Some(_) => {
                self.map.remove(key);
                None
            }
            None => None,
        }
    }

    /// Inserts (evicting the least recently used entry at capacity) and
    /// returns the resulting entry count.
    fn insert(
        &mut self,
        key: (String, i64),
        epoch: u64,
        answer: QueryAnswer,
        footprint: Footprint,
    ) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, e)| e.tick).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.tick += 1;
        self.map.insert(key, CacheEntry { epoch, tick: self.tick, answer, footprint });
        self.map.len()
    }

    /// Targeted invalidation: drops entries whose footprint the
    /// predicate matches and re-stamps the survivors to `epoch`.
    /// Re-stamping is load-bearing — [`QueryCache::get`] drops entries
    /// from older epochs on sight, so surviving a *selective*
    /// invalidation only means something if the survivor carries the
    /// new epoch. Returns the number of entries dropped.
    fn retain_and_restamp(&mut self, epoch: u64, hit: impl Fn(&Footprint) -> bool) -> usize {
        let before = self.map.len();
        self.map.retain(|_, e| !hit(&e.footprint));
        for e in self.map.values_mut() {
            e.epoch = epoch;
        }
        before - self.map.len()
    }

    fn clear(&mut self) -> usize {
        let n = self.map.len();
        self.map.clear();
        n
    }
}

/// A singleflight slot: the first thread to miss a `(relation, id,
/// epoch)` key grounds it; followers block here until the leader
/// publishes (or fails), then re-check the cache.
struct Flight {
    done: Mutex<bool>,
    cv: Condvar,
}

/// The lazy serving state: compiled program + input tables + evidence
/// map + demand grounder, but **no factor graph** — neighborhoods are
/// grounded per query and cached per evidence epoch.
pub struct LazyKb {
    engine: Mutex<LazyEngine>,
    /// `(relation, id)` → observed value; the only mutable KB state in
    /// lazy mode. Queries ground under the read lock so the epoch a
    /// cache entry is stamped with matches the evidence it saw.
    evidence: RwLock<HashMap<(String, i64), u32>>,
    epoch: AtomicU64,
    cache: Mutex<QueryCache>,
    /// In-flight demand groundings, keyed `(relation, id, epoch)`:
    /// concurrent misses of the same atom coalesce onto one grounding
    /// instead of queueing up behind the engine lock to each redo it.
    flights: Mutex<HashMap<(String, i64, u64), Arc<Flight>>>,
    /// Distance metric of the ground config, for converting the spatial
    /// interaction radius into coordinate units when testing whether a
    /// row update lands inside a cached neighborhood's bounding box.
    metric: DistanceMetric,
    /// Domain size per variable relation (from the ground config),
    /// for evidence validation.
    domains: HashMap<String, u32>,
    /// Declared variable relations, for evidence validation without
    /// taking the engine lock.
    variable_relations: HashSet<String>,
    budget: RunBudget,
    obs: Obs,
    started: Instant,
}

impl LazyKb {
    /// Wraps a compiled program and its loaded input tables for lazy
    /// serving. Like the full path, requires the spatial engine — the
    /// demand grounding's neighborhood bound *is* the spatial-factor
    /// radius; a program with no `@spatial` relation has nothing to
    /// bound the closure with.
    pub fn new(
        program: CompiledProgram,
        ground: GroundConfig,
        db: Database,
        evidence: HashMap<(String, i64), u32>,
        cfg: LazyConfig,
        obs: Obs,
    ) -> Result<Self, ServeError> {
        if program.spatial_variable_relations().next().is_none() {
            return Err(ServeError::NotSpatial);
        }
        let domains = ground.domains.clone();
        let metric = ground.metric;
        let variable_relations = program
            .schemas
            .values()
            .filter(|s| s.is_variable)
            .map(|s| s.name.clone())
            .collect();
        let grounder = QueryGrounder::new(program, ground, cfg.query);
        obs.gauge_set("serve.query.cache_entries", 0.0);
        Ok(LazyKb {
            engine: Mutex::new(LazyEngine { grounder, db }),
            evidence: RwLock::new(evidence),
            epoch: AtomicU64::new(0),
            cache: Mutex::new(QueryCache::new(cfg.cache_capacity)),
            flights: Mutex::new(HashMap::new()),
            metric,
            domains,
            variable_relations,
            budget: cfg.budget,
            obs,
            started: Instant::now(),
        })
    }

    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Evidence epoch: 0 at startup, +1 per applied evidence batch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// The per-request resource budget the server layers the request
    /// deadline onto.
    pub fn request_budget(&self) -> RunBudget {
        self.budget.clone()
    }

    /// `(cached answers, variables materialized across them)` — the
    /// lazy stand-in for the full path's graph-shape health fields.
    pub fn cache_shape(&self) -> (usize, usize) {
        let cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        let vars = cache.map.values().map(|e| e.answer.stats.variables).sum();
        (cache.map.len(), vars)
    }

    /// Point marginal via demand grounding: epoch-keyed cache, then the
    /// grounder. `Ok(None)` is an unknown atom (404); budget exhaustion
    /// is [`ServeError::QueryBudget`] (503 + Retry-After).
    ///
    /// Misses are **singleflighted** per `(relation, id, epoch)`: the
    /// first thread grounds (and counts the miss), concurrent callers of
    /// the same atom count `serve.query.singleflight_wait_total`, park
    /// until the leader publishes its cache entry, and answer from it —
    /// a thundering herd on one hot atom does one grounding, not one per
    /// worker thread. If the leader fails, a waiter is elected leader on
    /// its next pass and retries the grounding itself.
    pub fn marginal(
        &self,
        relation: &str,
        id: i64,
        ctx: &ExecContext,
    ) -> Result<Option<MarginalAnswer>, ServeError> {
        self.obs.counter_add("serve.query.requests_total", 1);
        // The evidence read lock pins the epoch for the whole grounding:
        // an evidence or row batch (write lock) cannot slip between the
        // cache check and the insert, so entries are never stamped stale.
        let evidence = self.evidence.read().unwrap_or_else(|e| e.into_inner());
        let epoch = self.epoch();
        let key = (relation.to_owned(), id);
        loop {
            let hit = {
                let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
                cache.get(&key, epoch)
            };
            if let Some(answer) = hit {
                self.obs.counter_add("serve.query.cache_hit_total", 1);
                return Ok(Some(to_marginal(&answer, epoch)));
            }
            let fkey = (key.0.clone(), key.1, epoch);
            let (flight, leader) = {
                let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
                match flights.entry(fkey.clone()) {
                    Entry::Occupied(e) => (Arc::clone(e.get()), false),
                    Entry::Vacant(v) => {
                        let f = Arc::new(Flight { done: Mutex::new(false), cv: Condvar::new() });
                        (Arc::clone(v.insert(f)), true)
                    }
                }
            };
            if !leader {
                self.obs.counter_add("serve.query.singleflight_wait_total", 1);
                let mut done = flight.done.lock().unwrap_or_else(|e| e.into_inner());
                while !*done {
                    done = flight.cv.wait(done).unwrap_or_else(|e| e.into_inner());
                }
                // Leader published (or failed): re-check the cache. A
                // failed or capacity-0-evicted entry makes this thread
                // the next leader rather than spinning.
                continue;
            }
            // A genuine cache miss is counted exactly once per grounding
            // — here in the leader branch — so miss/hit counters keep
            // meaning "groundings performed" under concurrency.
            self.obs.counter_add("serve.query.cache_miss_total", 1);
            let result = self.ground_and_cache(&key, epoch, &evidence, ctx);
            {
                let mut done = flight.done.lock().unwrap_or_else(|e| e.into_inner());
                *done = true;
                flight.cv.notify_all();
            }
            self.flights.lock().unwrap_or_else(|e| e.into_inner()).remove(&fkey);
            return result;
        }
    }

    /// The leader's side of a cache miss: demand-ground the atom's
    /// neighborhood, record its footprint, cache, and answer.
    fn ground_and_cache(
        &self,
        key: &(String, i64),
        epoch: u64,
        evidence: &HashMap<(String, i64), u32>,
        ctx: &ExecContext,
    ) -> Result<Option<MarginalAnswer>, ServeError> {
        let (relation, id) = (key.0.as_str(), key.1);
        let ev_fn = |rel: &str, values: &[Value]| -> Option<u32> {
            values
                .first()
                .and_then(Value::as_int)
                .and_then(|vid| evidence.get(&(rel.to_owned(), vid)).copied())
        };
        let result = {
            let mut engine = self.engine.lock().unwrap_or_else(|e| e.into_inner());
            let LazyEngine { grounder, db } = &mut *engine;
            grounder.neighborhood(db, &ev_fn, relation, id, ctx).and_then(|nh| {
                let footprint = footprint_of(&nh.grounding);
                grounder.answer(&nh, ctx).map(|answer| (answer, footprint))
            })
        };
        match result {
            Ok((answer, footprint)) => {
                self.obs.histogram_record(
                    "serve.query.ground_seconds",
                    answer.stats.ground_time.as_secs_f64(),
                );
                self.obs.histogram_record(
                    "serve.query.infer_seconds",
                    answer.stats.infer_time.as_secs_f64(),
                );
                for w in &answer.warnings {
                    self.obs.debug(format!("lazy query {relation}({id}): {w}"));
                }
                let entries = {
                    let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
                    cache.insert(key.clone(), epoch, answer.clone(), footprint)
                };
                self.obs.gauge_set("serve.query.cache_entries", entries as f64);
                Ok(Some(to_marginal(&answer, epoch)))
            }
            Err(QueryError::NotFound { .. } | QueryError::UnknownRelation(_)) => Ok(None),
            Err(QueryError::Budget(b)) => {
                self.obs.counter_add("serve.query.budget_exceeded_total", 1);
                Err(ServeError::QueryBudget(b.to_string()))
            }
            Err(e) => Err(ServeError::QueryFailed(e.to_string())),
        }
    }

    /// Batch marginals through **one union grounding**: cache hits are
    /// answered per key; the misses are deduplicated and demand-grounded
    /// together ([`QueryGrounder::neighborhood_batch`]), so overlapping
    /// neighborhoods share their BFS closure and a single restricted
    /// chain instead of re-grounding the shared region once per query.
    /// Answers align with `queries`; `None` mirrors the point path's 404
    /// (unknown relation or atom). The batch path skips singleflight —
    /// the union grounding is itself the coalescing mechanism.
    pub fn marginal_batch(
        &self,
        queries: &[(String, i64)],
        ctx: &ExecContext,
    ) -> Result<Vec<Option<MarginalAnswer>>, ServeError> {
        if queries.len() <= 1 {
            return queries.iter().map(|(r, i)| self.marginal(r, *i, ctx)).collect();
        }
        self.obs.counter_add("serve.query.requests_total", queries.len() as u64);
        let evidence = self.evidence.read().unwrap_or_else(|e| e.into_inner());
        let epoch = self.epoch();
        let mut out: Vec<Option<MarginalAnswer>> = vec![None; queries.len()];
        let mut misses: Vec<(String, i64)> = Vec::new();
        {
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            for (i, key) in queries.iter().enumerate() {
                if !self.variable_relations.contains(&key.0) {
                    continue; // stays None → per-query 404, like the point path
                }
                if let Some(answer) = cache.get(key, epoch) {
                    self.obs.counter_add("serve.query.cache_hit_total", 1);
                    out[i] = Some(to_marginal(&answer, epoch));
                } else if !misses.contains(key) {
                    misses.push(key.clone());
                }
            }
        }
        if misses.is_empty() {
            return Ok(out);
        }
        self.obs.counter_add("serve.query.cache_miss_total", misses.len() as u64);
        self.obs.counter_add("serve.query.batch_union_total", 1);
        let ev_fn = |rel: &str, values: &[Value]| -> Option<u32> {
            values
                .first()
                .and_then(Value::as_int)
                .and_then(|vid| evidence.get(&(rel.to_owned(), vid)).copied())
        };
        let result = {
            let mut engine = self.engine.lock().unwrap_or_else(|e| e.into_inner());
            let LazyEngine { grounder, db } = &mut *engine;
            grounder.neighborhood_batch(db, &ev_fn, &misses, ctx).and_then(|nh| {
                let footprint = footprint_of(&nh.grounding);
                grounder.answer_batch(&nh, ctx).map(|answers| (answers, footprint))
            })
        };
        let (answers, footprint) = match result {
            Ok(x) => x,
            Err(QueryError::Budget(b)) => {
                self.obs.counter_add("serve.query.budget_exceeded_total", 1);
                return Err(ServeError::QueryBudget(b.to_string()));
            }
            Err(e) => return Err(ServeError::QueryFailed(e.to_string())),
        };
        if let Some(a) = answers.first() {
            self.obs
                .histogram_record("serve.query.ground_seconds", a.stats.ground_time.as_secs_f64());
            self.obs
                .histogram_record("serve.query.infer_seconds", a.stats.infer_time.as_secs_f64());
        }
        // Every answer from the union is cached under the union's
        // footprint — conservative for invalidation (a delta near any
        // member drops them all), exact for correctness.
        let entries = {
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            let mut n = cache.map.len();
            for answer in &answers {
                n = cache.insert(
                    (answer.relation.clone(), answer.id),
                    epoch,
                    answer.clone(),
                    footprint.clone(),
                );
            }
            n
        };
        self.obs.gauge_set("serve.query.cache_entries", entries as f64);
        let by_key: HashMap<(String, i64), MarginalAnswer> = answers
            .iter()
            .map(|a| ((a.relation.clone(), a.id), to_marginal(a, epoch)))
            .collect();
        for (i, key) in queries.iter().enumerate() {
            if out[i].is_none() {
                out[i] = by_key.get(key).cloned();
            }
        }
        Ok(out)
    }

    /// Applies an evidence batch: validate, swap the evidence map, bump
    /// the epoch, drop the cache. `resampled` is always 0 — lazy mode
    /// re-grounds affected neighborhoods on their next query instead of
    /// re-inferring eagerly.
    pub fn apply_evidence(&self, rows: &[EvidenceUpdate]) -> Result<EvidenceOutcome, ServeError> {
        let started = Instant::now();
        if rows.is_empty() {
            return Err(ServeError::BadEvidence("empty evidence batch".into()));
        }
        let mut seen = HashSet::new();
        for (i, row) in rows.iter().enumerate() {
            let at = |msg: String| ServeError::BadEvidence(format!("row {i}: {msg}"));
            if !self.variable_relations.contains(&row.relation) {
                return Err(at(format!(
                    "evidence applies only to declared variable relations, not {:?}",
                    row.relation
                )));
            }
            let cardinality = self.domains.get(&row.relation).copied().unwrap_or(2);
            if let Some(value) = row.value {
                if value >= cardinality {
                    return Err(at(format!(
                        "value {value} is out of range for {:?} (domain 0..{cardinality})",
                        row.relation
                    )));
                }
            }
            if !seen.insert((row.relation.clone(), row.id)) {
                return Err(at(format!(
                    "duplicate evidence for {:?} id {}",
                    row.relation, row.id
                )));
            }
        }
        let epoch = {
            let mut evidence = self.evidence.write().unwrap_or_else(|e| e.into_inner());
            for row in rows {
                match row.value {
                    Some(v) => {
                        evidence.insert((row.relation.clone(), row.id), v);
                    }
                    None => {
                        evidence.remove(&(row.relation.clone(), row.id));
                    }
                }
            }
            self.epoch.fetch_add(1, Ordering::SeqCst) + 1
        };
        let dropped = {
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            cache.clear()
        };
        self.obs.gauge_set("serve.query.cache_entries", 0.0);
        self.obs.counter_add("serve.query.cache_invalidated_total", dropped as u64);
        self.obs.gauge_set("serve.kb_epoch", epoch as f64);
        self.obs.counter_add("serve.evidence_rows_total", rows.len() as u64);
        Ok(EvidenceOutcome { epoch, resampled: 0, elapsed: started.elapsed() })
    }

    /// Applies a `/v1/rows` batch to the input tables. Lazy mode has no
    /// materialized graph to patch — the differential work is **cache
    /// surgery**: validate and mutate the tables, bump the epoch, then
    /// drop only the cached neighborhoods whose footprint intersects the
    /// delta (a changed row inside the entry's bounding box expanded by
    /// the spatial interaction radius, or naming one of its atom ids)
    /// and re-stamp the survivors. Untouched neighborhoods keep serving
    /// from cache across the update; touched ones re-ground on their
    /// next query.
    pub fn apply_rows(&self, raw: &[RawRowUpdate]) -> Result<RowsOutcome, ServeError> {
        let started = Instant::now();
        // Same lock order as the query path (evidence, then engine), but
        // exclusive: in-flight marginals hold the evidence read lock for
        // their whole grounding, so the write lock serializes the table
        // mutation + epoch bump + cache surgery against all of them.
        let _evidence = self.evidence.write().unwrap_or_else(|e| e.into_inner());
        let mut engine = self.engine.lock().unwrap_or_else(|e| e.into_inner());
        let LazyEngine { grounder, db } = &mut *engine;
        let updates = crate::rows::decode_updates(grounder.program(), raw)
            .map_err(ServeError::BadRows)?;

        // All-or-nothing validation before any table is touched;
        // retractions claim distinct row indices so a batch can retract
        // duplicates but never the same physical row twice.
        let mut retracts: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, u) in updates.iter().enumerate() {
            let at = |msg: String| ServeError::BadRows(format!("update #{i}: {msg}"));
            let table = db.table(&u.relation).map_err(|e| at(e.to_string()))?;
            table.check_row(&u.row).map_err(|e| at(e.to_string()))?;
            if u.op == RowOp::Retract {
                let claimed = retracts.entry(u.relation.clone()).or_default();
                let Some(rid) =
                    table.find_rows(&u.row).into_iter().find(|r| !claimed.contains(r))
                else {
                    return Err(at(format!("no matching {} row to retract", u.relation)));
                };
                claimed.push(rid);
            }
        }

        // Delta footprint: a representative point and/or first integer
        // id per row. A row exposing neither cannot be localized, so the
        // whole cache goes (conservative, correct).
        let mut touch_points: Vec<Point> = Vec::new();
        let mut touch_ids: HashSet<i64> = HashSet::new();
        let mut conservative = false;
        for u in &updates {
            let point =
                u.row.iter().find_map(|v| v.as_geom().map(|g| g.representative_point()));
            let id = u.row.iter().find_map(Value::as_int);
            if point.is_none() && id.is_none() {
                conservative = true;
            }
            touch_points.extend(point);
            touch_ids.extend(id);
        }

        let mut inserted = 0usize;
        let mut retracted = 0usize;
        for (rel, rows) in &retracts {
            retracted +=
                db.table_mut(rel).expect("validated above").remove_rows(rows);
        }
        for u in updates.iter().filter(|u| u.op == RowOp::Insert) {
            db.table_mut(&u.relation)
                .expect("validated above")
                .insert(u.row.clone())
                .map_err(|e| ServeError::RowsFailed(e.to_string()))?;
            inserted += 1;
        }
        // The grounder's hash indexes and bandwidth cache were built
        // over the old tables; the R-tree is rebuilt by the table layer.
        grounder.invalidate_indexes();
        // Interaction horizon in coordinate units: a changed row can
        // only affect neighborhoods within the largest spatial-factor
        // radius of it.
        let margin =
            grounder.max_factor_radius(db).ok().map(|r| candidate_radius(self.metric, r));

        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let (dropped, entries) = {
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            let dropped = match margin {
                Some(margin) if !conservative => {
                    cache.retain_and_restamp(epoch, |fp| {
                        !fp.ids.is_disjoint(&touch_ids)
                            || touch_points
                                .iter()
                                .any(|p| fp.bbox.expand(margin).contains_point(p))
                    })
                }
                _ => cache.clear(),
            };
            (dropped, cache.map.len())
        };
        self.obs.gauge_set("serve.query.cache_entries", entries as f64);
        self.obs.counter_add("serve.query.cache_invalidated_total", dropped as u64);
        self.obs.gauge_set("serve.kb_epoch", epoch as f64);
        self.obs.counter_add("serve.rows_total", raw.len() as u64);
        self.obs.counter_add("delta.rows_inserted_total", inserted as u64);
        self.obs.counter_add("delta.rows_retracted_total", retracted as u64);
        let apply_time = started.elapsed();
        self.obs.histogram_record("serve.rows_apply_seconds", apply_time.as_secs_f64());
        self.obs.histogram_record("delta.apply_seconds", apply_time.as_secs_f64());
        Ok(RowsOutcome {
            epoch,
            rows_inserted: inserted,
            rows_retracted: retracted,
            cache_invalidated: dropped,
            apply_time,
            ..RowsOutcome::default()
        })
    }
}

fn to_marginal(answer: &QueryAnswer, epoch: u64) -> MarginalAnswer {
    MarginalAnswer {
        relation: answer.relation.clone(),
        id: answer.id,
        score: answer.score,
        evidence: answer.evidence,
        epoch,
        shard: None,
    }
}
