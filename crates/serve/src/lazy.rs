//! Lazy serving (DESIGN.md §16): a KB that is *never fully grounded*.
//!
//! `sya serve --lazy` skips `SyaSession::construct` entirely — the
//! server holds only the compiled program and the input tables, and
//! every `/v1/marginal` / `/v1/query` request demand-grounds the bound
//! atom's factor neighborhood through [`sya_query::QueryGrounder`] and
//! answers it with a short restricted chain. This is the read path for
//! KBs too large to ground up front: per-request cost scales with the
//! neighborhood (hop depth × spatial radius), not the KB.
//!
//! Answers are cached in an **epoch-keyed LRU**: each entry is stamped
//! with the evidence epoch it was grounded under, and `/v1/evidence`
//! bumps the epoch (and drops the cache), so a stale neighborhood can
//! never answer a query — the lazy twin of the full path's
//! epoch-versioned `RwLock` swap. Evidence updates here cost O(rows):
//! no incremental re-inference runs, because nothing is materialized to
//! re-infer; the next query of an affected atom simply re-grounds.
//!
//! Trade-offs versus [`ServingKb`](crate::ServingKb), by design:
//! * evidence validation cannot check atom *existence* (there is no
//!   grounded catalogue); an unknown id is accepted and simply never
//!   matches a neighborhood;
//! * misses serialize on the single grounder lock (the hash-index and
//!   bandwidth caches are shared mutable state); hits are lock-cheap;
//! * marginals carry single-chain sampling noise per grounding, where
//!   the full path amortizes one long chain over every atom.

use crate::state::{EvidenceOutcome, EvidenceUpdate, MarginalAnswer};
use crate::ServeError;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::{Duration, Instant};
use sya_ground::GroundConfig;
use sya_lang::CompiledProgram;
use sya_obs::Obs;
use sya_query::{QueryAnswer, QueryConfig, QueryError, QueryGrounder};
use sya_runtime::{ExecContext, RunBudget};
use sya_store::{Database, Value};

/// Tunables of the lazy serving state.
#[derive(Debug, Clone)]
pub struct LazyConfig {
    /// Hop depth, boundary policy, and restricted-chain settings of the
    /// per-request demand grounding.
    pub query: QueryConfig,
    /// Per-request resource budget (variables/factors/memory); the
    /// request deadline is layered on top by the server. Exhaustion is
    /// a 503 + Retry-After, counted on `serve.query.budget_exceeded_total`.
    pub budget: RunBudget,
    /// Neighborhood-cache capacity (answers, one per `(relation, id)`);
    /// 0 disables caching.
    pub cache_capacity: usize,
}

impl Default for LazyConfig {
    fn default() -> Self {
        LazyConfig {
            query: QueryConfig::default(),
            budget: RunBudget::unlimited(),
            cache_capacity: 1024,
        }
    }
}

/// The demand grounder and its input tables. One lock for both: every
/// cache miss needs the grounder's hash-index/bandwidth caches and the
/// database's R-tree probes mutably, together.
struct LazyEngine {
    grounder: QueryGrounder,
    db: Database,
}

/// One cached answer, stamped with the evidence epoch it was grounded
/// under and an LRU tick.
struct CacheEntry {
    epoch: u64,
    tick: u64,
    answer: QueryAnswer,
}

/// Bounded `(relation, id)` → answer map with epoch invalidation and
/// least-recently-used eviction (linear-scan evict: the capacity is
/// dashboard-scale, not KB-scale).
struct QueryCache {
    map: HashMap<(String, i64), CacheEntry>,
    tick: u64,
    capacity: usize,
}

impl QueryCache {
    fn new(capacity: usize) -> Self {
        QueryCache { map: HashMap::new(), tick: 0, capacity }
    }

    /// A hit requires the entry's grounding epoch to match the current
    /// evidence epoch; a stale entry is dropped on sight.
    fn get(&mut self, key: &(String, i64), epoch: u64) -> Option<QueryAnswer> {
        match self.map.get_mut(key) {
            Some(e) if e.epoch == epoch => {
                self.tick += 1;
                e.tick = self.tick;
                Some(e.answer.clone())
            }
            Some(_) => {
                self.map.remove(key);
                None
            }
            None => None,
        }
    }

    /// Inserts (evicting the least recently used entry at capacity) and
    /// returns the resulting entry count.
    fn insert(&mut self, key: (String, i64), epoch: u64, answer: QueryAnswer) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, e)| e.tick).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.tick += 1;
        self.map.insert(key, CacheEntry { epoch, tick: self.tick, answer });
        self.map.len()
    }

    fn clear(&mut self) -> usize {
        let n = self.map.len();
        self.map.clear();
        n
    }
}

/// The lazy serving state: compiled program + input tables + evidence
/// map + demand grounder, but **no factor graph** — neighborhoods are
/// grounded per query and cached per evidence epoch.
pub struct LazyKb {
    engine: Mutex<LazyEngine>,
    /// `(relation, id)` → observed value; the only mutable KB state in
    /// lazy mode. Queries ground under the read lock so the epoch a
    /// cache entry is stamped with matches the evidence it saw.
    evidence: RwLock<HashMap<(String, i64), u32>>,
    epoch: AtomicU64,
    cache: Mutex<QueryCache>,
    /// Domain size per variable relation (from the ground config),
    /// for evidence validation.
    domains: HashMap<String, u32>,
    /// Declared variable relations, for evidence validation without
    /// taking the engine lock.
    variable_relations: HashSet<String>,
    budget: RunBudget,
    obs: Obs,
    started: Instant,
}

impl LazyKb {
    /// Wraps a compiled program and its loaded input tables for lazy
    /// serving. Like the full path, requires the spatial engine — the
    /// demand grounding's neighborhood bound *is* the spatial-factor
    /// radius; a program with no `@spatial` relation has nothing to
    /// bound the closure with.
    pub fn new(
        program: CompiledProgram,
        ground: GroundConfig,
        db: Database,
        evidence: HashMap<(String, i64), u32>,
        cfg: LazyConfig,
        obs: Obs,
    ) -> Result<Self, ServeError> {
        if program.spatial_variable_relations().next().is_none() {
            return Err(ServeError::NotSpatial);
        }
        let domains = ground.domains.clone();
        let variable_relations = program
            .schemas
            .values()
            .filter(|s| s.is_variable)
            .map(|s| s.name.clone())
            .collect();
        let grounder = QueryGrounder::new(program, ground, cfg.query);
        obs.gauge_set("serve.query.cache_entries", 0.0);
        Ok(LazyKb {
            engine: Mutex::new(LazyEngine { grounder, db }),
            evidence: RwLock::new(evidence),
            epoch: AtomicU64::new(0),
            cache: Mutex::new(QueryCache::new(cfg.cache_capacity)),
            domains,
            variable_relations,
            budget: cfg.budget,
            obs,
            started: Instant::now(),
        })
    }

    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Evidence epoch: 0 at startup, +1 per applied evidence batch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// The per-request resource budget the server layers the request
    /// deadline onto.
    pub fn request_budget(&self) -> RunBudget {
        self.budget.clone()
    }

    /// `(cached answers, variables materialized across them)` — the
    /// lazy stand-in for the full path's graph-shape health fields.
    pub fn cache_shape(&self) -> (usize, usize) {
        let cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        let vars = cache.map.values().map(|e| e.answer.stats.variables).sum();
        (cache.map.len(), vars)
    }

    /// Point marginal via demand grounding: epoch-keyed cache, then the
    /// grounder. `Ok(None)` is an unknown atom (404); budget exhaustion
    /// is [`ServeError::QueryBudget`] (503 + Retry-After).
    pub fn marginal(
        &self,
        relation: &str,
        id: i64,
        ctx: &ExecContext,
    ) -> Result<Option<MarginalAnswer>, ServeError> {
        self.obs.counter_add("serve.query.requests_total", 1);
        // The evidence read lock pins the epoch for the whole grounding:
        // an evidence batch (write lock) cannot slip between the cache
        // check and the insert, so entries are never stamped stale.
        let evidence = self.evidence.read().unwrap_or_else(|e| e.into_inner());
        let epoch = self.epoch();
        let key = (relation.to_owned(), id);
        let hit = {
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            cache.get(&key, epoch)
        };
        if let Some(answer) = hit {
            self.obs.counter_add("serve.query.cache_hit_total", 1);
            return Ok(Some(to_marginal(&answer, epoch)));
        }
        self.obs.counter_add("serve.query.cache_miss_total", 1);

        let ev_fn = |rel: &str, values: &[Value]| -> Option<u32> {
            values
                .first()
                .and_then(Value::as_int)
                .and_then(|vid| evidence.get(&(rel.to_owned(), vid)).copied())
        };
        let result = {
            let mut engine = self.engine.lock().unwrap_or_else(|e| e.into_inner());
            let LazyEngine { grounder, db } = &mut *engine;
            grounder.marginal(db, &ev_fn, relation, id, ctx)
        };
        match result {
            Ok(answer) => {
                self.obs.histogram_record(
                    "serve.query.ground_seconds",
                    answer.stats.ground_time.as_secs_f64(),
                );
                self.obs.histogram_record(
                    "serve.query.infer_seconds",
                    answer.stats.infer_time.as_secs_f64(),
                );
                for w in &answer.warnings {
                    self.obs.debug(format!("lazy query {relation}({id}): {w}"));
                }
                let entries = {
                    let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
                    cache.insert(key, epoch, answer.clone())
                };
                self.obs.gauge_set("serve.query.cache_entries", entries as f64);
                Ok(Some(to_marginal(&answer, epoch)))
            }
            Err(QueryError::NotFound { .. } | QueryError::UnknownRelation(_)) => Ok(None),
            Err(QueryError::Budget(b)) => {
                self.obs.counter_add("serve.query.budget_exceeded_total", 1);
                Err(ServeError::QueryBudget(b.to_string()))
            }
            Err(e) => Err(ServeError::QueryFailed(e.to_string())),
        }
    }

    /// Applies an evidence batch: validate, swap the evidence map, bump
    /// the epoch, drop the cache. `resampled` is always 0 — lazy mode
    /// re-grounds affected neighborhoods on their next query instead of
    /// re-inferring eagerly.
    pub fn apply_evidence(&self, rows: &[EvidenceUpdate]) -> Result<EvidenceOutcome, ServeError> {
        let started = Instant::now();
        if rows.is_empty() {
            return Err(ServeError::BadEvidence("empty evidence batch".into()));
        }
        let mut seen = HashSet::new();
        for (i, row) in rows.iter().enumerate() {
            let at = |msg: String| ServeError::BadEvidence(format!("row {i}: {msg}"));
            if !self.variable_relations.contains(&row.relation) {
                return Err(at(format!(
                    "evidence applies only to declared variable relations, not {:?}",
                    row.relation
                )));
            }
            let cardinality = self.domains.get(&row.relation).copied().unwrap_or(2);
            if let Some(value) = row.value {
                if value >= cardinality {
                    return Err(at(format!(
                        "value {value} is out of range for {:?} (domain 0..{cardinality})",
                        row.relation
                    )));
                }
            }
            if !seen.insert((row.relation.clone(), row.id)) {
                return Err(at(format!(
                    "duplicate evidence for {:?} id {}",
                    row.relation, row.id
                )));
            }
        }
        let epoch = {
            let mut evidence = self.evidence.write().unwrap_or_else(|e| e.into_inner());
            for row in rows {
                match row.value {
                    Some(v) => {
                        evidence.insert((row.relation.clone(), row.id), v);
                    }
                    None => {
                        evidence.remove(&(row.relation.clone(), row.id));
                    }
                }
            }
            self.epoch.fetch_add(1, Ordering::SeqCst) + 1
        };
        let dropped = {
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            cache.clear()
        };
        self.obs.gauge_set("serve.query.cache_entries", 0.0);
        self.obs.counter_add("serve.query.cache_invalidated_total", dropped as u64);
        self.obs.gauge_set("serve.kb_epoch", epoch as f64);
        self.obs.counter_add("serve.evidence_rows_total", rows.len() as u64);
        Ok(EvidenceOutcome { epoch, resampled: 0, elapsed: started.elapsed() })
    }
}

fn to_marginal(answer: &QueryAnswer, epoch: u64) -> MarginalAnswer {
    MarginalAnswer {
        relation: answer.relation.clone(),
        id: answer.id,
        score: answer.score,
        evidence: answer.evidence,
        epoch,
        shard: None,
    }
}
