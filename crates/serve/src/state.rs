//! The live knowledge base behind the endpoints: an `RwLock`-guarded,
//! epoch-versioned handle. Reads (marginal lookups, health) take the
//! read lock; evidence updates take the write lock, run the
//! conclique-restricted incremental sampler, merge the refreshed
//! marginals in place, and bump the epoch — one atomic swap from the
//! clients' point of view, since no reader can observe the KB between
//! the merge and the epoch increment.

use crate::rows::{RawRowUpdate, RowsOutcome};
use crate::ServeError;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::{Duration, Instant};
use sya_core::{KnowledgeBase, SyaSession};
use sya_infer::{ChainState, CheckpointState};
use sya_obs::Obs;
use sya_store::{Database, Value};

/// One evidence change submitted over the wire. `value: None` retracts
/// the observation (the atom becomes a query variable again).
#[derive(Debug, Clone, PartialEq)]
pub struct EvidenceUpdate {
    pub relation: String,
    pub id: i64,
    pub value: Option<u32>,
}

/// What an applied evidence batch did.
#[derive(Debug, Clone, Copy)]
pub struct EvidenceOutcome {
    /// The KB epoch after the update.
    pub epoch: u64,
    /// Variables the conclique-restricted re-run re-sampled.
    pub resampled: usize,
    pub elapsed: Duration,
}

/// A point marginal answer.
#[derive(Debug, Clone)]
pub struct MarginalAnswer {
    pub relation: String,
    pub id: i64,
    pub score: f64,
    /// The observed value when the atom is evidence.
    pub evidence: Option<u32>,
    /// KB epoch the score was read at.
    pub epoch: u64,
    /// The shard that answered, when serving through the shard router.
    pub shard: Option<u32>,
}

/// The mutable ingestion inputs a live (`/v1/rows`-capable) server
/// retains: the loaded base tables and the CLI-loaded evidence map the
/// KB was constructed from. One mutex for both — a row batch mutates
/// the tables and re-grounds against the evidence together.
struct LiveInputs {
    db: Database,
    evidence: HashMap<(String, i64), u32>,
}

/// The serving state shared by all worker threads.
pub struct ServingKb {
    session: SyaSession,
    kb: RwLock<KnowledgeBase>,
    epoch: AtomicU64,
    /// `(relation, id column) -> variable`, rebuilt after row batches;
    /// the id keys every endpoint the same way `scores_by_id` does.
    /// Readers must drop this lock before taking `kb` (row applies
    /// lock `kb` first, then this).
    atoms: RwLock<HashMap<(String, i64), u32>>,
    /// `Some` when built via [`Self::with_live`]: the inputs `/v1/rows`
    /// batches mutate. `None` replicas (sharded mode, embedders without
    /// the tables) answer 501 for row updates.
    live: Option<Mutex<LiveInputs>>,
    obs: Obs,
    started: Instant,
    ckpt: Option<sya_ckpt::CheckpointStore>,
    last_checkpoint: Mutex<Option<Instant>>,
    last_saved_epoch: AtomicU64,
}

/// Builds the `(relation, id) -> variable` routing map, skipping atoms
/// retired by differential maintenance.
fn atom_index(kb: &KnowledgeBase) -> HashMap<(String, i64), u32> {
    let mut atoms = HashMap::new();
    for (v, (relation, values)) in kb.grounding.atom_meta.iter().enumerate() {
        if kb.grounding.graph.is_var_dead(v as u32) {
            continue;
        }
        if let Some(id) = values.first().and_then(Value::as_int) {
            atoms.insert((relation.clone(), id), v as u32);
        }
    }
    atoms
}

impl ServingKb {
    /// Wraps a constructed knowledge base for serving. Requires the
    /// spatial sampler (the pyramid index is the incremental-update
    /// structure). When the KB was built with a checkpoint directory,
    /// the same directory receives the serve-time background snapshots.
    pub fn new(session: SyaSession, kb: KnowledgeBase, obs: Obs) -> Result<Self, ServeError> {
        if kb.pyramid.is_none() {
            return Err(ServeError::NotSpatial);
        }
        let atoms = atom_index(&kb);
        let ckpt = match &kb.config.checkpoint.dir {
            Some(dir) => Some(
                sya_ckpt::CheckpointStore::create(dir.clone(), kb.grounding.graph.fingerprint())
                    .map_err(|e| ServeError::Checkpoint(e.to_string()))?,
            ),
            None => None,
        };
        Ok(ServingKb {
            session,
            kb: RwLock::new(kb),
            epoch: AtomicU64::new(0),
            atoms: RwLock::new(atoms),
            live: None,
            obs,
            started: Instant::now(),
            ckpt,
            last_checkpoint: Mutex::new(None),
            last_saved_epoch: AtomicU64::new(u64::MAX),
        })
    }

    /// Like [`Self::new`], but retains the base tables and evidence map
    /// the KB was constructed from, enabling `POST /v1/rows`: inserted
    /// and retracted rows are absorbed differentially (`sya-delta`)
    /// instead of requiring a restart-and-reground.
    pub fn with_live(
        session: SyaSession,
        kb: KnowledgeBase,
        db: Database,
        evidence: HashMap<(String, i64), u32>,
        obs: Obs,
    ) -> Result<Self, ServeError> {
        let mut state = Self::new(session, kb, obs)?;
        state.live = Some(Mutex::new(LiveInputs { db, evidence }));
        Ok(state)
    }

    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    pub fn session(&self) -> &SyaSession {
        &self.session
    }

    /// Current KB epoch: 0 at startup, +1 per applied evidence batch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Point marginal lookup; `None` when the atom was never grounded
    /// (or was retired by a row retraction).
    pub fn marginal(&self, relation: &str, id: i64) -> Option<MarginalAnswer> {
        // Scoped so the atom lock is released before `kb` is taken:
        // row applies acquire the two in the opposite order.
        let v = {
            let atoms = self.atoms.read().unwrap_or_else(|e| e.into_inner());
            *atoms.get(&(relation.to_owned(), id))?
        };
        let kb = self.kb.read().unwrap_or_else(|e| e.into_inner());
        if kb.grounding.graph.is_var_dead(v) {
            return None;
        }
        let score = kb.score_of(v);
        let evidence = kb.grounding.graph.variable(v).evidence;
        Some(MarginalAnswer {
            relation: relation.to_owned(),
            id,
            score,
            evidence,
            epoch: self.epoch(),
            shard: None,
        })
    }

    /// Validates an evidence batch against the program schema with the
    /// same hardening rules as the CLI's `--evidence` loader: the
    /// relation must be a declared *variable* relation, the value must
    /// fit its domain, each `(relation, id)` may appear once per batch,
    /// and the atom must exist in the grounded KB.
    pub(crate) fn validate(
        &self,
        rows: &[EvidenceUpdate],
    ) -> Result<Vec<(u32, Option<u32>)>, ServeError> {
        if rows.is_empty() {
            return Err(ServeError::BadEvidence("empty evidence batch".into()));
        }
        let compiled = self.session.compiled();
        let domains = &self.session.config().ground.domains;
        let atoms = self.atoms.read().unwrap_or_else(|e| e.into_inner());
        let mut seen = HashSet::new();
        let mut changes = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let at = |msg: String| ServeError::BadEvidence(format!("row {i}: {msg}"));
            let schema = compiled.schema(&row.relation).ok_or_else(|| {
                at(format!("evidence references undeclared relation {:?}", row.relation))
            })?;
            if !schema.is_variable {
                return Err(at(format!(
                    "{:?} is an input relation; evidence applies only to variable relations",
                    row.relation
                )));
            }
            let cardinality = domains.get(&row.relation).copied().unwrap_or(2);
            if let Some(value) = row.value {
                if value >= cardinality {
                    return Err(at(format!(
                        "value {value} is out of range for {:?} (domain 0..{cardinality})",
                        row.relation
                    )));
                }
            }
            if !seen.insert((row.relation.clone(), row.id)) {
                return Err(at(format!(
                    "duplicate evidence for {:?} id {}",
                    row.relation, row.id
                )));
            }
            let &v = atoms.get(&(row.relation.clone(), row.id)).ok_or_else(|| {
                at(format!("no ground atom {}({})", row.relation, row.id))
            })?;
            changes.push((v, row.value));
        }
        Ok(changes)
    }

    /// Applies an evidence batch: validate, write-lock, incremental
    /// re-inference over the affected concliques, epoch bump.
    pub fn apply_evidence(&self, rows: &[EvidenceUpdate]) -> Result<EvidenceOutcome, ServeError> {
        let changes = self.validate(rows)?;
        let mut kb = self.kb.write().unwrap_or_else(|e| e.into_inner());
        let (elapsed, resampled) =
            kb.update_evidence_incremental_observed(&changes, &self.obs);
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        drop(kb);
        self.obs.gauge_set("serve.kb_epoch", epoch as f64);
        self.obs.counter_add("serve.evidence_rows_total", rows.len() as u64);
        // The write-path cost distribution: evidence applies are what
        // saturate a worker pool first, so capacity planning (and the
        // overload smoke's expectations) read from this histogram.
        self.obs.histogram_record("serve.evidence_apply_seconds", elapsed.as_secs_f64());
        Ok(EvidenceOutcome { epoch, resampled, elapsed })
    }

    /// Applies a `/v1/rows` batch differentially: decode against the
    /// schemas, run `sya_delta::apply_updates` under the write lock
    /// (retract → tombstone, insert → delta-ground, conclique-restricted
    /// warm re-inference of the touched variables), rebuild the atom
    /// routing map, bump the epoch. All-or-nothing: a bad batch leaves
    /// tables and graph untouched.
    pub fn apply_rows(&self, raw: &[RawRowUpdate]) -> Result<RowsOutcome, ServeError> {
        let Some(live) = &self.live else {
            return Err(ServeError::RowsUnsupported { mode: "full (no live inputs retained)" });
        };
        let updates = crate::rows::decode_updates(self.session.compiled(), raw)
            .map_err(ServeError::BadRows)?;
        let mut inputs = live.lock().unwrap_or_else(|e| e.into_inner());
        let LiveInputs { db, evidence } = &mut *inputs;
        let ev: &HashMap<(String, i64), u32> = evidence;
        let ev_fn = |rel: &str, values: &[Value]| -> Option<u32> {
            values
                .first()
                .and_then(Value::as_int)
                .and_then(|id| ev.get(&(rel.to_owned(), id)).copied())
        };
        let (stats, rebuilt) = {
            let mut kb = self.kb.write().unwrap_or_else(|e| e.into_inner());
            let stats = sya_delta::apply_updates(&self.session, &mut kb, db, &ev_fn, &updates)
                .map_err(|e| match e {
                    sya_delta::DeltaError::BadUpdate(msg) => ServeError::BadRows(msg),
                    sya_delta::DeltaError::NotSpatial => ServeError::NotSpatial,
                    sya_delta::DeltaError::Ground(g) => ServeError::RowsFailed(g.to_string()),
                })?;
            (stats, atom_index(&kb))
        };
        *self.atoms.write().unwrap_or_else(|e| e.into_inner()) = rebuilt;
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        drop(inputs);
        self.obs.gauge_set("serve.kb_epoch", epoch as f64);
        self.obs.counter_add("serve.rows_total", raw.len() as u64);
        self.obs.histogram_record("serve.rows_apply_seconds", stats.apply_time.as_secs_f64());
        Ok(RowsOutcome::from_delta(epoch, &stats))
    }

    /// Runs queries and evidence against the KB via a caller-provided
    /// closure under the read lock (health details, batch queries).
    pub fn with_kb<T>(&self, f: impl FnOnce(&KnowledgeBase) -> T) -> T {
        let kb = self.kb.read().unwrap_or_else(|e| e.into_inner());
        f(&kb)
    }

    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Age of the newest serve-time checkpoint, `None` before the first
    /// save (or when checkpointing is off).
    pub fn checkpoint_age(&self) -> Option<Duration> {
        self.last_checkpoint
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map(|at| at.elapsed())
    }

    /// Persists the live marginals as a spatial checkpoint the batch
    /// pipeline can warm-start from (`sya run/serve --resume`). Returns
    /// the file path, or `None` when checkpointing is disabled or the
    /// KB epoch has not moved since the last save.
    pub fn checkpoint_now(&self) -> Result<Option<PathBuf>, ServeError> {
        let Some(store) = &self.ckpt else { return Ok(None) };
        let epoch = self.epoch();
        if self.last_saved_epoch.load(Ordering::SeqCst) == epoch {
            return Ok(None);
        }
        let state = {
            let kb = self.kb.read().unwrap_or_else(|e| e.into_inner());
            live_checkpoint_state(&kb, epoch)
        };
        let path = store
            .save_state(&state)
            .map_err(|e| ServeError::Checkpoint(e.to_string()))?;
        self.last_saved_epoch.store(epoch, Ordering::SeqCst);
        *self.last_checkpoint.lock().unwrap_or_else(|e| e.into_inner()) = Some(Instant::now());
        self.obs.counter_add("serve.checkpoints_total", 1);
        Ok(Some(path))
    }
}

/// Synthesizes a `CheckpointState::Spatial` snapshot of the live KB.
///
/// The chains are *not* a paused sampler: each of the `k` configured
/// instances gets the same assignment (evidence value, else the count
/// argmax) and the same accumulated count rows, with its next-epoch set
/// past the per-instance share so a resume replays zero epochs and goes
/// straight to merging. Merging `k` identical count tables scales every
/// row uniformly, and marginals are count *ratios* — the warm-started
/// scores equal the live ones. `serve_epoch` is folded into the chain
/// epoch so successive saves get monotonically increasing file names.
fn live_checkpoint_state(kb: &KnowledgeBase, serve_epoch: u64) -> CheckpointState {
    let cfg = &kb.config.infer;
    let k = cfg.instances.max(1);
    let share = (cfg.epochs / k).max(1) as u64;
    let assignment = kb.map_assignment();
    let chain = ChainState {
        epoch: share + serve_epoch,
        assignment,
        // Any well-formed (non-zero) xoshiro state: the resume replays
        // zero epochs, so the stream is never advanced.
        rng: vec![
            cfg.seed ^ 0x9E37_79B9_7F4A_7C15,
            cfg.seed.rotate_left(21) | 1,
            0xD1B5_4A32_D192_ED03,
            serve_epoch.wrapping_add(1),
        ],
        counts: kb.counts.to_rows(),
        recorded: true,
    };
    CheckpointState::Spatial { instances: vec![chain; k] }
}
