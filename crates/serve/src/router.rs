//! The shard router: serving a spatially sharded knowledge base
//! (DESIGN.md §12).
//!
//! The router cuts the KB with the same partitioner the batch executor
//! uses ([`sya_shard::ShardPlan`]) and gives every shard its own
//! [`ServingKb`] replica — its own `RwLock`, its own epoch counter, its
//! own serve-time checkpoint store (`serve-shard-NN/` under the
//! checkpoint dir). Requests route by spatial key: the atom's owning
//! shard (from the partitioner's owner map) answers its marginals and
//! absorbs its evidence. A `/v1/evidence` POST therefore write-locks and
//! incrementally re-infers *one* shard while every other shard keeps
//! serving reads — the scaling property the sharded serve path exists
//! for.
//!
//! Consistency: each shard is the single writer for the atoms it owns,
//! so a query always reflects every update to the atom it asks about.
//! Foreign replicas keep the constructed (pre-update) values of atoms
//! they do not own as their boundary conditioning — the serve-time
//! equivalent of the batch executor's halo staleness between epoch
//! barriers, and the price of not write-locking every shard per update.

use crate::state::{EvidenceOutcome, EvidenceUpdate, MarginalAnswer, ServingKb};
use crate::ServeError;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use sya_core::{KnowledgeBase, SyaSession};
use sya_obs::Obs;
use sya_runtime::{Backoff, Breaker, BreakerState};
use sya_store::Value;

/// Consecutive failures that trip a shard's circuit breaker.
const BREAKER_THRESHOLD: u32 = 3;

/// Probe schedule for an open shard breaker: first probe after 500 ms,
/// doubling to at most 30 s between probes while the shard stays sick.
fn breaker_backoff() -> Backoff {
    Backoff::new(Duration::from_millis(500), Duration::from_secs(30))
}

/// Routes requests to per-shard [`ServingKb`] replicas by spatial key.
pub struct ShardRouter {
    shards: Vec<ServingKb>,
    /// Variable → owning shard, from the partitioner.
    owner: Vec<u32>,
    /// `(relation, id column)` → variable: the routing key every
    /// endpoint uses, built once at startup.
    atoms: HashMap<(String, i64), u32>,
    /// Administrative per-shard availability: a down shard's atoms get
    /// 503 + `Retry-After` while every other shard keeps serving — the
    /// serving twin of the cluster's degraded-not-failed posture.
    down: Vec<AtomicBool>,
    /// Per-shard circuit breakers tracking *write-path* health:
    /// consecutive evidence-apply failures open the breaker and
    /// fast-fail that shard's requests with 503 + `Retry-After` until a
    /// half-open *write* probe succeeds. Reads are gated on the breaker
    /// (a shard wedged mid-write can stall readers on its lock) but
    /// never consume the probe or close the breaker — a read has no
    /// failure path, so a read probe would close a breaker whose writes
    /// are still failing and flap it open again. Distinct from the
    /// administrative `down` flag, and reported separately on the
    /// `serve.shard.N.breaker` gauge.
    breakers: Vec<Breaker>,
    obs: Obs,
}

impl ShardRouter {
    /// Cuts the KB per its [`sya_core::ShardingConfig`] and builds one
    /// serving replica per shard. Requires the spatial sampler (each
    /// replica needs the pyramid index for incremental re-inference).
    pub fn new(session: SyaSession, kb: KnowledgeBase, obs: Obs) -> Result<Self, ServeError> {
        let sharding = kb.config.sharding;
        let shards = sharding.shards.max(1);
        let level = sharding.partition_level.min(12);
        let cells = sya_ground::pyramid_cell_map(&kb.grounding.graph, level);
        let plan = sya_shard::ShardPlan::build(&kb.grounding.graph, &cells, shards, level);

        let mut atoms = HashMap::new();
        for (v, (relation, values)) in kb.grounding.atom_meta.iter().enumerate() {
            if let Some(id) = values.first().and_then(Value::as_int) {
                atoms.insert((relation.clone(), id), v as u32);
            }
        }

        let mut replicas = Vec::with_capacity(shards);
        for s in 0..shards {
            let mut shard_kb = kb.clone();
            if let Some(dir) = shard_kb.config.checkpoint.dir.take() {
                shard_kb.config.checkpoint.dir = Some(dir.join(format!("serve-shard-{s:02}")));
            }
            replicas.push(ServingKb::new(session.clone(), shard_kb, obs.clone())?);
        }

        obs.gauge_set("serve.shards", shards as f64);
        for s in plan.summaries() {
            obs.gauge_set(&format!("serve.shard.{}.vars", s.shard), s.owned_vars as f64);
            obs.gauge_set(
                &format!("serve.shard.{}.boundary_factors", s.shard),
                s.boundary_factors as f64,
            );
            // Per-shard availability (1 = serving, 0 = down), so the
            // /metrics scrape shows exactly which shard is out.
            obs.gauge_set(&format!("serve.shard.{}.up", s.shard), 1.0);
            // Breaker state rides the same gauge family (0 = closed,
            // 1 = open, 2 = half-open), so a scrape distinguishes
            // "marked down by supervisor" from "breaker-open".
            obs.gauge_set(&format!("serve.shard.{}.breaker", s.shard), 0.0);
        }
        let down = (0..shards).map(|_| AtomicBool::new(false)).collect();
        let breakers =
            (0..shards).map(|_| Breaker::new(BREAKER_THRESHOLD, breaker_backoff())).collect();
        Ok(ShardRouter { shards: replicas, owner: plan.owner, atoms, down, breakers, obs })
    }

    /// Replaces every shard's breaker policy — tests use a zero-delay
    /// backoff so open→half-open transitions need no sleeping.
    pub fn set_breaker_policy(&mut self, threshold: u32, backoff: Backoff) {
        for (s, slot) in self.breakers.iter_mut().enumerate() {
            *slot = Breaker::new(threshold, backoff);
            self.obs.gauge_set(&format!("serve.shard.{s}.breaker"), 0.0);
        }
    }

    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Marks a shard unavailable: its atoms answer 503 + `Retry-After`
    /// until [`mark_shard_up`](Self::mark_shard_up). Out-of-range
    /// indices are ignored.
    pub fn mark_shard_down(&self, shard: usize) {
        if let Some(flag) = self.down.get(shard) {
            flag.store(true, Ordering::Release);
            self.obs.warn(format!("serve: shard {shard} marked down"));
            self.obs.gauge_set(&format!("serve.shard.{shard}.up"), 0.0);
            self.obs.gauge_set("serve.shards_down", self.down_shards().len() as f64);
        }
    }

    /// Restores a shard marked down.
    pub fn mark_shard_up(&self, shard: usize) {
        if let Some(flag) = self.down.get(shard) {
            flag.store(false, Ordering::Release);
            self.obs.info(format!("serve: shard {shard} marked up"));
            self.obs.gauge_set(&format!("serve.shard.{shard}.up"), 1.0);
            self.obs.gauge_set("serve.shards_down", self.down_shards().len() as f64);
        }
    }

    /// Counts a request rejected because its owning shard is down (the
    /// 503 funnel) and returns the error, so every rejection site feeds
    /// `serve.shard_unavailable_total`.
    fn shard_unavailable(&self, shard: usize) -> ServeError {
        self.obs.counter_add("serve.shard_unavailable_total", 1);
        ServeError::ShardDown { shard }
    }

    pub fn shard_is_down(&self, shard: usize) -> bool {
        self.down.get(shard).is_some_and(|f| f.load(Ordering::Acquire))
    }

    /// Publishes `shard`'s breaker state on the `serve.shard.N.breaker`
    /// gauge (0 = closed, 1 = open, 2 = half-open) and refreshes the
    /// open-breaker rollup.
    fn publish_breaker(&self, shard: usize) {
        let code = match self.breakers[shard].state() {
            BreakerState::Closed => 0.0,
            BreakerState::Open => 1.0,
            BreakerState::HalfOpen => 2.0,
        };
        self.obs.gauge_set(&format!("serve.shard.{shard}.breaker"), code);
        self.obs.gauge_set("serve.breakers_open", self.open_breakers().len() as f64);
    }

    /// Records a failed operation against `shard`'s breaker — called on
    /// every execution error, and directly by tests scripting failure
    /// sequences. Out-of-range indices are ignored.
    pub fn record_shard_failure(&self, shard: usize) {
        if let Some(b) = self.breakers.get(shard) {
            let before = b.state();
            b.on_failure();
            let after = b.state();
            if before != after {
                self.obs.warn(format!(
                    "serve: shard {shard} breaker opened after consecutive failures"
                ));
            }
            self.publish_breaker(shard);
        }
    }

    /// Records a successful operation against `shard`'s breaker; a
    /// half-open probe success closes it.
    pub fn record_shard_success(&self, shard: usize) {
        if let Some(b) = self.breakers.get(shard) {
            let before = b.state();
            // Hot-path fast-out: a closed breaker with no failure streak
            // has nothing to reset and nothing to publish.
            if before == BreakerState::Closed && b.consecutive_failures() == 0 {
                return;
            }
            b.on_success();
            if before == BreakerState::HalfOpen {
                self.obs.info(format!("serve: shard {shard} breaker closed after probe"));
            }
            self.publish_breaker(shard);
        }
    }

    pub fn breaker_state(&self, shard: usize) -> Option<BreakerState> {
        self.breakers.get(shard).map(Breaker::state)
    }

    /// Shards whose breaker is not closed (open or probing), ascending.
    pub fn open_breakers(&self) -> Vec<usize> {
        (0..self.breakers.len())
            .filter(|&s| self.breakers[s].state() != BreakerState::Closed)
            .collect()
    }

    /// Counts a breaker fast-fail on `serve.shard_breaker_fastfail_total`
    /// and returns the error, so every rejection site feeds the counter.
    fn breaker_reject(&self, shard: usize) -> ServeError {
        self.obs.counter_add("serve.shard_breaker_fastfail_total", 1);
        ServeError::BreakerOpen { shard }
    }

    /// Write-path gate for an operation on `shard`: an open breaker
    /// fast-fails with 503 + `Retry-After`; once the open window
    /// elapses, one caller is let through as the half-open probe.
    ///
    /// `Ok(())` here may have *consumed* the half-open probe — the
    /// caller is contractually on the hook to report
    /// [`record_shard_success`](Self::record_shard_success) or
    /// [`record_shard_failure`](Self::record_shard_failure) for the
    /// operation it performs next, on every path. An unreported probe
    /// leaves the breaker half-open (admitting nothing) until the
    /// runtime's probe lease expires, so only call this immediately
    /// before executing against the shard.
    fn breaker_check(&self, shard: usize) -> Result<(), ServeError> {
        // Hot-path fast-out: a closed breaker admits without publishing.
        if self.breakers[shard].state() == BreakerState::Closed {
            return Ok(());
        }
        if self.breakers[shard].allow() {
            self.publish_breaker(shard); // may have moved open → half-open
            Ok(())
        } else {
            Err(self.breaker_reject(shard))
        }
    }

    /// Read-path (and batch pre-check) gate: same admit/reject decision
    /// as [`breaker_check`](Self::breaker_check) but *non-consuming* —
    /// it never leases the half-open probe, so callers with no
    /// execution outcome to report (reads cannot fail) cannot strand
    /// the probe. An open shard's reads resume once the backoff window
    /// elapses even though only a successful write closes the breaker.
    fn breaker_peek(&self, shard: usize) -> Result<(), ServeError> {
        if self.breakers[shard].would_allow() {
            Ok(())
        } else {
            Err(self.breaker_reject(shard))
        }
    }

    /// Indices of shards currently marked down, ascending.
    pub fn down_shards(&self) -> Vec<usize> {
        (0..self.down.len()).filter(|&s| self.shard_is_down(s)).collect()
    }

    /// The shard owning `(relation, id)`, or `None` for unknown atoms.
    pub fn shard_of(&self, relation: &str, id: i64) -> Option<usize> {
        let &v = self.atoms.get(&(relation.to_owned(), id))?;
        Some(self.owner[v as usize] as usize)
    }

    /// Global epoch: the sum of per-shard epochs, so every applied
    /// evidence batch moves it by at least one.
    pub fn epoch(&self) -> u64 {
        self.shards.iter().map(ServingKb::epoch).sum()
    }

    /// Per-shard epochs, in shard order.
    pub fn shard_epochs(&self) -> Vec<u64> {
        self.shards.iter().map(ServingKb::epoch).collect()
    }

    /// Point marginal, answered by the owning shard and tagged with it.
    /// `Ok(None)` is an unknown atom (404); `Err(ShardDown)` means the
    /// owner is marked down (503) — healthy shards keep answering.
    pub fn marginal(
        &self,
        relation: &str,
        id: i64,
    ) -> Result<Option<MarginalAnswer>, ServeError> {
        let Some(shard) = self.shard_of(relation, id) else { return Ok(None) };
        if self.shard_is_down(shard) {
            return Err(self.shard_unavailable(shard));
        }
        // Non-consuming gate: reads fast-fail while the breaker's
        // window is hot but never take (or report on) the half-open
        // probe — a read cannot fail, so a read probe would close a
        // breaker whose writes are still failing. Only a successful
        // evidence apply closes the breaker.
        self.breaker_peek(shard)?;
        let Some(mut m) = self.shards[shard].marginal(relation, id) else { return Ok(None) };
        m.shard = Some(shard as u32);
        m.epoch = self.epoch();
        Ok(Some(m))
    }

    /// Applies an evidence batch: validates the whole batch up front
    /// (against shard 0's replica — every replica carries the full atom
    /// catalogue), then groups the rows by owning shard and lets each
    /// owner run its conclique-restricted incremental re-inference
    /// independently. Shards that own no row of the batch are never
    /// locked.
    pub fn apply_evidence(&self, rows: &[EvidenceUpdate]) -> Result<EvidenceOutcome, ServeError> {
        self.shards[0].validate(rows)?;
        let mut by_shard: Vec<Vec<EvidenceUpdate>> = vec![Vec::new(); self.shards.len()];
        for row in rows {
            // validate() guarantees the atom exists.
            let shard = self.shard_of(&row.relation, row.id).expect("validated atom");
            if self.shard_is_down(shard) {
                // Reject the whole batch before touching any shard:
                // evidence is not applied partially.
                return Err(self.shard_unavailable(shard));
            }
            by_shard[shard].push(row.clone());
        }
        // Same all-or-nothing discipline for breakers: peek every
        // touched shard before applying to any. The peek is
        // non-consuming — consuming the half-open probe here and then
        // early-returning on a later shard would strand the probe and
        // wedge that breaker half-open.
        for (shard, group) in by_shard.iter().enumerate() {
            if !group.is_empty() {
                self.breaker_peek(shard)?;
            }
        }
        let mut resampled = 0;
        let mut elapsed = Duration::ZERO;
        let mut touched = 0u32;
        for (shard, group) in by_shard.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            // The consuming check happens immediately before the apply,
            // so a taken probe always gets its outcome reported below.
            // (A breaker tripped by a concurrent batch since the peek
            // rejects here mid-batch — the same partial-application
            // surface as an apply failure mid-batch.)
            self.breaker_check(shard)?;
            let outcome = match self.shards[shard].apply_evidence(group) {
                Ok(outcome) => {
                    self.record_shard_success(shard);
                    outcome
                }
                Err(e) => {
                    // Validation already passed: this is an execution
                    // failure, exactly what the breaker counts.
                    self.record_shard_failure(shard);
                    return Err(e);
                }
            };
            resampled += outcome.resampled;
            elapsed += outcome.elapsed;
            touched += 1;
            self.obs
                .gauge_set(&format!("serve.shard.{shard}.epoch"), outcome.epoch as f64);
        }
        self.obs.counter_add("serve.shards_touched_total", u64::from(touched));
        Ok(EvidenceOutcome { epoch: self.epoch(), resampled, elapsed })
    }

    /// Read access to a full-KB replica (shard 0): graph shape and
    /// outcome are identical across replicas; only owned-atom marginals
    /// diverge after updates, and those are read via [`marginal`].
    ///
    /// [`marginal`]: Self::marginal
    pub fn with_kb<T>(&self, f: impl FnOnce(&KnowledgeBase) -> T) -> T {
        self.shards[0].with_kb(f)
    }

    pub fn uptime(&self) -> Duration {
        self.shards[0].uptime()
    }

    /// Age of the newest serve-time checkpoint across shards.
    pub fn checkpoint_age(&self) -> Option<Duration> {
        self.shards.iter().filter_map(ServingKb::checkpoint_age).min()
    }

    /// Checkpoints every shard whose epoch moved since its last save;
    /// returns the last written path, `None` when nothing needed saving.
    pub fn checkpoint_now(&self) -> Result<Option<PathBuf>, ServeError> {
        let mut last = None;
        for shard in &self.shards {
            if let Some(path) = shard.checkpoint_now()? {
                last = Some(path);
            }
        }
        Ok(last)
    }
}

/// What the server actually serves: a single live KB, the shard router
/// in front of per-shard replicas, or the lazy demand grounder. Every
/// endpoint goes through this enum, so `sya serve`, `sya serve
/// --shards N`, and `sya serve --lazy` expose the exact same HTTP
/// surface.
pub enum ServeState {
    /// Boxed: a `ServingKb` is an order of magnitude larger than the
    /// router handle, and the state is built once per server.
    Single(Box<ServingKb>),
    Sharded(ShardRouter),
    /// A KB that is never fully grounded: `/v1/marginal` and
    /// `/v1/query` demand-ground the bound atom's neighborhood per
    /// request (DESIGN.md §16).
    Lazy(Box<crate::lazy::LazyKb>),
}

impl From<ServingKb> for ServeState {
    fn from(kb: ServingKb) -> Self {
        ServeState::Single(Box::new(kb))
    }
}

impl From<ShardRouter> for ServeState {
    fn from(router: ShardRouter) -> Self {
        ServeState::Sharded(router)
    }
}

impl From<crate::lazy::LazyKb> for ServeState {
    fn from(kb: crate::lazy::LazyKb) -> Self {
        ServeState::Lazy(Box::new(kb))
    }
}

impl ServeState {
    pub fn obs(&self) -> &Obs {
        match self {
            ServeState::Single(kb) => kb.obs(),
            ServeState::Sharded(r) => r.obs(),
            ServeState::Lazy(kb) => kb.obs(),
        }
    }

    /// Serving mode, as reported by `/healthz` and the fleet board:
    /// `"full"` for the constructed-KB paths (single or sharded),
    /// `"lazy"` for the demand grounder.
    pub fn mode(&self) -> &'static str {
        match self {
            ServeState::Single(_) | ServeState::Sharded(_) => "full",
            ServeState::Lazy(_) => "lazy",
        }
    }

    /// Shards behind this state: 1 for the single and lazy paths.
    pub fn shard_count(&self) -> usize {
        match self {
            ServeState::Single(_) | ServeState::Lazy(_) => 1,
            ServeState::Sharded(r) => r.shard_count(),
        }
    }

    pub fn epoch(&self) -> u64 {
        match self {
            ServeState::Single(kb) => kb.epoch(),
            ServeState::Sharded(r) => r.epoch(),
            ServeState::Lazy(kb) => kb.epoch(),
        }
    }

    /// The per-request resource budget the server combines with the
    /// request deadline: unlimited on the full paths (reads are table
    /// lookups), the configured grounding budget in lazy mode.
    pub fn request_budget(&self) -> sya_runtime::RunBudget {
        match self {
            ServeState::Single(_) | ServeState::Sharded(_) => sya_runtime::RunBudget::unlimited(),
            ServeState::Lazy(kb) => kb.request_budget(),
        }
    }

    /// `Ok(None)` = unknown atom; `Err(ShardDown)` = the owning shard is
    /// marked down (sharded state only); `Err(QueryBudget)` = the lazy
    /// demand grounding exhausted its budget. `ctx` bounds the lazy
    /// path's grounding and chain; the full paths answer from the live
    /// KB and ignore it.
    pub fn marginal(
        &self,
        relation: &str,
        id: i64,
        ctx: &sya_runtime::ExecContext,
    ) -> Result<Option<MarginalAnswer>, ServeError> {
        match self {
            ServeState::Single(kb) => Ok(kb.marginal(relation, id)),
            ServeState::Sharded(r) => r.marginal(relation, id),
            ServeState::Lazy(kb) => kb.marginal(relation, id, ctx),
        }
    }

    /// Batch marginals; answers align with `queries` and `None` mirrors
    /// the point path's 404. Lazy mode grounds the misses as **one
    /// union neighborhood** (overlapping closures share their BFS and a
    /// single restricted chain); the full paths answer each query from
    /// the live KB, which is already O(1) per lookup.
    pub fn marginals(
        &self,
        queries: &[(String, i64)],
        ctx: &sya_runtime::ExecContext,
    ) -> Result<Vec<Option<MarginalAnswer>>, ServeError> {
        match self {
            ServeState::Single(_) | ServeState::Sharded(_) => {
                queries.iter().map(|(r, i)| self.marginal(r, *i, ctx)).collect()
            }
            ServeState::Lazy(kb) => kb.marginal_batch(queries, ctx),
        }
    }

    /// Applies a `/v1/rows` batch of base-row inserts/retractions.
    /// Single mode patches the live factor graph differentially
    /// (`sya-delta`); lazy mode mutates the tables and surgically
    /// invalidates intersecting cache entries; sharded replicas have no
    /// single mutable database, so the batch is rejected as unsupported
    /// (501).
    pub fn apply_rows(
        &self,
        raw: &[crate::rows::RawRowUpdate],
    ) -> Result<crate::rows::RowsOutcome, ServeError> {
        match self {
            ServeState::Single(kb) => kb.apply_rows(raw),
            ServeState::Sharded(_) => Err(ServeError::RowsUnsupported { mode: "sharded" }),
            ServeState::Lazy(kb) => kb.apply_rows(raw),
        }
    }

    /// Down shard indices; always empty for the single and lazy paths.
    pub fn down_shards(&self) -> Vec<usize> {
        match self {
            ServeState::Single(_) | ServeState::Lazy(_) => Vec::new(),
            ServeState::Sharded(r) => r.down_shards(),
        }
    }

    /// Shards with a non-closed breaker; always empty for the single
    /// and lazy paths.
    pub fn open_breakers(&self) -> Vec<usize> {
        match self {
            ServeState::Single(_) | ServeState::Lazy(_) => Vec::new(),
            ServeState::Sharded(r) => r.open_breakers(),
        }
    }

    pub fn apply_evidence(&self, rows: &[EvidenceUpdate]) -> Result<EvidenceOutcome, ServeError> {
        match self {
            ServeState::Single(kb) => kb.apply_evidence(rows),
            ServeState::Sharded(r) => r.apply_evidence(rows),
            ServeState::Lazy(kb) => kb.apply_evidence(rows),
        }
    }

    /// Read access to the constructed KB; `None` in lazy mode, where no
    /// KB ever exists to borrow.
    pub fn with_kb<T>(&self, f: impl FnOnce(&KnowledgeBase) -> T) -> Option<T> {
        match self {
            ServeState::Single(kb) => Some(kb.with_kb(f)),
            ServeState::Sharded(r) => Some(r.with_kb(f)),
            ServeState::Lazy(_) => None,
        }
    }

    /// `/healthz`'s graph-shape fields, mode-appropriately: the full
    /// paths report the constructed graph and its run outcome; lazy
    /// reports the variables materialized across cached neighborhoods
    /// and a literal `"lazy"` outcome.
    pub fn health_shape(&self) -> (usize, String) {
        match self {
            ServeState::Single(_) | ServeState::Sharded(_) => self
                .with_kb(|kb| (kb.grounding.graph.num_variables(), kb.outcome.to_string()))
                .expect("full state has a KB"),
            ServeState::Lazy(kb) => {
                let (_, vars) = kb.cache_shape();
                (vars, "lazy".to_owned())
            }
        }
    }

    pub fn uptime(&self) -> Duration {
        match self {
            ServeState::Single(kb) => kb.uptime(),
            ServeState::Sharded(r) => r.uptime(),
            ServeState::Lazy(kb) => kb.uptime(),
        }
    }

    pub fn checkpoint_age(&self) -> Option<Duration> {
        match self {
            ServeState::Single(kb) => kb.checkpoint_age(),
            ServeState::Sharded(r) => r.checkpoint_age(),
            ServeState::Lazy(_) => None,
        }
    }

    pub fn checkpoint_now(&self) -> Result<Option<PathBuf>, ServeError> {
        match self {
            ServeState::Single(kb) => kb.checkpoint_now(),
            ServeState::Sharded(r) => r.checkpoint_now(),
            // Nothing to persist: lazy state is the input tables plus
            // the evidence map, both of which the operator already has.
            ServeState::Lazy(_) => Ok(None),
        }
    }
}
