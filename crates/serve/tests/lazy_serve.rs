//! End-to-end lazy-serving tests on an ephemeral port: the server never
//! grounds the full KB — every `/v1/marginal` demand-grounds a bound
//! neighborhood through the query grounder — yet the HTTP surface
//! (marginals, batch queries, evidence, health, metrics, shutdown)
//! behaves like the full path, with lazy-specific extras: an
//! epoch-keyed answer cache visible on `/metrics`, `"mode":"lazy"` on
//! `/healthz`, and per-request budget exhaustion as 503 + Retry-After.

use serde_json::Value as Json;
use std::collections::HashMap;
use std::time::Duration;
use sya_bench::http::{http_get, http_post_json};
use sya_core::{SyaConfig, SyaSession};
use sya_data::{gwdb_dataset, Dataset, GwdbConfig};
use sya_obs::Obs;
use sya_runtime::RunBudget;
use sya_serve::{LazyConfig, LazyKb, ServeConfig, SyaServer};

fn dataset() -> Dataset {
    gwdb_dataset(&GwdbConfig { n_wells: 60, ..Default::default() })
}

fn config() -> SyaConfig {
    SyaConfig::sya()
        .with_seed(11)
        .with_bandwidth(sya_data::gwdb::GWDB_BANDWIDTH)
        .with_spatial_radius(sya_data::gwdb::GWDB_RADIUS)
}

/// Builds the lazy state without ever calling `construct`: compile the
/// program, clone the input tables, and hand both to `LazyKb`.
fn lazy_kb(dataset: &Dataset, cfg: LazyConfig) -> LazyKb {
    let session =
        SyaSession::new(&dataset.program, dataset.constants.clone(), dataset.metric, config())
            .expect("program compiles");
    let evidence: HashMap<(String, i64), u32> = dataset
        .evidence
        .iter()
        .map(|(&id, &v)| (("IsSafe".to_owned(), id), v))
        .collect();
    LazyKb::new(
        session.compiled().clone(),
        session.config().ground.clone(),
        dataset.db.clone(),
        evidence,
        cfg,
        Obs::enabled(),
    )
    .expect("spatial program serves lazily")
}

fn start_server(dataset: &Dataset, cfg: LazyConfig) -> SyaServer {
    let state = lazy_kb(dataset, cfg);
    let serve = ServeConfig { listen: "127.0.0.1:0".into(), workers: 2, ..ServeConfig::default() };
    SyaServer::start(state, serve).expect("server binds an ephemeral port")
}

fn get_ok(addr: &str, path: &str) -> Json {
    let r = http_get(addr, path).expect("GET succeeds");
    assert_eq!(r.status, 200, "GET {path}: {}", r.body);
    serde_json::from_str(&r.body).expect("valid JSON")
}

fn post_ok(addr: &str, path: &str, body: &str) -> Json {
    let r = http_post_json(addr, path, body).expect("POST succeeds");
    assert_eq!(r.status, 200, "POST {path}: {}", r.body);
    serde_json::from_str(&r.body).expect("valid JSON")
}

/// Parses one un-labeled metric value out of a Prometheus exposition
/// body.
fn metric_value(body: &str, name: &str) -> Option<f64> {
    body.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.parse().ok()
    })
}

#[test]
fn lazy_server_answers_caches_and_shuts_down_cleanly() {
    let dataset = dataset();
    let qid = *dataset.query_ids().first().expect("dataset has query atoms");
    let server = start_server(&dataset, LazyConfig::default());
    let addr = server.local_addr().to_string();

    // Readiness: lazy mode is visible on the health plane before any
    // traffic, and no variables exist yet — nothing has been grounded.
    let health = get_ok(&addr, "/healthz");
    assert_eq!(health["status"].as_str(), Some("ok"));
    assert_eq!(health["mode"].as_str(), Some("lazy"));
    assert_eq!(health["epoch"].as_u64(), Some(0));
    assert_eq!(health["variables"].as_u64(), Some(0));
    assert_eq!(health["outcome"].as_str(), Some("lazy"));

    // First point marginal: a cache miss that demand-grounds the
    // neighborhood and answers from the restricted chain.
    let path = format!("/v1/marginal/IsSafe?args={qid}");
    let first = get_ok(&addr, &path);
    let score = first["score"].as_f64().unwrap();
    assert!((0.0..=1.0).contains(&score), "score {score}");
    assert_eq!(first["evidence"], Json::Null);
    assert_eq!(first["epoch"].as_u64(), Some(0));
    assert_eq!(first["shard"], Json::Null);

    // Second identical query: an epoch-keyed cache hit with the same
    // answer, no re-grounding.
    let second = get_ok(&addr, &path);
    assert_eq!(second["score"].as_f64(), Some(score));

    // The grounding is visible as variables on the health plane now.
    let health = get_ok(&addr, "/healthz");
    assert!(health["variables"].as_u64().unwrap() > 0, "{health}");

    // Batch query runs per-atom through the same grounder + cache.
    let ids = dataset.query_ids();
    let batch = post_ok(
        &addr,
        "/v1/query",
        &format!(
            "{{\"queries\":[{{\"relation\":\"IsSafe\",\"id\":{}}},{{\"relation\":\"IsSafe\",\"id\":{}}}]}}",
            ids[0], ids[1]
        ),
    );
    assert_eq!(batch["results"].as_array().unwrap().len(), 2);

    // Metrics: exactly one hit for the repeated point query plus one
    // for the batch's re-ask of ids[0]; misses grounded the rest.
    let metrics = http_get(&addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let hits = metric_value(&metrics.body, "sya_serve_query_cache_hit_total").unwrap();
    let misses = metric_value(&metrics.body, "sya_serve_query_cache_miss_total").unwrap();
    let entries = metric_value(&metrics.body, "sya_serve_query_cache_entries").unwrap();
    assert_eq!(hits, 2.0, "{}", metrics.body);
    assert_eq!(misses, 2.0, "{}", metrics.body);
    assert_eq!(entries, 2.0, "{}", metrics.body);
    for needle in ["sya_serve_query_requests_total", "sya_serve_query_ground_seconds"] {
        assert!(metrics.body.contains(needle), "metrics missing {needle}");
    }

    server.shutdown(Duration::from_secs(10)).expect("no leaked threads");
}

#[test]
fn evidence_bumps_epoch_invalidates_cache_and_pins_the_answer() {
    let dataset = dataset();
    let qid = *dataset.query_ids().first().unwrap();
    let server = start_server(&dataset, LazyConfig::default());
    let addr = server.local_addr().to_string();

    let path = format!("/v1/marginal/IsSafe?args={qid}");
    let before = get_ok(&addr, &path);
    assert_eq!(before["evidence"], Json::Null);

    // Evidence application is O(rows) in lazy mode: the epoch bumps,
    // the cache drops, and nothing is resampled (there is no graph).
    let ev = post_ok(
        &addr,
        "/v1/evidence",
        &format!("{{\"rows\":[{{\"relation\":\"IsSafe\",\"id\":{qid},\"value\":0}}]}}"),
    );
    assert_eq!(ev["epoch"].as_u64(), Some(1));
    assert_eq!(ev["resampled"].as_u64(), Some(0));

    // The re-grounded answer reflects the observation and new epoch.
    let after = get_ok(&addr, &path);
    assert_eq!(after["evidence"].as_u64(), Some(0));
    assert_eq!(after["epoch"].as_u64(), Some(1));
    assert!(after["score"].as_f64().unwrap() <= 0.5, "{after}");
    assert_eq!(get_ok(&addr, "/healthz")["epoch"].as_u64(), Some(1));

    // The pre-evidence cache entry was dropped, not reused: the
    // post-evidence read re-grounded (a second miss for this key).
    let metrics = http_get(&addr, "/metrics").unwrap();
    let misses = metric_value(&metrics.body, "sya_serve_query_cache_miss_total").unwrap();
    assert_eq!(misses, 2.0, "{}", metrics.body);
    assert!(
        metric_value(&metrics.body, "sya_serve_query_cache_invalidated_total").unwrap() >= 1.0,
        "{}",
        metrics.body
    );

    // Retraction: value null clears the observation again.
    let ev = post_ok(
        &addr,
        "/v1/evidence",
        &format!("{{\"rows\":[{{\"relation\":\"IsSafe\",\"id\":{qid},\"value\":null}}]}}"),
    );
    assert_eq!(ev["epoch"].as_u64(), Some(2));
    let retracted = get_ok(&addr, &path);
    assert_eq!(retracted["evidence"], Json::Null);
    assert_eq!(retracted["epoch"].as_u64(), Some(2));

    server.shutdown(Duration::from_secs(10)).expect("no leaked threads");
}

#[test]
fn budget_exhaustion_is_503_with_retry_after_and_unknown_atoms_404() {
    let dataset = dataset();
    let qid = *dataset.query_ids().first().unwrap();

    // A one-variable budget cannot hold a spatial neighborhood.
    let starved = LazyConfig {
        budget: RunBudget::unlimited().with_max_variables(1),
        ..LazyConfig::default()
    };
    let server = start_server(&dataset, starved);
    let addr = server.local_addr().to_string();

    let r = http_get(&addr, &format!("/v1/marginal/IsSafe?args={qid}")).unwrap();
    assert_eq!(r.status, 503, "{}", r.body);
    assert!(
        r.header("Retry-After").is_some_and(|v| !v.is_empty()),
        "503 without Retry-After: {:?}",
        r.headers
    );
    let metrics = http_get(&addr, "/metrics").unwrap();
    assert!(
        metric_value(&metrics.body, "sya_serve_query_budget_exceeded_total").unwrap() >= 1.0,
        "{}",
        metrics.body
    );

    // Unknown atom and unknown relation are 404s, not errors.
    assert_eq!(http_get(&addr, "/v1/marginal/IsSafe?args=999999").unwrap().status, 404);
    assert_eq!(http_get(&addr, "/v1/marginal/NoSuchRel?args=1").unwrap().status, 404);

    // Malformed evidence is rejected with a 400 before any state moves.
    let bad = http_post_json(
        &addr,
        "/v1/evidence",
        "{\"rows\":[{\"relation\":\"Well\",\"id\":1,\"value\":0}]}",
    )
    .unwrap();
    assert_eq!(bad.status, 400, "{}", bad.body);
    assert_eq!(get_ok(&addr, "/healthz")["epoch"].as_u64(), Some(0));

    server.shutdown(Duration::from_secs(10)).expect("no leaked threads");
}
