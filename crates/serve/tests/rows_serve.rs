//! `POST /v1/rows` end-to-end: base-row deltas absorbed live.
//!
//! Full mode goes over HTTP — insert a well, watch a brand-new ground
//! atom become queryable without any re-construction, retract it, watch
//! it vanish — with the `delta.*` metrics family moving underneath.
//! Lazy mode exercises the cache surgery directly: a row update drops
//! exactly the cached neighborhoods it intersects and re-stamps the
//! survivors, and concurrent misses of one atom coalesce onto a single
//! grounding (singleflight).

use serde_json::Value as Json;
use std::collections::HashMap;
use std::sync::{Arc, Barrier};
use std::time::Duration;
use sya_bench::http::{http_get, http_post_json};
use sya_core::{KnowledgeBase, SyaConfig, SyaSession};
use sya_data::{gwdb_dataset, Dataset, GwdbConfig};
use sya_obs::Obs;
use sya_runtime::ExecContext;
use sya_serve::{LazyConfig, LazyKb, RawRowUpdate, ServeConfig, ServingKb, SyaServer};

fn dataset() -> Dataset {
    gwdb_dataset(&GwdbConfig { n_wells: 60, ..Default::default() })
}

fn config() -> SyaConfig {
    SyaConfig::sya()
        .with_epochs(60)
        .with_seed(11)
        .with_bandwidth(sya_data::gwdb::GWDB_BANDWIDTH)
        .with_spatial_radius(sya_data::gwdb::GWDB_RADIUS)
}

/// Builds the session on the *serving* obs handle, the way `sya serve`
/// does — the delta layer publishes its `delta.*` family through the
/// session, and `/metrics` renders that same handle.
fn build(dataset: &Dataset, obs: Obs) -> (SyaSession, KnowledgeBase) {
    let session = SyaSession::new_with_obs(
        &dataset.program,
        dataset.constants.clone(),
        dataset.metric,
        config(),
        obs,
    )
    .expect("program compiles");
    let mut db = dataset.db.clone();
    let kb = session
        .construct(&mut db, &dataset.evidence_fn())
        .expect("construction succeeds");
    (session, kb)
}

fn keyed_evidence(dataset: &Dataset) -> HashMap<(String, i64), u32> {
    dataset.evidence.iter().map(|(&id, &v)| (("IsSafe".to_owned(), id), v)).collect()
}

fn get_ok(addr: &str, path: &str) -> Json {
    let r = http_get(addr, path).expect("GET succeeds");
    assert_eq!(r.status, 200, "GET {path}: {}", r.body);
    serde_json::from_str(&r.body).expect("valid JSON")
}

fn post_ok(addr: &str, path: &str, body: &str) -> Json {
    let r = http_post_json(addr, path, body).expect("POST succeeds");
    assert_eq!(r.status, 200, "POST {path}: {}", r.body);
    serde_json::from_str(&r.body).expect("valid JSON")
}

/// Parses one un-labeled metric value out of a Prometheus exposition
/// body.
fn metric_value(body: &str, name: &str) -> Option<f64> {
    body.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.parse().ok()
    })
}

/// A new well next to an existing one, as the `/v1/rows` JSON cell
/// array `[id, {"x", "y"}, arsenic, fluoride]`.
fn well_json(id: i64, x: f64, y: f64) -> String {
    format!("[{id},{{\"x\":{x:.3},\"y\":{y:.3}}},0.08,0.1]")
}

#[test]
fn rows_round_trip_births_and_buries_a_ground_atom_over_http() {
    let dataset = dataset();
    let anchor = *dataset.query_ids().first().expect("dataset has query atoms");
    let spot = dataset.locations[&anchor];
    let obs = Obs::enabled();
    let (session, kb) = build(&dataset, obs.clone());
    let state =
        ServingKb::with_live(session, kb, dataset.db.clone(), keyed_evidence(&dataset), obs)
            .expect("spatial KB serves");
    let cfg = ServeConfig { listen: "127.0.0.1:0".into(), workers: 2, ..ServeConfig::default() };
    let server = SyaServer::start(state, cfg).expect("server binds an ephemeral port");
    let addr = server.local_addr().to_string();

    // The atom does not exist yet.
    let new_path = "/v1/marginal/IsSafe?args=5000";
    assert_eq!(http_get(&addr, new_path).unwrap().status, 404);

    // Insert a low-arsenic well one unit from an existing query atom:
    // the delta layer grounds its new IsSafe atom, links it into the
    // neighborhood, and warm re-infers only the touched concliques.
    let inserted = post_ok(
        &addr,
        "/v1/rows",
        &format!(
            "{{\"updates\":[{{\"op\":\"insert\",\"relation\":\"Well\",\"row\":{}}}]}}",
            well_json(5000, spot.x + 1.0, spot.y)
        ),
    );
    assert_eq!(inserted["epoch"].as_u64(), Some(1), "{inserted}");
    assert_eq!(inserted["rows_inserted"].as_u64(), Some(1));
    assert_eq!(inserted["rows_retracted"].as_u64(), Some(0));
    assert!(inserted["vars_added"].as_u64().unwrap() >= 1, "{inserted}");
    assert!(inserted["factors_added"].as_u64().unwrap() >= 1, "{inserted}");
    assert!(inserted["resampled"].as_u64().unwrap() >= 1, "{inserted}");

    // The new ground atom answers like any constructed one, at the new
    // epoch — no re-construction happened.
    let born = get_ok(&addr, new_path);
    assert_eq!(born["epoch"].as_u64(), Some(1));
    let score = born["score"].as_f64().unwrap();
    assert!((0.0..=1.0).contains(&score), "score {score}");
    // And the anchor it attached next to still answers.
    assert_eq!(
        get_ok(&addr, &format!("/v1/marginal/IsSafe?args={anchor}"))["epoch"].as_u64(),
        Some(1)
    );

    // Retract the same row: tombstones, not a rebuild; the atom is gone.
    let retracted = post_ok(
        &addr,
        "/v1/rows",
        &format!(
            "{{\"updates\":[{{\"op\":\"retract\",\"relation\":\"Well\",\"row\":{}}}]}}",
            well_json(5000, spot.x + 1.0, spot.y)
        ),
    );
    assert_eq!(retracted["epoch"].as_u64(), Some(2), "{retracted}");
    assert_eq!(retracted["rows_retracted"].as_u64(), Some(1));
    assert!(retracted["vars_removed"].as_u64().unwrap() >= 1, "{retracted}");
    assert!(retracted["factors_tombstoned"].as_u64().unwrap() >= 1, "{retracted}");
    assert_eq!(http_get(&addr, new_path).unwrap().status, 404);
    assert_eq!(get_ok(&addr, "/healthz")["epoch"].as_u64(), Some(2));

    // The delta metrics family moved with the two batches.
    let metrics = http_get(&addr, "/metrics").unwrap();
    assert_eq!(metric_value(&metrics.body, "sya_delta_rows_inserted_total"), Some(1.0));
    assert_eq!(metric_value(&metrics.body, "sya_delta_rows_retracted_total"), Some(1.0));
    assert_eq!(metric_value(&metrics.body, "sya_serve_rows_total"), Some(2.0));
    assert!(
        metric_value(&metrics.body, "sya_delta_vars_added_total").unwrap() >= 1.0,
        "{}",
        metrics.body
    );

    // Malformed batches are 400s with the offender named; the epoch
    // does not move.
    for (body, needle) in [
        ("{\"updates\":[]}", "empty"),
        ("{\"updates\":[{\"op\":\"upsert\",\"relation\":\"Well\",\"row\":[]}]}", "op"),
        (
            "{\"updates\":[{\"op\":\"insert\",\"relation\":\"IsSafe\",\"row\":[1,null]}]}",
            "variable relation",
        ),
        (
            "{\"updates\":[{\"op\":\"retract\",\"relation\":\"Well\",\"row\":[987654,null,null,null]}]}",
            "retract",
        ),
    ] {
        let r = http_post_json(&addr, "/v1/rows", body).unwrap();
        assert_eq!(r.status, 400, "{body} -> {}", r.body);
        assert!(r.body.contains(needle), "{body} -> {}", r.body);
    }
    assert_eq!(get_ok(&addr, "/healthz")["epoch"].as_u64(), Some(2));
    // Wrong method on the endpoint family.
    assert_eq!(http_get(&addr, "/v1/rows").unwrap().status, 405);

    server.shutdown(Duration::from_secs(10)).expect("no leaked threads");
}

#[test]
fn rows_without_live_inputs_is_501_not_implemented() {
    let dataset = dataset();
    let obs = Obs::enabled();
    let (session, kb) = build(&dataset, obs.clone());
    // `ServingKb::new` keeps no database: the delta path has nothing to
    // replay against, and says so instead of guessing.
    let state = ServingKb::new(session, kb, obs).expect("spatial KB serves");
    let cfg = ServeConfig { listen: "127.0.0.1:0".into(), workers: 1, ..ServeConfig::default() };
    let server = SyaServer::start(state, cfg).expect("server binds an ephemeral port");
    let addr = server.local_addr().to_string();
    let r = http_post_json(
        &addr,
        "/v1/rows",
        &format!(
            "{{\"updates\":[{{\"op\":\"insert\",\"relation\":\"Well\",\"row\":{}}}]}}",
            well_json(5000, 10.0, 10.0)
        ),
    )
    .unwrap();
    assert_eq!(r.status, 501, "{}", r.body);
    server.shutdown(Duration::from_secs(10)).expect("no leaked threads");
}

fn lazy_kb(dataset: &Dataset) -> LazyKb {
    let session =
        SyaSession::new(&dataset.program, dataset.constants.clone(), dataset.metric, config())
            .expect("program compiles");
    LazyKb::new(
        session.compiled().clone(),
        session.config().ground.clone(),
        dataset.db.clone(),
        keyed_evidence(dataset),
        LazyConfig::default(),
        Obs::enabled(),
    )
    .expect("spatial program serves lazily")
}

/// Two query atoms as far apart as the field allows, so their demand
/// neighborhoods provably cannot overlap a single-row delta near one of
/// them.
fn distant_pair(dataset: &Dataset) -> (i64, i64) {
    let ids = dataset.query_ids();
    let mut best = (ids[0], ids[1], 0.0f64);
    for &a in &ids {
        for &b in &ids {
            let d = dataset.locations[&a].distance(&dataset.locations[&b]);
            if d > best.2 {
                best = (a, b, d);
            }
        }
    }
    assert!(best.2 > 400.0, "field too small for a disjointness test: {}", best.2);
    (best.0, best.1)
}

fn insert_well(id: i64, x: f64, y: f64) -> RawRowUpdate {
    RawRowUpdate {
        op: sya_delta::RowOp::Insert,
        relation: "Well".to_owned(),
        row: vec![
            serde_json::json!(id),
            serde_json::json!({"x": x, "y": y}),
            serde_json::json!(0.08),
            serde_json::json!(0.1),
        ],
    }
}

#[test]
fn lazy_rows_invalidate_only_intersecting_neighborhoods() {
    let dataset = dataset();
    let (near, far) = distant_pair(&dataset);
    let kb = lazy_kb(&dataset);
    let ctx = ExecContext::default();

    // Warm the cache with two disjoint neighborhoods.
    let before_near = kb.marginal("IsSafe", near, &ctx).unwrap().expect("atom exists");
    let before_far = kb.marginal("IsSafe", far, &ctx).unwrap().expect("atom exists");
    assert_eq!(before_near.epoch, 0);

    // Insert a well one unit from `near`: exactly one cached entry
    // intersects the delta.
    let spot = dataset.locations[&near];
    let outcome = kb.apply_rows(&[insert_well(7000, spot.x + 1.0, spot.y)]).unwrap();
    assert_eq!(outcome.epoch, 1);
    assert_eq!(outcome.rows_inserted, 1);
    assert_eq!(outcome.cache_invalidated, 1, "only the intersecting entry drops");

    // The surviving entry was re-stamped: `far` answers from cache at
    // the *new* epoch — no re-grounding.
    let misses_before =
        metric_value(&render(&kb), "sya_serve_query_cache_miss_total").unwrap();
    let after_far = kb.marginal("IsSafe", far, &ctx).unwrap().expect("still cached");
    assert_eq!(after_far.epoch, 1);
    assert_eq!(after_far.score, before_far.score, "cache hit returns the cached answer");
    let metrics = render(&kb);
    assert_eq!(
        metric_value(&metrics, "sya_serve_query_cache_miss_total").unwrap(),
        misses_before,
        "the far query must not re-ground: {metrics}"
    );

    // The touched side re-grounds on demand and sees the new row: the
    // fresh atom is answerable and `near`'s neighborhood re-grounds.
    let born = kb.marginal("IsSafe", 7000, &ctx).unwrap().expect("new atom grounds");
    assert_eq!(born.epoch, 1);
    let after_near = kb.marginal("IsSafe", near, &ctx).unwrap().expect("re-grounds");
    assert_eq!(after_near.epoch, 1);

    // Retract it again: the batch validates against the mutated tables.
    let outcome = kb
        .apply_rows(&[RawRowUpdate {
            op: sya_delta::RowOp::Retract,
            ..insert_well(7000, spot.x + 1.0, spot.y)
        }])
        .unwrap();
    assert_eq!(outcome.rows_retracted, 1);
    assert_eq!(outcome.epoch, 2);
    assert!(kb.marginal("IsSafe", 7000, &ctx).unwrap().is_none(), "atom is gone");
}

fn render(kb: &LazyKb) -> String {
    sya_obs::export::render_prometheus(&kb.obs().metrics_snapshot())
}

#[test]
fn lazy_singleflight_coalesces_concurrent_misses_of_one_atom() {
    let dataset = dataset();
    let qid = *dataset.query_ids().first().unwrap();
    let kb = Arc::new(lazy_kb(&dataset));

    const CALLERS: usize = 4;
    let barrier = Arc::new(Barrier::new(CALLERS));
    let mut handles = Vec::new();
    for _ in 0..CALLERS {
        let kb = Arc::clone(&kb);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let ctx = ExecContext::default();
            kb.marginal("IsSafe", qid, &ctx).unwrap().expect("atom exists").score
        }));
    }
    let scores: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Everyone answers, and identically — followers read the leader's
    // cache entry rather than re-running their own chain.
    assert!(scores.windows(2).all(|w| w[0] == w[1]), "{scores:?}");

    let metrics = render(&kb);
    let misses = metric_value(&metrics, "sya_serve_query_cache_miss_total").unwrap();
    let hits = metric_value(&metrics, "sya_serve_query_cache_hit_total").unwrap();
    // Every caller either led a grounding (miss) or answered from the
    // published entry (hit); coalescing means strictly fewer groundings
    // than callers.
    assert_eq!(misses + hits, CALLERS as f64, "{metrics}");
    assert!(misses < CALLERS as f64, "no coalescing happened: {metrics}");
}

#[test]
fn lazy_batch_query_unions_misses_into_one_grounding() {
    let dataset = dataset();
    let ids = dataset.query_ids();
    let kb = lazy_kb(&dataset);
    let ctx = ExecContext::default();

    let queries: Vec<(String, i64)> = vec![
        ("IsSafe".to_owned(), ids[0]),
        ("IsSafe".to_owned(), ids[1]),
        ("IsSafe".to_owned(), ids[0]), // duplicate: answered once, reported twice
        ("IsSafe".to_owned(), 999_999), // unknown atom: None, not an error
    ];
    let answers = kb.marginal_batch(&queries, &ctx).unwrap();
    assert_eq!(answers.len(), 4);
    assert!(answers[0].is_some() && answers[1].is_some());
    assert_eq!(
        answers[0].as_ref().unwrap().score,
        answers[2].as_ref().unwrap().score,
        "duplicate targets share one answer"
    );
    assert!(answers[3].is_none());

    let metrics = render(&kb);
    // One union grounding for the whole batch: two distinct existing
    // targets, still counted as two misses (two entries were created)
    // but grounded together.
    assert_eq!(metric_value(&metrics, "sya_serve_query_batch_union_total"), Some(1.0));
    assert_eq!(metric_value(&metrics, "sya_serve_query_cache_miss_total"), Some(3.0));
    assert_eq!(metric_value(&metrics, "sya_serve_query_cache_entries"), Some(2.0));

    // Re-asking the *existing* atoms is now pure cache — no second
    // union. (The unknown atom is excluded: misses are never negatively
    // cached, so it would re-ground.)
    let again = kb.marginal_batch(&queries[..3], &ctx).unwrap();
    assert_eq!(again[0].as_ref().unwrap().score, answers[0].as_ref().unwrap().score);
    let metrics = render(&kb);
    assert_eq!(metric_value(&metrics, "sya_serve_query_batch_union_total"), Some(1.0), "{metrics}");
}
