//! Property tests for the admission state machine (vendored
//! `proptest`), per the overload-resilience contract:
//!
//! 1. Queue depth never exceeds `max_queue` (and the shed lane never
//!    exceeds its depth) under any interleaving of enqueues and drops.
//! 2. The shed counters equal the rejects the simulated acceptor
//!    observed — every 503-with-Retry-After is accounted, none twice.
//! 3. The in-flight gauge returns exactly to zero after drain.
//! 4. The circuit breaker follows its closed→open→half-open→closed
//!    transition diagram under arbitrary scripted failure sequences.

use proptest::prelude::*;
use std::time::Duration;
use sya_obs::Obs;
use sya_runtime::{Backoff, Breaker, BreakerState};
use sya_serve::{Admission, AdmissionConfig, Shed};

fn admission(max_queue: usize, max_inflight: usize, shed_lane: usize) -> (Admission, Obs) {
    let obs = Obs::enabled();
    let adm = Admission::new(
        AdmissionConfig {
            max_queue,
            max_inflight,
            shed_lane_depth: shed_lane,
            request_timeout: Duration::from_millis(1_000),
        },
        obs.clone(),
    );
    (adm, obs)
}

fn gauge(obs: &Obs, name: &str) -> f64 {
    obs.metrics_snapshot().gauges.get(name).copied().unwrap_or(f64::NAN)
}

fn counter(obs: &Obs, name: &str) -> u64 {
    obs.metrics_snapshot().counters.get(name).copied().unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Ops: even = try_enqueue, odd = drop the oldest held ticket.
    #[test]
    fn queue_depth_never_exceeds_max_queue(
        max_queue in 1usize..8,
        ops in prop::collection::vec(0u8..2, 1..200),
    ) {
        let (adm, obs) = admission(max_queue, 1, 2);
        let mut held = std::collections::VecDeque::new();
        for op in ops {
            if op == 0 {
                if let Ok(ticket) = adm.try_enqueue() {
                    held.push_back(ticket);
                }
            } else {
                held.pop_front();
            }
            prop_assert!(adm.queued() <= max_queue, "depth {} > {max_queue}", adm.queued());
            prop_assert_eq!(adm.queued(), held.len());
            prop_assert_eq!(gauge(&obs, "serve.admission.queued"), held.len() as f64);
        }
        // Full drain returns the gauge exactly to zero.
        held.clear();
        prop_assert_eq!(adm.queued(), 0);
        prop_assert_eq!(gauge(&obs, "serve.admission.queued"), 0.0);
    }

    /// Simulates the acceptor under a burst: every arrival either
    /// queues (main or shed lane) or is rejected-and-counted. The
    /// `shed_queue_full_total` counter must equal the rejects the wire
    /// would have seen.
    #[test]
    fn shed_counter_equals_observed_rejects(
        max_queue in 1usize..6,
        shed_lane in 1usize..4,
        ops in prop::collection::vec(0u8..3, 1..300),
    ) {
        let (adm, obs) = admission(max_queue, 1, shed_lane);
        let mut main = Vec::new();
        let mut lane = Vec::new();
        let mut observed_rejects = 0u64;
        for op in ops {
            match op {
                // An arrival, routed exactly like the acceptor routes.
                0 => match adm.try_enqueue() {
                    Ok(t) => main.push(t),
                    Err(_) => match adm.try_enqueue_shed() {
                        Ok(t) => lane.push(t),
                        Err(shed) => {
                            prop_assert_eq!(shed, Shed::QueueFull);
                            adm.count_shed(shed);
                            observed_rejects += 1; // the 503 + Retry-After write
                        }
                    },
                },
                // A worker dequeues.
                1 => { main.pop(); }
                // The shed thread triages one connection; a non-cheap
                // request is shed and counted there too.
                _ => {
                    if lane.pop().is_some() {
                        adm.count_shed(Shed::QueueFull);
                        observed_rejects += 1;
                    }
                }
            }
            prop_assert!(adm.queued() <= max_queue);
            prop_assert!(adm.shed_queued() <= shed_lane);
        }
        prop_assert_eq!(counter(&obs, "serve.admission.shed_queue_full_total"), observed_rejects);
    }

    /// Deadline budget: a ticket sheds iff its wait exhausted the
    /// timeout, and an admitted ticket's remaining budget plus its wait
    /// reconstructs the timeout exactly.
    #[test]
    fn deadline_shed_iff_budget_spent(waited_ms in 0u64..3_000) {
        let (adm, obs) = admission(4, 1, 2);
        let timeout = adm.config().request_timeout;
        let waited = Duration::from_millis(waited_ms);
        match adm.admit_waited(waited) {
            Ok(remaining) => {
                prop_assert!(waited < timeout);
                prop_assert_eq!(waited + remaining, timeout);
            }
            Err(shed) => {
                prop_assert_eq!(shed, Shed::DeadlineSpent);
                prop_assert!(waited >= timeout);
                adm.count_shed(shed);
            }
        }
        let shed = counter(&obs, "serve.admission.shed_deadline_total");
        prop_assert_eq!(shed, u64::from(waited >= timeout));
    }

    /// Ops: even = try_begin, odd = release the oldest guard. The gate
    /// never exceeds its limit and drains exactly to zero.
    #[test]
    fn inflight_gauge_returns_to_zero_after_drain(
        max_inflight in 1usize..6,
        ops in prop::collection::vec(0u8..2, 1..200),
    ) {
        let (adm, obs) = admission(4, max_inflight, 2);
        let mut guards = std::collections::VecDeque::new();
        let mut rejected = 0u64;
        for op in ops {
            if op == 0 {
                match adm.try_begin() {
                    Ok(g) => guards.push_back(g),
                    Err(shed) => {
                        prop_assert_eq!(shed, Shed::InflightFull);
                        prop_assert_eq!(guards.len(), max_inflight);
                        adm.count_shed(shed);
                        rejected += 1;
                    }
                }
            } else {
                guards.pop_front();
            }
            prop_assert!(adm.inflight() <= max_inflight);
            prop_assert_eq!(adm.inflight(), guards.len());
        }
        guards.clear();
        prop_assert_eq!(adm.inflight(), 0);
        prop_assert_eq!(gauge(&obs, "serve.admission.inflight"), 0.0);
        prop_assert_eq!(counter(&obs, "serve.admission.shed_inflight_total"), rejected);
    }

    /// Scripted breaker sequences against a reference model of the
    /// transition diagram (zero-delay backoff: an open window has
    /// always elapsed, so `allow` on Open grants the half-open probe).
    #[test]
    fn breaker_follows_the_transition_diagram(
        threshold in 1u32..5,
        ops in prop::collection::vec(0u8..3, 1..200),
    ) {
        let breaker = Breaker::new(threshold, Backoff::new(Duration::ZERO, Duration::ZERO));
        // Reference model.
        let mut state = BreakerState::Closed;
        let mut fails = 0u32;
        for op in ops {
            match op {
                // allow()
                0 => {
                    let expected = match state {
                        BreakerState::Closed => true,
                        BreakerState::Open => {
                            state = BreakerState::HalfOpen;
                            true
                        }
                        BreakerState::HalfOpen => false,
                    };
                    prop_assert_eq!(breaker.allow(), expected);
                }
                // on_success()
                1 => {
                    breaker.on_success();
                    fails = 0;
                    if state == BreakerState::HalfOpen {
                        state = BreakerState::Closed;
                    }
                }
                // on_failure()
                _ => {
                    breaker.on_failure();
                    match state {
                        BreakerState::Closed => {
                            fails += 1;
                            if fails >= threshold {
                                state = BreakerState::Open;
                            }
                        }
                        BreakerState::HalfOpen => state = BreakerState::Open,
                        BreakerState::Open => {}
                    }
                }
            }
            prop_assert_eq!(breaker.state(), state);
        }
    }
}
