//! End-to-end serving tests on an ephemeral port: query marginals over
//! HTTP, POST evidence, observe the incremental re-inference move the
//! marginal and bump the KB epoch, keep `/healthz` and `/metrics`
//! responsive throughout, and shut down cleanly — every worker thread
//! joined under a deadline, so a leak is a test failure.

use serde_json::Value as Json;
use std::time::Duration;
use sya_bench::http::{http_get, http_post_json};
use sya_core::{KnowledgeBase, SyaConfig, SyaSession};
use sya_data::{gwdb_dataset, Dataset, GwdbConfig};
use sya_obs::Obs;
use sya_serve::{EvidenceUpdate, ServeConfig, ServingKb, ShardRouter, SyaServer};

fn dataset() -> Dataset {
    gwdb_dataset(&GwdbConfig { n_wells: 60, ..Default::default() })
}

fn config() -> SyaConfig {
    SyaConfig::sya()
        .with_epochs(120)
        .with_seed(11)
        .with_bandwidth(sya_data::gwdb::GWDB_BANDWIDTH)
        .with_spatial_radius(sya_data::gwdb::GWDB_RADIUS)
}

fn build(dataset: &Dataset, config: SyaConfig) -> (SyaSession, KnowledgeBase) {
    let session =
        SyaSession::new(&dataset.program, dataset.constants.clone(), dataset.metric, config)
            .expect("program compiles");
    let mut db = dataset.db.clone();
    let kb = session
        .construct(&mut db, &dataset.evidence_fn())
        .expect("construction succeeds");
    (session, kb)
}

fn start_server(dataset: &Dataset, config: SyaConfig) -> SyaServer {
    let (session, kb) = build(dataset, config);
    let state = ServingKb::new(session, kb, Obs::enabled()).expect("spatial KB serves");
    let cfg = ServeConfig {
        listen: "127.0.0.1:0".into(),
        workers: 2,
        ..ServeConfig::default()
    };
    SyaServer::start(state, cfg).expect("server binds an ephemeral port")
}

fn get_ok(addr: &str, path: &str) -> Json {
    let r = http_get(addr, path).expect("GET succeeds");
    assert_eq!(r.status, 200, "GET {path}: {}", r.body);
    serde_json::from_str(&r.body).expect("valid JSON")
}

fn post_ok(addr: &str, path: &str, body: &str) -> Json {
    let r = http_post_json(addr, path, body).expect("POST succeeds");
    assert_eq!(r.status, 200, "POST {path}: {}", r.body);
    serde_json::from_str(&r.body).expect("valid JSON")
}

#[test]
fn serves_queries_applies_evidence_and_shuts_down_cleanly() {
    let dataset = dataset();
    let qid = *dataset.query_ids().first().expect("dataset has query atoms");
    let server = start_server(&dataset, config());
    let addr = server.local_addr().to_string();

    // Readiness before any traffic.
    let health = get_ok(&addr, "/healthz");
    assert_eq!(health["status"].as_str(), Some("ok"));
    assert_eq!(health["epoch"].as_u64(), Some(0));
    assert!(health["variables"].as_u64().unwrap() > 0);

    // Point marginal on a query (non-evidence) atom.
    let path = format!("/v1/marginal/IsSafe?args={qid}");
    let before = get_ok(&addr, &path);
    let score_before = before["score"].as_f64().unwrap();
    assert!((0.0..=1.0).contains(&score_before), "score {score_before}");
    assert_eq!(before["evidence"], Json::Null);
    assert_eq!(before["epoch"].as_u64(), Some(0));

    // Batch query.
    let ids = dataset.query_ids();
    let batch = post_ok(
        &addr,
        "/v1/query",
        &format!(
            "{{\"queries\":[{{\"relation\":\"IsSafe\",\"id\":{}}},{{\"relation\":\"IsSafe\",\"id\":{}}}]}}",
            ids[0], ids[1]
        ),
    );
    assert_eq!(batch["results"].as_array().unwrap().len(), 2);

    // Evidence: pin the queried atom to 0 (unsafe) and expect the
    // conclique-restricted sampler to resample a non-empty set.
    let ev = post_ok(
        &addr,
        "/v1/evidence",
        &format!("{{\"rows\":[{{\"relation\":\"IsSafe\",\"id\":{qid},\"value\":0}}]}}"),
    );
    assert!(ev["resampled"].as_u64().unwrap() > 0, "{ev}");
    assert_eq!(ev["epoch"].as_u64(), Some(1));

    // The marginal now reflects the observation and the new epoch.
    let after = get_ok(&addr, &path);
    assert_eq!(after["evidence"].as_u64(), Some(0));
    assert_eq!(after["epoch"].as_u64(), Some(1));
    let score_after = after["score"].as_f64().unwrap();
    assert!(
        score_after < score_before || score_after <= 0.5,
        "pinning to 0 should pull the marginal down: {score_before} -> {score_after}"
    );

    // Health and metrics stay live mid-stream and see the update.
    assert_eq!(get_ok(&addr, "/healthz")["epoch"].as_u64(), Some(1));
    let metrics = http_get(&addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    for needle in [
        "serve_requests_total",
        "serve_evidence_rows_total",
        "infer_incremental_resampled_vars",
        "infer_incremental_cells_touched",
    ] {
        assert!(metrics.body.contains(needle), "metrics missing {needle}:\n{}", metrics.body);
    }

    // Graceful shutdown: every thread joined under the deadline; an
    // Err here names the leaked workers.
    server.shutdown(Duration::from_secs(10)).expect("no leaked threads");
}

#[test]
fn rejects_malformed_requests_with_typed_statuses() {
    let dataset = dataset();
    let qid = *dataset.query_ids().first().unwrap();
    let server = start_server(&dataset, config());
    let addr = server.local_addr().to_string();

    // Unknown endpoint and wrong method.
    assert_eq!(http_get(&addr, "/nope").unwrap().status, 404);
    assert_eq!(http_post_json(&addr, "/healthz", "{}").unwrap().status, 405);

    // Marginal: missing id, malformed id, unknown atom.
    assert_eq!(http_get(&addr, "/v1/marginal/IsSafe").unwrap().status, 400);
    assert_eq!(http_get(&addr, "/v1/marginal/IsSafe?args=xyz").unwrap().status, 400);
    assert_eq!(http_get(&addr, "/v1/marginal/IsSafe?args=999999").unwrap().status, 404);

    // Evidence hardening mirrors the CLI loader: undeclared relation,
    // input relation, out-of-domain value, duplicate row — each a 400
    // with a JSON error envelope, and none of them move the epoch.
    for body in [
        format!("{{\"rows\":[{{\"relation\":\"Nope\",\"id\":{qid},\"value\":1}}]}}"),
        format!("{{\"rows\":[{{\"relation\":\"Well\",\"id\":{qid},\"value\":1}}]}}"),
        format!("{{\"rows\":[{{\"relation\":\"IsSafe\",\"id\":{qid},\"value\":7}}]}}"),
        format!(
            "{{\"rows\":[{{\"relation\":\"IsSafe\",\"id\":{qid},\"value\":1}},\
             {{\"relation\":\"IsSafe\",\"id\":{qid},\"value\":0}}]}}"
        ),
        "{\"rows\":[]}".to_owned(),
        "{\"wrong\":true}".to_owned(),
        "not json".to_owned(),
    ] {
        let r = http_post_json(&addr, "/v1/evidence", &body).unwrap();
        assert_eq!(r.status, 400, "body {body}: {}", r.body);
        assert!(r.body.contains("\"error\""), "{}", r.body);
    }
    assert_eq!(get_ok(&addr, "/healthz")["epoch"].as_u64(), Some(0));

    server.shutdown(Duration::from_secs(10)).expect("no leaked threads");
}

#[test]
fn shard_router_routes_by_owner_and_updates_one_shard_only() {
    let dataset = dataset();
    let cfg = config().with_shards(2).with_partition_level(3);
    let (session, kb) = build(&dataset, cfg);
    let router = ShardRouter::new(session, kb, Obs::enabled()).expect("router builds");
    assert_eq!(router.shard_count(), 2);

    // Find query atoms owned by different shards.
    let ids = dataset.query_ids();
    let owned_by = |shard: usize| {
        ids.iter()
            .copied()
            .find(|&id| router.shard_of("IsSafe", id) == Some(shard))
            .expect("both shards own query atoms")
    };
    let (a, b) = (owned_by(0), owned_by(1));

    // Marginals are tagged with the answering shard.
    assert_eq!(router.marginal("IsSafe", a).unwrap().unwrap().shard, Some(0));
    assert_eq!(router.marginal("IsSafe", b).unwrap().unwrap().shard, Some(1));

    // Evidence for shard 0's atom touches shard 0 only.
    let outcome = router
        .apply_evidence(&[sya_serve::EvidenceUpdate {
            relation: "IsSafe".into(),
            id: a,
            value: Some(0),
        }])
        .expect("evidence applies");
    assert!(outcome.resampled > 0);
    assert_eq!(router.shard_epochs(), vec![1, 0], "only the owner re-infers");
    assert_eq!(router.epoch(), 1);
    // The owner serves the update; the other shard is untouched.
    assert_eq!(router.marginal("IsSafe", a).unwrap().unwrap().evidence, Some(0));
    assert_eq!(router.marginal("IsSafe", b).unwrap().unwrap().evidence, None);

    // The same router behind the HTTP surface: healthz reports the
    // shard count, marginal answers carry the shard tag.
    let server = SyaServer::start(
        router,
        ServeConfig { listen: "127.0.0.1:0".into(), workers: 2, ..ServeConfig::default() },
    )
    .expect("server starts on the router");
    let addr = server.local_addr().to_string();
    let health = get_ok(&addr, "/healthz");
    assert_eq!(health["shards"].as_u64(), Some(2));
    assert_eq!(health["epoch"].as_u64(), Some(1));
    let m = get_ok(&addr, &format!("/v1/marginal/IsSafe?args={b}"));
    assert_eq!(m["shard"].as_u64(), Some(1));
    let ev = post_ok(
        &addr,
        "/v1/evidence",
        &format!("{{\"rows\":[{{\"relation\":\"IsSafe\",\"id\":{b},\"value\":1}}]}}"),
    );
    assert_eq!(ev["epoch"].as_u64(), Some(2), "{ev}");
    server.shutdown(Duration::from_secs(10)).expect("no leaked threads");
}

#[test]
fn down_shard_degrades_to_503_while_healthy_shards_keep_answering() {
    let dataset = dataset();
    let cfg = config().with_shards(2).with_partition_level(3);
    let (session, kb) = build(&dataset, cfg);
    let router = ShardRouter::new(session, kb, Obs::enabled()).expect("router builds");

    let ids = dataset.query_ids();
    let owned_by = |shard: usize| {
        ids.iter()
            .copied()
            .find(|&id| router.shard_of("IsSafe", id) == Some(shard))
            .expect("both shards own query atoms")
    };
    let (a, b) = (owned_by(0), owned_by(1));

    let server = SyaServer::start(
        router,
        ServeConfig { listen: "127.0.0.1:0".into(), workers: 2, ..ServeConfig::default() },
    )
    .expect("server starts on the router");
    let addr = server.local_addr().to_string();

    // Take shard 1 down behind the live server.
    let sya_serve::ServeState::Sharded(router) = server.state().as_ref() else {
        panic!("router state expected");
    };
    router.mark_shard_down(1);
    assert_eq!(router.down_shards(), vec![1]);

    // The healthy shard keeps answering; the down shard's atoms come
    // back 503 with a Retry-After hint, not 404 and not a hang.
    let m = get_ok(&addr, &format!("/v1/marginal/IsSafe?args={a}"));
    assert_eq!(m["shard"].as_u64(), Some(0));
    let down = http_get(&addr, &format!("/v1/marginal/IsSafe?args={b}")).unwrap();
    assert_eq!(down.status, 503, "{}", down.body);
    assert!(down.body.contains("shard 1 is down"), "{}", down.body);
    assert_eq!(down.header("Retry-After"), Some("5"), "headers: {:?}", down.headers);

    // Unknown atoms are still a 404 — degradation must not shadow
    // client errors.
    assert_eq!(http_get(&addr, "/v1/marginal/IsSafe?args=999999").unwrap().status, 404);

    // Evidence touching the down shard is rejected whole (no partial
    // application); evidence for the healthy shard still lands.
    let ev = http_post_json(
        &addr,
        "/v1/evidence",
        &format!(
            "{{\"rows\":[{{\"relation\":\"IsSafe\",\"id\":{a},\"value\":1}},\
             {{\"relation\":\"IsSafe\",\"id\":{b},\"value\":0}}]}}"
        ),
    )
    .unwrap();
    assert_eq!(ev.status, 503, "{}", ev.body);
    assert_eq!(router.shard_epochs(), vec![0, 0], "rejected batch must not re-infer");
    let ok = post_ok(
        &addr,
        "/v1/evidence",
        &format!("{{\"rows\":[{{\"relation\":\"IsSafe\",\"id\":{a},\"value\":1}}]}}"),
    );
    assert_eq!(ok["epoch"].as_u64(), Some(1), "{ok}");

    // healthz reports the degradation instead of lying with "ok".
    let health = get_ok(&addr, "/healthz");
    assert_eq!(health["status"].as_str(), Some("degraded"));
    assert_eq!(health["shards_down"], serde_json::json!([1]));

    // /metrics carries the per-shard availability gauges and counts
    // every 503 rejection (two so far: one marginal, one evidence).
    let metrics = http_get(&addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    for needle in
        ["sya_serve_shard_0_up 1", "sya_serve_shard_1_up 0", "sya_serve_shard_unavailable_total 2"]
    {
        assert!(metrics.body.contains(needle), "metrics missing {needle}:\n{}", metrics.body);
    }

    // Recovery: marking the shard up restores full service.
    router.mark_shard_up(1);
    let m = get_ok(&addr, &format!("/v1/marginal/IsSafe?args={b}"));
    assert_eq!(m["shard"].as_u64(), Some(1));
    assert_eq!(get_ok(&addr, "/healthz")["status"].as_str(), Some("ok"));
    let recovered = http_get(&addr, "/metrics").unwrap();
    assert!(recovered.body.contains("sya_serve_shard_1_up 1"), "{}", recovered.body);

    server.shutdown(Duration::from_secs(10)).expect("no leaked threads");
}

/// First value of a Prometheus sample line `NAME VALUE`.
fn prom_value(body: &str, name: &str) -> Option<f64> {
    body.lines().find_map(|l| {
        let rest = l.strip_prefix(name)?;
        if !rest.starts_with(' ') {
            return None;
        }
        rest.trim().parse().ok()
    })
}

#[test]
fn overload_sheds_with_retry_after_while_health_plane_answers() {
    let dataset = dataset();
    let qid = *dataset.query_ids().first().unwrap();
    let (session, kb) = build(&dataset, config());
    let state = ServingKb::new(session, kb, Obs::enabled()).expect("spatial KB serves");
    // A deliberately tiny envelope: one worker, one queue slot — a
    // burst of expensive evidence POSTs must overflow into sheds while
    // the health plane keeps answering through the shed lane.
    let cfg = ServeConfig {
        listen: "127.0.0.1:0".into(),
        workers: 1,
        max_queue: 1,
        max_inflight: 1,
        ..ServeConfig::default()
    };
    let server = SyaServer::start(state, cfg).expect("server binds");
    let addr = server.local_addr().to_string();
    let body = format!("{{\"rows\":[{{\"relation\":\"IsSafe\",\"id\":{qid},\"value\":0}}]}}");

    let mut accepted = 0u64;
    let mut shed = 0u64;
    let mut errors = 0u64;
    std::thread::scope(|scope| {
        let mut posts = Vec::new();
        for _ in 0..24 {
            let addr = addr.clone();
            let body = body.clone();
            posts.push(scope.spawn(move || http_post_json(&addr, "/v1/evidence", &body)));
        }
        // The health plane, polled mid-storm: every probe must answer
        // 200 — through the shed lane when the main queue is full.
        for _ in 0..10 {
            let health = http_get(&addr, "/healthz").expect("healthz reachable under load");
            assert_eq!(health.status, 200, "healthz under overload: {}", health.body);
            std::thread::sleep(Duration::from_millis(5));
        }
        for post in posts {
            match post.join().expect("post thread") {
                Ok(r) if r.status == 200 => accepted += 1,
                Ok(r) if r.status == 503 => {
                    // Every shed carries the Retry-After contract.
                    assert_eq!(r.header("Retry-After"), Some("5"), "headers: {:?}", r.headers);
                    shed += 1;
                }
                Ok(r) => panic!("unexpected status {}: {}", r.status, r.body),
                Err(_) => errors += 1,
            }
        }
    });
    assert!(accepted >= 1, "at least the first arrival must be served");
    assert!(shed >= 1, "a 24-deep burst against queue depth 1 must shed");

    // The admission ledger drained back to zero…
    assert_eq!(server.admission().queued(), 0);
    assert_eq!(server.admission().inflight(), 0);

    // …and the counters account for at least every 503 the wire saw
    // (a client that lost the race to a closed socket counts as an
    // error here but was still a shed server-side).
    let metrics = http_get(&addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let shed_total = prom_value(&metrics.body, "sya_serve_admission_shed_queue_full_total")
        .unwrap_or(0.0)
        + prom_value(&metrics.body, "sya_serve_admission_shed_deadline_total").unwrap_or(0.0)
        + prom_value(&metrics.body, "sya_serve_admission_shed_inflight_total").unwrap_or(0.0);
    assert!(
        shed_total >= shed as f64,
        "counters {shed_total} must cover the {shed} observed 503s ({errors} errors)"
    );
    assert_eq!(
        prom_value(&metrics.body, "sya_serve_admission_queued"),
        Some(0.0),
        "queued gauge returns to zero:\n{}",
        metrics.body
    );
    assert_eq!(prom_value(&metrics.body, "sya_serve_admission_inflight"), Some(0.0));
    assert_eq!(
        prom_value(&metrics.body, "sya_serve_admission_max_queue"),
        Some(1.0),
        "configured envelope is published"
    );

    server.shutdown(Duration::from_secs(10)).expect("no leaked threads");
}

#[test]
fn breaker_opens_after_consecutive_failures_and_probe_closes_it() {
    use sya_runtime::{Backoff, BreakerState};

    let dataset = dataset();
    let cfg = config().with_shards(2).with_partition_level(3);
    let (session, kb) = build(&dataset, cfg);
    let mut router = ShardRouter::new(session, kb, Obs::enabled()).expect("router builds");

    let ids = dataset.query_ids();
    let owned_by = |router: &ShardRouter, shard: usize| {
        ids.iter()
            .copied()
            .find(|&id| router.shard_of("IsSafe", id) == Some(shard))
            .expect("both shards own query atoms")
    };
    let (a, b) = (owned_by(&router, 0), owned_by(&router, 1));

    // Part 1 — zero-delay probe window: the transition script runs
    // without sleeping. Two consecutive failures trip the breaker.
    // Reads resume through the elapsed window but never consume the
    // half-open probe or close the breaker — only a write can fail, so
    // only a successful write probe closes it (otherwise a cheap read
    // would close a breaker whose writes are still failing and flap it).
    router.set_breaker_policy(2, Backoff::new(Duration::ZERO, Duration::ZERO));
    router.record_shard_failure(1);
    assert_eq!(router.breaker_state(1), Some(BreakerState::Closed));
    router.record_shard_failure(1);
    assert_eq!(router.breaker_state(1), Some(BreakerState::Open));
    assert_eq!(router.open_breakers(), vec![1]);
    let m = router.marginal("IsSafe", b).expect("read admitted through the elapsed window");
    assert!(m.is_some());
    assert_eq!(
        router.breaker_state(1),
        Some(BreakerState::Open),
        "a read neither consumes the probe nor closes the breaker"
    );
    router
        .apply_evidence(&[EvidenceUpdate { relation: "IsSafe".into(), id: b, value: Some(0) }])
        .expect("write probe admitted through the elapsed window");
    assert_eq!(router.breaker_state(1), Some(BreakerState::Closed), "probe success closes");
    assert!(router.open_breakers().is_empty());

    // Part 2 — a long probe window behind the live server: the open
    // breaker fast-fails over HTTP while the healthy shard answers and
    // /metrics tells "breaker-open" apart from "marked down".
    router.set_breaker_policy(2, Backoff::new(Duration::from_secs(600), Duration::from_secs(600)));
    router.record_shard_failure(1);
    router.record_shard_failure(1);
    assert_eq!(router.breaker_state(1), Some(BreakerState::Open));

    let server = SyaServer::start(
        router,
        ServeConfig { listen: "127.0.0.1:0".into(), workers: 2, ..ServeConfig::default() },
    )
    .expect("server starts on the router");
    let addr = server.local_addr().to_string();

    // Healthy shard still answers; the sick shard's atoms fast-fail
    // with 503 + Retry-After naming the breaker, not the supervisor.
    let ok = get_ok(&addr, &format!("/v1/marginal/IsSafe?args={a}"));
    assert_eq!(ok["shard"].as_u64(), Some(0));
    let fast = http_get(&addr, &format!("/v1/marginal/IsSafe?args={b}")).unwrap();
    assert_eq!(fast.status, 503, "{}", fast.body);
    assert!(fast.body.contains("breaker is open"), "{}", fast.body);
    assert_eq!(fast.header("Retry-After"), Some("5"), "headers: {:?}", fast.headers);

    // Evidence touching the sick shard is rejected whole, before any
    // shard re-infers.
    let ev = http_post_json(
        &addr,
        "/v1/evidence",
        &format!(
            "{{\"rows\":[{{\"relation\":\"IsSafe\",\"id\":{a},\"value\":1}},\
             {{\"relation\":\"IsSafe\",\"id\":{b},\"value\":0}}]}}"
        ),
    )
    .unwrap();
    assert_eq!(ev.status, 503, "{}", ev.body);

    // healthz reports the open breaker distinctly from shards_down.
    let health = get_ok(&addr, "/healthz");
    assert_eq!(health["status"].as_str(), Some("degraded"));
    assert_eq!(health["shards_down"], serde_json::json!([]));
    assert_eq!(health["breakers_open"], serde_json::json!([1]));

    // /metrics: the shard is *up* (not supervisor-down) with breaker
    // *open* — the distinction the fleet plane needs — and fast-fails
    // are counted separately from shard_unavailable.
    let metrics = http_get(&addr, "/metrics").unwrap();
    for needle in ["sya_serve_shard_1_up 1", "sya_serve_shard_1_breaker 1"] {
        assert!(metrics.body.contains(needle), "metrics missing {needle}:\n{}", metrics.body);
    }
    assert!(
        prom_value(&metrics.body, "sya_serve_shard_breaker_fastfail_total").unwrap_or(0.0) >= 2.0,
        "{}",
        metrics.body
    );

    server.shutdown(Duration::from_secs(10)).expect("no leaked threads");
}

#[test]
fn warm_start_from_serve_checkpoint_preserves_marginals() {
    let dir = std::env::temp_dir().join(format!("sya_serve_warm_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dataset = dataset();
    let qid = *dataset.query_ids().first().unwrap();
    let cfg = config().with_checkpoints(dir.to_str().unwrap(), 1000);

    let (session, kb) = build(&dataset, cfg.clone());
    let state = ServingKb::new(session, kb, Obs::enabled()).expect("spatial KB serves");

    // Move the KB past its constructed state, then snapshot: the
    // checkpoint must capture the *post-evidence* marginals.
    let server = SyaServer::start(
        state,
        ServeConfig { listen: "127.0.0.1:0".into(), workers: 1, ..ServeConfig::default() },
    )
    .expect("server starts");
    let addr = server.local_addr().to_string();
    post_ok(
        &addr,
        "/v1/evidence",
        &format!("{{\"rows\":[{{\"relation\":\"IsSafe\",\"id\":{qid},\"value\":0}}]}}"),
    );
    let saved = server.state().checkpoint_now().expect("checkpoint saves");
    assert!(saved.is_some(), "first save must write a file");
    // Same epoch again: nothing new to save.
    assert!(server.state().checkpoint_now().unwrap().is_none());
    let live: Vec<(i64, f64)> =
        server.state().with_kb(|kb| kb.query_scores_by_id("IsSafe")).expect("full-mode KB");
    server.shutdown(Duration::from_secs(10)).expect("no leaked threads");

    // A fresh process warm-starts from the serve-time checkpoint and
    // reports the same marginals (count ratios survive the k-way chain
    // synthesis exactly, modulo float merge order).
    let (_, kb2) = build(&dataset, cfg.with_resume(true));
    let resumed: std::collections::HashMap<i64, f64> =
        kb2.query_scores_by_id("IsSafe").into_iter().collect();
    // The posted atom is evidence in the live KB (so absent from its
    // query scores) but a query atom again in the fresh build.
    assert_eq!(resumed.len(), live.len() + 1);
    assert!(resumed.contains_key(&qid));
    for (id, a) in &live {
        let b = resumed[id];
        assert!((a - b).abs() < 1e-9, "id {id}: live {a} vs resumed {b}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
