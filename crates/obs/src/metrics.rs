//! Named counters, gauges, fixed-bucket histograms, and series.
//!
//! Registration (name → instrument) takes a mutex, but the instruments
//! themselves are atomics, so hot paths grab a handle once (e.g.
//! [`MetricsRegistry::counter`]) and update lock-free afterwards.
//! Registries export deterministically: snapshots are `BTreeMap`s, so
//! every dump lists instruments in sorted name order.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter. Cheap to clone; clones share the
/// same cell. A [`Counter::detached`] counter updates private storage
/// that is never exported (used by disabled [`crate::Obs`] handles).
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub(crate) fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Add `n` (relaxed; counters are only read at snapshot time).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram: cumulative-style export, atomic buckets.
#[derive(Debug)]
pub struct Histogram {
    /// Upper bounds of the finite buckets; an implicit `+Inf` bucket
    /// catches the rest.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` bucket counts.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations, stored as `f64` bits (CAS loop on update).
    sum_bits: AtomicU64,
}

/// Default bucket bounds, tuned for seconds-scale phase timings.
pub const DEFAULT_BUCKETS: &[f64] = &[
    0.000_1, 0.000_5, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
];

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        let mut sorted = bounds.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("histogram bounds must not be NaN"));
        sorted.dedup();
        let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram { bounds: sorted, buckets, count: AtomicU64::new(0), sum_bits: AtomicU64::new(0) }
    }

    /// Record one observation.
    pub fn record(&self, value: f64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Immutable copy of a [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    pub bounds: Vec<f64>,
    /// One count per bound, plus the trailing `+Inf` bucket.
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: f64,
}

type SeriesCell = Arc<Mutex<Vec<(f64, f64)>>>;

/// The registry: name → instrument, with deterministic export order.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    series: Mutex<BTreeMap<String, SeriesCell>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create a counter handle for lock-free updates.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap();
        map.entry(name.to_string()).or_insert_with(Counter::detached).clone()
    }

    /// One-shot add (registry lookup per call; fine off the hot path).
    pub fn counter_add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Current value of a counter, or `None` if never touched.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.lock().unwrap().get(name).map(Counter::value)
    }

    /// Set a gauge to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        let cell = {
            let mut map = self.gauges.lock().unwrap();
            Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(AtomicU64::new(0))))
        };
        cell.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (may be negative) to a gauge, creating it at zero.
    /// Lock-free after the registry lookup: a CAS loop on the f64 bits,
    /// same discipline as [`Histogram::record`]'s sum. Used for
    /// up/down lane counters (queued, in-flight) where concurrent
    /// enqueues and dequeues race.
    pub fn gauge_add(&self, name: &str, delta: f64) {
        let cell = {
            let mut map = self.gauges.lock().unwrap();
            Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(AtomicU64::new(0))))
        };
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current gauge value, or `None` if never set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges
            .lock()
            .unwrap()
            .get(name)
            .map(|c| f64::from_bits(c.load(Ordering::Relaxed)))
    }

    /// Get-or-create a histogram with explicit bucket bounds. Bounds
    /// are fixed at first registration; later calls reuse the existing
    /// instrument regardless of the bounds argument.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        Arc::clone(
            map.entry(name.to_string()).or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Record into a histogram with [`DEFAULT_BUCKETS`].
    pub fn histogram_record(&self, name: &str, value: f64) {
        self.histogram(name, DEFAULT_BUCKETS).record(value);
    }

    /// Append a point to a named series.
    pub fn series_push(&self, name: &str, x: f64, y: f64) {
        let cell = {
            let mut map = self.series.lock().unwrap();
            Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(Mutex::new(Vec::new()))))
        };
        cell.lock().unwrap().push((x, y));
    }

    /// Replace a named series wholesale (used when samplers publish a
    /// finished per-epoch trajectory).
    pub fn series_set(&self, name: &str, points: Vec<(f64, f64)>) {
        let cell = {
            let mut map = self.series.lock().unwrap();
            Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(Mutex::new(Vec::new()))))
        };
        *cell.lock().unwrap() = points;
    }

    /// Copy of a named series, or `None` if never touched.
    pub fn series(&self, name: &str) -> Option<Vec<(f64, f64)>> {
        self.series.lock().unwrap().get(name).map(|s| s.lock().unwrap().clone())
    }

    /// Point-in-time copy of every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.value()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            series: self
                .series
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.lock().unwrap().clone()))
                .collect(),
        }
    }
}

/// Deterministically ordered copy of a [`MetricsRegistry`].
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    pub series: BTreeMap<String, Vec<(f64, f64)>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_accumulates_across_handles() {
        let reg = MetricsRegistry::new();
        let h = reg.counter("infer.samples_total");
        h.add(5);
        reg.counter_add("infer.samples_total", 2);
        assert_eq!(reg.counter_value("infer.samples_total"), Some(7));
        assert_eq!(reg.counter_value("missing"), None);
    }

    #[test]
    fn counters_are_thread_safe() {
        let reg = MetricsRegistry::new();
        let h = reg.counter("hot_total");
        thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.inc();
                    }
                });
            }
        });
        assert_eq!(reg.counter_value("hot_total"), Some(4000));
    }

    #[test]
    fn gauge_overwrites() {
        let reg = MetricsRegistry::new();
        reg.gauge_set("phase.grounding_seconds", 1.5);
        reg.gauge_set("phase.grounding_seconds", 2.25);
        assert_eq!(reg.gauge_value("phase.grounding_seconds"), Some(2.25));
    }

    #[test]
    fn gauge_add_is_thread_safe_and_signed() {
        let reg = MetricsRegistry::new();
        reg.gauge_add("serve.admission.queued", 0.0);
        thread::scope(|s| {
            for _ in 0..4 {
                let reg = &reg;
                s.spawn(move || {
                    for _ in 0..1000 {
                        reg.gauge_add("serve.admission.queued", 1.0);
                        reg.gauge_add("serve.admission.queued", -1.0);
                    }
                });
            }
        });
        assert_eq!(reg.gauge_value("serve.admission.queued"), Some(0.0));
        reg.gauge_add("serve.admission.queued", 3.0);
        assert_eq!(reg.gauge_value("serve.admission.queued"), Some(3.0));
    }

    #[test]
    fn histogram_buckets_observations() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_seconds", &[0.1, 1.0]);
        h.record(0.05); // bucket 0 (<= 0.1)
        h.record(0.5); // bucket 1 (<= 1.0)
        h.record(3.0); // +Inf bucket
        h.record(0.1); // boundary lands in bucket 0
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![2, 1, 1]);
        assert_eq!(snap.count, 4);
        assert!((snap.sum - 3.65).abs() < 1e-9);
    }

    #[test]
    fn series_push_and_set() {
        let reg = MetricsRegistry::new();
        reg.series_push("infer.flip_rate", 0.0, 0.9);
        reg.series_push("infer.flip_rate", 1.0, 0.4);
        assert_eq!(reg.series("infer.flip_rate").unwrap().len(), 2);
        reg.series_set("infer.flip_rate", vec![(0.0, 1.0)]);
        assert_eq!(reg.series("infer.flip_rate").unwrap(), vec![(0.0, 1.0)]);
    }

    #[test]
    fn snapshot_is_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter_add("z_total", 1);
        reg.counter_add("a_total", 1);
        let snap = reg.snapshot();
        let names: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(names, vec!["a_total", "z_total"]);
    }
}
