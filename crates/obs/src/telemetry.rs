//! Sampler convergence telemetry.
//!
//! The samplers (sequential Gibbs, parallel-random Gibbs, Spatial
//! Gibbs) drive an [`EpochTelemetry`] builder once per epoch and
//! snapshot the finished [`ConvergenceSeries`] into their run result:
//!
//! * **flip rate** — fraction of samples in the epoch that changed a
//!   variable's value; a falling flip rate is the classic mixing signal;
//! * **marginal delta** — `max_v |p_t(v) − p_{t−1}(v)|` over running
//!   marginal estimates (mean of a per-variable indicator across the
//!   epochs so far); the paper's convergence criterion for Fig. 9-style
//!   trajectories;
//! * **pseudo-log-likelihood** — sampled at a fixed cadence
//!   ([`pll_stride`]) because each evaluation costs about one sweep;
//! * **per-conclique sample counts** — how much work each of the four
//!   concliques of the minimum cover received.
//!
//! Multi-instance runs average the per-epoch series over surviving
//! instances ([`ConvergenceSeries::merge_mean`]), mirroring how the
//! marginal counts themselves are merged.

use crate::Obs;

/// Concliques in the minimum cover of a square-tessellated lattice
/// (paper Theorem 2: `(col % 2) + 2 * (row % 2)` → 4 classes).
pub const NUM_CONCLIQUES: usize = 4;

/// Cadence for pseudo-log-likelihood sampling: at most ~64 evaluations
/// per run, so telemetry never doubles the sampler's cost.
pub fn pll_stride(epochs: usize) -> usize {
    (epochs / 64).max(1)
}

/// A finished per-run convergence trajectory.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConvergenceSeries {
    /// Per-epoch fraction of samples that flipped a value.
    pub flip_rate: Vec<f64>,
    /// Per-epoch `max_v |p_t(v) − p_{t−1}(v)|` over running marginals.
    pub marginal_delta: Vec<f64>,
    /// `(epoch, pseudo-log-likelihood)` at [`pll_stride`] cadence.
    pub pll: Vec<(f64, f64)>,
    /// Samples drawn per conclique of the minimum cover (all zero for
    /// non-conclique samplers).
    pub conclique_samples: [u64; NUM_CONCLIQUES],
    pub samples_total: u64,
    pub flips_total: u64,
    /// Epochs that contributed to the series.
    pub epochs: usize,
}

impl ConvergenceSeries {
    pub fn is_empty(&self) -> bool {
        self.epochs == 0 && self.samples_total == 0
    }

    /// Element-wise mean of per-epoch series over several instance
    /// runs; counts are summed. Instances that stopped early simply
    /// stop contributing to later epochs.
    pub fn merge_mean(runs: &[ConvergenceSeries]) -> ConvergenceSeries {
        let mut out = ConvergenceSeries::default();
        if runs.is_empty() {
            return out;
        }
        out.flip_rate = mean_series(runs.iter().map(|r| &r.flip_rate));
        out.marginal_delta = mean_series(runs.iter().map(|r| &r.marginal_delta));
        out.pll = runs.iter().map(|r| &r.pll).max_by_key(|p| p.len()).cloned().unwrap_or_default();
        for r in runs {
            for (acc, n) in out.conclique_samples.iter_mut().zip(r.conclique_samples) {
                *acc += n;
            }
            out.samples_total += r.samples_total;
            out.flips_total += r.flips_total;
            out.epochs = out.epochs.max(r.epochs);
        }
        out
    }

    /// Record the trajectory into the registry under `prefix`
    /// (`{prefix}.flip_rate`, `{prefix}.marginal_delta`, `{prefix}.pll`
    /// series; `{prefix}.samples_total` / `{prefix}.flips_total`
    /// counters; `{prefix}.epochs` gauge).
    pub fn publish(&self, obs: &Obs, prefix: &str) {
        let Some(metrics) = obs.metrics() else { return };
        metrics.series_set(
            &format!("{prefix}.flip_rate"),
            self.flip_rate.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect(),
        );
        metrics.series_set(
            &format!("{prefix}.marginal_delta"),
            self.marginal_delta.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect(),
        );
        metrics.series_set(&format!("{prefix}.pll"), self.pll.clone());
        metrics.counter_add(&format!("{prefix}.samples_total"), self.samples_total);
        metrics.counter_add(&format!("{prefix}.flips_total"), self.flips_total);
        for (c, &n) in self.conclique_samples.iter().enumerate() {
            if n > 0 {
                metrics.counter_add(&format!("{prefix}.conclique{c}_samples_total"), n);
            }
        }
        metrics.gauge_set(&format!("{prefix}.epochs"), self.epochs as f64);
    }
}

fn mean_series<'a>(runs: impl Iterator<Item = &'a Vec<f64>> + Clone) -> Vec<f64> {
    let len = runs.clone().map(Vec::len).max().unwrap_or(0);
    (0..len)
        .map(|i| {
            let mut sum = 0.0;
            let mut n = 0usize;
            for r in runs.clone() {
                if let Some(&v) = r.get(i) {
                    sum += v;
                    n += 1;
                }
            }
            sum / n.max(1) as f64
        })
        .collect()
}

/// Per-instance builder the samplers drive once per epoch.
///
/// Running marginals use a per-variable **indicator** (supplied by the
/// sampler as an iterator over the current assignment, e.g.
/// `value == 1` for binary variables) averaged over the epochs seen so
/// far; the marginal delta is the max change of that running mean.
#[derive(Clone, Debug)]
pub struct EpochTelemetry {
    ones: Vec<u64>,
    prev_p: Vec<f64>,
    epochs_seen: u64,
    series: ConvergenceSeries,
}

impl EpochTelemetry {
    pub fn new(num_vars: usize) -> Self {
        EpochTelemetry {
            ones: vec![0; num_vars],
            prev_p: vec![0.0; num_vars],
            epochs_seen: 0,
            series: ConvergenceSeries::default(),
        }
    }

    /// Close an epoch: record its flip rate and fold the current
    /// assignment (as indicators) into the running marginals.
    pub fn end_epoch(
        &mut self,
        flips: u64,
        samples: u64,
        indicators: impl Iterator<Item = bool>,
    ) {
        self.epochs_seen += 1;
        self.series.epochs = self.epochs_seen as usize;
        self.series.flips_total += flips;
        self.series.samples_total += samples;
        self.series.flip_rate.push(flips as f64 / samples.max(1) as f64);

        let t = self.epochs_seen as f64;
        let mut delta: f64 = 0.0;
        for (v, on) in indicators.enumerate() {
            if v >= self.ones.len() {
                break;
            }
            if on {
                self.ones[v] += 1;
            }
            let p = self.ones[v] as f64 / t;
            delta = delta.max((p - self.prev_p[v]).abs());
            self.prev_p[v] = p;
        }
        self.series.marginal_delta.push(delta);
    }

    /// Record a pseudo-log-likelihood observation for `epoch`.
    pub fn record_pll(&mut self, epoch: usize, value: f64) {
        self.series.pll.push((epoch as f64, value));
    }

    /// Credit `n` samples to conclique `c` (ignored when out of range).
    pub fn add_conclique_samples(&mut self, c: usize, n: u64) {
        if let Some(slot) = self.series.conclique_samples.get_mut(c) {
            *slot += n;
        }
    }

    pub fn finish(self) -> ConvergenceSeries {
        self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_rate_and_marginal_delta_track_epochs() {
        let mut t = EpochTelemetry::new(2);
        // Epoch 1: both vars at 1 → p = [1, 1], delta 1.0.
        t.end_epoch(2, 4, [true, true].into_iter());
        // Epoch 2: var 1 drops to 0 → p = [1, 0.5], delta 0.5.
        t.end_epoch(1, 4, [true, false].into_iter());
        let s = t.finish();
        assert_eq!(s.epochs, 2);
        assert_eq!(s.flip_rate, vec![0.5, 0.25]);
        assert_eq!(s.marginal_delta, vec![1.0, 0.5]);
        assert_eq!(s.samples_total, 8);
        assert_eq!(s.flips_total, 3);
    }

    #[test]
    fn zero_samples_epoch_is_safe() {
        let mut t = EpochTelemetry::new(1);
        t.end_epoch(0, 0, [false].into_iter());
        assert_eq!(t.finish().flip_rate, vec![0.0]);
    }

    #[test]
    fn conclique_samples_accumulate() {
        let mut t = EpochTelemetry::new(1);
        t.add_conclique_samples(0, 3);
        t.add_conclique_samples(3, 2);
        t.add_conclique_samples(9, 7); // out of range, ignored
        let s = t.finish();
        assert_eq!(s.conclique_samples, [3, 0, 0, 2]);
    }

    #[test]
    fn merge_mean_averages_and_sums() {
        let mut a = ConvergenceSeries {
            flip_rate: vec![0.8, 0.4],
            marginal_delta: vec![1.0, 0.2],
            samples_total: 10,
            flips_total: 6,
            epochs: 2,
            ..Default::default()
        };
        a.conclique_samples = [4, 0, 0, 0];
        let b = ConvergenceSeries {
            flip_rate: vec![0.6],
            marginal_delta: vec![0.5],
            samples_total: 5,
            flips_total: 3,
            epochs: 1,
            ..Default::default()
        };
        let m = ConvergenceSeries::merge_mean(&[a, b]);
        assert_eq!(m.flip_rate, vec![0.7, 0.4]);
        assert_eq!(m.marginal_delta, vec![0.75, 0.2]);
        assert_eq!(m.samples_total, 15);
        assert_eq!(m.flips_total, 9);
        assert_eq!(m.epochs, 2);
        assert_eq!(m.conclique_samples, [4, 0, 0, 0]);
    }

    #[test]
    fn publish_writes_series_and_counters() {
        let obs = Obs::enabled();
        let mut t = EpochTelemetry::new(1);
        t.end_epoch(1, 2, [true].into_iter());
        t.record_pll(0, -3.5);
        let s = t.finish();
        s.publish(&obs, "infer.spatial");
        let m = obs.metrics().unwrap();
        assert_eq!(m.series("infer.spatial.flip_rate").unwrap().len(), 1);
        assert_eq!(m.series("infer.spatial.marginal_delta").unwrap(), vec![(0.0, 1.0)]);
        assert_eq!(m.series("infer.spatial.pll").unwrap(), vec![(0.0, -3.5)]);
        assert_eq!(m.counter_value("infer.spatial.samples_total"), Some(2));
        assert_eq!(m.gauge_value("infer.spatial.epochs"), Some(1.0));
    }

    #[test]
    fn pll_stride_caps_evaluations() {
        assert_eq!(pll_stride(10), 1);
        assert_eq!(pll_stride(1000), 15);
        assert!(1000usize.div_ceil(pll_stride(1000)) <= 67);
    }
}
