//! Fleet-wide metric aggregation for the cluster coordinator
//! (DESIGN.md §14).
//!
//! Each `shard-worker` ships a [`MetricsSnapshot`] per epoch over the
//! wire (`Frame::Telemetry`); the coordinator folds them into a
//! [`FleetView`] — the single pane of glass the `--status-listen` board
//! serves. Aggregation semantics, per metric kind:
//!
//! * **counters** — per-shard samples labelled `{shard="N"}` plus a
//!   fleet **sum** under `fleet.<name>`;
//! * **gauges** — per-shard samples plus a fleet **max** (a fleet gauge
//!   is a worst-case signal: the largest `max_delta`, the slowest
//!   epoch);
//! * **series** — exported as a per-shard `_last` gauge (the trajectory
//!   itself stays in each worker's own `--metrics-out` dump);
//! * **staleness** — `fleet.shard_staleness_epochs{shard=N}`: how many
//!   epochs behind the coordinator's lockstep epoch that shard's last
//!   telemetry shipment is. A shard that stops reporting goes stale
//!   instead of vanishing.
//!
//! A shard's successive shipments *replace* each other (worker counters
//! are cumulative), so re-shipping after a rollback or restart is
//! idempotent.

use crate::export::{escape_label_value, json_f64, json_str, prom_name};
use crate::metrics::MetricsSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag stamped into the fleet JSON document.
pub const FLEET_SCHEMA: &str = "sya.fleet.v1";

/// One shard's most recent telemetry shipment.
#[derive(Clone, Debug, Default)]
pub struct ShardTelemetry {
    /// Epoch the shipment was taken at.
    pub epoch: u64,
    pub snap: MetricsSnapshot,
}

/// The coordinator's merged view over every shard's shipments.
#[derive(Clone, Debug, Default)]
pub struct FleetView {
    run_id: u64,
    /// The coordinator's lockstep epoch (staleness reference point).
    epoch_now: u64,
    shards: BTreeMap<u32, ShardTelemetry>,
    /// The coordinator's own metrics (`cluster.*` supervision counters),
    /// rendered unlabelled next to the per-shard samples.
    coordinator: Option<MetricsSnapshot>,
    /// Serving/construction mode the fleet runs in: `"full"` (default,
    /// every shard grounds its whole cut) or `"lazy"` (demand-grounded
    /// serving; dashboards read this to pick which panels apply).
    mode: String,
}

impl FleetView {
    pub fn new(run_id: u64) -> Self {
        FleetView {
            run_id,
            epoch_now: 0,
            shards: BTreeMap::new(),
            coordinator: None,
            mode: "full".to_owned(),
        }
    }

    pub fn mode(&self) -> &str {
        &self.mode
    }

    /// Stamp the mode rendered on the board (`"full"`/`"lazy"`).
    pub fn set_mode(&mut self, mode: &str) {
        self.mode = mode.to_owned();
    }

    pub fn run_id(&self) -> u64 {
        self.run_id
    }

    /// Stamp (or restamp) the coordinator-issued run ID.
    pub fn set_run_id(&mut self, run_id: u64) {
        self.run_id = run_id;
    }

    /// Replace the coordinator's own snapshot.
    pub fn set_coordinator(&mut self, snap: MetricsSnapshot) {
        self.coordinator = Some(snap);
    }

    /// Replace `shard`'s telemetry with a fresh shipment.
    pub fn record(&mut self, shard: u32, epoch: u64, snap: MetricsSnapshot) {
        self.epoch_now = self.epoch_now.max(epoch);
        self.shards.insert(shard, ShardTelemetry { epoch, snap });
    }

    /// Advance the staleness reference point (the coordinator's lockstep
    /// epoch); never moves backwards.
    pub fn observe_epoch(&mut self, epoch: u64) {
        self.epoch_now = self.epoch_now.max(epoch);
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Epochs between the coordinator's lockstep epoch and `shard`'s
    /// last shipment (`None` for a shard that never reported).
    pub fn staleness(&self, shard: u32) -> Option<u64> {
        self.shards.get(&shard).map(|t| self.epoch_now.saturating_sub(t.epoch))
    }

    /// Fleet rollup: counters summed, gauges maxed over shards, plus
    /// `fleet.shards_reporting` / `fleet.epoch` gauges. Histograms and
    /// series are per-shard artifacts and stay out of the rollup.
    pub fn rollup(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for t in self.shards.values() {
            for (name, &v) in &t.snap.counters {
                *out.counters.entry(name.clone()).or_insert(0) += v;
            }
            for (name, &v) in &t.snap.gauges {
                let slot = out.gauges.entry(name.clone()).or_insert(f64::NEG_INFINITY);
                if v > *slot {
                    *slot = v;
                }
            }
        }
        out.gauges.insert("fleet.shards_reporting".into(), self.shards.len() as f64);
        out.gauges.insert("fleet.epoch".into(), self.epoch_now as f64);
        out
    }

    /// Prometheus text: for every counter/gauge name, one `# TYPE` line,
    /// one `{shard="N"}`-labelled sample per reporting shard, and a
    /// `sya_fleet_*` rollup sample (sum for counters, max for gauges);
    /// per-shard series as `_last` labelled gauges; per-shard staleness
    /// gauges; and a `sya_fleet_run_info{run_id=".."} 1` info sample.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();

        let mut counters: BTreeMap<&str, Vec<(u32, u64)>> = BTreeMap::new();
        let mut gauges: BTreeMap<&str, Vec<(u32, f64)>> = BTreeMap::new();
        let mut series_last: BTreeMap<&str, Vec<(u32, f64)>> = BTreeMap::new();
        for (&shard, t) in &self.shards {
            for (name, &v) in &t.snap.counters {
                counters.entry(name).or_default().push((shard, v));
            }
            for (name, &v) in &t.snap.gauges {
                gauges.entry(name).or_default().push((shard, v));
            }
            for (name, points) in &t.snap.series {
                if let Some(&(_, last)) = points.last() {
                    series_last.entry(name).or_default().push((shard, last));
                }
            }
        }

        for (name, samples) in &counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            for &(shard, v) in samples {
                let _ = writeln!(out, "{n}{{shard=\"{shard}\"}} {v}");
            }
            let fleet = prom_name(&format!("fleet.{name}"));
            let sum: u64 = samples.iter().map(|&(_, v)| v).sum();
            let _ = writeln!(out, "# TYPE {fleet} counter");
            let _ = writeln!(out, "{fleet} {sum}");
        }
        for (name, samples) in &gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            for &(shard, v) in samples {
                let _ = writeln!(out, "{n}{{shard=\"{shard}\"}} {v}");
            }
            let fleet = prom_name(&format!("fleet.{name}"));
            let max = samples.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max);
            let _ = writeln!(out, "# TYPE {fleet} gauge");
            let _ = writeln!(out, "{fleet} {max}");
        }
        for (name, samples) in &series_last {
            let n = format!("{}_last", prom_name(name));
            let _ = writeln!(out, "# TYPE {n} gauge");
            for &(shard, v) in samples {
                let _ = writeln!(out, "{n}{{shard=\"{shard}\"}} {v}");
            }
        }

        if let Some(coord) = &self.coordinator {
            // Unlabelled coordinator samples; names already emitted for
            // the shards are skipped so no metric gets two TYPE lines.
            for (name, v) in &coord.counters {
                if counters.contains_key(name.as_str()) {
                    continue;
                }
                let n = prom_name(name);
                let _ = writeln!(out, "# TYPE {n} counter");
                let _ = writeln!(out, "{n} {v}");
            }
            for (name, v) in &coord.gauges {
                if gauges.contains_key(name.as_str()) {
                    continue;
                }
                let n = prom_name(name);
                let _ = writeln!(out, "# TYPE {n} gauge");
                let _ = writeln!(out, "{n} {v}");
            }
        }

        let stale = prom_name("fleet.shard_staleness_epochs");
        let _ = writeln!(out, "# TYPE {stale} gauge");
        for (&shard, t) in &self.shards {
            let lag = self.epoch_now.saturating_sub(t.epoch);
            let _ = writeln!(out, "{stale}{{shard=\"{shard}\"}} {lag}");
        }
        let _ = writeln!(out, "# TYPE sya_fleet_shards_reporting gauge");
        let _ = writeln!(out, "sya_fleet_shards_reporting {}", self.shards.len());
        let _ = writeln!(out, "# TYPE sya_fleet_epoch gauge");
        let _ = writeln!(out, "sya_fleet_epoch {}", self.epoch_now);
        let _ = writeln!(out, "# TYPE sya_fleet_run_info gauge");
        let _ = writeln!(
            out,
            "sya_fleet_run_info{{run_id=\"{}\"}} 1",
            escape_label_value(&format!("{:#018x}", self.run_id))
        );
        out
    }

    /// The fleet as one JSON document (schema `sya.fleet.v1`): per-shard
    /// epoch/staleness/counters/gauges plus the rollup.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_str(FLEET_SCHEMA));
        let _ = writeln!(out, "  \"mode\": {},", json_str(&self.mode));
        let _ = writeln!(out, "  \"run_id\": {},", json_str(&format!("{:#018x}", self.run_id)));
        let _ = writeln!(out, "  \"epoch\": {},", self.epoch_now);
        out.push_str("  \"shards\": {");
        for (i, (&shard, t)) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    \"{shard}\": {{\"epoch\": {}, \"staleness_epochs\": {}, ",
                t.epoch,
                self.epoch_now.saturating_sub(t.epoch)
            );
            out.push_str("\"counters\": {");
            for (j, (name, v)) in t.snap.counters.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {v}", json_str(name));
            }
            out.push_str("}, \"gauges\": {");
            for (j, (name, v)) in t.snap.gauges.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {}", json_str(name), json_f64(*v));
            }
            out.push_str("}}");
        }
        if self.shards.is_empty() {
            out.push_str("},\n");
        } else {
            out.push_str("\n  },\n");
        }
        if let Some(coord) = &self.coordinator {
            out.push_str("  \"coordinator\": {\"counters\": {");
            for (j, (name, v)) in coord.counters.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {v}", json_str(name));
            }
            out.push_str("}, \"gauges\": {");
            for (j, (name, v)) in coord.gauges.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {}", json_str(name), json_f64(*v));
            }
            out.push_str("}},\n");
        }
        let rollup = self.rollup();
        out.push_str("  \"fleet\": {\"counters\": {");
        for (j, (name, v)) in rollup.counters.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {v}", json_str(name));
        }
        out.push_str("}, \"gauges\": {");
        for (j, (name, v)) in rollup.gauges.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {}", json_str(name), json_f64(*v));
        }
        out.push_str("}}\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard_snap(samples: u64, max_delta: f64) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("infer.shard.samples_total".into(), samples);
        snap.gauges.insert("shard.max_delta".into(), max_delta);
        snap.series.insert("infer.shard.flip_rate".into(), vec![(0.0, 0.9), (1.0, 0.4)]);
        snap
    }

    #[test]
    fn rollup_sums_counters_and_maxes_gauges() {
        let mut fleet = FleetView::new(7);
        fleet.record(0, 3, shard_snap(100, 0.25));
        fleet.record(1, 3, shard_snap(40, 0.75));
        let roll = fleet.rollup();
        assert_eq!(roll.counters["infer.shard.samples_total"], 140);
        assert_eq!(roll.gauges["shard.max_delta"], 0.75);
        assert_eq!(roll.gauges["fleet.shards_reporting"], 2.0);
        assert_eq!(roll.gauges["fleet.epoch"], 3.0);
    }

    #[test]
    fn reshipment_replaces_not_accumulates() {
        let mut fleet = FleetView::new(0);
        fleet.record(0, 1, shard_snap(100, 0.5));
        fleet.record(0, 2, shard_snap(120, 0.4));
        assert_eq!(fleet.rollup().counters["infer.shard.samples_total"], 120);
        assert_eq!(fleet.staleness(0), Some(0));
    }

    #[test]
    fn prometheus_has_per_shard_labels_and_fleet_rollups() {
        let mut fleet = FleetView::new(0xAB);
        fleet.record(0, 5, shard_snap(10, 0.2));
        fleet.record(1, 4, shard_snap(20, 0.1));
        fleet.observe_epoch(6);
        let text = fleet.render_prometheus();
        assert!(text.contains("sya_infer_shard_samples_total{shard=\"0\"} 10"));
        assert!(text.contains("sya_infer_shard_samples_total{shard=\"1\"} 20"));
        assert!(text.contains("sya_fleet_infer_shard_samples_total 30"));
        assert!(text.contains("sya_shard_max_delta{shard=\"0\"} 0.2"));
        assert!(text.contains("sya_fleet_shard_max_delta 0.2"));
        assert!(text.contains("sya_fleet_shard_staleness_epochs{shard=\"1\"} 2"));
        assert!(text.contains("sya_infer_shard_flip_rate_last{shard=\"0\"} 0.4"));
        assert!(text.contains("sya_fleet_shards_reporting 2"));
        assert!(text.contains("run_id=\"0x00000000000000ab\""));
        // One TYPE declaration per metric name, even with two shards.
        assert_eq!(text.matches("# TYPE sya_infer_shard_samples_total counter").count(), 1);
    }

    #[test]
    fn json_document_is_balanced_and_tagged() {
        let mut fleet = FleetView::new(1);
        fleet.record(0, 2, shard_snap(50, 0.3));
        let json = fleet.render_json();
        assert!(json.contains("\"schema\": \"sya.fleet.v1\""));
        assert!(json.contains("\"mode\": \"full\""));
        assert!(json.contains("\"staleness_epochs\": 0"));
        fleet.set_mode("lazy");
        assert!(fleet.render_json().contains("\"mode\": \"lazy\""));
        assert!(json.contains("\"infer.shard.samples_total\": 50"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn coordinator_snapshot_renders_unlabelled_without_type_collisions() {
        let mut fleet = FleetView::new(1);
        fleet.record(0, 1, shard_snap(5, 0.1));
        let mut coord = MetricsSnapshot::default();
        coord.counters.insert("cluster.heartbeats_total".into(), 9);
        // A name the shards also report must not get a second TYPE line.
        coord.counters.insert("infer.shard.samples_total".into(), 999);
        fleet.set_coordinator(coord);
        let text = fleet.render_prometheus();
        assert!(text.contains("sya_cluster_heartbeats_total 9"));
        assert!(!text.contains("sya_infer_shard_samples_total 999"));
        assert_eq!(text.matches("# TYPE sya_infer_shard_samples_total counter").count(), 1);
        let json = fleet.render_json();
        assert!(json.contains("\"coordinator\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn empty_fleet_renders_cleanly() {
        let fleet = FleetView::new(0);
        assert!(fleet.render_prometheus().contains("sya_fleet_shards_reporting 0"));
        let json = fleet.render_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(fleet.staleness(3), None);
    }
}
