//! Hot-path profiler: sharded-atomic timing histograms around the
//! sampler's inner loops (DESIGN.md §14).
//!
//! The [`MetricsRegistry`](crate::MetricsRegistry) histogram is fine for
//! per-epoch observations, but the sampler hot path runs millions of
//! delta-energy evaluations per second and cannot afford a registry
//! lookup (a mutex) per observation. This module keeps one static,
//! pre-allocated table of log₂-nanosecond histograms — one row per
//! instrumented [`Site`] — striped across [`STRIPES`] independent
//! atomic lanes so concurrent conclique workers do not serialise on a
//! single cache line.
//!
//! Profiling is off by default and gated by one process-global
//! [`AtomicBool`]: the disabled fast path is a single relaxed load and
//! branch ([`start`] returns `None`, [`stop`] does nothing), so leaving
//! the instrumentation compiled into the samplers costs nothing
//! measurable. Enable it with `--profile` or `SYA_PROFILE=1`.
//!
//! Timing never touches the samplers' RNG streams or sampling order, so
//! a profiled run produces bit-identical scores to an unprofiled one.

use crate::Obs;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// The instrumented hot paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Site {
    /// One conditional-distribution (delta-energy) evaluation of a
    /// single variable — the innermost sampler operation.
    DeltaEnergy,
    /// One full conclique sweep (all variables of one conclique class).
    ConcliqueSweep,
    /// Assembling and publishing a shard's halo write set.
    HaloPublish,
    /// Applying a received halo to the local boundary.
    HaloApply,
    /// Writing one checkpoint to disk.
    CkptWrite,
}

impl Site {
    pub const ALL: [Site; 5] = [
        Site::DeltaEnergy,
        Site::ConcliqueSweep,
        Site::HaloPublish,
        Site::HaloApply,
        Site::CkptWrite,
    ];

    /// Metric-name stem, `profile.<site>`.
    pub fn name(self) -> &'static str {
        match self {
            Site::DeltaEnergy => "profile.delta_energy",
            Site::ConcliqueSweep => "profile.conclique_sweep",
            Site::HaloPublish => "profile.halo_publish",
            Site::HaloApply => "profile.halo_apply",
            Site::CkptWrite => "profile.ckpt_write",
        }
    }

    fn index(self) -> usize {
        match self {
            Site::DeltaEnergy => 0,
            Site::ConcliqueSweep => 1,
            Site::HaloPublish => 2,
            Site::HaloApply => 3,
            Site::CkptWrite => 4,
        }
    }
}

/// Independent atomic lanes per site; threads are assigned round-robin
/// so conclique workers do not contend on one counter cache line.
pub const STRIPES: usize = 8;

/// log₂(ns) buckets: bucket `i` counts observations with
/// `ns < 2^(i+1)` (last bucket is open-ended).
pub const BUCKETS: usize = 32;

struct Lane {
    buckets: [AtomicU64; BUCKETS],
    ops: AtomicU64,
    ns_total: AtomicU64,
}

struct SiteTable {
    lanes: [Lane; STRIPES],
    /// Totals already folded into a registry by [`publish`], so repeated
    /// per-epoch publishes add only the delta.
    published_ops: AtomicU64,
    published_ns: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const LANE: Lane = Lane { buckets: [ZERO; BUCKETS], ops: ZERO, ns_total: ZERO };
#[allow(clippy::declare_interior_mutable_const)]
const TABLE: SiteTable =
    SiteTable { lanes: [LANE; STRIPES], published_ops: ZERO, published_ns: ZERO };

static TABLES: [SiteTable; 5] = [TABLE; 5];
static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

/// Whether the profiler is recording. The disabled path of every hook
/// is this one relaxed load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the profiler on or off (process-global).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enable the profiler when `SYA_PROFILE` is set to anything but
/// `0`/empty; returns whether it is now enabled.
pub fn enable_from_env() -> bool {
    if let Ok(v) = std::env::var("SYA_PROFILE") {
        if !v.is_empty() && v != "0" {
            set_enabled(true);
        }
    }
    enabled()
}

/// Start a timing; `None` (no clock read) when profiling is off.
#[inline(always)]
pub fn start() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Commit a timing started with [`start`]. A no-op for `None`.
#[inline(always)]
pub fn stop(site: Site, started: Option<Instant>) {
    if let Some(t0) = started {
        record(site, t0.elapsed().as_nanos() as u64);
    }
}

/// Record one observation of `ns` nanoseconds against `site`.
pub fn record(site: Site, ns: u64) {
    let lane = &TABLES[site.index()].lanes[STRIPE.with(|&s| s)];
    let bucket = (63 - (ns | 1).leading_zeros() as usize).min(BUCKETS - 1);
    lane.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    lane.ops.fetch_add(1, Ordering::Relaxed);
    lane.ns_total.fetch_add(ns, Ordering::Relaxed);
}

/// Merged per-site totals and log₂ histogram.
#[derive(Clone, Debug)]
pub struct SiteSnapshot {
    pub site: Site,
    pub ops: u64,
    pub ns_total: u64,
    /// `(upper_bound_ns, count)` per occupied log₂ bucket.
    pub buckets: Vec<(u64, u64)>,
}

impl SiteSnapshot {
    /// Mean nanoseconds per operation (0 when idle).
    pub fn ns_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.ns_total as f64 / self.ops as f64
        }
    }
}

/// Snapshot every site, merging the stripes.
pub fn snapshot() -> Vec<SiteSnapshot> {
    Site::ALL
        .iter()
        .map(|&site| {
            let table = &TABLES[site.index()];
            let mut ops = 0u64;
            let mut ns_total = 0u64;
            let mut merged = [0u64; BUCKETS];
            for lane in &table.lanes {
                ops += lane.ops.load(Ordering::Relaxed);
                ns_total += lane.ns_total.load(Ordering::Relaxed);
                for (acc, b) in merged.iter_mut().zip(&lane.buckets) {
                    *acc += b.load(Ordering::Relaxed);
                }
            }
            let buckets = merged
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| (1u64 << (i + 1).min(63), c))
                .collect();
            SiteSnapshot { site, ops, ns_total, buckets }
        })
        .collect()
}

/// Zero every site (tests and bench reruns).
pub fn reset() {
    for table in &TABLES {
        for lane in &table.lanes {
            for b in &lane.buckets {
                b.store(0, Ordering::Relaxed);
            }
            lane.ops.store(0, Ordering::Relaxed);
            lane.ns_total.store(0, Ordering::Relaxed);
        }
        table.published_ops.store(0, Ordering::Relaxed);
        table.published_ns.store(0, Ordering::Relaxed);
    }
}

/// Fold the profiler state into a registry:
/// `profile.<site>.ops_total` / `profile.<site>.ns_total` counters (the
/// delta since the previous publish, so per-epoch publishing stays
/// cumulative rather than double-counting), a `profile.<site>.ns_per_op`
/// gauge, and a `profile.<site>.ns_log2` series of
/// `(upper_bound_ns, count)` bucket points.
pub fn publish(obs: &Obs) {
    let Some(metrics) = obs.metrics() else { return };
    for snap in snapshot() {
        if snap.ops == 0 {
            continue;
        }
        let table = &TABLES[snap.site.index()];
        let prev_ops = table.published_ops.swap(snap.ops, Ordering::Relaxed);
        let prev_ns = table.published_ns.swap(snap.ns_total, Ordering::Relaxed);
        let stem = snap.site.name();
        metrics.counter_add(&format!("{stem}.ops_total"), snap.ops.saturating_sub(prev_ops));
        metrics.counter_add(&format!("{stem}.ns_total"), snap.ns_total.saturating_sub(prev_ns));
        metrics.gauge_set(&format!("{stem}.ns_per_op"), snap.ns_per_op());
        metrics.series_set(
            &format!("{stem}.ns_log2"),
            snap.buckets.iter().map(|&(le, c)| (le as f64, c as f64)).collect(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profiler table is process-global and tests run concurrently,
    // so these tests only use sites the samplers' own tests do not hit,
    // and assert monotonic/relative facts rather than exact totals.

    #[test]
    fn disabled_start_reads_no_clock() {
        set_enabled(false);
        assert!(start().is_none());
        stop(Site::CkptWrite, None); // no-op, must not panic
    }

    #[test]
    fn record_fills_log2_buckets_and_totals() {
        record(Site::HaloApply, 100);
        record(Site::HaloApply, 100_000);
        let snap = snapshot();
        let s = snap.iter().find(|s| s.site == Site::HaloApply).unwrap();
        assert!(s.ops >= 2);
        assert!(s.ns_total >= 100_100);
        assert!(s.ns_per_op() > 0.0);
        // 100ns lands in the `< 128` bucket, 100µs in `< 131072`.
        assert!(s.buckets.iter().any(|&(le, _)| le == 128));
        assert!(s.buckets.iter().any(|&(le, _)| le == 131_072));
    }

    #[test]
    fn publish_is_delta_cumulative() {
        let obs = Obs::enabled();
        record(Site::HaloPublish, 50);
        publish(&obs);
        let first = obs.metrics_snapshot().counters["profile.halo_publish.ops_total"];
        assert!(first >= 1);
        publish(&obs); // nothing new recorded → counter must not grow
        let again = obs.metrics_snapshot().counters["profile.halo_publish.ops_total"];
        assert_eq!(first, again);
    }

    #[test]
    fn site_names_follow_the_naming_scheme() {
        for site in Site::ALL {
            assert!(site.name().starts_with("profile."), "{}", site.name());
        }
    }
}
