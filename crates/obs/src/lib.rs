//! # sya-obs — observability for the Sya pipeline
//!
//! A lightweight, dependency-free instrumentation layer shared by every
//! crate in the workspace. It provides:
//!
//! * [`MetricsRegistry`] — named counters, gauges, fixed-bucket
//!   histograms, and time series. Counters and histogram buckets are
//!   plain atomics so hot paths (conclique workers, the grounder's
//!   binding loop) pay one relaxed atomic add per update.
//! * hierarchical **spans** ([`Obs::span`], the [`span!`] macro) with
//!   monotonic wall-clock timing and parent/child nesting, plus a
//!   severity-tagged **event log**, both stored in a bounded ring
//!   buffer ([`Tracer`]).
//! * **convergence telemetry** ([`EpochTelemetry`] /
//!   [`ConvergenceSeries`]) — per-epoch flip rate, running marginal
//!   delta, pseudo-log-likelihood curve, per-conclique sample counts —
//!   filled in by the samplers and snapshotted into their run results.
//! * **exporters** ([`export`]) — a Prometheus-style text dump, a JSON
//!   metrics dump (`sya run --metrics-out`), JSON-lines traces
//!   (`--trace-out`), and an indented human-readable trace (`--trace`).
//!
//! The entry point is the [`Obs`] handle: a cheap-to-clone,
//! thread-safe reference that is either *enabled* (backed by a shared
//! registry + tracer) or *disabled* (every call is a no-op). Pipeline
//! code threads an `Obs` through `ExecContext` and never needs to
//! branch on whether observability is on.
//!
//! Metric names follow the `phase.noun_unit` scheme documented in
//! DESIGN.md §9 (`ground.factors_total`, `infer.epoch_seconds`, …).

pub mod export;
pub mod fleet;
pub mod metrics;
pub mod profile;
pub mod telemetry;
pub mod trace;

pub use fleet::{FleetView, ShardTelemetry, FLEET_SCHEMA};
pub use metrics::{Counter, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use telemetry::{pll_stride, ConvergenceSeries, EpochTelemetry, NUM_CONCLIQUES};
pub use trace::{EventRecord, Severity, SpanGuard, SpanRecord, Tracer, TracerSnapshot};

/// Counter injected into every metrics snapshot: trace records evicted
/// from the ring buffers (spans and events) because they were full.
/// Surfacing the loss in the metric exporters means a scraper can tell
/// "quiet run" from "the event log wrapped".
pub const EVENTS_DROPPED: &str = "obs.events_dropped_total";

use std::sync::Arc;

/// Shared backing state for an enabled [`Obs`] handle.
#[derive(Debug)]
pub struct ObsInner {
    metrics: MetricsRegistry,
    tracer: Tracer,
}

/// A handle to the observability layer.
///
/// `Obs::default()` / [`Obs::disabled`] is a no-op handle: every
/// recording call returns immediately (one `Option` check). An
/// [`Obs::enabled`] handle records into a shared [`MetricsRegistry`]
/// and [`Tracer`]. Clones share the same backing state.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// A live handle backed by a fresh registry and tracer.
    pub fn enabled() -> Self {
        Obs {
            inner: Some(Arc::new(ObsInner {
                metrics: MetricsRegistry::new(),
                tracer: Tracer::new(Tracer::DEFAULT_CAPACITY),
            })),
        }
    }

    /// The no-op handle.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The metrics registry, if enabled.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|i| &i.metrics)
    }

    /// The tracer, if enabled.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.inner.as_deref().map(|i| &i.tracer)
    }

    // ---- metrics shorthands -------------------------------------------

    /// Add `n` to the named counter.
    pub fn counter_add(&self, name: &str, n: u64) {
        if let Some(i) = self.inner.as_deref() {
            i.metrics.counter_add(name, n);
        }
    }

    /// A reusable counter handle for hot loops (one registry lookup,
    /// then relaxed atomic adds). Disabled handles return a dummy
    /// counter whose adds go nowhere shared.
    pub fn counter(&self, name: &str) -> Counter {
        match self.inner.as_deref() {
            Some(i) => i.metrics.counter(name),
            None => Counter::detached(),
        }
    }

    /// Set the named gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(i) = self.inner.as_deref() {
            i.metrics.gauge_set(name, value);
        }
    }

    /// Add a (possibly negative) delta to the named gauge.
    pub fn gauge_add(&self, name: &str, delta: f64) {
        if let Some(i) = self.inner.as_deref() {
            i.metrics.gauge_add(name, delta);
        }
    }

    /// Record an observation into the named histogram (default buckets).
    pub fn histogram_record(&self, name: &str, value: f64) {
        if let Some(i) = self.inner.as_deref() {
            i.metrics.histogram_record(name, value);
        }
    }

    /// Append an `(x, y)` point to the named series.
    pub fn series_push(&self, name: &str, x: f64, y: f64) {
        if let Some(i) = self.inner.as_deref() {
            i.metrics.series_push(name, x, y);
        }
    }

    // ---- spans and events ---------------------------------------------

    /// Open a span. Timing stops and the record is committed when the
    /// returned guard drops.
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_with(name, Vec::new())
    }

    /// Open a span with attributes. Prefer the [`span!`] macro.
    pub fn span_with(&self, name: &str, attrs: Vec<(String, String)>) -> SpanGuard {
        SpanGuard::begin(self.inner.clone(), name, attrs)
    }

    /// Record an event at the given severity, attached to the current span.
    pub fn event(&self, severity: Severity, message: impl Into<String>) {
        if let Some(i) = self.inner.as_deref() {
            i.tracer.event(severity, message.into());
        }
    }

    /// Record an `error` event: something was lost or rejected but the
    /// run recovered (e.g. a corrupt checkpoint skipped for an older
    /// valid one).
    pub fn error(&self, message: impl Into<String>) {
        self.event(Severity::Error, message);
    }

    /// Record a `warn` event.
    pub fn warn(&self, message: impl Into<String>) {
        self.event(Severity::Warn, message);
    }

    /// Record an `info` event.
    pub fn info(&self, message: impl Into<String>) {
        self.event(Severity::Info, message);
    }

    /// Record a `debug` event.
    pub fn debug(&self, message: impl Into<String>) {
        self.event(Severity::Debug, message);
    }

    // ---- cross-process context ----------------------------------------

    /// Stamp the coordinator-issued run ID onto the tracer so exported
    /// traces carry it (see [`trace::Tracer::set_run_id`]).
    pub fn set_run_id(&self, run_id: u64) {
        if let Some(i) = self.inner.as_deref() {
            i.tracer.set_run_id(run_id);
        }
    }

    /// The stamped run ID, if enabled and set.
    pub fn run_id(&self) -> Option<u64> {
        self.inner.as_deref().and_then(|i| i.tracer.run_id())
    }

    // ---- snapshots -----------------------------------------------------

    /// Snapshot of all metrics (empty when disabled). The snapshot
    /// always carries [`EVENTS_DROPPED`] — the tracer's ring-buffer
    /// eviction count — so every exporter surfaces trace loss.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        match self.inner.as_deref() {
            Some(i) => {
                let mut snap = i.metrics.snapshot();
                snap.counters.insert(EVENTS_DROPPED.to_string(), i.tracer.dropped());
                snap
            }
            None => MetricsSnapshot::default(),
        }
    }

    /// Snapshot of the trace ring buffer (empty when disabled).
    pub fn trace_snapshot(&self) -> TracerSnapshot {
        match self.inner.as_deref() {
            Some(i) => i.tracer.snapshot(),
            None => TracerSnapshot::default(),
        }
    }
}

/// Metric names of the cluster supervisor (`sya shard-coordinator`),
/// centralised so the supervisor, its tests, and dashboards agree on
/// spelling. Counters unless noted.
pub mod cluster {
    /// Epoch round-trips that doubled as liveness proof (one per worker
    /// per completed epoch).
    pub const HEARTBEATS: &str = "cluster.heartbeats_total";
    /// Worker reads that tripped the heartbeat deadline.
    pub const HEARTBEAT_TIMEOUTS: &str = "cluster.heartbeat_timeouts_total";
    /// Workers relaunched after a crash, stall, or corrupt frame.
    pub const RESTARTS: &str = "cluster.worker_restarts_total";
    /// Rollbacks broadcast to re-rendezvous the fleet on a checkpoint.
    pub const ROLLBACKS: &str = "cluster.rollbacks_total";
    /// Frames rejected by the wire layer's CRC/decode validation.
    pub const CORRUPT_FRAMES: &str = "cluster.corrupt_frames_total";
    /// Shards abandoned after exhausting their restart budget.
    pub const SHARDS_LOST: &str = "cluster.shards_lost_total";
    /// Per-epoch telemetry shipments ingested from the workers.
    pub const TELEMETRY_FRAMES: &str = "cluster.telemetry_frames_total";
    /// Gauge: seconds slept before the most recent worker relaunch.
    pub const BACKOFF_SECONDS: &str = "cluster.backoff_seconds_last";
    /// Gauge: workers currently healthy (live socket, within budget).
    pub const WORKERS_UP: &str = "cluster.workers_up";
}

/// Open a hierarchical span on an [`Obs`] handle.
///
/// ```
/// # use sya_obs::{span, Obs};
/// let obs = Obs::enabled();
/// {
///     let _g = span!(obs, "ground.rule", rule = "R1", bindings = 42);
/// }
/// assert_eq!(obs.trace_snapshot().spans.len(), 1);
/// ```
#[macro_export]
macro_rules! span {
    ($obs:expr, $name:expr) => {
        $obs.span($name)
    };
    ($obs:expr, $name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $obs.span_with(
            $name,
            vec![$((stringify!($key).to_string(), $value.to_string())),+],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_noop() {
        let obs = Obs::disabled();
        obs.counter_add("x_total", 3);
        obs.gauge_set("g", 1.0);
        obs.warn("nothing");
        let _g = obs.span("s");
        drop(_g);
        assert!(!obs.is_enabled());
        assert!(obs.metrics_snapshot().counters.is_empty());
        assert!(obs.trace_snapshot().spans.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::enabled();
        let other = obs.clone();
        other.counter_add("shared_total", 2);
        obs.counter_add("shared_total", 1);
        assert_eq!(obs.metrics_snapshot().counters["shared_total"], 3);
    }

    #[test]
    fn span_macro_records_attrs() {
        let obs = Obs::enabled();
        {
            let _g = span!(obs, "ground.rule", rule = "R1");
        }
        let snap = obs.trace_snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "ground.rule");
        assert_eq!(snap.spans[0].attrs[0], ("rule".to_string(), "R1".to_string()));
    }

    #[test]
    fn cluster_metric_names_follow_the_naming_scheme() {
        for name in [
            cluster::HEARTBEATS,
            cluster::HEARTBEAT_TIMEOUTS,
            cluster::RESTARTS,
            cluster::ROLLBACKS,
            cluster::CORRUPT_FRAMES,
            cluster::SHARDS_LOST,
            cluster::TELEMETRY_FRAMES,
            cluster::BACKOFF_SECONDS,
            cluster::WORKERS_UP,
        ] {
            assert!(name.starts_with("cluster."), "{name}");
        }
        for counter in [cluster::HEARTBEATS, cluster::RESTARTS, cluster::SHARDS_LOST] {
            assert!(counter.ends_with("_total"), "{counter}");
        }
    }

    #[test]
    fn events_dropped_counter_is_always_surfaced() {
        let obs = Obs::enabled();
        assert_eq!(obs.metrics_snapshot().counters[EVENTS_DROPPED], 0);
        let json = export::render_metrics_json(&obs.metrics_snapshot());
        assert!(json.contains("\"obs.events_dropped_total\": 0"));
        let prom = export::render_prometheus(&obs.metrics_snapshot());
        assert!(prom.contains("sya_obs_events_dropped_total 0"));
    }

    #[test]
    fn ring_eviction_counts_into_the_dropped_counter() {
        let obs = Obs::enabled();
        // Overflow the event ring: capacity + 3 events drops 3.
        for i in 0..Tracer::DEFAULT_CAPACITY + 3 {
            obs.debug(format!("e{i}"));
        }
        assert_eq!(obs.metrics_snapshot().counters[EVENTS_DROPPED], 3);
    }

    #[test]
    fn run_id_round_trips_through_the_handle() {
        let obs = Obs::enabled();
        assert_eq!(obs.run_id(), None);
        obs.set_run_id(42);
        assert_eq!(obs.run_id(), Some(42));
        assert!(Obs::disabled().run_id().is_none());
    }

    #[test]
    fn events_carry_severity() {
        let obs = Obs::enabled();
        obs.warn("w");
        obs.info("i");
        obs.debug("d");
        let snap = obs.trace_snapshot();
        let sevs: Vec<Severity> = snap.events.iter().map(|e| e.severity).collect();
        assert_eq!(sevs, vec![Severity::Warn, Severity::Info, Severity::Debug]);
    }
}
