//! Hierarchical spans and a severity-tagged event log.
//!
//! Spans time a region of code: a [`SpanGuard`] notes the monotonic
//! start instant when opened and commits a [`SpanRecord`] (with
//! duration) when dropped. Nesting is tracked per thread: a span opened
//! while another is active on the same thread records it as its parent,
//! so traces reconstruct the call tree (`pipeline.construct` →
//! `pipeline.ground` → `ground.rule` …).
//!
//! Records live in bounded ring buffers; when full the oldest record is
//! evicted and counted in `dropped`, so tracing never grows without
//! bound on long runs.

use crate::ObsInner;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Debug,
    Info,
    Warn,
    /// Something was lost or rejected (a corrupt checkpoint, an invalid
    /// artifact) but the run found a fallback and continued.
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// A completed span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    pub id: u64,
    /// Id of the span that was active on the same thread when this one
    /// opened, if any.
    pub parent: Option<u64>,
    pub name: String,
    pub attrs: Vec<(String, String)>,
    /// Microseconds since the tracer was created (monotonic clock).
    pub start_us: u64,
    /// Span duration in microseconds.
    pub duration_us: u64,
}

/// A point-in-time log event.
#[derive(Clone, Debug)]
pub struct EventRecord {
    pub severity: Severity,
    pub message: String,
    /// The span active on the emitting thread, if any.
    pub span: Option<u64>,
    /// Microseconds since the tracer was created.
    pub at_us: u64,
}

#[derive(Debug, Default)]
struct Rings {
    spans: VecDeque<SpanRecord>,
    events: VecDeque<EventRecord>,
}

/// Bounded store of spans and events with a monotonic time base.
#[derive(Debug)]
pub struct Tracer {
    origin: Instant,
    next_id: AtomicU64,
    capacity: usize,
    rings: Mutex<Rings>,
    dropped: AtomicU64,
    /// Cross-process run ID (0 = unset): the coordinator issues one per
    /// cluster run and every worker stamps it into its trace exports so
    /// per-process JSONL files stitch into one timeline.
    run_id: AtomicU64,
}

thread_local! {
    /// Innermost open span on this thread (for parent linking).
    static CURRENT_SPAN: Cell<Option<u64>> = const { Cell::new(None) };
}

impl Tracer {
    /// Default per-ring capacity; enough for every pipeline span plus a
    /// long tail of per-rule records without unbounded growth.
    pub const DEFAULT_CAPACITY: usize = 4096;

    pub fn new(capacity: usize) -> Self {
        Tracer {
            origin: Instant::now(),
            next_id: AtomicU64::new(1),
            capacity: capacity.max(1),
            rings: Mutex::new(Rings::default()),
            dropped: AtomicU64::new(0),
            run_id: AtomicU64::new(0),
        }
    }

    /// Records evicted from the ring buffers so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Stamp the cross-process run ID (coordinator-issued; 0 clears it).
    pub fn set_run_id(&self, run_id: u64) {
        self.run_id.store(run_id, Ordering::Relaxed);
    }

    /// The stamped run ID, if any.
    pub fn run_id(&self) -> Option<u64> {
        match self.run_id.load(Ordering::Relaxed) {
            0 => None,
            id => Some(id),
        }
    }

    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn push_span(&self, record: SpanRecord) {
        let mut rings = self.rings.lock().unwrap();
        if rings.spans.len() == self.capacity {
            rings.spans.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        rings.spans.push_back(record);
    }

    /// Record an event attached to the current thread's open span.
    pub fn event(&self, severity: Severity, message: String) {
        let record = EventRecord {
            severity,
            message,
            span: CURRENT_SPAN.with(Cell::get),
            at_us: self.now_us(),
        };
        let mut rings = self.rings.lock().unwrap();
        if rings.events.len() == self.capacity {
            rings.events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        rings.events.push_back(record);
    }

    /// Copy of both ring buffers.
    pub fn snapshot(&self) -> TracerSnapshot {
        let rings = self.rings.lock().unwrap();
        TracerSnapshot {
            spans: rings.spans.iter().cloned().collect(),
            events: rings.events.iter().cloned().collect(),
            dropped: self.dropped.load(Ordering::Relaxed),
            run_id: self.run_id(),
        }
    }
}

/// Copy of the trace state. Spans appear in completion order (a child
/// closes before its parent); exporters re-sort by `start_us`.
#[derive(Clone, Debug, Default)]
pub struct TracerSnapshot {
    pub spans: Vec<SpanRecord>,
    pub events: Vec<EventRecord>,
    /// Records evicted from the ring buffers.
    pub dropped: u64,
    /// Cross-process run ID stamped on the tracer, if any.
    pub run_id: Option<u64>,
}

/// RAII guard for an open span. Commits the [`SpanRecord`] on drop and
/// restores the thread's previous span as current.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<Arc<ObsInner>>,
    id: u64,
    parent: Option<u64>,
    name: String,
    attrs: Vec<(String, String)>,
    start: Instant,
    start_us: u64,
}

impl SpanGuard {
    pub(crate) fn begin(
        inner: Option<Arc<ObsInner>>,
        name: &str,
        attrs: Vec<(String, String)>,
    ) -> Self {
        let (id, parent, start_us) = match inner.as_deref() {
            Some(i) => {
                let tracer = i.tracer();
                let id = tracer.alloc_id();
                let parent = CURRENT_SPAN.with(|c| c.replace(Some(id)));
                (id, parent, tracer.now_us())
            }
            None => (0, None, 0),
        };
        SpanGuard { inner, id, parent, name: name.to_string(), attrs, start: Instant::now(), start_us }
    }

    /// Attach or update an attribute after the span opened (e.g. a
    /// binding count known only once the work is done).
    pub fn set_attr(&mut self, key: &str, value: impl ToString) {
        if self.inner.is_none() {
            return;
        }
        let value = value.to_string();
        if let Some(slot) = self.attrs.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.attrs.push((key.to_string(), value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        CURRENT_SPAN.with(|c| c.set(self.parent));
        inner.tracer().push_span(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            attrs: std::mem::take(&mut self.attrs),
            start_us: self.start_us,
            duration_us: self.start.elapsed().as_micros() as u64,
        });
    }
}

impl ObsInner {
    pub(crate) fn tracer(&self) -> &Tracer {
        &self.tracer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    #[test]
    fn spans_nest_on_one_thread() {
        let obs = Obs::enabled();
        {
            let _outer = obs.span("pipeline.construct");
            {
                let _inner = obs.span("pipeline.ground");
            }
        }
        let snap = obs.trace_snapshot();
        assert_eq!(snap.spans.len(), 2);
        // Children complete first.
        let inner = &snap.spans[0];
        let outer = &snap.spans[1];
        assert_eq!(inner.name, "pipeline.ground");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
    }

    #[test]
    fn sibling_spans_share_parent() {
        let obs = Obs::enabled();
        {
            let _outer = obs.span("root");
            drop(obs.span("a"));
            drop(obs.span("b"));
        }
        let snap = obs.trace_snapshot();
        let root = snap.spans.iter().find(|s| s.name == "root").unwrap();
        for name in ["a", "b"] {
            let s = snap.spans.iter().find(|s| s.name == name).unwrap();
            assert_eq!(s.parent, Some(root.id));
        }
    }

    #[test]
    fn events_attach_to_open_span() {
        let obs = Obs::enabled();
        obs.info("outside");
        {
            let _g = obs.span("phase");
            obs.warn("inside");
        }
        let snap = obs.trace_snapshot();
        assert_eq!(snap.events[0].span, None);
        assert_eq!(snap.events[1].span, Some(snap.spans[0].id));
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let tracer = Tracer::new(2);
        for i in 0..5 {
            tracer.event(Severity::Debug, format!("e{i}"));
        }
        let snap = tracer.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].message, "e3");
        assert_eq!(snap.events[1].message, "e4");
        assert_eq!(snap.dropped, 3);
    }

    #[test]
    fn run_id_stamps_into_snapshots() {
        let tracer = Tracer::new(4);
        assert_eq!(tracer.snapshot().run_id, None);
        tracer.set_run_id(0xFEED);
        assert_eq!(tracer.run_id(), Some(0xFEED));
        assert_eq!(tracer.snapshot().run_id, Some(0xFEED));
    }

    #[test]
    fn set_attr_updates_in_place() {
        let obs = Obs::enabled();
        {
            let mut g = obs.span_with("ground.rule", vec![("rule".into(), "R1".into())]);
            g.set_attr("bindings", 10);
            g.set_attr("bindings", 20);
        }
        let span = &obs.trace_snapshot().spans[0];
        assert_eq!(span.attrs.len(), 2);
        assert_eq!(span.attrs[1], ("bindings".to_string(), "20".to_string()));
    }
}
