//! Exporters: Prometheus-style text, a JSON metrics dump, JSON-lines
//! traces, and an indented human-readable trace.
//!
//! The JSON is hand-rolled (this crate is dependency-free); the dump
//! carries a `schema` tag (`sya.metrics.v1`) so downstream tooling —
//! `crates/bench`'s `BENCH_*.json` records, the ci.sh smoke check —
//! can validate what it parsed.

use crate::metrics::MetricsSnapshot;
use crate::trace::{EventRecord, SpanRecord, TracerSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag stamped into every JSON metrics dump.
pub const METRICS_SCHEMA: &str = "sya.metrics.v1";

/// Escape a string for inclusion in a JSON document (without quotes).
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_json(s, &mut out);
    out.push('"');
    out
}

/// Format an `f64` as a JSON number (`null` for non-finite values).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Render the metrics snapshot as a JSON document:
///
/// ```json
/// {
///   "schema": "sya.metrics.v1",
///   "counters": {"ground.factors_total": 123},
///   "gauges": {"phase.grounding_seconds": 0.41},
///   "histograms": {"infer.epoch_seconds": {"bounds": [...], "buckets": [...], "count": 9, "sum": 1.2}},
///   "series": {"infer.spatial.flip_rate": [[0, 0.93], [1, 0.55]]}
/// }
/// ```
pub fn render_metrics_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {},", json_str(METRICS_SCHEMA));

    out.push_str("  \"counters\": {");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        let _ = write!(out, "{}\n    {}: {}", comma(i), json_str(name), value);
    }
    out.push_str(end_block(snap.counters.is_empty()));

    out.push_str("  \"gauges\": {");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        let _ = write!(out, "{}\n    {}: {}", comma(i), json_str(name), json_f64(*value));
    }
    out.push_str(end_block(snap.gauges.is_empty()));

    out.push_str("  \"histograms\": {");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        let bounds: Vec<String> = h.bounds.iter().map(|&b| json_f64(b)).collect();
        let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
        let _ = write!(
            out,
            "{}\n    {}: {{\"bounds\": [{}], \"buckets\": [{}], \"count\": {}, \"sum\": {}}}",
            comma(i),
            json_str(name),
            bounds.join(", "),
            buckets.join(", "),
            h.count,
            json_f64(h.sum),
        );
    }
    out.push_str(end_block(snap.histograms.is_empty()));

    out.push_str("  \"series\": {");
    for (i, (name, points)) in snap.series.iter().enumerate() {
        let pts: Vec<String> =
            points.iter().map(|&(x, y)| format!("[{}, {}]", json_f64(x), json_f64(y))).collect();
        let _ = write!(out, "{}\n    {}: [{}]", comma(i), json_str(name), pts.join(", "));
    }
    if snap.series.is_empty() {
        out.push_str("}\n");
    } else {
        out.push_str("\n  }\n");
    }
    out.push_str("}\n");
    out
}

fn comma(i: usize) -> &'static str {
    if i == 0 {
        ""
    } else {
        ","
    }
}

fn end_block(empty: bool) -> &'static str {
    if empty {
        "},\n"
    } else {
        "\n  },\n"
    }
}

/// Mangle a `phase.noun_unit` metric name into a Prometheus identifier
/// (`sya_phase_noun_unit`).
pub(crate) fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("sya_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a Prometheus label *value* per the text exposition format:
/// backslash, double quote, and line feed must be written as `\\`,
/// `\"`, and `\n` respectively. Without this, a label value containing
/// any of them splits the sample line and the whole scrape fails to
/// parse.
pub(crate) fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render the snapshot in the Prometheus text exposition format.
/// Series are exported as a gauge holding their last value.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in &snap.gauges {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, h) in &snap.histograms {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in h.bounds.iter().zip(&h.buckets) {
            cumulative += count;
            let le = escape_label_value(&bound.to_string());
            let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    for (name, points) in &snap.series {
        if let Some(&(_, last)) = points.last() {
            let n = format!("{}_last", prom_name(name));
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {last}");
        }
    }
    out
}

fn span_json(s: &SpanRecord) -> String {
    let mut attrs = String::from("{");
    for (i, (k, v)) in s.attrs.iter().enumerate() {
        let _ = write!(attrs, "{}{}: {}", comma(i), json_str(k), json_str(v));
    }
    attrs.push('}');
    format!(
        "{{\"type\": \"span\", \"id\": {}, \"parent\": {}, \"name\": {}, \"start_us\": {}, \"duration_us\": {}, \"attrs\": {}}}",
        s.id,
        s.parent.map_or("null".to_string(), |p| p.to_string()),
        json_str(&s.name),
        s.start_us,
        s.duration_us,
        attrs,
    )
}

fn event_json(e: &EventRecord) -> String {
    format!(
        "{{\"type\": \"event\", \"severity\": {}, \"message\": {}, \"span\": {}, \"at_us\": {}}}",
        json_str(e.severity.as_str()),
        json_str(&e.message),
        e.span.map_or("null".to_string(), |s| s.to_string()),
        e.at_us,
    )
}

/// Render the trace as JSON lines, interleaved in timestamp order
/// (spans keyed by start time). When a cross-process run ID is stamped
/// on the tracer, the first line is a `{"type": "run", "run_id": ..}`
/// preamble so per-process files stitch into one timeline.
pub fn render_trace_jsonl(snap: &TracerSnapshot) -> String {
    let mut lines: Vec<(u64, u8, String)> = Vec::with_capacity(snap.spans.len() + snap.events.len());
    for s in &snap.spans {
        lines.push((s.start_us, 0, span_json(s)));
    }
    for e in &snap.events {
        lines.push((e.at_us, 1, event_json(e)));
    }
    lines.sort_by_key(|&(t, kind, _)| (t, kind));
    let mut out = String::new();
    if let Some(run_id) = snap.run_id {
        let _ = writeln!(out, "{{\"type\": \"run\", \"run_id\": {}}}", json_str(&format!("{run_id:#018x}")));
    }
    for (_, _, line) in lines {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

fn fmt_duration_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

/// Render the trace as an indented tree (for `--trace` / `SYA_TRACE=1`):
///
/// ```text
/// pipeline.construct 41.20ms
///   pipeline.ground 12.05ms
///     ground.rule 3.11ms rule=R1 bindings=96
///       warn: grounding budget trip: factors ...
/// ```
pub fn render_trace_text(snap: &TracerSnapshot) -> String {
    // Children sorted by start time; roots are spans whose parent is
    // absent from the snapshot (None, or evicted from the ring).
    let ids: std::collections::BTreeSet<u64> = snap.spans.iter().map(|s| s.id).collect();
    let mut children: BTreeMap<Option<u64>, Vec<&SpanRecord>> = BTreeMap::new();
    for s in &snap.spans {
        let parent = s.parent.filter(|p| ids.contains(p));
        children.entry(parent).or_default().push(s);
    }
    for list in children.values_mut() {
        list.sort_by_key(|s| (s.start_us, s.id));
    }
    let mut by_span_events: BTreeMap<Option<u64>, Vec<&EventRecord>> = BTreeMap::new();
    for e in &snap.events {
        let span = e.span.filter(|s| ids.contains(s));
        by_span_events.entry(span).or_default().push(e);
    }

    let mut out = String::new();
    fn emit(
        out: &mut String,
        span: &SpanRecord,
        depth: usize,
        children: &BTreeMap<Option<u64>, Vec<&SpanRecord>>,
        events: &BTreeMap<Option<u64>, Vec<&EventRecord>>,
    ) {
        let indent = "  ".repeat(depth);
        let _ = write!(out, "{indent}{} {}", span.name, fmt_duration_us(span.duration_us));
        for (k, v) in &span.attrs {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
        if let Some(evts) = events.get(&Some(span.id)) {
            for e in evts {
                let _ = writeln!(out, "{indent}  {}: {}", e.severity.as_str(), e.message);
            }
        }
        if let Some(kids) = children.get(&Some(span.id)) {
            for kid in kids {
                emit(out, kid, depth + 1, children, events);
            }
        }
    }
    if let Some(evts) = by_span_events.get(&None) {
        for e in evts {
            let _ = writeln!(out, "{}: {}", e.severity.as_str(), e.message);
        }
    }
    if let Some(roots) = children.get(&None) {
        for root in roots {
            emit(&mut out, root, 0, &children, &by_span_events);
        }
    }
    if snap.dropped > 0 {
        let _ = writeln!(out, "({} older records dropped from the ring buffer)", snap.dropped);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    fn sample_obs() -> Obs {
        let obs = Obs::enabled();
        obs.counter_add("ground.factors_total", 12);
        obs.gauge_set("phase.grounding_seconds", 0.25);
        obs.metrics().unwrap().histogram("infer.epoch_seconds", &[0.1, 1.0]).record(0.4);
        obs.series_push("infer.spatial.flip_rate", 0.0, 0.9);
        obs.series_push("infer.spatial.flip_rate", 1.0, 0.5);
        {
            let _root = obs.span("pipeline.construct");
            let mut g = obs.span_with("ground.rule", vec![("rule".into(), "R1".into())]);
            g.set_attr("bindings", 7);
            obs.warn("budget trip");
        }
        obs
    }

    #[test]
    fn metrics_json_has_schema_and_sections() {
        let json = render_metrics_json(&sample_obs().metrics_snapshot());
        assert!(json.contains("\"schema\": \"sya.metrics.v1\""));
        assert!(json.contains("\"ground.factors_total\": 12"));
        assert!(json.contains("\"phase.grounding_seconds\": 0.25"));
        assert!(json.contains("\"infer.spatial.flip_rate\": [[0, 0.9], [1, 0.5]]"));
        assert!(json.contains("\"count\": 1"));
        // Balanced braces/brackets — cheap structural sanity check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn metrics_json_empty_snapshot_is_valid() {
        let json = render_metrics_json(&MetricsSnapshot::default());
        assert!(json.contains("\"counters\": {}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_escapes_control_characters() {
        let mut s = String::new();
        escape_json("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn prometheus_label_values_are_escaped_per_exposition_format() {
        // Backslash, quote, and newline are the three characters the
        // exposition format requires escaping inside a label value; raw,
        // any of them corrupts the sample line and fails the scrape.
        assert_eq!(
            escape_label_value("quantile=\"0.99\"\npath=C:\\tmp"),
            "quantile=\\\"0.99\\\"\\npath=C:\\\\tmp"
        );
        // Ordinary numeric bounds (the `le` label) pass through intact.
        assert_eq!(escape_label_value("0.25"), "0.25");
        assert_eq!(escape_label_value("+Inf"), "+Inf");
    }

    #[test]
    fn prometheus_dump_mangles_names() {
        let text = render_prometheus(&sample_obs().metrics_snapshot());
        assert!(text.contains("# TYPE sya_ground_factors_total counter"));
        assert!(text.contains("sya_ground_factors_total 12"));
        assert!(text.contains("sya_phase_grounding_seconds 0.25"));
        assert!(text.contains("sya_infer_epoch_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("sya_infer_spatial_flip_rate_last 0.5"));
    }

    #[test]
    fn trace_jsonl_interleaves_and_links_parents() {
        let obs = sample_obs();
        let jsonl = render_trace_jsonl(&obs.trace_snapshot());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3); // two spans + one event
        assert!(lines.iter().any(|l| l.contains("\"type\": \"event\"")));
        let nested = lines
            .iter()
            .filter(|l| l.contains("\"type\": \"span\""))
            .filter(|l| !l.contains("\"parent\": null"))
            .count();
        assert_eq!(nested, 1);
        for l in &lines {
            assert_eq!(l.matches('{').count(), l.matches('}').count());
        }
    }

    #[test]
    fn trace_text_indents_children_and_events() {
        let obs = sample_obs();
        let text = render_trace_text(&obs.trace_snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("pipeline.construct "));
        assert!(lines[1].starts_with("  ground.rule "));
        assert!(lines[1].contains("rule=R1"));
        assert!(lines[1].contains("bindings=7"));
        assert!(lines[2].starts_with("    warn: budget trip"));
    }
}
