//! The demand-driven query grounder: seed → neighborhood → mini graph →
//! restricted chain → marginal.

use crate::{BoundaryPolicy, QueryConfig, QueryError};
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};
use sya_fg::{SpatialFactor, VarId, WeightingFn};
use sya_geom::{Point, Rect};
use sya_ground::{
    candidate_radius, metric_distance, negligible_radius, BoundSeed, GroundConfig, GroundError,
    Grounder, Grounding, HashIndexCache,
};
use sya_infer::{spatial_gibbs_with, MarginalCounts, PyramidIndex};
use sya_lang::{adorn_rule, CompiledProgram, RuleKind, SlotTerm};
use sya_runtime::{ExecContext, Phase, ResourceUsage, RunOutcome};
use sya_store::{Database, Value};

/// The demand-grounded factor neighborhood of one bound atom: a
/// self-contained mini factor graph whose boundary is sealed by evidence
/// or clamped priors. Produced by [`QueryGrounder::neighborhood`],
/// consumed by [`QueryGrounder::answer`]; serving layers cache these
/// keyed by `(relation, id)` and evidence epoch.
#[derive(Debug, Clone)]
pub struct Neighborhood {
    pub relation: String,
    pub id: i64,
    /// The mini grounding (graph + atom catalogue).
    pub grounding: Grounding,
    /// The queried atom's variable id inside [`Self::grounding`].
    pub seed: VarId,
    /// Hop at which each variable was discovered (seed = 0; variables
    /// only reached by a pruned spatial pair report the horizon).
    pub hops: Vec<usize>,
    /// Non-evidence frontier atoms clamped to their quantized prior.
    pub boundary_clamped: usize,
    /// `Completed`, or partial when a deadline/cancellation interrupted
    /// the expansion (the closure enumerated so far is still valid).
    pub outcome: RunOutcome,
    pub ground_time: Duration,
    /// Closure compromises taken while expanding (skipped unselective
    /// rule heads, atoms without locations, ...).
    pub warnings: Vec<String>,
}

/// Counters describing one answered query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryStats {
    pub variables: usize,
    pub logical_factors: usize,
    pub spatial_factors: usize,
    pub boundary_clamped: usize,
    /// `false` when the seed was evidence and no chain ran.
    pub sampled: bool,
    pub ground_time: Duration,
    pub infer_time: Duration,
}

/// One resolved seed of a (possibly multi-atom) neighborhood closure.
#[derive(Debug, Clone)]
pub struct SeedAtom {
    pub relation: String,
    pub id: i64,
    /// The atom's variable id inside the union grounding.
    pub var: VarId,
}

/// The union neighborhood of a batch of bound atoms: one mini factor
/// graph covering every requested seed, with overlapping closures
/// enumerated once (shared factor/pair dedup, one BFS over the joint
/// frontier). Produced by [`QueryGrounder::neighborhood_batch`],
/// consumed by [`QueryGrounder::answer_batch`].
#[derive(Debug, Clone)]
pub struct BatchNeighborhood {
    /// The mini grounding (graph + atom catalogue).
    pub grounding: Grounding,
    /// Resolved seeds in request order (duplicates collapsed).
    pub seeds: Vec<SeedAtom>,
    /// Requested atoms no derivation rule materialized.
    pub missing: Vec<(String, i64)>,
    /// Hop at which each variable was discovered (any seed = 0).
    pub hops: Vec<usize>,
    pub boundary_clamped: usize,
    pub outcome: RunOutcome,
    pub ground_time: Duration,
    pub warnings: Vec<String>,
}

/// A bound marginal answer.
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    pub relation: String,
    pub id: i64,
    /// Factual score with `sya_core::KnowledgeBase::score_of` semantics:
    /// evidence reports its observed value, binary variables `P(v = 1)`,
    /// categorical variables the mass on the upper half of the domain.
    pub score: f64,
    /// The seed's observed value when it was evidence.
    pub evidence: Option<u32>,
    pub stats: QueryStats,
    pub outcome: RunOutcome,
    pub warnings: Vec<String>,
}

/// Answers bound marginal queries by demand-grounding. Owns its program
/// and carries the grounding layer's hash-index cache across queries
/// (valid as long as the input tables are unchanged — call
/// [`Self::invalidate_indexes`] after mutating them).
pub struct QueryGrounder {
    program: CompiledProgram,
    ground: GroundConfig,
    config: QueryConfig,
    hash_indexes: HashIndexCache,
    /// Per-relation derived weighting bandwidth (when the ground config
    /// does not pin one).
    bandwidths: HashMap<String, f64>,
}

impl QueryGrounder {
    pub fn new(program: CompiledProgram, ground: GroundConfig, config: QueryConfig) -> Self {
        QueryGrounder {
            program,
            ground,
            config,
            hash_indexes: HashMap::new(),
            bandwidths: HashMap::new(),
        }
    }

    pub fn config(&self) -> &QueryConfig {
        &self.config
    }

    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// Drops the carried hash indexes and derived bandwidths. Must be
    /// called after any mutation of the input tables.
    pub fn invalidate_indexes(&mut self) {
        self.hash_indexes.clear();
        self.bandwidths.clear();
    }

    /// Answers `marginal(relation, id)` — the full lazy path: seed,
    /// neighborhood closure, boundary sealing, restricted chain, score.
    pub fn marginal(
        &mut self,
        db: &mut Database,
        evidence: &dyn Fn(&str, &[Value]) -> Option<u32>,
        relation: &str,
        id: i64,
        ctx: &ExecContext,
    ) -> Result<QueryAnswer, QueryError> {
        let nh = self.neighborhood(db, evidence, relation, id, ctx)?;
        self.answer(&nh, ctx)
    }

    /// Demand-grounds the factor neighborhood of `relation(id, ...)`.
    pub fn neighborhood(
        &mut self,
        db: &mut Database,
        evidence: &dyn Fn(&str, &[Value]) -> Option<u32>,
        relation: &str,
        id: i64,
        ctx: &ExecContext,
    ) -> Result<Neighborhood, QueryError> {
        let batch =
            self.neighborhood_batch(db, evidence, &[(relation.to_owned(), id)], ctx)?;
        let Some(seed) = batch.seeds.first() else {
            return Err(QueryError::NotFound { relation: relation.to_owned(), id });
        };
        Ok(Neighborhood {
            relation: relation.to_owned(),
            id,
            seed: seed.var,
            grounding: batch.grounding,
            hops: batch.hops,
            boundary_clamped: batch.boundary_clamped,
            outcome: batch.outcome,
            ground_time: batch.ground_time,
            warnings: batch.warnings,
        })
    }

    /// Demand-grounds the *union* neighborhood of several bound atoms in
    /// one pass: overlapping closures share their BFS frontier and factor
    /// deduplication, so a batch of nearby queries grounds each factor
    /// once instead of once per query. Atoms that do not exist land in
    /// [`BatchNeighborhood::missing`] rather than failing the batch.
    pub fn neighborhood_batch(
        &mut self,
        db: &mut Database,
        evidence: &dyn Fn(&str, &[Value]) -> Option<u32>,
        targets: &[(String, i64)],
        ctx: &ExecContext,
    ) -> Result<BatchNeighborhood, QueryError> {
        let start = Instant::now();
        for (relation, _) in targets {
            match self.program.schema(relation) {
                Some(s) if s.is_variable => {}
                _ => return Err(QueryError::UnknownRelation(relation.clone())),
            }
        }
        let spatial = self.spatial_params(db)?;
        let mut grounder = Grounder::new(&self.program, self.ground.clone());
        grounder.set_hash_indexes(std::mem::take(&mut self.hash_indexes));
        let result = ground_closure(
            &self.program,
            &self.ground,
            &self.config,
            &mut grounder,
            &spatial,
            db,
            evidence,
            targets,
            ctx,
        );
        self.hash_indexes = grounder.take_hash_indexes();
        let mut nh = result?;
        nh.ground_time = start.elapsed();
        Ok(nh)
    }

    /// Runs the restricted chain on a grounded neighborhood and reads the
    /// seed's marginal. Evidence seeds skip the chain entirely.
    pub fn answer(&self, nh: &Neighborhood, ctx: &ExecContext) -> Result<QueryAnswer, QueryError> {
        let graph = &nh.grounding.graph;
        let var = graph.variable(nh.seed);
        let mut stats = QueryStats {
            variables: graph.num_variables(),
            logical_factors: graph.num_factors(),
            spatial_factors: graph.num_spatial_factors(),
            boundary_clamped: nh.boundary_clamped,
            sampled: false,
            ground_time: nh.ground_time,
            infer_time: Duration::ZERO,
        };
        if let Some(e) = var.evidence {
            let h = var.domain.cardinality();
            let score = if h == 2 { e as f64 } else { f64::from(e >= h / 2) };
            return Ok(QueryAnswer {
                relation: nh.relation.clone(),
                id: nh.id,
                score,
                evidence: Some(e),
                stats,
                outcome: nh.outcome,
                warnings: nh.warnings.clone(),
            });
        }

        let start = Instant::now();
        let pyramid =
            PyramidIndex::build(graph, self.config.infer.levels, self.config.infer.cell_capacity);
        let run = spatial_gibbs_with(graph, &pyramid, &self.config.infer, ctx)?;
        stats.sampled = true;
        stats.infer_time = start.elapsed();
        let score = seed_score(&run.counts, nh.seed, var.domain.cardinality());
        let mut warnings = nh.warnings.clone();
        warnings.extend(run.warnings);
        Ok(QueryAnswer {
            relation: nh.relation.clone(),
            id: nh.id,
            score,
            evidence: None,
            stats,
            outcome: nh.outcome.combine(run.outcome),
            warnings,
        })
    }

    /// Runs at most one restricted chain over a union neighborhood and
    /// reads every seed's marginal from it; answers align with
    /// `nh.seeds`. Evidence seeds answer without sampling; the chain's
    /// wall time is reported on every sampled answer (it was shared).
    pub fn answer_batch(
        &self,
        nh: &BatchNeighborhood,
        ctx: &ExecContext,
    ) -> Result<Vec<QueryAnswer>, QueryError> {
        let graph = &nh.grounding.graph;
        let base = QueryStats {
            variables: graph.num_variables(),
            logical_factors: graph.num_factors(),
            spatial_factors: graph.num_spatial_factors(),
            boundary_clamped: nh.boundary_clamped,
            sampled: false,
            ground_time: nh.ground_time,
            infer_time: Duration::ZERO,
        };
        let needs_chain =
            nh.seeds.iter().any(|s| graph.variable(s.var).evidence.is_none());
        let mut run = None;
        let mut infer_time = Duration::ZERO;
        if needs_chain {
            let start = Instant::now();
            let pyramid = PyramidIndex::build(
                graph,
                self.config.infer.levels,
                self.config.infer.cell_capacity,
            );
            run = Some(spatial_gibbs_with(graph, &pyramid, &self.config.infer, ctx)?);
            infer_time = start.elapsed();
        }
        let mut answers = Vec::with_capacity(nh.seeds.len());
        for s in &nh.seeds {
            let var = graph.variable(s.var);
            if let Some(e) = var.evidence {
                let h = var.domain.cardinality();
                let score = if h == 2 { e as f64 } else { f64::from(e >= h / 2) };
                answers.push(QueryAnswer {
                    relation: s.relation.clone(),
                    id: s.id,
                    score,
                    evidence: Some(e),
                    stats: base.clone(),
                    outcome: nh.outcome,
                    warnings: nh.warnings.clone(),
                });
                continue;
            }
            let run = run.as_ref().expect("chain ran: non-evidence seed present");
            let score = seed_score(&run.counts, s.var, var.domain.cardinality());
            let mut stats = base.clone();
            stats.sampled = true;
            stats.infer_time = infer_time;
            let mut warnings = nh.warnings.clone();
            warnings.extend(run.warnings.iter().cloned());
            answers.push(QueryAnswer {
                relation: s.relation.clone(),
                id: s.id,
                score,
                evidence: None,
                stats,
                outcome: nh.outcome.combine(run.outcome),
                warnings,
            });
        }
        Ok(answers)
    }

    /// Largest spatial factor radius across the program's spatial
    /// variable relations — the interaction horizon a single located row
    /// can reach. Serving layers use it as the invalidation margin when
    /// deciding which cached neighborhoods a row update may intersect.
    pub fn max_factor_radius(&mut self, db: &Database) -> Result<f64, QueryError> {
        Ok(self.spatial_params(db)?.values().fold(0.0, |m, &(_, r)| m.max(r)))
    }

    /// Per-spatial-relation `(weighting fn, factor radius)` with the same
    /// defaulting rules as the full grounder: explicit config wins;
    /// otherwise the bandwidth is a tenth of the spatial extent (derived
    /// here from the relation's *base table* rather than the atom cloud,
    /// which demand grounding never materializes) and the radius is the
    /// negligible-weight distance capped at 3.5 bandwidths.
    fn spatial_params(
        &mut self,
        db: &Database,
    ) -> Result<HashMap<String, (WeightingFn, f64)>, QueryError> {
        let relations: Vec<(String, String)> = self
            .program
            .spatial_variable_relations()
            .map(|(s, w)| (s.name.clone(), w.to_owned()))
            .collect();
        let mut out = HashMap::new();
        for (rel, wname) in relations {
            let bandwidth = match self.ground.weighting_bandwidth {
                Some(b) => b,
                None => match self.bandwidths.get(&rel) {
                    Some(&b) => b,
                    None => {
                        let b = base_table_bandwidth(&self.program, db, &rel, self.ground.metric);
                        self.bandwidths.insert(rel.clone(), b);
                        b
                    }
                },
            };
            let wfn = WeightingFn::by_name(&wname, self.ground.weighting_scale, bandwidth)
                .ok_or(QueryError::Ground(GroundError::UnknownWeighting(wname)))?;
            let radius = self
                .ground
                .spatial_radius
                .unwrap_or_else(|| negligible_radius(&wfn, bandwidth).min(3.5 * bandwidth));
            out.insert(rel, (wfn, radius));
        }
        Ok(out)
    }
}

/// Derives the default weighting bandwidth for `relation` from the
/// bounding box of the base table feeding its derivation rules (the full
/// pipeline uses the ground-atom cloud, which coincides for the common
/// one-atom-per-row derivation). Falls back to scanning every table's
/// spatial column when no derivation rule is found.
fn base_table_bandwidth(
    program: &CompiledProgram,
    db: &Database,
    relation: &str,
    metric: sya_geom::DistanceMetric,
) -> f64 {
    let mut tables: Vec<&str> = Vec::new();
    for rule in &program.rules {
        if matches!(rule.kind, RuleKind::Derivation)
            && rule.head.first().is_some_and(|h| h.relation == relation)
        {
            tables.extend(rule.body.iter().map(|a| a.relation.as_str()));
        }
    }
    let mut bbox = Rect::EMPTY;
    let mut scan = |name: &str| {
        if let Ok(table) = db.table(name) {
            for row in 0..table.len() {
                if let Some(p) = table.point_of(row) {
                    bbox = bbox.union(&Rect::from_point(p));
                }
            }
        }
    };
    if tables.is_empty() {
        let names: Vec<String> = db.table_names().map(str::to_owned).collect();
        for name in names {
            scan(&name);
        }
    } else {
        for name in tables {
            scan(name);
        }
    }
    if bbox.is_empty() {
        return 1.0;
    }
    let lo = Point::new(bbox.min_x, bbox.min_y);
    let hi = Point::new(bbox.max_x, bbox.max_y);
    (metric_distance(metric, &lo, &hi) / 10.0).max(f64::MIN_POSITIVE)
}

/// Score of the seed variable from the restricted chain's counts
/// (`KnowledgeBase::score_of` semantics for the non-evidence case).
fn seed_score(counts: &MarginalCounts, seed: VarId, cardinality: u32) -> f64 {
    if cardinality == 2 {
        counts.factual_score(seed)
    } else {
        (cardinality / 2..cardinality).map(|x| counts.marginal(seed, x)).sum()
    }
}

/// Quantizes a prior marginal onto a domain: binary `p >= 0.5 -> 1`,
/// categorical the nearest level of `p * (h - 1)`.
fn quantized_prior(p: f64, cardinality: u32) -> u32 {
    let h = cardinality.max(2);
    ((p.clamp(0.0, 1.0) * f64::from(h - 1)).round() as u32).min(h - 1)
}

#[allow(clippy::too_many_arguments)]
fn ground_closure(
    program: &CompiledProgram,
    gcfg: &GroundConfig,
    cfg: &QueryConfig,
    grounder: &mut Grounder<'_>,
    spatial: &HashMap<String, (WeightingFn, f64)>,
    db: &mut Database,
    evidence: &dyn Fn(&str, &[Value]) -> Option<u32>,
    targets: &[(String, i64)],
    ctx: &ExecContext,
) -> Result<BatchNeighborhood, QueryError> {
    let mut out = Grounding::new_empty();
    let mut warnings: Vec<String> = Vec::new();
    let mut outcome = RunOutcome::Completed;

    // --- Seeds: materialize each bound atom through its derivation
    // rules (duplicate targets collapse to one seed).
    let mut requested: Vec<(String, i64)> = Vec::new();
    for t in targets {
        if !requested.contains(t) {
            requested.push(t.clone());
        }
    }
    for (relation, id) in &requested {
        for (ri, rule) in program.rules.iter().enumerate() {
            if !matches!(rule.kind, RuleKind::Derivation) {
                continue;
            }
            if rule.head.first().map(|h| h.relation.as_str()) != Some(relation.as_str()) {
                continue;
            }
            let Some(adorn) = adorn_rule(rule, ri, 0, &[0]) else { continue };
            let Some(&(_, slot)) = adorn.slot_of_arg.first() else {
                // Head id position is a constant or wildcard; a seeded
                // probe cannot bind it — skip (the atom, if any, has no
                // queryable id column).
                continue;
            };
            let seed = BoundSeed::slot(slot, Value::Int(*id));
            let bindings = grounder.eval_rule_seeded(rule, db, &mut out, &seed)?;
            for b in bindings {
                grounder.apply_binding(rule, &b, evidence, &mut out);
            }
        }
    }
    let mut seeds: Vec<SeedAtom> = Vec::new();
    let mut missing: Vec<(String, i64)> = Vec::new();
    for (relation, id) in requested {
        let found = out.atoms_of(&relation).iter().copied().find(|&v| {
            out.atom_meta[v as usize].1.first().and_then(Value::as_int) == Some(id)
        });
        match found {
            Some(var) => seeds.push(SeedAtom { relation, id, var }),
            None => missing.push((relation, id)),
        }
    }
    let seed_set: HashSet<VarId> = seeds.iter().map(|s| s.var).collect();

    // --- Breadth-first closure up to the hop horizon, jointly from
    // every seed: a variable reachable from two seeds is expanded once.
    let mut hops: HashMap<VarId, usize> = seeds.iter().map(|s| (s.var, 0)).collect();
    let mut expanded: HashSet<VarId> = HashSet::new();
    let mut frontier: VecDeque<VarId> = seeds.iter().map(|s| s.var).collect();
    // Logical factors are deduplicated by (rule, full binding) — the same
    // key the full grounder's one-pass evaluation implies; spatial pairs
    // by unordered endpoints.
    let mut factor_seen: HashSet<(usize, String)> = HashSet::new();
    let mut pair_seen: HashSet<(VarId, VarId)> = HashSet::new();
    let mut unselective_warned: HashSet<usize> = HashSet::new();

    'bfs: while let Some(v) = frontier.pop_front() {
        let hop = hops[&v];
        if hop >= cfg.hop_depth {
            continue;
        }
        // Evidence blocks expansion (observed seeds included): factors
        // touching it are in, nothing beyond it matters for any seed's
        // conditional.
        if out.graph.variable(v).evidence.is_some() {
            continue;
        }
        if let Some(interrupt) = ctx.interrupted() {
            outcome = outcome.combine(interrupt);
            break 'bfs;
        }
        ctx.check_resources(
            Phase::Grounding,
            ResourceUsage {
                factors: out.graph.total_factors() as u64,
                variables: out.graph.num_variables() as u64,
                memory_bytes: 0,
            },
        )?;
        expanded.insert(v);
        let (rel_v, vals_v) = out.atom_meta[v as usize].clone();
        let loc_v = out.graph.variable(v).location;
        let mut discovered: Vec<VarId> = Vec::new();

        // Logical expansion: every inference rule whose head can have
        // produced v, seeded with v's values.
        for (ri, rule) in program.rules.iter().enumerate() {
            if !matches!(rule.kind, RuleKind::Inference(_)) {
                continue;
            }
            'heads: for head in &rule.head {
                if head.relation != rel_v {
                    continue;
                }
                let mut seed_values: Vec<(usize, Value)> = Vec::new();
                for (pos, t) in head.terms.iter().enumerate() {
                    let val = vals_v.get(pos);
                    match t {
                        SlotTerm::Slot(s) => {
                            let Some(val) = val else { continue 'heads };
                            if matches!(val, Value::Null) {
                                continue; // materialized through a wildcard
                            }
                            if let Some((_, prev)) =
                                seed_values.iter().find(|(slot, _)| slot == s)
                            {
                                if prev != val {
                                    continue 'heads; // repeated slot disagrees
                                }
                            } else {
                                seed_values.push((*s, val.clone()));
                            }
                        }
                        SlotTerm::Const(c) => {
                            if val != Some(c) {
                                continue 'heads; // this head cannot be v
                            }
                        }
                        SlotTerm::Wildcard => {}
                    }
                }
                if seed_values.is_empty() {
                    // Nothing bound: evaluating would ground the whole
                    // rule, defeating demand-driven enumeration.
                    if unselective_warned.insert(ri) {
                        warnings.push(format!(
                            "rule {} head binds no query slot; its factors are not expanded",
                            rule.label
                        ));
                    }
                    continue;
                }
                let seed = BoundSeed { values: seed_values, within: None };
                let bindings = grounder.eval_rule_seeded(rule, db, &mut out, &seed)?;
                for b in bindings {
                    let key = (ri, Grounding::canonical_key(&b));
                    if !factor_seen.insert(key) {
                        continue;
                    }
                    grounder.apply_binding(rule, &b, evidence, &mut out);
                    if let Some(f) = out.graph.factors().last() {
                        discovered.extend(f.vars.iter().copied());
                    }
                }
            }
        }

        // Spatial expansion: materialize the relation's atoms within the
        // factor radius and pair v against every included one.
        if let (Some((wfn, radius)), Some(p)) = (spatial.get(&rel_v), loc_v) {
            let spatial_col =
                program.schema(&rel_v).and_then(|s| s.first_spatial_column());
            for rule in &program.rules {
                if !matches!(rule.kind, RuleKind::Derivation) {
                    continue;
                }
                let Some(head) = rule.head.first().filter(|h| h.relation == rel_v) else {
                    continue;
                };
                let Some(SlotTerm::Slot(ls)) = spatial_col.and_then(|c| head.terms.get(c))
                else {
                    continue;
                };
                let seed =
                    BoundSeed::within(*ls, p, candidate_radius(gcfg.metric, *radius));
                let bindings = grounder.eval_rule_seeded(rule, db, &mut out, &seed)?;
                for b in bindings {
                    let q = match b[*ls].as_geom() {
                        Some(g) => g.representative_point(),
                        None => continue,
                    };
                    if metric_distance(gcfg.metric, &p, &q) > *radius {
                        continue;
                    }
                    grounder.apply_binding(rule, &b, evidence, &mut out);
                }
            }
            let h = gcfg.domains.get(&rel_v).copied().filter(|&h| h > 2);
            let peers: Vec<(VarId, Point)> = out
                .atoms_of(&rel_v)
                .iter()
                .filter(|&&u| u != v)
                .filter_map(|&u| out.graph.variable(u).location.map(|q| (u, q)))
                .collect();
            for (u, q) in peers {
                let pair = (v.min(u), v.max(u));
                if pair_seen.contains(&pair) {
                    continue;
                }
                let d = metric_distance(gcfg.metric, &p, &q);
                if d > *radius {
                    continue;
                }
                let w = wfn.weight(d);
                if w < WeightingFn::NEGLIGIBLE {
                    continue;
                }
                pair_seen.insert(pair);
                match h {
                    None => {
                        out.graph.add_spatial_factor(SpatialFactor::binary(v, u, w));
                    }
                    // Without the full atom cloud there are no
                    // co-occurrence statistics to prune with (Section
                    // IV-C); use the diagonal agreement pairs.
                    Some(h) => {
                        for t in 0..h {
                            out.graph
                                .add_spatial_factor(SpatialFactor::categorical(v, u, w, t, t));
                        }
                    }
                }
                discovered.push(u);
            }
        } else if spatial.contains_key(&rel_v) && loc_v.is_none() {
            warnings.push(format!(
                "spatial atom {} has no location; spatial expansion skipped",
                out.graph.variable(v).name
            ));
        }

        for u in discovered {
            if let std::collections::hash_map::Entry::Vacant(e) = hops.entry(u) {
                e.insert(hop + 1);
                frontier.push_back(u);
            }
        }
    }

    // --- Seal the boundary: frontier atoms that were discovered but
    // never expanded behave like evidence under ClampPrior.
    let mut boundary_clamped = 0usize;
    if cfg.boundary == BoundaryPolicy::ClampPrior {
        let unexpanded: Vec<VarId> = hops
            .keys()
            .copied()
            .filter(|u| !seed_set.contains(u) && !expanded.contains(u))
            .collect();
        for u in unexpanded {
            let var = out.graph.variable(u);
            if var.evidence.is_some() {
                continue;
            }
            let cardinality = var.domain.cardinality();
            let rel_u = &out.atom_meta[u as usize].0;
            let p = cfg.priors.get(rel_u).copied().unwrap_or(0.5);
            out.graph.set_evidence(u, Some(quantized_prior(p, cardinality)));
            boundary_clamped += 1;
        }
    }

    // --- Drop atoms that ended up with no factor at all (e.g. spatial
    // candidates whose exact weight was negligible).
    let isolated: HashSet<VarId> = (0..out.graph.num_variables() as VarId)
        .filter(|&u| {
            !seed_set.contains(&u)
                && out.graph.factors_of(u).is_empty()
                && out.graph.spatial_factors_of(u).is_empty()
                && out.graph.region_factors_of(u).is_empty()
        })
        .collect();
    let mut hop_vec: Vec<usize> = (0..out.graph.num_variables())
        .map(|u| hops.get(&(u as VarId)).copied().unwrap_or(cfg.hop_depth))
        .collect();
    if !isolated.is_empty() {
        let remap = out.remove_atoms(&isolated);
        for s in &mut seeds {
            s.var = remap[s.var as usize].expect("seeds are never isolated-removed");
        }
        let mut compacted = vec![0usize; out.graph.num_variables()];
        for (old, hop) in hop_vec.iter().enumerate() {
            if let Some(new) = remap[old] {
                compacted[new as usize] = *hop;
            }
        }
        hop_vec = compacted;
    }

    Ok(BatchNeighborhood {
        grounding: out,
        seeds,
        missing,
        hops: hop_vec,
        boundary_clamped,
        outcome,
        ground_time: Duration::ZERO,
        warnings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryConfig;
    use sya_geom::DistanceMetric;
    use sya_lang::{compile, parse_program, GeomConstants};
    use sya_runtime::RunBudget;
    use sya_store::{Column, DataType, TableSchema};

    const SRC: &str = r#"
    Well(id bigint, location point, arsenic double).
    @spatial(exp)
    IsSafe?(id bigint, location point).
    D1: IsSafe(W, L) = NULL :- Well(W, L, _).
    R1: @weight(0.7) IsSafe(W1, L1) => IsSafe(W2, L2) :-
        Well(W1, L1, A1), Well(W2, L2, A2)
        [distance(L1, L2) < 3, A1 < 0.2, A2 < 0.2, W1 != W2].
    "#;

    fn compiled() -> CompiledProgram {
        let p = parse_program(SRC).unwrap();
        compile(&p, &GeomConstants::new(), DistanceMetric::Euclidean).unwrap()
    }

    fn make_db(n: i64) -> Database {
        let mut db = Database::new();
        let schema = TableSchema::new(vec![
            Column::new("id", DataType::BigInt),
            Column::new("location", DataType::Point),
            Column::new("arsenic", DataType::Double),
        ]);
        let t = db.create_table("Well", schema).unwrap();
        for i in 0..n {
            t.insert(vec![
                Value::Int(i),
                Value::from(Point::new(i as f64, 0.0)),
                Value::Double(if i < n / 2 { 0.1 } else { 0.5 }),
            ])
            .unwrap();
        }
        db
    }

    fn evidence(rel: &str, vals: &[Value]) -> Option<u32> {
        if rel != "IsSafe" {
            return None;
        }
        match vals.first().and_then(Value::as_int) {
            Some(0) | Some(1) => Some(1),
            _ => None,
        }
    }

    fn query_grounder(ground: GroundConfig, config: QueryConfig) -> QueryGrounder {
        QueryGrounder::new(compiled(), ground, config)
    }

    fn tight_ground() -> GroundConfig {
        GroundConfig {
            spatial_radius: Some(2.0),
            weighting_bandwidth: Some(1.0),
            ..GroundConfig::default()
        }
    }

    #[test]
    fn neighborhood_is_a_strict_subset_of_the_kb() {
        let mut db = make_db(40);
        let mut qg = query_grounder(tight_ground(), QueryConfig::default());
        let nh = qg
            .neighborhood(&mut db, &evidence, "IsSafe", 20, &ExecContext::unbounded())
            .unwrap();
        // Hop depth 2 with joins/radius reaching +-3 cannot touch more
        // than a dozen of the 40 wells.
        assert!(nh.grounding.graph.num_variables() < 20);
        assert!(nh.grounding.graph.num_variables() >= 3);
        assert_eq!(nh.hops[nh.seed as usize], 0);
        let (_, vals) = &nh.grounding.atom_meta[nh.seed as usize];
        assert_eq!(vals.first().and_then(Value::as_int), Some(20));
    }

    #[test]
    fn evidence_seed_answers_without_sampling() {
        let mut db = make_db(10);
        let mut qg = query_grounder(tight_ground(), QueryConfig::default());
        let a = qg
            .marginal(&mut db, &evidence, "IsSafe", 0, &ExecContext::unbounded())
            .unwrap();
        assert_eq!(a.score, 1.0);
        assert_eq!(a.evidence, Some(1));
        assert!(!a.stats.sampled);
    }

    #[test]
    fn sampled_answer_is_a_probability_and_leans_on_safe_evidence() {
        let mut db = make_db(10);
        let mut qg = query_grounder(tight_ground(), QueryConfig::default());
        let a = qg
            .marginal(&mut db, &evidence, "IsSafe", 2, &ExecContext::unbounded())
            .unwrap();
        assert!(a.stats.sampled);
        assert!((0.0..=1.0).contains(&a.score));
        // Well 2 sits next to two safe-observed wells with positive
        // implication and spatial agreement factors: the marginal must
        // land clearly above a fair coin.
        assert!(a.score > 0.55, "score {}", a.score);
    }

    #[test]
    fn unknown_relation_and_missing_id_are_typed_errors() {
        let mut db = make_db(10);
        let mut qg = query_grounder(tight_ground(), QueryConfig::default());
        let ctx = ExecContext::unbounded();
        assert!(matches!(
            qg.marginal(&mut db, &evidence, "Nope", 0, &ctx),
            Err(QueryError::UnknownRelation(_))
        ));
        assert!(matches!(
            qg.marginal(&mut db, &evidence, "Well", 0, &ctx),
            Err(QueryError::UnknownRelation(_))
        ));
        assert!(matches!(
            qg.marginal(&mut db, &evidence, "IsSafe", 999, &ctx),
            Err(QueryError::NotFound { .. })
        ));
    }

    #[test]
    fn budget_exhaustion_is_surfaced_as_budget_error() {
        let mut db = make_db(400);
        let mut qg = query_grounder(
            tight_ground(),
            QueryConfig { hop_depth: 50, ..QueryConfig::default() },
        );
        let ctx = ExecContext::new(RunBudget::unlimited().with_max_variables(4));
        assert!(matches!(
            qg.neighborhood(&mut db, &evidence, "IsSafe", 200, &ctx),
            Err(QueryError::Budget(_))
        ));
    }

    #[test]
    fn hop_depth_zero_grounds_the_seed_alone() {
        let mut db = make_db(10);
        let mut qg = query_grounder(
            tight_ground(),
            QueryConfig { hop_depth: 0, ..QueryConfig::default() },
        );
        let nh = qg
            .neighborhood(&mut db, &evidence, "IsSafe", 5, &ExecContext::unbounded())
            .unwrap();
        assert_eq!(nh.grounding.graph.num_variables(), 1);
        assert_eq!(nh.grounding.graph.total_factors(), 0);
    }

    #[test]
    fn boundary_atoms_are_clamped_under_the_default_policy() {
        let mut db = make_db(40);
        let mut qg = query_grounder(
            tight_ground(),
            QueryConfig { hop_depth: 1, ..QueryConfig::default() },
        );
        let nh = qg
            .neighborhood(&mut db, &evidence, "IsSafe", 20, &ExecContext::unbounded())
            .unwrap();
        assert!(nh.boundary_clamped > 0);
        // Every non-seed variable is sealed: evidence or clamped.
        for u in 0..nh.grounding.graph.num_variables() as VarId {
            if u != nh.seed {
                assert!(nh.grounding.graph.variable(u).evidence.is_some());
            }
        }
    }

    #[test]
    fn free_boundary_policy_leaves_the_frontier_open() {
        let mut db = make_db(40);
        let mut qg = query_grounder(
            tight_ground(),
            QueryConfig {
                hop_depth: 1,
                boundary: BoundaryPolicy::Free,
                ..QueryConfig::default()
            },
        );
        let nh = qg
            .neighborhood(&mut db, &evidence, "IsSafe", 20, &ExecContext::unbounded())
            .unwrap();
        assert_eq!(nh.boundary_clamped, 0);
        let free = (0..nh.grounding.graph.num_variables() as VarId)
            .filter(|&u| nh.grounding.graph.variable(u).evidence.is_none())
            .count();
        assert!(free > 1);
    }

    #[test]
    fn batch_union_shares_overlapping_neighborhoods() {
        let mut db = make_db(40);
        let mut qg = query_grounder(tight_ground(), QueryConfig::default());
        let ctx = ExecContext::unbounded();
        let targets = vec![
            ("IsSafe".to_owned(), 20),
            ("IsSafe".to_owned(), 21),
            ("IsSafe".to_owned(), 20),
            ("IsSafe".to_owned(), 999),
        ];
        let batch = qg.neighborhood_batch(&mut db, &evidence, &targets, &ctx).unwrap();
        assert_eq!(batch.seeds.len(), 2, "duplicates collapse, missing excluded");
        assert_eq!(batch.missing, vec![("IsSafe".to_owned(), 999)]);
        for s in &batch.seeds {
            assert_eq!(batch.hops[s.var as usize], 0);
        }
        // The union grounds overlapping closures once: strictly fewer
        // variables than the two single-seed neighborhoods combined.
        let a = qg.neighborhood(&mut db, &evidence, "IsSafe", 20, &ctx).unwrap();
        let b = qg.neighborhood(&mut db, &evidence, "IsSafe", 21, &ctx).unwrap();
        assert!(
            batch.grounding.graph.num_variables()
                < a.grounding.graph.num_variables() + b.grounding.graph.num_variables()
        );
        let answers = qg.answer_batch(&batch, &ctx).unwrap();
        assert_eq!(answers.len(), 2);
        for ans in &answers {
            assert!(ans.stats.sampled);
            assert!((0.0..=1.0).contains(&ans.score));
        }
    }

    #[test]
    fn batch_with_evidence_seed_mixes_sampled_and_observed() {
        let mut db = make_db(10);
        let mut qg = query_grounder(tight_ground(), QueryConfig::default());
        let ctx = ExecContext::unbounded();
        let targets = vec![("IsSafe".to_owned(), 0), ("IsSafe".to_owned(), 2)];
        let batch = qg.neighborhood_batch(&mut db, &evidence, &targets, &ctx).unwrap();
        let answers = qg.answer_batch(&batch, &ctx).unwrap();
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[0].evidence, Some(1));
        assert!(!answers[0].stats.sampled);
        assert!(answers[1].stats.sampled);
    }

    #[test]
    fn hash_indexes_survive_across_queries() {
        let mut db = make_db(40);
        let mut qg = query_grounder(tight_ground(), QueryConfig::default());
        let ctx = ExecContext::unbounded();
        let a = qg.marginal(&mut db, &evidence, "IsSafe", 10, &ctx).unwrap();
        let b = qg.marginal(&mut db, &evidence, "IsSafe", 10, &ctx).unwrap();
        assert_eq!(a.stats.variables, b.stats.variables);
        assert_eq!(a.stats.logical_factors, b.stats.logical_factors);
        qg.invalidate_indexes();
        let c = qg.marginal(&mut db, &evidence, "IsSafe", 10, &ctx).unwrap();
        assert_eq!(a.stats.variables, c.stats.variables);
    }
}
