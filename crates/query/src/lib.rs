//! # sya-query — demand-driven (magic-sets) grounding for bound queries
//!
//! The construction pipeline (`sya-core`) grounds the *whole* program and
//! samples the *whole* factor graph before a single marginal can be read.
//! Serving traffic is overwhelmingly *bound* — "what is the label of
//! **this** entity?" — and for spatial programs the relevant subgraph is
//! small: spatial factors vanish beyond the weighting function's
//! negligible radius, and logical factors reach only the atoms a rule
//! body can join against the bound values. Following the ProPPR line of
//! work (locally groundable first-order probabilistic logic), this crate
//! answers a bound marginal without ever constructing the full KB:
//!
//! 1. **Adornment + seeded enumeration** — [`sya_lang::adorn_program`]
//!    selects the rules whose head can produce the bound atom;
//!    [`Grounder::eval_rule_seeded`](sya_ground::Grounder::eval_rule_seeded)
//!    evaluates their bodies with the query's values pre-bound, so hash
//!    probes and R-tree probes exploit them.
//! 2. **Neighborhood closure** — a breadth-first backward pass from the
//!    seed atom expands up to [`QueryConfig::hop_depth`] hops: logical
//!    factors via seeded rule evaluation, spatial factors via an R-tree
//!    range probe within the relation's spatial radius. Evidence atoms
//!    are included but never expanded (the Markov blanket property:
//!    conditioning on them d-separates everything beyond).
//! 3. **Boundary clamping** — frontier atoms at the hop horizon are
//!    clamped to a quantized per-relation prior
//!    ([`BoundaryPolicy::ClampPrior`]) or left free
//!    ([`BoundaryPolicy::Free`]).
//! 4. **Restricted inference** — the mini graph gets its own pyramid
//!    index and a short conclique-restricted Gibbs chain
//!    ([`sya_infer::spatial_gibbs_with`]); the seed's marginal is read
//!    off with the same scoring semantics as
//!    `sya_core::KnowledgeBase::score_of`.
//!
//! Known gaps versus full construction (documented, tested as such):
//! * categorical spatial factors use the *diagonal* (agreement) domain
//!   pairs instead of the co-occurrence-pruned pair set of Section IV-C —
//!   the co-occurrence statistics need the full atom cloud;
//! * spatial factors between two *boundary* atoms (neither endpoint
//!   expanded) are not materialized — they lie outside the closure;
//! * a rule head that binds no slot from the query (all wildcards or
//!   constants) is skipped with a warning instead of grounding the whole
//!   rule.

pub mod grounder;

pub use grounder::{
    BatchNeighborhood, Neighborhood, QueryAnswer, QueryGrounder, QueryStats, SeedAtom,
};

use std::collections::HashMap;
use sya_infer::{InferConfig, InferError};
use sya_runtime::BudgetExceeded;

/// What happens to non-evidence atoms discovered at the hop horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundaryPolicy {
    /// Clamp to the quantized per-relation prior ([`QueryConfig::priors`],
    /// default 0.5): the atom behaves as evidence, sealing the mini graph
    /// against the unexplored remainder of the KB.
    #[default]
    ClampPrior,
    /// Leave the boundary free: it is sampled under its (partial)
    /// neighborhood. Less biased when the prior is uninformative, at the
    /// cost of extra variance from the missing context.
    Free,
}

/// Configuration of a [`QueryGrounder`].
#[derive(Debug, Clone)]
pub struct QueryConfig {
    /// Maximum factor hops expanded from the seed atom (seed = hop 0).
    pub hop_depth: usize,
    /// Treatment of non-evidence atoms at the hop horizon.
    pub boundary: BoundaryPolicy,
    /// Per-relation prior marginal used by [`BoundaryPolicy::ClampPrior`]
    /// (e.g. the evidence mean); relations absent here use 0.5.
    pub priors: HashMap<String, f64>,
    /// The restricted chain's sampler configuration. The default is a
    /// short single-instance, single-worker chain tuned for
    /// per-request latency on mini graphs, not the full pipeline's
    /// 1000-epoch multi-instance run.
    pub infer: InferConfig,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            hop_depth: 2,
            boundary: BoundaryPolicy::default(),
            priors: HashMap::new(),
            infer: InferConfig {
                epochs: 240,
                instances: 1,
                levels: 4,
                locality_level: 4,
                burn_in: 24,
                workers: Some(1),
                ..InferConfig::default()
            },
        }
    }
}

/// Errors of the demand-driven query path.
#[derive(Debug)]
pub enum QueryError {
    /// The queried relation is not a variable relation of the program.
    UnknownRelation(String),
    /// No derivation rule produced a ground atom with the bound id.
    NotFound { relation: String, id: i64 },
    /// The per-request [`RunBudget`](sya_runtime::RunBudget) was
    /// exhausted while enumerating the neighborhood.
    Budget(BudgetExceeded),
    /// Grounding-layer failure (storage, missing input, bad weighting).
    Ground(sya_ground::GroundError),
    /// The restricted chain failed outright.
    Infer(InferError),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::UnknownRelation(r) => {
                write!(f, "unknown variable relation {r:?}")
            }
            QueryError::NotFound { relation, id } => {
                write!(f, "no ground atom {relation}({id}, ...)")
            }
            QueryError::Budget(b) => write!(f, "query budget exhausted: {b}"),
            QueryError::Ground(e) => write!(f, "query grounding failed: {e}"),
            QueryError::Infer(e) => write!(f, "query inference failed: {e}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Budget(b) => Some(b),
            QueryError::Ground(e) => Some(e),
            QueryError::Infer(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sya_ground::GroundError> for QueryError {
    fn from(e: sya_ground::GroundError) -> Self {
        match e {
            sya_ground::GroundError::Budget(b) => QueryError::Budget(b),
            other => QueryError::Ground(other),
        }
    }
}

impl From<BudgetExceeded> for QueryError {
    fn from(e: BudgetExceeded) -> Self {
        QueryError::Budget(e)
    }
}

impl From<InferError> for QueryError {
    fn from(e: InferError) -> Self {
        QueryError::Infer(e)
    }
}
