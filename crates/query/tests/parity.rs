//! Parity and strictness guarantees of demand-driven grounding
//! (vendored `proptest`).
//!
//! 1. **Parity**: on randomized small KBs, the lazy bound-marginal
//!    answer lands within tolerance of the full ground-and-sample
//!    pipeline, across hop depths and spatial radii. With evidence
//!    blocking expansion, a hop depth past the evidence separators makes
//!    the neighborhood capture the seed's full Markov blanket closure,
//!    so the residual gap is sampler noise, not structure.
//! 2. **Strictness**: the demand-grounded neighborhood never contains an
//!    atom or factor outside the bound atom's closure — every lazy atom
//!    and factor exists in the full grounding, and every lazy atom lies
//!    within `hop_depth` factor hops of the seed (evidence-blocked BFS
//!    in the *full* graph).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};
use sya_fg::VarId;
use sya_geom::{DistanceMetric, Point};
use sya_ground::{GroundConfig, Grounder, Grounding};
use sya_infer::{spatial_gibbs, InferConfig, PyramidIndex};
use sya_lang::{compile, parse_program, CompiledProgram, GeomConstants};
use sya_query::{QueryConfig, QueryGrounder};
use sya_runtime::ExecContext;
use sya_store::{Column, DataType, Database, TableSchema, Value};

/// A GWDB-shaped mini program: one derivation, one spatial-join
/// implication with parametric reach, two unary prior rules.
fn program(rule_radius: f64) -> CompiledProgram {
    let src = format!(
        r#"
    Well(id bigint, location point, arsenic double).
    @spatial(exp)
    IsSafe?(id bigint, location point).
    D1: IsSafe(W, L) = NULL :- Well(W, L, _).
    R1: @weight(0.7) IsSafe(W1, L1) => IsSafe(W2, L2) :-
        Well(W1, L1, A1), Well(W2, L2, A2)
        [distance(L1, L2) < {rule_radius}, A1 < 0.25, A2 < 0.25, W1 != W2].
    R2: @weight(0.8)  IsSafe(W, L) :- Well(W, L, A) [A < 0.1].
    R3: @weight(-0.9) IsSafe(W, L) :- Well(W, L, A) [A > 0.6].
    "#
    );
    let ast = parse_program(&src).unwrap();
    compile(&ast, &GeomConstants::new(), DistanceMetric::Euclidean).unwrap()
}

/// Wells on a jittered line with random arsenic readings; roughly 40%
/// carry evidence correlated with a smooth left-to-right field.
struct MiniKb {
    db: Database,
    evidence: HashMap<i64, u32>,
    n: usize,
}

fn mini_kb(seed: u64, n: usize, spacing: f64) -> MiniKb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let schema = TableSchema::new(vec![
        Column::new("id", DataType::BigInt),
        Column::new("location", DataType::Point),
        Column::new("arsenic", DataType::Double),
    ]);
    let t = db.create_table("Well", schema).unwrap();
    let mut evidence = HashMap::new();
    for i in 0..n {
        let x = i as f64 * spacing;
        let y = rng.gen_range(-0.3..0.3);
        t.insert(vec![
            Value::Int(i as i64),
            Value::from(Point::new(x, y)),
            Value::Double(rng.gen_range(0.0..1.0)),
        ])
        .unwrap();
        if rng.gen_bool(0.4) {
            // Left half of the field tends safe, right half unsafe.
            let safe = (i as f64) < n as f64 / 2.0;
            let flip = rng.gen_bool(0.1);
            evidence.insert(i as i64, u32::from(safe != flip));
        }
    }
    MiniKb { db, evidence, n }
}

impl MiniKb {
    fn evidence_fn(&self) -> impl Fn(&str, &[Value]) -> Option<u32> + '_ {
        move |_, values| {
            values.first().and_then(Value::as_int).and_then(|id| self.evidence.get(&id).copied())
        }
    }

    /// A free (non-evidence) well near the middle of the line.
    fn mid_query_id(&self) -> i64 {
        let mid = self.n as i64 / 2;
        (0..self.n as i64)
            .min_by_key(|id| if self.evidence.contains_key(id) { i64::MAX } else { (id - mid).abs() })
            .unwrap()
    }
}

fn ground_cfg(radius: f64) -> GroundConfig {
    GroundConfig {
        weighting_bandwidth: Some(1.0),
        spatial_radius: Some(radius),
        ..GroundConfig::default()
    }
}

fn chain_cfg(epochs: usize, seed: u64) -> InferConfig {
    InferConfig {
        epochs,
        burn_in: (epochs / 10).max(1),
        instances: 1,
        levels: 3,
        locality_level: 3,
        workers: Some(1),
        seed,
        ..InferConfig::default()
    }
}

/// Full ground-and-sample: the reference the lazy path must reproduce.
fn full_scores(
    compiled: &CompiledProgram,
    kb: &MiniKb,
    gcfg: &GroundConfig,
    icfg: &InferConfig,
) -> (Grounding, HashMap<i64, f64>) {
    let mut db = kb.db.clone();
    let mut grounder = Grounder::new(compiled, gcfg.clone());
    let grounding = grounder.ground(&mut db, &kb.evidence_fn()).unwrap();
    let pyramid = PyramidIndex::build(&grounding.graph, icfg.levels, icfg.cell_capacity);
    let counts = spatial_gibbs(&grounding.graph, &pyramid, icfg);
    let mut scores = HashMap::new();
    for &v in grounding.atoms_of("IsSafe") {
        let (_, values) = &grounding.atom_meta[v as usize];
        let Some(id) = values.first().and_then(Value::as_int) else { continue };
        let var = grounding.graph.variable(v);
        let score = match var.evidence {
            Some(e) => e as f64,
            None => counts.factual_score(v),
        };
        scores.insert(id, score);
    }
    (grounding, scores)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn lazy_marginal_matches_full_pipeline_within_tolerance(
        seed in 0u64..10_000,
        n in 18usize..36,
        radius in prop::sample::select(vec![1.6f64, 2.0, 2.5]),
        hop_depth in 4usize..7,
    ) {
        let compiled = program(radius + 0.5);
        let kb = mini_kb(seed, n, 1.0);
        let gcfg = ground_cfg(radius);
        let icfg = chain_cfg(1500, seed ^ 0xFACE);
        let (_, full) = full_scores(&compiled, &kb, &gcfg, &icfg);

        let qcfg = QueryConfig { hop_depth, infer: icfg.clone(), ..QueryConfig::default() };
        let mut qg = QueryGrounder::new(compiled, gcfg, qcfg);
        let mut db = kb.db.clone();
        let id = kb.mid_query_id();
        let answer = qg
            .marginal(&mut db, &kb.evidence_fn(), "IsSafe", id, &ExecContext::unbounded())
            .unwrap();
        let reference = full[&id];
        prop_assert!(
            (answer.score - reference).abs() < 0.2,
            "well {}: lazy {:.3} vs full {:.3} (n={} radius={} hops={})",
            id, answer.score, reference, n, radius, hop_depth
        );
    }

    #[test]
    fn lazy_evidence_answer_is_exact(
        seed in 0u64..10_000,
        n in 18usize..36,
    ) {
        let kb = mini_kb(seed, n, 1.0);
        // 40% evidence density over 18+ wells: an empty map is a
        // one-in-ten-million draw — skip it rather than assume-filter
        // (the vendored proptest has no prop_assume).
        if kb.evidence.is_empty() {
            return Ok(());
        }
        let (&id, &value) = kb.evidence.iter().next().unwrap();
        let mut qg = QueryGrounder::new(program(2.5), ground_cfg(2.0), QueryConfig::default());
        let mut db = kb.db.clone();
        let answer = qg
            .marginal(&mut db, &kb.evidence_fn(), "IsSafe", id, &ExecContext::unbounded())
            .unwrap();
        prop_assert_eq!(answer.evidence, Some(value));
        prop_assert_eq!(answer.score, value as f64);
        prop_assert!(!answer.stats.sampled);
    }
}

/// Evidence-blocked BFS hop distances from `seed` over the full graph's
/// factor adjacency — the closure the lazy path is allowed to ground.
fn full_hops(grounding: &Grounding, seed: VarId) -> HashMap<VarId, usize> {
    let mut hops = HashMap::from([(seed, 0usize)]);
    let mut queue = VecDeque::from([seed]);
    while let Some(v) = queue.pop_front() {
        let hop = hops[&v];
        // Evidence atoms are reachable but d-separate what lies beyond.
        if v != seed && grounding.graph.variable(v).evidence.is_some() {
            continue;
        }
        for u in grounding.graph.neighbours(v) {
            if let std::collections::hash_map::Entry::Vacant(e) = hops.entry(u) {
                e.insert(hop + 1);
                queue.push_back(u);
            }
        }
    }
    hops
}

/// Identity of an atom across the two groundings.
fn atom_key(grounding: &Grounding, v: VarId) -> (String, String) {
    let (rel, values) = &grounding.atom_meta[v as usize];
    (rel.clone(), Grounding::canonical_key(values))
}

#[test]
fn neighborhood_never_leaves_the_bound_atom_closure() {
    let compiled = program(2.5);
    let kb = mini_kb(77, 30, 1.0);
    let gcfg = ground_cfg(2.0);
    let mut db = kb.db.clone();
    let mut grounder = Grounder::new(&compiled, gcfg.clone());
    let full = grounder.ground(&mut db, &kb.evidence_fn()).unwrap();
    let id = kb.mid_query_id();

    // Full-graph factor signatures the lazy factors must be drawn from.
    let logical: HashSet<(String, Vec<(String, String)>)> = full
        .graph
        .factors()
        .iter()
        .zip(&full.factor_rules)
        .map(|(f, label)| {
            let mut ends: Vec<_> = f.vars.iter().map(|&v| atom_key(&full, v)).collect();
            ends.sort();
            (label.clone(), ends)
        })
        .collect();
    let spatial: HashSet<(Vec<(String, String)>, u64)> = full
        .graph
        .spatial_factors()
        .iter()
        .map(|f| {
            let mut ends = vec![atom_key(&full, f.a), atom_key(&full, f.b)];
            ends.sort();
            (ends, f.weight.to_bits())
        })
        .collect();

    for hop_depth in [1usize, 2, 3] {
        let qcfg = QueryConfig { hop_depth, ..QueryConfig::default() };
        let mut qg = QueryGrounder::new(compiled.clone(), gcfg.clone(), qcfg);
        let mut qdb = kb.db.clone();
        let nh = qg
            .neighborhood(&mut qdb, &kb.evidence_fn(), "IsSafe", id, &ExecContext::unbounded())
            .unwrap();

        // Map lazy atoms into the full grounding and bound their hops.
        let full_seed = full
            .atom_id("IsSafe", &nh.grounding.atom_meta[nh.seed as usize].1)
            .expect("seed exists in the full grounding");
        let hops = full_hops(&full, full_seed);
        let mut lazy_to_full: HashMap<VarId, VarId> = HashMap::new();
        for v in 0..nh.grounding.graph.num_variables() as VarId {
            let (rel, values) = &nh.grounding.atom_meta[v as usize];
            let fv = full
                .atom_id(rel, values)
                .unwrap_or_else(|| panic!("lazy atom {rel}({values:?}) not in full grounding"));
            let hop = hops.get(&fv).copied().unwrap_or(usize::MAX);
            assert!(
                hop <= hop_depth,
                "lazy atom {rel}({values:?}) is {hop} hops from the seed (> {hop_depth})"
            );
            lazy_to_full.insert(v, fv);
        }

        // Every lazy factor exists verbatim in the full grounding, with
        // at least one endpoint strictly inside the horizon.
        for (f, label) in nh.grounding.graph.factors().iter().zip(&nh.grounding.factor_rules) {
            let mut ends: Vec<_> =
                f.vars.iter().map(|&v| atom_key(&nh.grounding, v)).collect();
            ends.sort();
            assert!(
                logical.contains(&(label.clone(), ends.clone())),
                "lazy logical factor {label} {ends:?} absent from the full grounding"
            );
            let min_hop = f
                .vars
                .iter()
                .map(|v| hops.get(&lazy_to_full[v]).copied().unwrap_or(usize::MAX))
                .min()
                .unwrap();
            assert!(min_hop < hop_depth, "factor {label} has no expanded endpoint");
        }
        for f in nh.grounding.graph.spatial_factors() {
            let mut ends =
                vec![atom_key(&nh.grounding, f.a), atom_key(&nh.grounding, f.b)];
            ends.sort();
            assert!(
                spatial.contains(&(ends.clone(), f.weight.to_bits())),
                "lazy spatial factor {ends:?} (w={}) absent from the full grounding",
                f.weight
            );
        }
    }
}

/// Deeper horizons only ever grow the neighborhood (monotone closure).
#[test]
fn neighborhood_grows_monotonically_with_hop_depth() {
    let compiled = program(2.5);
    let kb = mini_kb(42, 40, 1.0);
    let gcfg = ground_cfg(2.0);
    let id = kb.mid_query_id();
    let mut previous = 0usize;
    for hop_depth in 1..=4 {
        let qcfg = QueryConfig { hop_depth, ..QueryConfig::default() };
        let mut qg = QueryGrounder::new(compiled.clone(), gcfg.clone(), qcfg);
        let mut db = kb.db.clone();
        let nh = qg
            .neighborhood(&mut db, &kb.evidence_fn(), "IsSafe", id, &ExecContext::unbounded())
            .unwrap();
        assert!(
            nh.grounding.graph.num_variables() >= previous,
            "hop {hop_depth} shrank the neighborhood"
        );
        previous = nh.grounding.graph.num_variables();
    }
}
