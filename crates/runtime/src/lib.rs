//! Resilient execution layer for the Sya pipeline.
//!
//! Knowledge-base construction is a long-running job: a bad rule set
//! can ground an unbounded number of factors (the paper's Fig. 10
//! step-function blow-up), and inference spins worker threads for
//! minutes. Production KBC systems (DeepDive, Tuffy) therefore treat
//! *resource governance* as a first-class concern: bounded memory,
//! bounded time, and degraded-but-correct answers instead of aborts.
//!
//! This crate is the bottom layer of that posture, shared by
//! `sya-ground` and `sya-infer` and re-exported by `sya-core`:
//!
//! - [`RunBudget`] — declarative limits (wall-clock deadline, max
//!   ground factors / variables, max estimated memory).
//! - [`CancellationToken`] — cooperative cancellation; samplers stop at
//!   the next epoch barrier, the grounder at the next rule checkpoint.
//! - [`RunOutcome`] — how a run ended (`Completed`, `Degraded`,
//!   `TimedOut`, `Cancelled`); partial results carry the outcome
//!   instead of being thrown away.
//! - [`BudgetExceeded`] — structured hard-limit violation.
//! - [`FaultPlan`] / [`ExecContext`] — a deterministic fault-injection
//!   harness (worker panics, slowdowns, budget pressure) used by the
//!   robustness test-suite to prove each degradation path.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

pub use sya_obs::{Obs, Severity};

// ------------------------------------------------------------- phase

/// Pipeline phase, for error attribution and targeted fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    Grounding,
    Inference,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Grounding => f.write_str("grounding"),
            Phase::Inference => f.write_str("inference"),
        }
    }
}

// ------------------------------------------------------------ budget

/// Declarative resource limits for one construction run.
///
/// `None` means unlimited. The deadline is *graceful*: the run stops at
/// the next checkpoint and returns partial results tagged
/// [`RunOutcome::TimedOut`]. The count/memory limits are *hard*: they
/// abort grounding with [`BudgetExceeded`] before the blow-up happens.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunBudget {
    /// Wall-clock limit for the whole run (grounding + inference).
    pub deadline: Option<Duration>,
    /// Maximum ground factors (logical + spatial) the grounder may emit.
    pub max_factors: Option<u64>,
    /// Maximum ground variables (atoms) the grounder may instantiate.
    pub max_variables: Option<u64>,
    /// Maximum estimated factor-graph memory, in bytes.
    pub max_memory_bytes: Option<u64>,
}

impl RunBudget {
    /// No limits — the default for library callers.
    pub fn unlimited() -> Self {
        RunBudget::default()
    }

    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    pub fn with_max_factors(mut self, n: u64) -> Self {
        self.max_factors = Some(n);
        self
    }

    pub fn with_max_variables(mut self, n: u64) -> Self {
        self.max_variables = Some(n);
        self
    }

    pub fn with_max_memory_bytes(mut self, n: u64) -> Self {
        self.max_memory_bytes = Some(n);
        self
    }

    pub fn is_unlimited(&self) -> bool {
        *self == RunBudget::default()
    }
}

/// Which budgeted resource a [`BudgetExceeded`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    Factors,
    Variables,
    MemoryBytes,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Factors => f.write_str("ground factors"),
            Resource::Variables => f.write_str("ground variables"),
            Resource::MemoryBytes => f.write_str("estimated memory bytes"),
        }
    }
}

/// A hard budget violation: the run is aborted, not degraded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    pub phase: Phase,
    pub resource: Resource,
    pub limit: u64,
    pub observed: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} budget exceeded during {}: observed {} > limit {}",
            self.resource, self.phase, self.observed, self.limit
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// Point-in-time resource usage checked against a [`RunBudget`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ResourceUsage {
    pub factors: u64,
    pub variables: u64,
    pub memory_bytes: u64,
}

// ------------------------------------------------------ cancellation

/// A cooperative cancellation flag shared between a run and its caller.
///
/// Cloning is cheap (an `Arc<AtomicBool>`); all clones observe the same
/// flag. Workers poll [`is_cancelled`](Self::is_cancelled) at epoch
/// barriers / rule checkpoints, so cancellation latency is one
/// checkpoint interval, not instantaneous.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
}

impl CancellationToken {
    pub fn new() -> Self {
        CancellationToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

// ----------------------------------------------------------- outcome

/// How a construction run ended. Ordered by severity: combining
/// outcomes (e.g. grounding's with inference's) keeps the worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum RunOutcome {
    /// Everything ran to completion.
    #[default]
    Completed,
    /// Completed, but with degraded fidelity — e.g. a panicked sampler
    /// instance was dropped from the count average.
    Degraded,
    /// The wall-clock deadline fired; results are partial.
    TimedOut,
    /// The caller cancelled; results are partial.
    Cancelled,
}

impl RunOutcome {
    /// The more severe of two outcomes.
    #[must_use]
    pub fn combine(self, other: RunOutcome) -> RunOutcome {
        self.max(other)
    }

    /// True when the run stopped before its configured work was done
    /// (deadline or cancellation — not mere degradation).
    pub fn is_partial(&self) -> bool {
        matches!(self, RunOutcome::TimedOut | RunOutcome::Cancelled)
    }

    pub fn is_completed(&self) -> bool {
        *self == RunOutcome::Completed
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Completed => f.write_str("completed"),
            RunOutcome::Degraded => f.write_str("degraded"),
            RunOutcome::TimedOut => f.write_str("timed-out"),
            RunOutcome::Cancelled => f.write_str("cancelled"),
        }
    }
}

// ------------------------------------------------------------ faults

/// Deterministic fault-injection plan. Empty (the default) injects
/// nothing; tests construct targeted plans to force each degradation
/// path without any timing dependence.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Sampler instances (by index) that panic on reaching
    /// [`panic_at_epoch`](Self::panic_at_epoch).
    pub panic_instances: Vec<usize>,
    /// Epoch at which `panic_instances` fire.
    pub panic_at_epoch: usize,
    /// Panic one parallel cell-worker chunk of this instance (at
    /// `panic_at_epoch`). Fires once per context — the sequential
    /// re-run of the failed cells is allowed to succeed.
    pub panic_worker_in_instance: Option<usize>,
    /// Sleep this long at every checkpoint of the given phase —
    /// simulates stragglers / overload so deadline paths can be tested
    /// with realistic-looking slowness.
    pub slowdown: Option<(Phase, Duration)>,
    /// Inflates the observed factor count at grounding checkpoints —
    /// simulates budget pressure without materialising factors.
    pub factor_pressure: u64,
    /// Makes the first `n` checkpoint saves fail — simulates a full or
    /// read-only checkpoint directory so the degrade-don't-abort path
    /// can be tested without touching the filesystem.
    pub fail_checkpoint_saves: usize,
    /// Kill cluster shard worker `(shard, epoch)`: the worker drops its
    /// coordinator socket and dies mid-epoch, exercising the
    /// supervisor's crash-detection → restart-from-checkpoint path.
    /// Fires once per context; launchers must not forward it to a
    /// restarted worker.
    pub kill_worker: Option<(usize, usize)>,
    /// Stall cluster shard worker `(shard, epoch)` for the duration
    /// before it publishes — trips the coordinator's heartbeat deadline
    /// without the worker actually dying.
    pub stall_worker: Option<(usize, usize, Duration)>,
    /// Make cluster shard worker `(shard, epoch)` emit a deliberately
    /// CRC-broken frame — exercises the coordinator's corrupt-frame
    /// rejection path.
    pub corrupt_frame: Option<(usize, usize)>,
}

impl FaultPlan {
    pub fn none() -> Self {
        FaultPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.panic_instances.is_empty()
            && self.panic_worker_in_instance.is_none()
            && self.slowdown.is_none()
            && self.factor_pressure == 0
            && self.fail_checkpoint_saves == 0
            && self.kill_worker.is_none()
            && self.stall_worker.is_none()
            && self.corrupt_frame.is_none()
    }
}

// ----------------------------------------------------------- backoff

/// Deterministic exponential backoff: `base × 2^attempt`, saturating at
/// `max`. The cluster supervisor sleeps this long before relaunching a
/// failed worker, so a crash-looping shard cannot hot-spin the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    pub base: Duration,
    pub max: Duration,
}

impl Backoff {
    pub fn new(base: Duration, max: Duration) -> Self {
        Backoff { base, max }
    }

    /// Delay before restart attempt `attempt` (0-based: the first
    /// restart waits `base`).
    pub fn delay(&self, attempt: u32) -> Duration {
        let mult = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base.checked_mul(mult).unwrap_or(self.max).min(self.max)
    }

    /// [`delay`](Self::delay) scaled by a deterministic, seed-derived
    /// jitter factor in `[0.5, 1.0]`. Workers that crashed at the same
    /// instant (a died coordinator host, a shared OOM) would otherwise
    /// all sleep the same exponential delay and restart in lockstep —
    /// the thundering herd. Seeding with the shard index keeps restart
    /// schedules reproducible while spreading them apart.
    pub fn delay_jittered(&self, attempt: u32, seed: u64) -> Duration {
        let d = self.delay(attempt);
        let h = splitmix64(
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (u64::from(attempt) << 32),
        );
        // 53 uniform bits → a factor in [0.5, 1.0): never less than half
        // the nominal delay (a crash loop must still back off), never
        // more than `delay` (the budgeted worst case stays the bound).
        let frac = 0.5 + 0.5 * ((h >> 11) as f64 / (1u64 << 53) as f64);
        d.mul_f64(frac).min(self.max)
    }
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mix used to turn
/// `(seed, attempt)` into an independent jitter stream.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff { base: Duration::from_millis(250), max: Duration::from_secs(10) }
    }
}

// ----------------------------------------------------------- breaker

/// Where a [`Breaker`] currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, consecutive failures are counted.
    Closed,
    /// Tripped: requests fast-fail until the backoff window elapses.
    Open,
    /// One probe request is in flight; its outcome decides the state.
    HalfOpen,
}

/// How long a half-open probe may stay unreported before the breaker
/// assumes its holder died (panicked worker, dropped connection) and
/// leases the probe to the next caller. Without this backstop a probe
/// that never reports back would wedge the breaker half-open forever:
/// [`Breaker::allow`] admits nothing in that state.
const DEFAULT_PROBE_LEASE: Duration = Duration::from_secs(30);

/// A consecutive-failure circuit breaker (closed → open → half-open →
/// closed) whose open window reuses [`Backoff`]: each consecutive trip
/// waits exponentially longer before the next probe. The serving
/// router fronts every shard with one of these so a sick shard
/// fast-fails with 503 instead of holding worker threads hostage.
///
/// All transitions are serialized under one mutex; the breaker is
/// shared by reference across request workers.
#[derive(Debug)]
pub struct Breaker {
    /// Consecutive failures that trip the breaker open.
    threshold: u32,
    /// Open-window schedule: trip `n` waits `backoff.delay(n - 1)`.
    backoff: Backoff,
    /// Half-open probe lease: an unreported probe older than this is
    /// abandoned and the next caller becomes the probe.
    probe_lease: Duration,
    inner: Mutex<BreakerInner>,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    /// When the current half-open probe was leased out; `None` outside
    /// half-open.
    probe_started: Option<Instant>,
    /// Consecutive trips without an intervening success — indexes the
    /// backoff schedule.
    trips: u32,
}

impl Breaker {
    /// A breaker that opens after `threshold` consecutive failures
    /// (clamped to at least 1) and probes on the `backoff` schedule.
    pub fn new(threshold: u32, backoff: Backoff) -> Self {
        Breaker {
            threshold: threshold.max(1),
            backoff,
            probe_lease: DEFAULT_PROBE_LEASE,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probe_started: None,
                trips: 0,
            }),
        }
    }

    /// Overrides the half-open probe lease (tests use `Duration::ZERO`
    /// to exercise the abandoned-probe takeover without sleeping).
    pub fn with_probe_lease(mut self, lease: Duration) -> Self {
        self.probe_lease = lease;
        self
    }

    /// Whether a request may proceed. Closed always admits; open admits
    /// nothing until its backoff window elapses, then converts exactly
    /// one caller into the half-open probe; half-open admits nothing
    /// more until the probe reports back — unless the probe's lease has
    /// expired, in which case the probe is presumed dead and this
    /// caller takes over the lease.
    pub fn allow(&self) -> bool {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match g.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => {
                if g.probe_started.is_none_or(|at| at.elapsed() >= self.probe_lease) {
                    g.probe_started = Some(Instant::now());
                    true
                } else {
                    false
                }
            }
            BreakerState::Open => {
                let wait = self.backoff.delay(g.trips.saturating_sub(1));
                if g.opened_at.is_none_or(|at| at.elapsed() >= wait) {
                    g.state = BreakerState::HalfOpen;
                    g.probe_started = Some(Instant::now());
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Non-consuming peek: would [`allow`](Self::allow) admit a request
    /// right now? Never transitions the breaker and never leases the
    /// half-open probe, so callers that only want to *gate* on breaker
    /// health (the router's read path, an all-or-nothing batch
    /// pre-check) cannot strand a probe they will never report on.
    pub fn would_allow(&self) -> bool {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match g.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => {
                g.probe_started.is_none_or(|at| at.elapsed() >= self.probe_lease)
            }
            BreakerState::Open => {
                let wait = self.backoff.delay(g.trips.saturating_sub(1));
                g.opened_at.is_none_or(|at| at.elapsed() >= wait)
            }
        }
    }

    /// Report a successful request: resets the failure streak; a
    /// half-open probe success closes the breaker.
    pub fn on_success(&self) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        g.consecutive_failures = 0;
        g.trips = 0;
        if g.state == BreakerState::HalfOpen {
            g.state = BreakerState::Closed;
            g.opened_at = None;
            g.probe_started = None;
        }
    }

    /// Report a failed request: extends the streak, trips the breaker
    /// at the threshold, and re-opens (with a longer window) on a
    /// failed half-open probe.
    pub fn on_failure(&self) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match g.state {
            BreakerState::Closed => {
                g.consecutive_failures += 1;
                if g.consecutive_failures >= self.threshold {
                    g.state = BreakerState::Open;
                    g.opened_at = Some(Instant::now());
                    g.trips = g.trips.saturating_add(1);
                }
            }
            BreakerState::HalfOpen => {
                g.state = BreakerState::Open;
                g.opened_at = Some(Instant::now());
                g.probe_started = None;
                g.trips = g.trips.saturating_add(1);
            }
            // Already open: the failure is a straggler from before the
            // trip; the window is not extended.
            BreakerState::Open => {}
        }
    }

    pub fn state(&self) -> BreakerState {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).state
    }

    /// Current consecutive-failure streak (0 once tripped or reset).
    pub fn consecutive_failures(&self) -> u32 {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .consecutive_failures
    }
}

// ----------------------------------------------------------- context

/// Execution context threaded through grounding and inference: budget,
/// start time, cancellation token, observability handle, and the fault
/// plan. Shared by reference across worker threads (`Sync`).
#[derive(Debug)]
pub struct ExecContext {
    budget: RunBudget,
    start: Instant,
    token: CancellationToken,
    obs: Obs,
    faults: FaultPlan,
    /// Once-latch for [`FaultPlan::panic_worker_in_instance`].
    worker_panic_fired: AtomicBool,
    /// Count-down for [`FaultPlan::fail_checkpoint_saves`].
    ckpt_failures_fired: AtomicUsize,
    /// Once-latches for the cluster worker faults: a rollback may
    /// replay the fault's epoch in the same context, and the fault must
    /// not re-fire.
    kill_worker_fired: AtomicBool,
    stall_worker_fired: AtomicBool,
    corrupt_frame_fired: AtomicBool,
}

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext::new(RunBudget::unlimited())
    }
}

impl ExecContext {
    pub fn new(budget: RunBudget) -> Self {
        ExecContext {
            budget,
            start: Instant::now(),
            token: CancellationToken::new(),
            obs: Obs::disabled(),
            faults: FaultPlan::none(),
            worker_panic_fired: AtomicBool::new(false),
            ckpt_failures_fired: AtomicUsize::new(0),
            kill_worker_fired: AtomicBool::new(false),
            stall_worker_fired: AtomicBool::new(false),
            corrupt_frame_fired: AtomicBool::new(false),
        }
    }

    /// A context with no limits, no token, no faults.
    pub fn unbounded() -> Self {
        ExecContext::default()
    }

    /// Uses an externally owned token (e.g. handed to another thread
    /// that may cancel this run).
    #[must_use]
    pub fn with_token(mut self, token: CancellationToken) -> Self {
        self.token = token;
        self
    }

    /// Installs a fault-injection plan (tests only, but safe anywhere —
    /// an empty plan injects nothing).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches an observability handle; grounding and inference record
    /// metrics, spans, and events through it. The default is the
    /// disabled (no-op) handle.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The observability handle (disabled unless one was attached).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    pub fn budget(&self) -> &RunBudget {
        &self.budget
    }

    pub fn token(&self) -> &CancellationToken {
        &self.token
    }

    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Remaining wall-clock budget; `None` when no deadline is set.
    pub fn remaining(&self) -> Option<Duration> {
        self.budget.deadline.map(|d| d.saturating_sub(self.elapsed()))
    }

    /// Checks the graceful interruption conditions (cancellation wins
    /// over deadline when both hold). Workers call this at epoch
    /// barriers / rule checkpoints and stop cleanly on `Some`.
    pub fn interrupted(&self) -> Option<RunOutcome> {
        if self.token.is_cancelled() {
            return Some(RunOutcome::Cancelled);
        }
        match self.budget.deadline {
            Some(d) if self.start.elapsed() >= d => Some(RunOutcome::TimedOut),
            _ => None,
        }
    }

    /// Checks hard resource limits; called from grounding checkpoints.
    /// Budget-pressure faults inflate the observed factor count. Every
    /// check increments `runtime.budget_checks_total`; a trip emits a
    /// `warn` trace event and bumps `runtime.budget_trips_total`.
    pub fn check_resources(
        &self,
        phase: Phase,
        usage: ResourceUsage,
    ) -> Result<(), BudgetExceeded> {
        self.obs.counter_add("runtime.budget_checks_total", 1);
        self.check_resources_inner(phase, usage).map_err(|err| {
            self.obs.counter_add("runtime.budget_trips_total", 1);
            self.obs.warn(format!("budget trip: {err}"));
            err
        })
    }

    fn check_resources_inner(
        &self,
        phase: Phase,
        usage: ResourceUsage,
    ) -> Result<(), BudgetExceeded> {
        let observed_factors = usage.factors + self.faults.factor_pressure;
        if let Some(limit) = self.budget.max_factors {
            if observed_factors > limit {
                return Err(BudgetExceeded {
                    phase,
                    resource: Resource::Factors,
                    limit,
                    observed: observed_factors,
                });
            }
        }
        if let Some(limit) = self.budget.max_variables {
            if usage.variables > limit {
                return Err(BudgetExceeded {
                    phase,
                    resource: Resource::Variables,
                    limit,
                    observed: usage.variables,
                });
            }
        }
        if let Some(limit) = self.budget.max_memory_bytes {
            if usage.memory_bytes > limit {
                return Err(BudgetExceeded {
                    phase,
                    resource: Resource::MemoryBytes,
                    limit,
                    observed: usage.memory_bytes,
                });
            }
        }
        Ok(())
    }

    /// Applies an injected slowdown for `phase`, if planned.
    pub fn maybe_slow(&self, phase: Phase) {
        if let Some((p, pause)) = self.faults.slowdown {
            if p == phase {
                self.obs.debug(format!("fault injection: {pause:?} slowdown during {phase}"));
                std::thread::sleep(pause);
            }
        }
    }

    /// True when the fault plan panics sampler instance `instance` at
    /// `epoch`.
    pub fn should_panic_instance(&self, instance: usize, epoch: usize) -> bool {
        let fire =
            epoch == self.faults.panic_at_epoch && self.faults.panic_instances.contains(&instance);
        if fire {
            self.obs.warn(format!(
                "fault injection: panicking sampler instance {instance} at epoch {epoch}"
            ));
        }
        fire
    }

    /// Once-latch for the planned cell-worker panic: returns true
    /// exactly once for the planned instance at the planned epoch.
    pub fn take_worker_panic(&self, instance: usize, epoch: usize) -> bool {
        if self.faults.panic_worker_in_instance != Some(instance)
            || epoch != self.faults.panic_at_epoch
        {
            return false;
        }
        let fire = !self.worker_panic_fired.swap(true, Ordering::AcqRel);
        if fire {
            self.obs.warn(format!(
                "fault injection: panicking cell worker of instance {instance} at epoch {epoch}"
            ));
        }
        fire
    }

    /// Count-down latch for the planned checkpoint-save failures:
    /// returns true for the first [`FaultPlan::fail_checkpoint_saves`]
    /// calls, then false forever. Samplers consult this right before
    /// handing a state to the checkpoint sink.
    pub fn take_checkpoint_save_failure(&self) -> bool {
        if self.faults.fail_checkpoint_saves == 0 {
            return false;
        }
        let n = self.ckpt_failures_fired.fetch_add(1, Ordering::AcqRel);
        let fire = n < self.faults.fail_checkpoint_saves;
        if fire {
            self.obs.warn(format!(
                "fault injection: failing checkpoint save {} of {}",
                n + 1,
                self.faults.fail_checkpoint_saves
            ));
        }
        fire
    }

    fn take_cluster_fault(
        &self,
        planned: Option<(usize, usize)>,
        latch: &AtomicBool,
        shard: usize,
        epoch: usize,
        what: &str,
    ) -> bool {
        if planned != Some((shard, epoch)) {
            return false;
        }
        let fire = !latch.swap(true, Ordering::AcqRel);
        if fire {
            self.obs.warn(format!("fault injection: {what} shard worker {shard} at epoch {epoch}"));
        }
        fire
    }

    /// Once-latch for [`FaultPlan::kill_worker`]: true exactly once for
    /// the planned `(shard, epoch)`.
    pub fn take_worker_kill(&self, shard: usize, epoch: usize) -> bool {
        self.take_cluster_fault(
            self.faults.kill_worker,
            &self.kill_worker_fired,
            shard,
            epoch,
            "killing",
        )
    }

    /// Once-latch for [`FaultPlan::stall_worker`]: the stall duration,
    /// exactly once for the planned `(shard, epoch)`.
    pub fn take_worker_stall(&self, shard: usize, epoch: usize) -> Option<Duration> {
        let (s, e, pause) = self.faults.stall_worker?;
        self.take_cluster_fault(
            Some((s, e)),
            &self.stall_worker_fired,
            shard,
            epoch,
            "stalling",
        )
        .then_some(pause)
    }

    /// Once-latch for [`FaultPlan::corrupt_frame`]: true exactly once
    /// for the planned `(shard, epoch)`.
    pub fn take_corrupt_frame(&self, shard: usize, epoch: usize) -> bool {
        self.take_cluster_fault(
            self.faults.corrupt_frame,
            &self.corrupt_frame_fired,
            shard,
            epoch,
            "corrupting a frame from",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_combine_keeps_worst() {
        use RunOutcome::*;
        assert_eq!(Completed.combine(Degraded), Degraded);
        assert_eq!(Degraded.combine(Completed), Degraded);
        assert_eq!(Degraded.combine(TimedOut), TimedOut);
        assert_eq!(TimedOut.combine(Cancelled), Cancelled);
        assert_eq!(Completed.combine(Completed), Completed);
        assert!(TimedOut.is_partial());
        assert!(Cancelled.is_partial());
        assert!(!Degraded.is_partial());
        assert!(Completed.is_completed());
    }

    #[test]
    fn token_is_shared_between_clones() {
        let token = CancellationToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn interrupted_prefers_cancellation() {
        let ctx = ExecContext::new(RunBudget::unlimited().with_deadline(Duration::ZERO));
        assert_eq!(ctx.interrupted(), Some(RunOutcome::TimedOut));
        ctx.token().cancel();
        assert_eq!(ctx.interrupted(), Some(RunOutcome::Cancelled));
    }

    #[test]
    fn no_deadline_never_interrupts() {
        let ctx = ExecContext::unbounded();
        assert_eq!(ctx.interrupted(), None);
        assert_eq!(ctx.remaining(), None);
    }

    #[test]
    fn resource_checks_trip_the_right_limit() {
        let ctx = ExecContext::new(
            RunBudget::unlimited()
                .with_max_factors(100)
                .with_max_variables(50)
                .with_max_memory_bytes(1 << 20),
        );
        let ok = ResourceUsage { factors: 100, variables: 50, memory_bytes: 1 << 20 };
        assert!(ctx.check_resources(Phase::Grounding, ok).is_ok());

        let too_many = ResourceUsage { factors: 101, ..ok };
        let err = ctx.check_resources(Phase::Grounding, too_many).unwrap_err();
        assert_eq!(err.resource, Resource::Factors);
        assert_eq!(err.limit, 100);
        assert_eq!(err.observed, 101);
        assert_eq!(err.phase, Phase::Grounding);
        assert!(err.to_string().contains("ground factors"));

        let too_wide = ResourceUsage { variables: 51, ..ok };
        let err = ctx.check_resources(Phase::Grounding, too_wide).unwrap_err();
        assert_eq!(err.resource, Resource::Variables);

        let too_big = ResourceUsage { memory_bytes: (1 << 20) + 1, ..ok };
        let err = ctx.check_resources(Phase::Grounding, too_big).unwrap_err();
        assert_eq!(err.resource, Resource::MemoryBytes);
    }

    #[test]
    fn factor_pressure_inflates_observed_count() {
        let plan = FaultPlan { factor_pressure: 90, ..FaultPlan::none() };
        let ctx = ExecContext::new(RunBudget::unlimited().with_max_factors(100)).with_faults(plan);
        let usage = ResourceUsage { factors: 20, ..ResourceUsage::default() };
        let err = ctx.check_resources(Phase::Grounding, usage).unwrap_err();
        assert_eq!(err.observed, 110);
    }

    #[test]
    fn instance_panic_plan_matches_only_planned_epoch() {
        let plan = FaultPlan {
            panic_instances: vec![2],
            panic_at_epoch: 5,
            ..FaultPlan::none()
        };
        let ctx = ExecContext::unbounded().with_faults(plan);
        assert!(ctx.should_panic_instance(2, 5));
        assert!(!ctx.should_panic_instance(2, 4));
        assert!(!ctx.should_panic_instance(1, 5));
    }

    #[test]
    fn worker_panic_latch_fires_once() {
        let plan = FaultPlan {
            panic_worker_in_instance: Some(0),
            panic_at_epoch: 3,
            ..FaultPlan::none()
        };
        let ctx = ExecContext::unbounded().with_faults(plan);
        assert!(!ctx.take_worker_panic(0, 2));
        assert!(ctx.take_worker_panic(0, 3));
        assert!(!ctx.take_worker_panic(0, 3), "latch must fire exactly once");
        assert!(!ctx.take_worker_panic(1, 3));
    }

    #[test]
    fn checkpoint_failure_latch_counts_down() {
        let plan = FaultPlan { fail_checkpoint_saves: 2, ..FaultPlan::none() };
        assert!(!plan.is_empty());
        let ctx = ExecContext::unbounded().with_faults(plan);
        assert!(ctx.take_checkpoint_save_failure());
        assert!(ctx.take_checkpoint_save_failure());
        assert!(!ctx.take_checkpoint_save_failure(), "only the first n saves fail");
        let clean = ExecContext::unbounded();
        assert!(!clean.take_checkpoint_save_failure());
    }

    #[test]
    fn cluster_fault_latches_fire_once_at_the_planned_site() {
        let plan = FaultPlan {
            kill_worker: Some((1, 5)),
            stall_worker: Some((0, 3, Duration::from_millis(7))),
            corrupt_frame: Some((2, 4)),
            ..FaultPlan::none()
        };
        assert!(!plan.is_empty());
        let ctx = ExecContext::unbounded().with_faults(plan);
        assert!(!ctx.take_worker_kill(1, 4));
        assert!(!ctx.take_worker_kill(0, 5));
        assert!(ctx.take_worker_kill(1, 5));
        assert!(!ctx.take_worker_kill(1, 5), "kill latch fires once");
        assert_eq!(ctx.take_worker_stall(0, 3), Some(Duration::from_millis(7)));
        assert_eq!(ctx.take_worker_stall(0, 3), None, "stall latch fires once");
        assert!(ctx.take_corrupt_frame(2, 4));
        assert!(!ctx.take_corrupt_frame(2, 4), "corrupt latch fires once");
        let clean = ExecContext::unbounded();
        assert!(!clean.take_worker_kill(1, 5));
        assert_eq!(clean.take_worker_stall(0, 3), None);
        assert!(!clean.take_corrupt_frame(2, 4));
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let b = Backoff::new(Duration::from_millis(100), Duration::from_secs(2));
        assert_eq!(b.delay(0), Duration::from_millis(100));
        assert_eq!(b.delay(1), Duration::from_millis(200));
        assert_eq!(b.delay(2), Duration::from_millis(400));
        assert_eq!(b.delay(5), Duration::from_secs(2), "capped at max");
        assert_eq!(b.delay(64), Duration::from_secs(2), "shift overflow saturates");
    }

    #[test]
    fn jittered_delays_diverge_across_shards_and_stay_bounded() {
        let b = Backoff::new(Duration::from_millis(100), Duration::from_secs(2));
        for attempt in 0..8u32 {
            let nominal = b.delay(attempt);
            let delays: Vec<Duration> =
                (0..16u64).map(|shard| b.delay_jittered(attempt, shard)).collect();
            for d in &delays {
                assert!(*d <= nominal, "jitter never exceeds the nominal delay");
                assert!(*d <= b.max, "jitter never exceeds max");
                assert!(
                    *d >= nominal.mul_f64(0.5),
                    "jitter keeps at least half the nominal delay"
                );
            }
            let distinct: std::collections::HashSet<Duration> =
                delays.iter().copied().collect();
            assert!(
                distinct.len() > 1,
                "distinct shards must not restart in lockstep (attempt {attempt})"
            );
        }
        // Deterministic: same (attempt, seed) → same delay.
        assert_eq!(b.delay_jittered(3, 7), b.delay_jittered(3, 7));
    }

    #[test]
    fn breaker_trips_probes_and_closes() {
        // Zero-base backoff: the open window elapses immediately, so the
        // transition script needs no sleeps.
        let br = Breaker::new(3, Backoff::new(Duration::ZERO, Duration::ZERO));
        assert_eq!(br.state(), BreakerState::Closed);
        assert!(br.allow());

        br.on_failure();
        br.on_failure();
        assert_eq!(br.state(), BreakerState::Closed, "below threshold stays closed");
        assert_eq!(br.consecutive_failures(), 2);
        br.on_failure();
        assert_eq!(br.state(), BreakerState::Open, "threshold trips the breaker");

        // Window elapsed (zero backoff): exactly one caller becomes the probe.
        assert!(br.allow(), "first caller after the window gets the probe");
        assert_eq!(br.state(), BreakerState::HalfOpen);
        assert!(!br.allow(), "no second probe while one is in flight");

        br.on_success();
        assert_eq!(br.state(), BreakerState::Closed, "probe success closes");
        assert!(br.allow());
    }

    #[test]
    fn breaker_abandoned_probe_lease_expires_and_releases() {
        // A probe holder that never reports back (panicked worker)
        // must not wedge the breaker half-open: once the lease
        // expires, the next caller takes the probe over. Zero lease
        // makes expiry immediate so the test needs no sleeping.
        let br = Breaker::new(1, Backoff::new(Duration::ZERO, Duration::ZERO))
            .with_probe_lease(Duration::ZERO);
        br.on_failure();
        assert!(br.allow(), "first caller leases the probe");
        assert_eq!(br.state(), BreakerState::HalfOpen);
        assert!(br.allow(), "expired lease: next caller takes over");
        assert_eq!(br.state(), BreakerState::HalfOpen);
        br.on_success();
        assert_eq!(br.state(), BreakerState::Closed);

        // Default lease: an in-flight probe still blocks other callers.
        let br = Breaker::new(1, Backoff::new(Duration::ZERO, Duration::ZERO));
        br.on_failure();
        assert!(br.allow());
        assert!(!br.allow(), "live lease admits no second probe");
    }

    #[test]
    fn breaker_would_allow_peeks_without_consuming_the_probe() {
        let br = Breaker::new(1, Backoff::new(Duration::ZERO, Duration::ZERO));
        assert!(br.would_allow(), "closed admits");
        br.on_failure();
        assert_eq!(br.state(), BreakerState::Open);
        // Elapsed open window: a peek says yes but leases nothing.
        assert!(br.would_allow());
        assert!(br.would_allow());
        assert_eq!(br.state(), BreakerState::Open, "peeking never transitions");
        // A real caller still gets the probe; while it is in flight the
        // peek turns pessimistic with everyone else.
        assert!(br.allow());
        assert_eq!(br.state(), BreakerState::HalfOpen);
        assert!(!br.would_allow(), "live probe: peek says wait");

        let br = Breaker::new(1, Backoff::new(Duration::from_secs(60), Duration::from_secs(60)));
        br.on_failure();
        assert!(!br.would_allow(), "window not elapsed: peek says no");
    }

    #[test]
    fn breaker_failed_probe_reopens_with_longer_window() {
        let br = Breaker::new(1, Backoff::new(Duration::from_secs(60), Duration::from_secs(60)));
        br.on_failure();
        assert_eq!(br.state(), BreakerState::Open);
        // 60 s window has not elapsed: fast-fail, no probe.
        assert!(!br.allow());
        assert_eq!(br.state(), BreakerState::Open);

        let br = Breaker::new(1, Backoff::new(Duration::ZERO, Duration::ZERO));
        br.on_failure();
        assert!(br.allow(), "probe granted");
        br.on_failure();
        assert_eq!(br.state(), BreakerState::Open, "failed probe reopens");
        assert!(br.allow(), "zero backoff: next probe granted again");
        br.on_success();
        assert_eq!(br.state(), BreakerState::Closed);
        assert_eq!(br.consecutive_failures(), 0);
    }

    #[test]
    fn budget_trip_records_metrics_and_event() {
        let obs = Obs::enabled();
        let ctx =
            ExecContext::new(RunBudget::unlimited().with_max_factors(1)).with_obs(obs.clone());
        let usage = ResourceUsage { factors: 5, ..ResourceUsage::default() };
        assert!(ctx.check_resources(Phase::Grounding, usage).is_err());
        assert!(ctx.check_resources(Phase::Grounding, ResourceUsage::default()).is_ok());
        let m = obs.metrics().unwrap();
        assert_eq!(m.counter_value("runtime.budget_checks_total"), Some(2));
        assert_eq!(m.counter_value("runtime.budget_trips_total"), Some(1));
        let events = obs.trace_snapshot().events;
        assert!(events
            .iter()
            .any(|e| e.severity == Severity::Warn && e.message.contains("budget trip")));
    }

    #[test]
    fn budget_builders_compose() {
        let b = RunBudget::unlimited()
            .with_deadline(Duration::from_secs(30))
            .with_max_factors(1_000_000);
        assert_eq!(b.deadline, Some(Duration::from_secs(30)));
        assert_eq!(b.max_factors, Some(1_000_000));
        assert!(!b.is_unlimited());
        assert!(RunBudget::unlimited().is_unlimited());
    }
}
