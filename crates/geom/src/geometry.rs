//! The unified [`Geometry`] enum and the OGC-style predicates Sya exposes
//! in rule bodies (`distance`, `within`, `overlaps`, `contains`,
//! `intersects`) plus the `buffer` helper mentioned in Section III.

use crate::linestring::LineString;
use crate::point::{haversine_miles, Point};
use crate::polygon::Polygon;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// One of the four Sya spatial data types (paper Section III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Geometry {
    Point(Point),
    Rect(Rect),
    Polygon(Polygon),
    LineString(LineString),
}

/// Distance metric used by the `distance` predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DistanceMetric {
    /// Plain Euclidean distance in coordinate units.
    #[default]
    Euclidean,
    /// Haversine great-circle distance in miles (lon/lat coordinates).
    HaversineMiles,
}

impl Geometry {
    /// Bounding box of the geometry.
    pub fn bbox(&self) -> Rect {
        match self {
            Geometry::Point(p) => Rect::from_point(*p),
            Geometry::Rect(r) => *r,
            Geometry::Polygon(p) => p.bbox(),
            Geometry::LineString(l) => l.bbox(),
        }
    }

    /// A representative point (the point itself, or the bbox center).
    pub fn representative_point(&self) -> Point {
        match self {
            Geometry::Point(p) => *p,
            other => other.bbox().center(),
        }
    }

    /// The geometry type name as it appears in WKT.
    pub fn type_name(&self) -> &'static str {
        match self {
            Geometry::Point(_) => "POINT",
            Geometry::Rect(_) => "RECT",
            Geometry::Polygon(_) => "POLYGON",
            Geometry::LineString(_) => "LINESTRING",
        }
    }

    /// Euclidean distance between two geometries (0 when they intersect).
    ///
    /// Point-point, point-rect, point-polygon-boundary, and point-line
    /// cases are exact; for extended-extended pairs we fall back to the
    /// distance between representative points unless they intersect —
    /// exactness there is not required by any Sya rule in the paper.
    pub fn distance(&self, other: &Geometry) -> f64 {
        use Geometry::*;
        match (self, other) {
            (Point(a), Point(b)) => a.distance(b),
            (Point(p), Rect(r)) | (Rect(r), Point(p)) => r.distance_to_point(p),
            (Point(p), LineString(l)) | (LineString(l), Point(p)) => l.distance_to_point(p),
            (Point(p), Polygon(pg)) | (Polygon(pg), Point(p)) => {
                if pg.contains_point(p) {
                    0.0
                } else {
                    // distance to boundary
                    let ring = pg.ring();
                    let n = ring.len();
                    (0..n)
                        .map(|i| {
                            crate::linestring::point_segment_distance(
                                p,
                                &ring[i],
                                &ring[(i + 1) % n],
                            )
                        })
                        .fold(f64::INFINITY, f64::min)
                }
            }
            (a, b) => {
                if a.intersects(b) {
                    0.0
                } else {
                    a.representative_point().distance(&b.representative_point())
                }
            }
        }
    }

    /// Distance under the chosen metric. Non-point geometries use their
    /// representative point for the haversine case.
    pub fn distance_with(&self, other: &Geometry, metric: DistanceMetric) -> f64 {
        match metric {
            DistanceMetric::Euclidean => self.distance(other),
            DistanceMetric::HaversineMiles => haversine_miles(
                &self.representative_point(),
                &other.representative_point(),
            ),
        }
    }

    /// OGC `within`: `self` lies entirely inside `other`.
    pub fn within(&self, other: &Geometry) -> bool {
        other.contains(self)
    }

    /// OGC `contains`: `other` lies entirely inside `self`.
    pub fn contains(&self, other: &Geometry) -> bool {
        use Geometry::*;
        match (self, other) {
            (Rect(r), Point(p)) => r.contains_point(p),
            (Rect(r), Rect(s)) => r.contains_rect(s),
            (Rect(r), Polygon(p)) => r.contains_rect(&p.bbox()),
            (Rect(r), LineString(l)) => r.contains_rect(&l.bbox()),
            (Polygon(pg), Point(p)) => pg.contains_point(p),
            (Polygon(pg), Rect(r)) => pg.contains_polygon(&crate::polygon::Polygon::from_rect(r)),
            (Polygon(a), Polygon(b)) => a.contains_polygon(b),
            (Polygon(pg), LineString(l)) => l.points().iter().all(|p| pg.contains_point(p)),
            (Point(a), Point(b)) => a == b,
            (Point(_), _) | (LineString(_), _) => false,
        }
    }

    /// OGC `intersects`: the geometries share at least one point.
    pub fn intersects(&self, other: &Geometry) -> bool {
        use Geometry::*;
        if !self.bbox().intersects(&other.bbox()) {
            return false;
        }
        match (self, other) {
            (Point(a), Point(b)) => a == b,
            (Point(p), Rect(r)) | (Rect(r), Point(p)) => r.contains_point(p),
            (Point(p), Polygon(pg)) | (Polygon(pg), Point(p)) => pg.contains_point(p),
            (Point(p), LineString(l)) | (LineString(l), Point(p)) => {
                l.distance_to_point(p) < 1e-12
            }
            (Rect(a), Rect(b)) => a.intersects(b),
            (Rect(r), Polygon(p)) | (Polygon(p), Rect(r)) => {
                crate::polygon::Polygon::from_rect(r).intersects(p)
            }
            (Rect(r), LineString(l)) | (LineString(l), Rect(r)) => {
                // any vertex inside, or any segment crossing the rect boundary
                l.points().iter().any(|p| r.contains_point(p))
                    || {
                        let ring = crate::polygon::Polygon::from_rect(r);
                        let boundary = crate::linestring::LineString::new({
                            let mut v = ring.ring().to_vec();
                            v.push(ring.ring()[0]);
                            v
                        })
                        .expect("rect boundary");
                        l.intersects_linestring(&boundary)
                    }
            }
            (Polygon(a), Polygon(b)) => a.intersects(b),
            (Polygon(pg), LineString(l)) | (LineString(l), Polygon(pg)) => {
                l.points().iter().any(|p| pg.contains_point(p)) || {
                    let mut v = pg.ring().to_vec();
                    v.push(pg.ring()[0]);
                    let boundary = crate::linestring::LineString::new(v).expect("polygon boundary");
                    l.intersects_linestring(&boundary)
                }
            }
            (LineString(a), LineString(b)) => a.intersects_linestring(b),
        }
    }

    /// OGC `overlaps`: the geometries intersect but neither contains the
    /// other (the paper lists `overlaps` as a rule-body predicate).
    pub fn overlaps(&self, other: &Geometry) -> bool {
        self.intersects(other) && !self.contains(other) && !other.contains(self)
    }

    /// `buffer`: expands the geometry's bounding box by `r` and returns it
    /// as a rectangle — the axis-aligned buffer used by Sya's grounding
    /// queries (true round buffers are unnecessary for box-filtered
    /// candidate generation).
    pub fn buffer(&self, r: f64) -> Geometry {
        Geometry::Rect(self.bbox().expand(r))
    }

    /// `union` of two geometries as the combined bounding box (the form
    /// needed by grounding-time candidate generation).
    pub fn union_bbox(&self, other: &Geometry) -> Geometry {
        Geometry::Rect(self.bbox().union(&other.bbox()))
    }

    /// Convenience accessor: the point if this is a `Point`.
    pub fn as_point(&self) -> Option<Point> {
        match self {
            Geometry::Point(p) => Some(*p),
            _ => None,
        }
    }
}

impl From<Point> for Geometry {
    fn from(p: Point) -> Self {
        Geometry::Point(p)
    }
}

impl From<Rect> for Geometry {
    fn from(r: Rect) -> Self {
        Geometry::Rect(r)
    }
}

impl From<Polygon> for Geometry {
    fn from(p: Polygon) -> Self {
        Geometry::Polygon(p)
    }
}

impl From<LineString> for Geometry {
    fn from(l: LineString) -> Self {
        Geometry::LineString(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(r: Rect) -> Geometry {
        Geometry::Polygon(Polygon::from_rect(&r))
    }

    #[test]
    fn point_point_distance() {
        let a = Geometry::Point(Point::new(0.0, 0.0));
        let b = Geometry::Point(Point::new(3.0, 4.0));
        assert_eq!(a.distance(&b), 5.0);
    }

    #[test]
    fn point_within_polygon() {
        let pg = poly(Rect::raw(0.0, 0.0, 10.0, 10.0));
        let inside = Geometry::Point(Point::new(5.0, 5.0));
        let outside = Geometry::Point(Point::new(15.0, 5.0));
        assert!(inside.within(&pg));
        assert!(!outside.within(&pg));
        assert!(pg.contains(&inside));
    }

    #[test]
    fn distance_point_to_polygon_is_boundary_distance() {
        let pg = poly(Rect::raw(0.0, 0.0, 2.0, 2.0));
        let p = Geometry::Point(Point::new(5.0, 1.0));
        assert!((pg.distance(&p) - 3.0).abs() < 1e-12);
        let inside = Geometry::Point(Point::new(1.0, 1.0));
        assert_eq!(pg.distance(&inside), 0.0);
    }

    #[test]
    fn overlaps_excludes_containment() {
        let a = poly(Rect::raw(0.0, 0.0, 10.0, 10.0));
        let b = poly(Rect::raw(5.0, 5.0, 15.0, 15.0));
        let c = poly(Rect::raw(1.0, 1.0, 2.0, 2.0));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c)); // contained, not overlapping
        assert!(a.intersects(&c));
    }

    #[test]
    fn buffer_expands_bbox() {
        let p = Geometry::Point(Point::new(1.0, 1.0));
        match p.buffer(2.0) {
            Geometry::Rect(r) => assert_eq!(r, Rect::raw(-1.0, -1.0, 3.0, 3.0)),
            other => panic!("expected rect, got {other:?}"),
        }
    }

    #[test]
    fn linestring_rect_intersection() {
        let l = Geometry::LineString(
            LineString::new(vec![Point::new(-1.0, 0.5), Point::new(2.0, 0.5)]).unwrap(),
        );
        let r = Geometry::Rect(Rect::raw(0.0, 0.0, 1.0, 1.0));
        assert!(l.intersects(&r));
        let far = Geometry::Rect(Rect::raw(10.0, 10.0, 11.0, 11.0));
        assert!(!l.intersects(&far));
    }

    #[test]
    fn haversine_metric_uses_representative_points() {
        let a = Geometry::Point(Point::new(-10.8047, 6.3156));
        let b = Geometry::Point(Point::new(-9.4722, 6.9956));
        let d = a.distance_with(&b, DistanceMetric::HaversineMiles);
        assert!((90.0..140.0).contains(&d));
    }

    #[test]
    fn union_bbox_covers_both() {
        let a = Geometry::Point(Point::new(0.0, 0.0));
        let b = Geometry::Point(Point::new(4.0, 2.0));
        match a.union_bbox(&b) {
            Geometry::Rect(r) => assert_eq!(r, Rect::raw(0.0, 0.0, 4.0, 2.0)),
            other => panic!("expected rect, got {other:?}"),
        }
    }
}
